#!/usr/bin/env python
"""Quickstart: cost-aware Active Learning on the AMR performance dataset.

Reproduces the paper's core loop in ~30 seconds:

1. Generate the 600-job shock-bubble dataset on the simulated Edison.
2. Split it into Initial (50) / Active (350) / Test (200) partitions.
3. Run Active Learning with the RandGoodness policy for 60 iterations.
4. Report how the cost model improved and what the selections cost.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ActiveLearner, RandGoodness, random_partition, run_campaign
from repro.data import render_table1

def main() -> None:
    rng = np.random.default_rng(2024)

    print("Generating the 600-job campaign (Table I dataset)...")
    campaign = run_campaign(rng)
    dataset = campaign.dataset
    print(render_table1(dataset, compare_paper=True))
    print()

    partition = random_partition(rng, len(dataset), n_init=50, n_test=200)
    print(
        f"Partitions: Initial={partition.n_init}, "
        f"Active={partition.n_active}, Test={partition.n_test}"
    )

    learner = ActiveLearner(
        dataset,
        partition,
        policy=RandGoodness(),
        rng=rng,
        max_iterations=60,
        hyper_refit_interval=2,  # refit hyperparameters every other step
    )
    print("Running 60 AL iterations with RandGoodness...")
    trajectory = learner.run()

    print(f"\nInitial cost RMSE : {trajectory.initial_rmse_cost:8.3f} node-hours")
    print(f"Final cost RMSE   : {trajectory.final_rmse_cost:8.3f} node-hours")
    print(f"Total cost spent  : {trajectory.total_cost:8.2f} node-hours")
    print(f"Median selection  : {np.median(trajectory.costs):8.4f} node-hours")
    print(f"Dataset median    : {np.median(dataset.cost):8.4f} node-hours")
    print(
        "\nRandGoodness selected experiments "
        f"{np.median(dataset.cost) / np.median(trajectory.costs):.1f}x cheaper "
        "than the dataset median while still improving the model."
    )


if __name__ == "__main__":
    main()
