#!/usr/bin/env python
"""Fig. 1: visualize the shock-bubble interaction and its adaptive mesh.

Runs the real AMR solver to a chosen time and prints two ASCII panels:
the density field (shock, compressed bubble, wake) and the refinement-level
map (where the forest spent its cells).  Increasing ``MAX_LEVEL`` shows the
paper's point — finer features appear, and the work grows sharply.

Run:  python examples/amr_visualization.py [max_level]
"""

import sys

import numpy as np

from repro.amr import AmrConfig, AmrDriver
from repro.solver import ShockBubbleProblem

NX, NY = 76, 26
DENSITY_RAMP = " .:-=+*#%@"


def ascii_panel(img: np.ndarray, ramp: str) -> str:
    lo, hi = img.min(), img.max()
    norm = (img - lo) / (hi - lo + 1e-300)
    lines = []
    for j in reversed(range(img.shape[1])):
        lines.append("".join(ramp[int(v * (len(ramp) - 1))] for v in norm[:, j]))
    return "\n".join(lines)


def level_map(driver: AmrDriver) -> np.ndarray:
    w, h = driver.forest.domain_extent()
    out = np.empty((NX, NY))
    for i in range(NX):
        for j in range(NY):
            x = (i + 0.5) * w / NX
            y = (j + 0.5) * h / NY
            _, quad = driver.forest.locate(float(x), float(y))
            out[i, j] = quad.level
    return out


def main() -> None:
    max_level = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    problem = ShockBubbleProblem(r0=0.3, rhoin=0.1, mach=2.0)
    config = AmrConfig(mx=8, min_level=1, max_level=max_level, refine_threshold=0.05)

    print(f"Simulating shock-bubble to t=0.15 at max_level={max_level}...")
    driver = AmrDriver(problem, config)
    stats = driver.run(t_end=0.15)

    print(f"\nDensity at t={driver.t:.3f}:")
    print(ascii_panel(driver.sample_uniform(NX, NY, field=0), DENSITY_RAMP))

    print("\nRefinement levels (darker = finer):")
    print(ascii_panel(level_map(driver), " 123456789"[: max_level + 1]))

    hist = driver.forest.level_histogram()
    print(
        f"\npatches per level: {dict(sorted(hist.items()))}  "
        f"steps: {stats.num_steps}  cell updates: {stats.total_cells_advanced:,}  "
        f"regrids: {stats.num_regrids}"
    )


if __name__ == "__main__":
    main()
