#!/usr/bin/env python
"""The paper's two-phase, memory-constrained experimentation workflow.

Sec. V-B motivates RGMA with this scenario:

- Phase 1: a small set of Initial simulations runs in an environment with
  ample memory (a bigmem queue); experimenter intuition picks them.
- Phase 2: experimentation moves to a cheaper environment with *less*
  memory per node (limit L_mem).  AL takes over; selections whose true
  memory reaches L_mem crash near completion and waste their full cost
  (the "individual regret").

This example runs phase 2 with the memory-aware RGMA and with the
memory-blind MaxSigma on identical partitions, and compares cumulative
regret, the paper's Fig. 4 story in miniature.

Run:  python examples/memory_aware_campaign.py
"""

import numpy as np

from repro import (
    ActiveLearner,
    MaxSigma,
    RGMA,
    random_partition,
    run_campaign,
)
from repro.analysis import format_table

ITERATIONS = 80


def run_phase2(dataset, policy, seed):
    rng = np.random.default_rng(seed)
    partition = random_partition(rng, len(dataset), n_init=50, n_test=200)
    learner = ActiveLearner(
        dataset,
        partition,
        policy=policy,
        rng=rng,
        max_iterations=ITERATIONS,
        hyper_refit_interval=2,
    )
    return learner.run()


def main() -> None:
    rng = np.random.default_rng(7)
    dataset = run_campaign(rng).dataset

    # The paper's limit rule: 95% of the largest log(bytes) memory usage,
    # equivalently 42% of the largest raw response.
    l_mem = dataset.memory_limit(log_fraction=0.95)
    over = float((dataset.mem >= l_mem).mean())
    print(
        f"L_mem = {l_mem:.2f} MB "
        f"({l_mem / dataset.mem.max() * 100:.0f}% of max, "
        f"{over * 100:.1f}% of jobs would crash)"
    )

    rows = []
    for seed in (1, 2, 3):
        t_rgma = run_phase2(dataset, RGMA(memory_limit_MB=l_mem), seed)
        t_blind = run_phase2(dataset, MaxSigma(), seed)
        regret_blind = float(np.where(t_blind.mems >= l_mem, t_blind.costs, 0).sum())
        rows.append(
            [
                seed,
                int(np.sum(t_rgma.mems >= l_mem)),
                t_rgma.total_regret,
                t_rgma.final_rmse_mem,
                int(np.sum(t_blind.mems >= l_mem)),
                regret_blind,
                t_blind.final_rmse_mem,
            ]
        )

    print()
    print(
        format_table(
            [
                "seed",
                "rgma_crashes",
                "rgma_regret_nh",
                "rgma_rmse_mem",
                "blind_crashes",
                "blind_regret_nh",
                "blind_rmse_mem",
            ],
            rows,
        )
    )
    print(
        "\nRGMA's memory model steers selection away from configurations "
        "that would exceed the limit; the memory-blind uncertainty sampler "
        "keeps buying doomed (and expensive) experiments."
    )


if __name__ == "__main__":
    main()
