#!/usr/bin/env python
"""Run real shock-bubble AMR simulations across a small parameter sweep.

Where the campaign generator uses the fast analytic work model, this
example exercises the *actual* solver stack — forest-of-quadtrees mesh,
HLLC finite-volume Euler solver, patch-based AMR with regridding — for a
3x2 sweep over bubble size and density, then feeds the measured work
profiles through the same Edison machine model used for the dataset.

Run:  python examples/shock_bubble_sweep.py          (~1-2 minutes)
"""

import time

import numpy as np

from repro.amr import AmrConfig, AmrDriver
from repro.analysis import format_table
from repro.machine import EDISON, MemoryModel, PerformanceModel, WorkEstimate
from repro.solver import ShockBubbleProblem

R0_VALUES = (0.2, 0.3, 0.4)
RHOIN_VALUES = (0.05, 0.2)
T_END = 0.08
NODES = 4


def run_simulation(r0: float, rhoin: float) -> tuple[AmrDriver, WorkEstimate]:
    problem = ShockBubbleProblem(r0=r0, rhoin=rhoin, mach=2.0)
    config = AmrConfig(mx=8, min_level=1, max_level=3, refine_threshold=0.05)
    driver = AmrDriver(problem, config)
    stats = driver.run(t_end=T_END)
    hist = driver.forest.level_histogram()
    work = WorkEstimate(
        patches_per_level=tuple(sorted(hist.items())),
        mx=config.mx,
        ng=config.ng,
        num_steps=stats.num_steps,
        num_regrids=stats.num_regrids,
    )
    return driver, work


def main() -> None:
    perf = PerformanceModel(EDISON, seconds_per_cell=5e-6)
    mem = MemoryModel(EDISON)

    rows = []
    for r0 in R0_VALUES:
        for rhoin in RHOIN_VALUES:
            t0 = time.perf_counter()
            driver, work = run_simulation(r0, rhoin)
            elapsed = time.perf_counter() - t0
            mass, energy = driver.conserved_totals()
            rows.append(
                [
                    r0,
                    rhoin,
                    work.total_patches,
                    work.num_steps,
                    perf.wall_time(work, NODES),
                    perf.node_hours(work, NODES),
                    mem.max_rss_MB(work, NODES),
                    elapsed,
                ]
            )
            print(
                f"  r0={r0:.2f} rhoin={rhoin:.2f}: {work.total_patches} patches, "
                f"{work.num_steps} steps, mass={mass:.3f}, ({elapsed:.1f}s local)"
            )

    print("\nPredicted Edison performance (4 nodes):")
    print(
        format_table(
            [
                "r0",
                "rhoin",
                "patches",
                "steps",
                "wall_s",
                "node_hours",
                "MaxRSS_MB",
                "local_s",
            ],
            rows,
        )
    )
    print(
        "\nNote the paper's observation: bigger bubbles and stronger density "
        "contrasts refine more of the domain, and cost grows unpredictably."
    )


if __name__ == "__main__":
    main()
