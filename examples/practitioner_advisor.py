#!/usr/bin/env python
"""End-to-end practitioner workflow: learn cheaply online, then ask.

This example plays the role of the paper's intended audience — a
non-expert AMR user who "may select an initial set of parameters and run a
simulation ... only to discover that the resulting simulation now takes
hours instead of minutes":

1. **Online AL** (no precomputed dataset): RGMA selects and actually runs
   ~40 shock-bubble configurations on the simulated Edison, staying cheap
   and avoiding predicted memory blowups.
2. **Advisor queries** on the trained surrogates:
   - everything runnable under a 0.5 node-hour budget and a 30-minute
     deadline,
   - the cheapest configuration reaching refinement level 6,
   - the cost/resolution Pareto frontier.

Run:  python examples/practitioner_advisor.py   (~1 minute)
"""

import numpy as np

from repro.analysis import format_table
from repro.core import ConfigurationAdvisor, RGMA
from repro.core.online import OnlineActiveLearner
from repro.machine import JobRunner

MEMORY_LIMIT_MB = 10.0


def main() -> None:
    rng = np.random.default_rng(42)
    runner = JobRunner()

    print("Phase 1: online Active Learning (RGMA, 40 runs)...")
    learner = OnlineActiveLearner(
        runner=runner,
        policy=RGMA(memory_limit_MB=MEMORY_LIMIT_MB),
        rng=rng,
        n_init=5,
        n_eval=150,
        max_runs=40,
        hyper_refit_interval=2,
    )
    result = learner.run()
    t = result.trajectory
    print(
        f"  executed {len(result.executed)} jobs, "
        f"{len(result.failed_configs)} crashed, "
        f"spent {result.total_node_hours:.2f} node-hours"
    )
    print(
        f"  cost-model RMSE {t.initial_rmse_cost:.3f} -> {t.final_rmse_cost:.3f} "
        f"node-hours (vs. noise-free machine-model truth)"
    )

    print("\nPhase 2: querying the trained surrogates")
    advisor = ConfigurationAdvisor(
        learner.gpr_cost, learner.gpr_mem, z=1.0
    )

    picks = advisor.feasible(
        budget_node_hours=0.5, deadline_hours=0.5, memory_limit_MB=MEMORY_LIMIT_MB
    )
    print(f"\n{len(picks)} configurations fit (budget 0.5 nh, deadline 30 min).")
    header = ["p", "mx", "maxlvl", "r0", "rhoin", "cost_nh", "wall_h", "rss_MB"]
    print("Cheapest five:")
    print(format_table(header, [r.as_row() for r in picks[:5]]))

    best_l6 = advisor.cheapest_at_resolution(6, memory_limit_MB=MEMORY_LIMIT_MB)
    if best_l6 is not None:
        print("\nCheapest safe configuration at maxlevel 6:")
        print(format_table(header, [best_l6.as_row()]))

    front = advisor.pareto_front(memory_limit_MB=MEMORY_LIMIT_MB)
    print(f"\nCost/resolution Pareto frontier ({len(front)} points, first 8):")
    print(format_table(header, [r.as_row() for r in front[:8]]))

    deep = advisor.expected_cost({"maxlevel": (6, 6)})
    shallow = advisor.expected_cost({"maxlevel": (3, 3)})
    print(
        f"\nExpected cost across the grid: maxlevel 6 averages "
        f"{deep:.2f} nh vs {shallow:.3f} nh at maxlevel 3 "
        f"({deep / shallow:.0f}x) — the growth the paper warns about."
    )


if __name__ == "__main__":
    main()
