"""Ablation B: the base of the RandGoodness distribution.

The paper picks base 10 "since we apply the logarithm base 10 ... in the
pre-processing step; higher bases will lead to more skewed candidate
distributions".  This ablation verifies that claim: the selected-cost
median drops (more exploitation) as the base grows, while small bases
approach uniform sampling.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import ActiveLearner, RandGoodness, random_partition

BASES = (2.0, 10.0, 100.0)
SEEDS = (3, 4)
ITERATIONS = 60


def run_one(dataset, base, seed, refit):
    rng = np.random.default_rng(seed)
    part = random_partition(rng, len(dataset), n_init=50, n_test=200)
    learner = ActiveLearner(
        dataset,
        part,
        policy=RandGoodness(base=base),
        rng=rng,
        max_iterations=ITERATIONS,
        hyper_refit_interval=refit,
    )
    return learner.run()


def test_ablation_goodness_base(benchmark, report, dataset, bench_scale):
    refit = bench_scale["hyper_refit_interval"]
    results = {}

    def run():
        for base in BASES:
            results[base] = [run_one(dataset, base, s, refit) for s in SEEDS]

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for base, trajs in results.items():
        costs = np.concatenate([t.costs for t in trajs])
        rows.append(
            [
                base,
                float(np.median(costs)),
                float(np.percentile(costs, 90)),
                float(np.median([t.total_cost for t in trajs])),
                float(np.median([t.final_rmse_cost for t in trajs])),
            ]
        )
    report(
        "ablation_goodness_base",
        format_table(
            ["base", "sel_cost_median", "sel_cost_p90", "total_cost", "rmse_cost"], rows
        ),
    )

    # --- shape assertions: higher base => cheaper selections -----------------
    med = {base: np.median(np.concatenate([t.costs for t in results[base]])) for base in BASES}
    assert med[100.0] <= med[2.0]
    total = {base: np.median([t.total_cost for t in results[base]]) for base in BASES}
    assert total[100.0] < total[2.0]
