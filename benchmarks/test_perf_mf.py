"""Perf headline: multi-fidelity portfolios vs single-fidelity RGMA.

The batch multi-fidelity learner buys most of its information at coarse
fidelity rungs (low ``mx`` / shallow ``max_level``), each priced by the
machine model at a fraction of the full-fidelity node-hour cost, and
propagates it to the top-fidelity posterior through the co-kriging stack.
Two claims are pinned:

- **regret per node-hour**: over held-out seeds, the F=2/B=4 portfolio
  configuration ends at (or below) sequential RGMA's final cumulative
  regret while committing >= ``NODE_HOUR_TARGET``x fewer ledger
  node-hours for the same number of acquisitions — the coarse rungs do
  the exploring, the budget does the rationing;
- **exact reduction**: at B=1/F=1 the portfolio learner reproduces
  sequential RGMA's selections bit-identically (same partitions, same
  rng streams), so the batch layer is a strict generalization, not a
  different algorithm.  The RGMA baselines fan out over
  ``REPRO_BENCH_WORKERS`` processes; parity holds for any worker count
  by seed design.

Results: ``benchmarks/results/perf_mf.txt`` plus machine-readable
``BENCH_mf.json`` (schema ``mf_portfolio_regret``) at the repo root.
``REPRO_BENCH_SCALE=quick`` (default) runs 2 seeds x 25 acquisitions;
``full`` runs 4 seeds x 60.
"""

from __future__ import annotations

import functools
import json
import os
from pathlib import Path

import numpy as np

from repro.core import (
    ALConfig,
    MultiFidelityActiveLearner,
    PortfolioPolicy,
    RGMA,
    TrajectorySpec,
    random_partition,
    run_trajectories,
)
from repro.data import MultiFidelityDataset, default_schedule

#: Fidelity rungs and per-round batch width of the portfolio arm.
NUM_FIDELITIES = 2
BATCH_SIZE = 4
#: Predicted node-hours each portfolio round may commit.
ROUND_BUDGET = 0.3
#: Deterministic low-fidelity pricing seed (shared by every seed's run).
FIDELITY_SEED = 0

#: The headline target: RGMA node-hours / portfolio node-hours.
NODE_HOUR_TARGET = 1.5
#: Absolute slack on the regret comparison (both arms are usually ~0).
REGRET_SLACK = 0.05

#: Held-out seed tree (disjoint from the test suites' seeds).
BASE_SEED = 4242
PARITY_SEEDS = 2
PARITY_ITERATIONS = 15

SCALES = {
    "quick": dict(regret_seeds=2, regret_iterations=25),
    "full": dict(regret_seeds=4, regret_iterations=60),
}

BENCH_JSON = Path(__file__).parent.parent / "BENCH_mf.json"


def _scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "quick")


def _seeded(traj_index: int, dataset, n_init=50, n_test=200):
    """The shared seed tree: same (partition, rng) as TrajectorySpec."""
    seed_seq = np.random.SeedSequence(entropy=BASE_SEED, spawn_key=(traj_index,))
    rng = np.random.default_rng(seed_seq)
    partition = random_partition(rng, len(dataset), n_init=n_init, n_test=n_test)
    return partition, rng


def _rgma_specs(memory_limit: float, n: int, iterations: int):
    return [
        TrajectorySpec(
            name=f"rgma-{i}",
            policy_factory=functools.partial(RGMA, memory_limit_MB=memory_limit),
            base_seed=BASE_SEED,
            traj_index=i,
            max_iterations=iterations,
        )
        for i in range(n)
    ]


def _parity(dataset, memory_limit: float, workers: int) -> dict:
    """B=1/F=1 portfolio selections vs sequential RGMA, per seed."""
    rgma = run_trajectories(
        dataset,
        _rgma_specs(memory_limit, PARITY_SEEDS, PARITY_ITERATIONS),
        max_workers=min(workers, PARITY_SEEDS),
    )
    identical = True
    rounds = 0
    for i, (_, traj) in enumerate(rgma):
        partition, rng = _seeded(i, dataset)
        learner = MultiFidelityActiveLearner(
            dataset,
            partition,
            policy=PortfolioPolicy(memory_limit_MB=memory_limit),
            rng=rng,
            config=ALConfig(max_iterations=PARITY_ITERATIONS),
        )
        mf_traj = learner.run()
        rounds += len(mf_traj.records)
        if not np.array_equal(traj.selected_indices, mf_traj.selected_indices):
            identical = False
    return {"identical": bool(identical), "rounds": int(rounds)}


def test_mf_parity_b1_f1(dataset, memory_limit, bench_workers, report):
    """The exact-reduction pin, runnable on its own as the CI smoke slice."""
    parity = _parity(dataset, memory_limit, bench_workers)
    report(
        "perf_mf_parity",
        f"B=1/F=1 portfolio vs sequential RGMA over {PARITY_SEEDS} seeds x "
        f"{PARITY_ITERATIONS} iterations: "
        f"{'bit-identical' if parity['identical'] else 'DIVERGED'} "
        f"({parity['rounds']} selections compared)",
    )
    assert parity["identical"], (
        "B=1/F=1 portfolio selections diverged from sequential RGMA"
    )


def test_mf_portfolio_regret(dataset, memory_limit, bench_workers, report):
    scale = _scale()
    cfg = SCALES[scale]
    seeds, iterations = cfg["regret_seeds"], cfg["regret_iterations"]

    rgma_results = run_trajectories(
        dataset,
        _rgma_specs(memory_limit, seeds, iterations),
        max_workers=min(bench_workers, seeds),
    )
    rgma_regret = float(np.mean([t.total_regret for _, t in rgma_results]))
    rgma_nh = float(np.mean([t.total_cost for _, t in rgma_results]))
    rgma_rmse = float(np.mean([t.final_rmse_cost for _, t in rgma_results]))

    mf_dataset = MultiFidelityDataset.from_dataset(
        dataset, default_schedule(NUM_FIDELITIES), seed=FIDELITY_SEED
    )
    mf_cfg = ALConfig(
        max_iterations=iterations,
        num_fidelities=NUM_FIDELITIES,
        batch_size=BATCH_SIZE,
        round_budget_node_hours=ROUND_BUDGET,
        fidelity_seed=FIDELITY_SEED,
    )
    mf_regrets, mf_nhs, mf_rmses, mf_coarse = [], [], [], []
    for i in range(seeds):
        partition, rng = _seeded(i, dataset)
        learner = MultiFidelityActiveLearner(
            mf_dataset,
            partition,
            policy=PortfolioPolicy(memory_limit_MB=memory_limit),
            rng=rng,
            config=mf_cfg,
        )
        traj = learner.run()
        mf_regrets.append(traj.total_regret)
        mf_nhs.append(learner.ledger.committed_node_hours)
        mf_rmses.append(traj.final_rmse_cost)
        mf_coarse.append(
            sum(1 for r in traj.records if r.fidelity < NUM_FIDELITIES - 1)
            / max(len(traj.records), 1)
        )
    mf_regret = float(np.mean(mf_regrets))
    mf_nh = float(np.mean(mf_nhs))
    mf_rmse = float(np.mean(mf_rmses))

    node_hour_factor = rgma_nh / mf_nh
    within = (
        mf_regret <= rgma_regret + REGRET_SLACK
        and node_hour_factor >= NODE_HOUR_TARGET
    )
    parity = _parity(dataset, memory_limit, bench_workers)

    lines = [
        f"{seeds} seeds x {iterations} acquisitions (scale={scale})",
        f"rgma      : regret {rgma_regret:.4f} nh  spend {rgma_nh:.3f} nh  "
        f"final cost RMSE {rgma_rmse:.4f}",
        f"portfolio : regret {mf_regret:.4f} nh  spend {mf_nh:.3f} nh  "
        f"final cost RMSE {mf_rmse:.4f}  "
        f"(F={NUM_FIDELITIES}, B={BATCH_SIZE}, "
        f"coarse fraction {np.mean(mf_coarse):.2f})",
        f"node-hour factor: {node_hour_factor:.2f}x "
        f"(target >= {NODE_HOUR_TARGET}x, regret slack {REGRET_SLACK}): "
        f"{'ok' if within else 'VIOLATED'}",
        f"parity    : B=1/F=1 "
        f"{'bit-identical' if parity['identical'] else 'DIVERGED'} "
        f"over {parity['rounds']} selections",
    ]
    report("perf_mf", "\n".join(lines))

    BENCH_JSON.write_text(
        json.dumps(
            {
                "benchmark": "mf_portfolio_regret",
                "host_cores": os.cpu_count(),
                "config": {
                    "scale": scale,
                    "num_fidelities": NUM_FIDELITIES,
                    "batch_size": BATCH_SIZE,
                    "round_budget_node_hours": ROUND_BUDGET,
                    "fidelity_seed": FIDELITY_SEED,
                    "base_seed": BASE_SEED,
                    "regret_seeds": seeds,
                    "regret_iterations": iterations,
                    "node_hour_target": NODE_HOUR_TARGET,
                    "regret_slack": REGRET_SLACK,
                },
                "regret": {
                    "rgma_final_regret": round(rgma_regret, 4),
                    "mf_final_regret": round(mf_regret, 4),
                    "rgma_node_hours": round(rgma_nh, 4),
                    "mf_node_hours": round(mf_nh, 4),
                    "rgma_final_rmse_cost": round(rgma_rmse, 4),
                    "mf_final_rmse_cost": round(mf_rmse, 4),
                    "coarse_fraction": round(float(np.mean(mf_coarse)), 3),
                    "node_hour_factor": round(node_hour_factor, 3),
                    "within_target": bool(within),
                },
                "parity": parity,
                "speedup": round(node_hour_factor, 3),
            },
            indent=2,
        )
        + "\n"
    )

    assert parity["identical"], (
        "B=1/F=1 portfolio selections diverged from sequential RGMA"
    )
    assert within, (
        f"portfolio regret {mf_regret:.4f} / node-hour factor "
        f"{node_hour_factor:.2f}x missed the target "
        f"(rgma regret {rgma_regret:.4f}, >= {NODE_HOUR_TARGET}x)"
    )
