"""Fig. 4: RGMA's cumulative regret and RMSE for n_init in {1, 50, 100}.

The memory-aware study of Sec. V-C: with the memory limit L_mem set by the
paper's rule, RGMA's cumulative regret flattens as its memory model learns
which configurations to avoid, and a larger Initial partition lowers the
regret incurred before that happens.  A memory-blind RandGoodness baseline
is included for contrast — its regret keeps growing.
"""

import functools

import numpy as np

from repro.analysis import aggregate_policy_curves, format_series, line_plot
from repro.core import BatchConfig, RGMA, RandGoodness, run_batch

N_INITS = (1, 50, 100)


def test_fig4_cumulative_regret(benchmark, report, dataset, memory_limit, bench_scale, bench_workers):
    batches = {}

    def run():
        for n_init in N_INITS:
            cfg = BatchConfig(
                n_trajectories=bench_scale["n_trajectories"],
                n_init=n_init,
                n_test=200,
                max_iterations=bench_scale["fig34_iterations"],
                hyper_refit_interval=bench_scale["hyper_refit_interval"],
                base_seed=123,
                processes=bench_workers,
            )
            factories = {
                # partial, not a lambda: the factory must pickle into the
                # trajectory workers.
                f"rgma_init{n_init}": functools.partial(
                    RGMA, memory_limit_MB=memory_limit
                ),
            }
            if n_init == 50:
                factories["rand_goodness_init50"] = RandGoodness
            batches[n_init] = run_batch(dataset, factories, cfg)

    benchmark.pedantic(run, rounds=1, iterations=1)

    merged = {}
    for n_init, b in batches.items():
        merged.update(b.trajectories)
    curves_cr = aggregate_policy_curves(merged, "cumulative_regret")
    curves_rmse = aggregate_policy_curves(merged, "rmse_mem")

    lines = []
    for name, c in sorted(curves_cr.items()):
        it = np.arange(c.median.size)
        lines.append(format_series(f"CR[{name}]", it, c.median, "iter", "regret_nh"))
    for name, c in sorted(curves_rmse.items()):
        it = np.arange(c.median.size)
        lines.append(format_series(f"RMSEmem[{name}]", it, c.median, "iter", "MB"))
    chart = line_plot(
        {
            name: (np.arange(c.median.size), c.median)
            for name, c in sorted(curves_cr.items())
        },
        x_label="iteration",
        y_label="cumulative regret (nh)",
    )
    report("fig4_rgma_regret", "\n".join(lines + ["", chart]))

    # --- shape assertions (Sec. V-C) -----------------------------------------
    def final_regret(name):
        return np.median([t.total_regret for t in merged[name]])

    def violations(name):
        return np.median(
            [np.sum(t.mems >= memory_limit) for t in merged[name]]
        )

    # RGMA avoids memory violations far better than memory-blind sampling
    # with the same goodness distribution... unless the cheap-first bias
    # alone suffices; at minimum RGMA never does worse.
    assert violations("rgma_init50") <= violations("rand_goodness_init50")

    # More initial data about the memory surface => no more regret.
    assert final_regret("rgma_init100") <= final_regret("rgma_init1") + 1e-9

    # Regret curves flatten: the regret accumulated in the last third of a
    # trajectory is no larger than in the first two thirds for RGMA.
    for n_init in N_INITS:
        for t in merged[f"rgma_init{n_init}"]:
            cr = t.cumulative_regret
            if cr.size < 9 or cr[-1] == 0.0:
                continue
            two_thirds = cr[2 * cr.size // 3]
            assert cr[-1] - two_thirds <= two_thirds + 1e-9

    # The memory model stays usable: finite RMSE throughout.
    for name, c in curves_rmse.items():
        assert np.all(np.isfinite(c.median[~np.isnan(c.median)]))
