"""Perf baseline: incremental Cholesky extension vs from-scratch refactor.

Times a sequence of one-row-append ``refactor()`` calls (as the AL loop
issues them) through both paths at n in {100, 300, 600} and records the
per-append table in ``benchmarks/results/perf_gpr.txt``.  The
incremental path replaces an O(n^3) factorization plus an O(n^2 d)
kernel rebuild with an O(n^2) block update, so the gap must widen with
n; the acceptance bar is >= 5x at n = 600.
"""

import time

import numpy as np

from repro.gp.gpr import GPRegressor

SIZES = (100, 300, 600)
#: One-sample acquisitions timed per measurement, as in the AL loop.
APPENDS = 8


def _problem(n, d=4, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 1, (n + APPENDS, d))
    y = np.sin(X @ np.linspace(1.0, 3.0, d)) + 0.05 * rng.standard_normal(
        n + APPENDS
    )
    return X, y


def _append_sequence(n, X, y, incremental):
    """Seconds per refactor over ``APPENDS`` one-row appends from size n."""
    gp = GPRegressor(n_restarts=0, incremental=incremental)
    gp.fit(X[:n], y[:n])
    expected = "rank1" if incremental else "full"
    t0 = time.perf_counter()
    for k in range(n + 1, n + APPENDS + 1):
        gp.refactor(X[:k], y[:k])
        assert gp.last_factor_mode_ == expected
    return (time.perf_counter() - t0) / APPENDS


def _best_of(n, X, y, incremental, repeats=3):
    return min(_append_sequence(n, X, y, incremental) for _ in range(repeats))


def test_perf_incremental_vs_full_refactor(report):
    rows = [f"{'n':>5}  {'full_ms':>9}  {'rank1_ms':>9}  {'speedup':>8}"]
    speedups = {}
    for n in SIZES:
        X, y = _problem(n)
        t_full = _best_of(n, X, y, incremental=False)
        t_incr = _best_of(n, X, y, incremental=True)
        speedups[n] = t_full / t_incr
        rows.append(
            f"{n:>5}  {1e3 * t_full:>9.3f}  {1e3 * t_incr:>9.3f}  "
            f"{speedups[n]:>7.1f}x"
        )
    report("perf_gpr", "\n".join(rows))

    # The gap must widen with n, and clear the acceptance bar at n=600.
    assert speedups[600] >= 5.0, f"rank-1 update only {speedups[600]:.1f}x at n=600"
    assert speedups[600] > speedups[100]
