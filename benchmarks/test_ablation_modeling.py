"""Ablation E: the paper's Sec. V-D modeling refinements.

Three variants of the surrogate modeling, against the paper's baseline:

1. ``log2(p), log2(mx)`` features — powers-of-two features modeled through
   their exponent ("the point with 2^3 processors is spaced equally from
   2^2 as it is from 2^4").
2. Local GP models (Sec. VI: "train multiple local performance models").
3. Cost-weighted RMSE (Eq. (12) with rho = diag(test costs)) recorded
   alongside the uniform metric — the scale-dependent error view.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import ActiveLearner, MaxSigma, random_partition
from repro.gp.local import LocalGPRegressor

SEEDS = (0, 1)
ITERATIONS = 40


def run_variant(dataset, seed, refit, **learner_kw):
    rng = np.random.default_rng(seed)
    part = random_partition(rng, len(dataset), n_init=50, n_test=200)
    if learner_kw.pop("local_gp", False):
        learner_kw["model_factory"] = lambda: LocalGPRegressor(n_regions=4, rng=rng)
    learner = ActiveLearner(
        dataset,
        part,
        policy=MaxSigma(),
        rng=rng,
        max_iterations=ITERATIONS,
        hyper_refit_interval=refit,
        weight_rmse_by_cost=True,
        **learner_kw,
    )
    return learner.run()


VARIANTS = {
    "baseline": {},
    "log2_p_mx": dict(log2_features=(0, 1)),
    "local_gp_k4": dict(local_gp=True),
}


def test_ablation_modeling_variants(benchmark, report, dataset, bench_scale):
    refit = bench_scale["hyper_refit_interval"]
    results = {}

    def run():
        for name, kw in VARIANTS.items():
            results[name] = [run_variant(dataset, s, refit, **dict(kw)) for s in SEEDS]

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, trajs in results.items():
        rows.append(
            [
                name,
                float(np.median([t.final_rmse_cost for t in trajs])),
                float(np.median([t.records[-1].rmse_cost_weighted for t in trajs])),
                float(np.median([t.final_rmse_mem for t in trajs])),
            ]
        )
    report(
        "ablation_modeling",
        format_table(
            ["variant", "rmse_cost", "rmse_cost_weighted", "rmse_mem"], rows
        ),
    )

    # --- shape assertions -----------------------------------------------------
    base = np.median([t.final_rmse_cost for t in results["baseline"]])
    for name, trajs in results.items():
        final = np.median([t.final_rmse_cost for t in trajs])
        assert np.isfinite(final), name
        # No variant should catastrophically degrade the model.
        assert final < 6.0 * base + 1.0, name
    # The weighted metric is larger than the uniform one here: big-cost test
    # samples carry the largest absolute errors (the Sec. V-D argument for
    # scale-dependent weighting).
    for trajs in results.values():
        for t in trajs:
            last = t.records[-1]
            assert last.rmse_cost_weighted > last.rmse_cost
