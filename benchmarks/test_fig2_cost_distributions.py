"""Fig. 2: cost distributions of the samples selected by each algorithm.

One AL trajectory per algorithm (n_init = 50), first N iterations; the
violin summary (median, IQR, min/max, width profile) of the *actual* costs
of the selected samples.  The paper's reading:

- RandUniform and MaxSigma: unbiased / expensive-leaning, long-tailed.
- MinPred and RandGoodness: strongly biased to inexpensive samples.
"""

import numpy as np

from repro.analysis import cost_distribution_table, violin_stats
from repro.core import ActiveLearner, MaxSigma, MinPred, RandGoodness, RandUniform, random_partition

ALGOS = [RandUniform, MaxSigma, MinPred, RandGoodness]


def one_trajectory(dataset, policy_cls, iterations, refit_interval, seed=2024):
    rng = np.random.default_rng(seed)
    part = random_partition(rng, len(dataset), n_init=50, n_test=200)
    learner = ActiveLearner(
        dataset,
        part,
        policy=policy_cls(),
        rng=rng,
        max_iterations=iterations,
        hyper_refit_interval=refit_interval,
    )
    return learner.run()


def test_fig2_selected_cost_distributions(benchmark, report, dataset, bench_scale):
    iterations = bench_scale["fig2_iterations"]
    refit = bench_scale["hyper_refit_interval"]
    trajectories = {}

    def run_all():
        for cls in ALGOS:
            trajectories[cls.name] = one_trajectory(dataset, cls, iterations, refit)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    stats = [violin_stats(name, t.costs) for name, t in trajectories.items()]
    report("fig2_cost_distributions", cost_distribution_table(stats))

    by_name = {s.label: s for s in stats}
    ds_median = float(np.median(dataset.cost))

    # --- shape assertions (paper Sec. V-A) -----------------------------------
    # RandGoodness and MinPred tend to select inexpensive experiments.
    assert by_name["min_pred"].median < 0.5 * ds_median
    assert by_name["rand_goodness"].median < 0.5 * ds_median
    # RandUniform selects more expensive experiments than MinPred, with a
    # long-tailed distribution (max far above the IQR).
    assert by_name["rand_uniform"].median > by_name["min_pred"].median
    assert by_name["rand_uniform"].maximum > 5.0 * by_name["rand_uniform"].q3
    # RandUniform and MaxSigma have similar medians (no basis to prefer one
    # from this view alone): within a factor a few of each other.
    ratio = by_name["max_sigma"].median / by_name["rand_uniform"].median
    assert 0.2 < ratio < 8.0
    # The randomized goodness sampler occasionally explores expensive
    # candidates: its max exceeds its q3 substantially.
    assert by_name["rand_goodness"].maximum > 2.0 * by_name["rand_goodness"].q3
