"""Fig. 2: cost distributions of the samples selected by each algorithm.

One AL trajectory per algorithm (n_init = 50), first N iterations; the
violin summary (median, IQR, min/max, width profile) of the *actual* costs
of the selected samples.  The paper's reading:

- RandUniform and MaxSigma: unbiased / expensive-leaning, long-tailed.
- MinPred and RandGoodness: strongly biased to inexpensive samples.
"""

import numpy as np

from repro.analysis import cost_distribution_table, violin_stats
from repro.core import MaxSigma, MinPred, RandGoodness, RandUniform, TrajectorySpec, run_trajectories

ALGOS = [RandUniform, MaxSigma, MinPred, RandGoodness]


def test_fig2_selected_cost_distributions(benchmark, report, dataset, bench_scale, bench_workers):
    iterations = bench_scale["fig2_iterations"]
    refit = bench_scale["hyper_refit_interval"]
    # One spec per algorithm, all sharing seed position (2024, 0): every
    # policy sees the same Initial/Active/Test partition.
    specs = [
        TrajectorySpec(
            name=cls.name,
            policy_factory=cls,
            base_seed=2024,
            n_init=50,
            n_test=200,
            max_iterations=iterations,
            hyper_refit_interval=refit,
        )
        for cls in ALGOS
    ]
    trajectories = {}

    def run_all():
        trajectories.update(
            run_trajectories(dataset, specs, max_workers=bench_workers)
        )

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    stats = [violin_stats(name, t.costs) for name, t in trajectories.items()]
    report("fig2_cost_distributions", cost_distribution_table(stats))

    by_name = {s.label: s for s in stats}
    ds_median = float(np.median(dataset.cost))

    # --- shape assertions (paper Sec. V-A) -----------------------------------
    # RandGoodness and MinPred tend to select inexpensive experiments.
    assert by_name["min_pred"].median < 0.5 * ds_median
    assert by_name["rand_goodness"].median < 0.5 * ds_median
    # RandUniform selects more expensive experiments than MinPred, with a
    # long-tailed distribution (max far above the IQR).
    assert by_name["rand_uniform"].median > by_name["min_pred"].median
    assert by_name["rand_uniform"].maximum > 5.0 * by_name["rand_uniform"].q3
    # RandUniform and MaxSigma have similar medians (no basis to prefer one
    # from this view alone): within a factor a few of each other.
    ratio = by_name["max_sigma"].median / by_name["rand_uniform"].median
    assert 0.2 < ratio < 8.0
    # The randomized goodness sampler occasionally explores expensive
    # candidates: its max exceeds its q3 substantially.
    assert by_name["rand_goodness"].maximum > 2.0 * by_name["rand_goodness"].q3
