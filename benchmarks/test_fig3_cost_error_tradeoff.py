"""Fig. 3: the cost-error trade-off — RMSE vs cumulative cost per algorithm.

The paper's central comparison: how fast each algorithm reduces test RMSE
*per node-hour spent*, medians over several random partitions.  The
cost-aware samplers reach a given accuracy at a fraction of the cumulative
cost of the unbiased ones, while MaxSigma converges fastest per iteration
but spends far more.
"""

import numpy as np

from repro.analysis import format_series, line_plot, tradeoff_curve
from repro.core import (
    BatchConfig,
    MaxSigma,
    MinPred,
    RandGoodness,
    RandUniform,
    run_batch,
)

FACTORIES = {
    "rand_uniform": RandUniform,
    "max_sigma": MaxSigma,
    "min_pred": MinPred,
    "rand_goodness": RandGoodness,
}


def test_fig3_rmse_vs_cumulative_cost(benchmark, report, dataset, bench_scale, bench_workers):
    cfg = BatchConfig(
        n_trajectories=bench_scale["n_trajectories"],
        n_init=50,
        n_test=200,
        max_iterations=bench_scale["fig34_iterations"],
        hyper_refit_interval=bench_scale["hyper_refit_interval"],
        base_seed=77,
        processes=bench_workers,
    )
    holder = {}

    def run():
        holder["batch"] = run_batch(dataset, FACTORIES, cfg)

    benchmark.pedantic(run, rounds=1, iterations=1)
    batch = holder["batch"]

    # Common cost grid spanning the cheap-policy spend range.
    grid = np.logspace(-1.0, np.log10(30.0), 12)
    lines = []
    curves = {}
    for name in FACTORIES:
        curves[name] = tradeoff_curve(name, batch[name], cost_grid=grid)
        lines.append(
            format_series(
                name, grid, curves[name].rmse_median, "cum_cost_nh", "rmse_cost"
            )
        )
    summary = [
        f"{name}: total_cost median = "
        f"{np.median([t.total_cost for t in batch[name]]):.2f} nh, "
        f"final rmse median = "
        f"{np.median([t.final_rmse_cost for t in batch[name]]):.3f}"
        for name in FACTORIES
    ]
    chart = line_plot(
        {name: (grid, curves[name].rmse_median) for name in FACTORIES},
        logx=True,
        x_label="cumulative cost (nh)",
        y_label="RMSE (nh)",
    )
    report(
        "fig3_cost_error_tradeoff", "\n".join(lines + [""] + summary + ["", chart])
    )

    # --- shape assertions -----------------------------------------------------
    total = lambda n: np.median([t.total_cost for t in batch[n]])
    # Spending order: cheap-seeking policies spend far less than MaxSigma.
    assert total("min_pred") < total("rand_uniform") < total("max_sigma")
    assert total("rand_goodness") < 0.5 * total("rand_uniform")

    # At small budgets the cost-aware samplers have usable models while the
    # expensive samplers have barely completed iterations: RandGoodness's
    # RMSE at a 2 node-hour budget must be finite.
    rg_at_2 = curves["rand_goodness"].rmse_median[np.searchsorted(grid, 2.0)]
    assert np.isfinite(rg_at_2)

    # Given the full iteration budget, the unbiased samplers achieve lower
    # final error than the purely exploitative MinPred (the paper's
    # motivation for adding exploration).
    final = lambda n: np.median([t.final_rmse_cost for t in batch[n]])
    assert final("rand_uniform") < final("min_pred")
    # ... and RandGoodness improves on MinPred thanks to its exploration.
    assert final("rand_goodness") < 1.2 * final("min_pred")
