"""Perf headline: candidate-selection throughput, dense vs iterative GP.

The AL loop's steady-state cost at large n is *selection scoring*: the
candidate cache holds the cross covariance ``Ks`` (M, n), and each
selection is one ``predict_from_cross`` pass — mean, variance, argmax.
The dense backend pays an O(n^2 M) triangular solve per pass; the
iterative backend's Woodbury factor answers the same query in O(n r M);
the sparse (DTC) backend in O(m^2 M).  This benchmark measures
selections/second for all three at growing training-set sizes and pins
two claims:

- **parity** (every scale, the CI slice): at n = 600 the iterative
  backend fits bit-identical hyperparameters and makes the *same
  selection sequence* as the dense backend;
- **speedup** (full scale): >= 5x selections/sec over dense at n = 20000.

Protocol per checkpoint: hyperparameters come from one exact fit at
n = 600 (shared by every backend — throughput is compared at identical
theta), each backend factorizes the n-point training set once (setup,
reported but untimed), and the scoring pass over a fixed M = 256
candidate pool is timed best-of-``REPEATS`` with ``PASSES`` passes per
timing.  Results: ``benchmarks/results/perf_select.txt`` plus a
machine-readable ``BENCH_select.json`` (schema-checked in CI by
``repro.analysis.bench_schema``) at the repo root.

Scale: ``REPRO_BENCH_SCALE=quick`` (default) stops at n = 600 so the CI
smoke stays fast; ``full`` adds n = 5000 and n = 20000 (the dense
factorization at 20k is minutes of one-time setup).
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.gp import GPRegressor, IterativeGPRegressor, SparseGPRegressor
from repro.gp.surrogate import cross_points

DIMS = 4
#: Candidate-pool size scored per selection pass.
N_CANDIDATES = 256
#: Timed repetitions; best-of damps scheduler noise.
REPEATS = 3
#: Scoring passes per timed repetition (smooths sub-ms passes at small n).
PASSES = 5
#: Sequential argmax-sigma selections compared in the parity slice.
PARITY_ROUNDS = 20
#: Training size whose exact fit supplies theta to every backend.
FIT_N = 600

CHECKPOINTS_BY_SCALE = {"quick": (600,), "full": (600, 5000, 20000)}

BENCH_JSON = Path(__file__).parent.parent / "BENCH_select.json"


def _scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "quick")


def _data(n):
    rng = np.random.default_rng(0)
    X = rng.uniform(0, 1, (n, DIMS))
    y = np.sin(X @ np.linspace(1.0, 3.0, DIMS)) + 0.05 * rng.standard_normal(n)
    return X, y


def _candidates():
    return np.random.default_rng(99).uniform(0, 1, (N_CANDIDATES, DIMS))


def _fit_theta(X, y):
    """The shared hyperparameters: one exact fit at the paper's n = 600."""
    gp = GPRegressor(n_restarts=1, rng=np.random.default_rng(1))
    gp.fit(X[:FIT_N], y[:FIT_N])
    return gp.kernel_


def _setup_backend(name, kernel, X, y):
    """Factorize ``n`` training points under the shared frozen theta."""
    if name == "dense":
        model = GPRegressor(n_restarts=0, use_workspace=False)
    elif name == "iterative":
        model = IterativeGPRegressor(n_restarts=0, use_workspace=False)
    else:
        model = SparseGPRegressor(n_inducing=64, rng=np.random.default_rng(2))
    model.kernel_ = kernel.with_theta(kernel.theta)
    t0 = time.perf_counter()
    model.refactor(X, y)
    return model, time.perf_counter() - t0


def _selections_per_sec(model, U):
    """Steady-state scoring throughput against a cached cross covariance."""
    kernel = model.kernel_
    Ks = kernel(U, cross_points(model))
    prior = kernel.diag(U)
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        for _ in range(PASSES):
            _, sd = model.predict_from_cross(Ks, prior, return_std=True)
            int(np.argmax(sd))
        best = min(best, (time.perf_counter() - t0) / PASSES)
    return 1.0 / best


def _parity_slice(X, y):
    """Dense vs iterative at n = 600: same theta, same selection sequence."""
    results = {}
    for name, cls in (("dense", GPRegressor), ("iterative", IterativeGPRegressor)):
        model = cls(n_restarts=1, rng=np.random.default_rng(1))
        model.fit(X[:FIT_N], y[:FIT_N])
        pool = _candidates()
        picks = []
        for _ in range(PARITY_ROUNDS):
            _, sd = model.predict(pool, return_std=True)
            i = int(np.argmax(sd))
            picks.append(tuple(np.round(pool[i], 12)))
            pool = np.delete(pool, i, axis=0)
        results[name] = (model.kernel_.theta.copy(), picks)
    theta_d, picks_d = results["dense"]
    theta_i, picks_i = results["iterative"]
    assert np.array_equal(theta_i, theta_d), "theta diverged at n=600"
    identical = picks_i == picks_d
    assert identical, "selection sequences diverged at n=600"
    return {"n_train": FIT_N, "rounds": PARITY_ROUNDS, "identical": identical}


def test_perf_selection_throughput(report):
    scale = _scale()
    checkpoints = CHECKPOINTS_BY_SCALE[scale]
    n_max = checkpoints[-1]
    X, y = _data(n_max)
    U = _candidates()

    parity = _parity_slice(X, y)
    kernel = _fit_theta(X, y)

    rows = [
        f"{'n_train':>8}  {'dense/s':>10}  {'iterative/s':>12}  "
        f"{'sparse/s':>10}  {'speedup':>8}"
    ]
    checkpoints_json = []
    iter_counters = {}
    for n in checkpoints:
        sps = {}
        setup = {}
        for name in ("dense", "iterative", "sparse"):
            model, setup_s = _setup_backend(name, kernel, X[:n], y[:n])
            sps[name] = _selections_per_sec(model, U)
            setup[name] = setup_s
            if name == "iterative":
                iter_counters = {
                    k: int(v) for k, v in model.workspace_counters().items()
                }
        speedup = sps["iterative"] / sps["dense"]
        rows.append(
            f"{n:>8}  {sps['dense']:>10.1f}  {sps['iterative']:>12.1f}  "
            f"{sps['sparse']:>10.1f}  {speedup:>7.2f}x"
        )
        checkpoints_json.append(
            {
                "n_train": n,
                "dense_sps": round(sps["dense"], 2),
                "iterative_sps": round(sps["iterative"], 2),
                "sparse_sps": round(sps["sparse"], 2),
                "dense_setup_s": round(setup["dense"], 3),
                "iterative_setup_s": round(setup["iterative"], 3),
                "sparse_setup_s": round(setup["sparse"], 3),
                "speedup": round(speedup, 3),
            }
        )
    rows.append("")
    rows.append(
        f"parity: {parity['rounds']} argmax-sigma selections at "
        f"n={parity['n_train']} identical dense vs iterative"
    )
    rows.append("iterative counters (last checkpoint):")
    width = max(len(c) for c in iter_counters)
    for counter, count in sorted(iter_counters.items()):
        rows.append(f"  {counter:<{width}}  {count:>8d}")
    report("perf_select", "\n".join(rows))

    final_speedup = checkpoints_json[-1]["speedup"]
    BENCH_JSON.write_text(
        json.dumps(
            {
                "benchmark": "gp_select_throughput",
                "host_cores": os.cpu_count(),
                "config": {
                    "dims": DIMS,
                    "n_candidates": N_CANDIDATES,
                    "repeats": REPEATS,
                    "passes": PASSES,
                    "fit_n": FIT_N,
                    "scale": scale,
                },
                "parity": parity,
                "checkpoints": checkpoints_json,
                "counters": iter_counters,
                "speedup": final_speedup,
            },
            indent=2,
        )
        + "\n"
    )

    if n_max >= 20000:
        assert final_speedup >= 5.0, (
            f"iterative selection must be >= 5x dense at n={n_max} "
            f"(got {final_speedup:.2f}x)"
        )
