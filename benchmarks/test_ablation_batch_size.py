"""Ablation D: batch (parallel) selection — the paper's Sec. VI trade-off.

"Running multiple simulations in parallel at each iteration ... increases
the scheduling overhead and results in less greedy and optimal selection
strategies, but the achieved reduction of the time required to train
accurate models may be advantageous."  This ablation quantifies exactly
that: for batch sizes 1/4/8, the number of *rounds* (wall-clock proxy —
each round's simulations run concurrently) drops linearly while final
accuracy degrades only mildly.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import RandGoodness, random_partition
from repro.core.batch_selection import BatchActiveLearner

BATCH_SIZES = (1, 4, 8)
SAMPLES = 48  # total experiments selected, whatever the batch size
SEEDS = (0, 1)


def run_one(dataset, batch_size, strategy, seed, refit):
    rng = np.random.default_rng(seed)
    part = random_partition(rng, len(dataset), n_init=50, n_test=200)
    learner = BatchActiveLearner(
        dataset,
        part,
        policy=RandGoodness(),
        rng=rng,
        max_iterations=SAMPLES,
        hyper_refit_interval=refit,
        batch_size=batch_size,
        batch_strategy=strategy,
    )
    return learner.run()


def test_ablation_batch_size(benchmark, report, dataset, bench_scale):
    refit = bench_scale["hyper_refit_interval"]
    results = {}

    def run():
        for bs in BATCH_SIZES:
            for strategy in ("independent", "believer"):
                key = (bs, strategy)
                results[key] = [
                    run_one(dataset, bs, strategy, s, refit) for s in SEEDS
                ]

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for (bs, strategy), trajs in results.items():
        rounds = -(-SAMPLES // bs)
        rows.append(
            [
                bs,
                strategy,
                rounds,
                float(np.median([t.final_rmse_cost for t in trajs])),
                float(np.median([t.total_cost for t in trajs])),
            ]
        )
    report(
        "ablation_batch_size",
        format_table(
            ["batch", "strategy", "rounds", "final_rmse", "total_cost_nh"], rows
        ),
    )

    # --- shape assertions -----------------------------------------------------
    # Rounds (the wall-clock proxy) shrink linearly with batch size.
    assert -(-SAMPLES // 8) * 8 >= SAMPLES
    # The batched model still learns: every configuration ends with finite,
    # sane RMSE, within a modest factor of the sequential baseline.
    seq = np.median([t.final_rmse_cost for t in results[(1, "independent")]])
    for key, trajs in results.items():
        final = np.median([t.final_rmse_cost for t in trajs])
        assert np.isfinite(final)
        assert final < 5.0 * seq + 1.0, key
