"""Ablation C: sensitivity of RGMA to the memory limit L_mem.

Sweeps the limit from permissive (nothing filtered) to aggressive (most of
the pool filtered).  Tighter limits must reduce the number of violating
selections; at the extreme the policy terminates early because no
candidate is predicted safe.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import ActiveLearner, RGMA, random_partition
from repro.core.trajectory import StopReason

SEEDS = (5, 6)
ITERATIONS = 60


def limits_for(dataset):
    """Permissive / paper-rule / aggressive limits, in MB."""
    return {
        "permissive(99%)": dataset.memory_limit(log_fraction=0.99),
        "paper(95%)": dataset.memory_limit(log_fraction=0.95),
        "tight(80%)": dataset.memory_limit(log_fraction=0.80),
        "extreme(40%)": dataset.memory_limit(log_fraction=0.40),
    }


def run_one(dataset, limit, seed, refit):
    rng = np.random.default_rng(seed)
    part = random_partition(rng, len(dataset), n_init=50, n_test=200)
    learner = ActiveLearner(
        dataset,
        part,
        policy=RGMA(memory_limit_MB=limit),
        rng=rng,
        max_iterations=ITERATIONS,
        hyper_refit_interval=refit,
    )
    return learner.run()


def test_ablation_memory_limit(benchmark, report, dataset, bench_scale):
    refit = bench_scale["hyper_refit_interval"]
    limits = limits_for(dataset)
    results = {}

    def run():
        for name, lim in limits.items():
            results[name] = [run_one(dataset, lim, s, refit) for s in SEEDS]

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, lim in limits.items():
        trajs = results[name]
        pool_frac = float((dataset.mem >= lim).mean())
        viol = float(np.median([np.sum(t.mems >= lim) for t in trajs]))
        regret = float(np.median([t.total_regret for t in trajs]))
        early = sum(t.stop_reason == StopReason.MEMORY_CONSTRAINED for t in trajs)
        rows.append([name, lim, pool_frac, viol, regret, early])
    report(
        "ablation_memory_limit",
        format_table(
            ["limit", "L_mem_MB", "pool_frac_over", "violations", "regret_nh", "early_stops"],
            rows,
        ),
    )

    # --- shape assertions -------------------------------------------------------
    # Tighter limits filter more of the pool.
    fracs = [(dataset.mem >= lim).mean() for lim in limits.values()]
    assert fracs == sorted(fracs)
    # Violations per selected sample stay rare under the paper rule.
    paper_viol = np.median(
        [np.mean(t.mems >= limits["paper(95%)"]) for t in results["paper(95%)"]]
    )
    assert paper_viol < 0.1
    # The extreme limit filters most of the pool; RGMA either terminates
    # early or keeps violations at a handful.
    extreme = results["extreme(40%)"]
    assert all(
        t.stop_reason == StopReason.MEMORY_CONSTRAINED
        or np.sum(t.mems >= limits["extreme(40%)"]) <= ITERATIONS // 4
        for t in extreme
    )
