"""Perf baseline: kernel-workspace hyperparameter refit vs the direct path.

Times ``GPRegressor.fit`` in the AL loop's steady state: the training set
grows one row per iteration, so each refit extends a cached kernel
workspace (theta-independent distance structure), runs every L-BFGS-B
objective evaluation as scale-exp-Cholesky over preallocated buffers with
the fused symmetry-aware gradient, and reuses the optimizer's best
factorization instead of refactorizing.  The direct path rebuilds the
kernel matrix and its dense ``(n, n, k)`` gradient stack per evaluation.
Both paths take identical optimizer trajectories (parity is enforced by
``tests/gp/test_workspace.py``); the acceptance bar is a >= 3x wall-clock
speedup at n=600.

Protocol per checkpoint: warm fits at ``n/2`` and ``n-4 .. n-1`` establish
the steady state (workspace extended, buffers sized), then the fit at
``n`` is timed; best-of-``REPEATS`` with a fresh model per repeat.

Results: a rendered table (including the fast path's perf counters) in
``benchmarks/results/perf_gpfit.txt`` plus a machine-readable
``BENCH_gpfit.json`` at the repo root for trend tracking in CI.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro import obs
from repro.gp import GPRegressor

#: Training-set sizes at which the steady-state refit is timed.
CHECKPOINTS = (100, 200, 400, 600)
DIMS = 4
#: Timed repetitions per (checkpoint, path); best-of damps scheduler noise.
REPEATS = 3

BENCH_JSON = Path(__file__).parent.parent / "BENCH_gpfit.json"


def _dataset():
    rng = np.random.default_rng(0)
    X = rng.uniform(0, 1, (CHECKPOINTS[-1] + 10, DIMS))
    y = np.sin(X @ np.linspace(1.0, 3.0, DIMS)) + 0.05 * rng.standard_normal(
        X.shape[0]
    )
    return X, y


def _timed_fit(X, y, n, use_workspace):
    """One steady-state refit at size ``n``: warm, then time the last fit."""
    gp = GPRegressor(n_restarts=0, use_workspace=use_workspace)
    for m in (n // 2, n - 4, n - 3, n - 2, n - 1):
        gp.fit(X[:m], y[:m])
    t0 = time.perf_counter()
    gp.fit(X[:n], y[:n])
    return time.perf_counter() - t0


def _best_of(X, y, n, use_workspace):
    return min(_timed_fit(X, y, n, use_workspace) for _ in range(REPEATS))


def test_perf_workspace_vs_direct(report):
    X, y = _dataset()
    obs.METRICS.reset()
    ws_times = {n: _best_of(X, y, n, use_workspace=True) for n in CHECKPOINTS}
    counters = obs.METRICS.counters()
    obs.METRICS.reset()
    direct_times = {
        n: _best_of(X, y, n, use_workspace=False) for n in CHECKPOINTS
    }

    rows = [f"{'n_train':>8}  {'direct_ms':>10}  {'workspace_ms':>12}  "
            f"{'speedup':>8}"]
    checkpoints_json = []
    for n in CHECKPOINTS:
        speedup = direct_times[n] / ws_times[n]
        rows.append(
            f"{n:>8}  {1e3 * direct_times[n]:>10.1f}  "
            f"{1e3 * ws_times[n]:>12.1f}  {speedup:>7.2f}x"
        )
        checkpoints_json.append(
            {
                "n_train": n,
                "direct_ms": round(1e3 * direct_times[n], 2),
                "workspace_ms": round(1e3 * ws_times[n], 2),
                "speedup": round(speedup, 3),
            }
        )
    rows.append("")
    rows.append("fast-path counters (full workspace sweep):")
    width = max(len(c) for c in counters)
    for counter, count in counters.items():
        rows.append(f"  {counter:<{width}}  {count:>8d}")
    report("perf_gpfit", "\n".join(rows))

    n_final = CHECKPOINTS[-1]
    final_speedup = direct_times[n_final] / ws_times[n_final]
    BENCH_JSON.write_text(
        json.dumps(
            {
                "benchmark": "gp_fit_workspace",
                "host_cores": os.cpu_count(),
                "config": {
                    "dims": DIMS,
                    "repeats": REPEATS,
                    "warm_fits": 5,
                    "n_restarts": 0,
                },
                "checkpoints": checkpoints_json,
                "counters": counters,
                "speedup": round(final_speedup, 3),
            },
            indent=2,
        )
        + "\n"
    )

    assert final_speedup >= 3.0, (
        f"workspace refit must be >= 3x faster at n={n_final} "
        f"(got {final_speedup:.2f}x)"
    )
