"""Ablation F: online vs. offline Active Learning (paper Sec. IV).

The paper's analysis framework is offline — it "consult[s] a database of
precomputed performance samples", which "enables cross-validation and thus
robust comparison of AL strategies with modest computational cost" — and
contrasts it with an online system that actually runs each selected
experiment.  This benchmark runs both modes with the same policy and
verifies they tell the same story: cheap-leaning selection, improving
models, memory-aware crash avoidance.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import ActiveLearner, RGMA, random_partition
from repro.core.online import OnlineActiveLearner
from repro.machine import JobRunner

RUNS = 40


def test_ablation_online_vs_offline(benchmark, report, dataset, memory_limit, bench_scale):
    refit = bench_scale["hyper_refit_interval"]
    holder = {}

    def run():
        # Offline: the paper's simulator over the precomputed dataset.
        rng = np.random.default_rng(7)
        part = random_partition(rng, len(dataset), n_init=50, n_test=200)
        holder["offline"] = ActiveLearner(
            dataset,
            part,
            policy=RGMA(memory_limit_MB=memory_limit),
            rng=rng,
            max_iterations=RUNS,
            hyper_refit_interval=refit,
        ).run()
        # Online: decide, execute on the simulated machine, learn.
        holder["online"] = OnlineActiveLearner(
            runner=JobRunner(),
            policy=RGMA(memory_limit_MB=memory_limit),
            rng=np.random.default_rng(7),
            n_init=5,
            n_eval=200,
            max_runs=RUNS,
            hyper_refit_interval=refit,
        ).run()

    benchmark.pedantic(run, rounds=1, iterations=1)

    off = holder["offline"]
    onl = holder["online"]
    rows = [
        [
            "offline",
            len(off),
            float(np.median(off.costs)),
            off.total_cost,
            off.total_regret,
            off.initial_rmse_cost,
            off.final_rmse_cost,
        ],
        [
            "online",
            len(onl.trajectory),
            float(np.median(onl.trajectory.costs)),
            onl.trajectory.total_cost,
            onl.trajectory.total_regret,
            onl.trajectory.initial_rmse_cost,
            onl.trajectory.final_rmse_cost,
        ],
    ]
    report(
        "ablation_online_vs_offline",
        format_table(
            ["mode", "iters", "med_sel_cost", "total_cost", "regret", "rmse0", "rmse"],
            rows,
        ),
    )

    # --- shape assertions -----------------------------------------------------
    # Both modes select cheap experiments relative to their candidate pools.
    assert np.median(off.costs) < np.median(dataset.cost)
    # Both models improve (or at worst hold) from their pre-AL state.
    assert off.final_rmse_cost < off.initial_rmse_cost * 1.5
    assert onl.trajectory.final_rmse_cost < onl.trajectory.initial_rmse_cost * 1.5
    # RGMA keeps crashes rare in both modes.
    assert off.total_regret <= 0.25 * off.total_cost + 1e-9
    assert len(onl.failed_configs) <= RUNS // 5
