"""Perf baseline: batched (shape-stacked) AMR stepping vs per-patch loop.

Times a medium shock-bubble run (mx=16, max_level=4, serial) through both
stepping backends.  The batched path stacks the hierarchy into one
``(P, 4, n, n)`` array, runs cache-blocked axis-aware sweeps over it,
executes a ghost-exchange plan precomputed at regrid time, and vectorizes
the dt/tagging reductions — it is bit-identical to the per-patch reference
(enforced by ``tests/amr/test_batch.py``), just faster.  The acceptance
bar is a >= 3x wall-clock speedup.

Results: a rendered table in ``benchmarks/results/perf_amr.txt`` plus a
machine-readable ``BENCH_amr.json`` at the repo root (steps/sec, cells/sec,
speedup) for trend tracking in CI.
"""

import json
import time
from pathlib import Path

from repro.amr import AmrConfig, AmrDriver
from repro.solver import ShockBubbleProblem

MX = 16
MAX_LEVEL = 4
NSTEPS = 24
#: Timed repetitions per backend; best-of damps scheduler noise.
REPEATS = 2

BENCH_JSON = Path(__file__).parent.parent / "BENCH_amr.json"


def _run(batched):
    """One full run; returns (elapsed_seconds, cells_advanced, num_steps)."""
    cfg = AmrConfig(mx=MX, min_level=1, max_level=MAX_LEVEL, batched=batched)
    driver = AmrDriver(ShockBubbleProblem(), cfg)
    t0 = time.perf_counter()
    for k in range(NSTEPS):
        dt = driver.compute_dt()
        driver.step(dt)
        if (k + 1) % cfg.regrid_interval == 0:
            driver.regrid()
    elapsed = time.perf_counter() - t0
    cells = sum(rec.cells_advanced for rec in driver.stats.steps)
    return elapsed, cells, NSTEPS


def _best_of(batched):
    best = None
    for _ in range(REPEATS):
        run = _run(batched)
        if best is None or run[0] < best[0]:
            best = run
    return best


def test_perf_batched_vs_per_patch(report):
    t_batch, cells, steps = _best_of(batched=True)
    t_patch, cells_ref, _ = _best_of(batched=False)
    assert cells == cells_ref, "backends must advance identical hierarchies"
    speedup = t_patch / t_batch

    rows = [
        f"{'backend':>10}  {'wall_s':>8}  {'steps/s':>8}  {'Mcells/s':>9}",
        f"{'per-patch':>10}  {t_patch:>8.3f}  {steps / t_patch:>8.2f}  "
        f"{1e-6 * cells / t_patch:>9.3f}",
        f"{'batched':>10}  {t_batch:>8.3f}  {steps / t_batch:>8.2f}  "
        f"{1e-6 * cells / t_batch:>9.3f}",
        f"speedup: {speedup:.2f}x  (mx={MX}, max_level={MAX_LEVEL}, "
        f"{steps} steps, serial)",
    ]
    report("perf_amr", "\n".join(rows))

    BENCH_JSON.write_text(
        json.dumps(
            {
                "benchmark": "amr_batched_stepping",
                "config": {
                    "mx": MX,
                    "max_level": MAX_LEVEL,
                    "nsteps": steps,
                    "workers": 1,
                },
                "per_patch": {
                    "wall_s": round(t_patch, 4),
                    "steps_per_s": round(steps / t_patch, 3),
                    "cells_per_s": round(cells / t_patch, 1),
                },
                "batched": {
                    "wall_s": round(t_batch, 4),
                    "steps_per_s": round(steps / t_batch, 3),
                    "cells_per_s": round(cells / t_batch, 1),
                },
                "speedup": round(speedup, 3),
            },
            indent=2,
        )
        + "\n"
    )

    assert speedup >= 3.0, (
        f"batched stepping must be >= 3x faster (got {speedup:.2f}x)"
    )
