"""Perf baselines for AMR stepping: batched vs per-patch, sharded workers.

Times a medium shock-bubble run (mx=16, max_level=4) through three
backends:

- the **per-patch** reference loop;
- the **batched** serial path: one ``(P, 4, n, n)`` stack, cache-blocked
  sweeps, a precompiled ghost-exchange plan, vectorized reductions —
  bit-identical to per-patch (``tests/amr/test_batch.py``), >= 3x faster;
- the **parallel** path (``repro.amr.parallel``): the stack in shared
  memory, sharded along the Morton curve across worker processes that run
  the compiled C sweep/exchange kernels, phased by the parent — again
  bit-identical (``tests/amr/test_parallel.py``), >= 3x over batched
  serial at 4 workers.

The parallel rows disclose ``host_cores``: on a single-core CI host the
worker speedup comes from the compiled kernels rather than true
concurrency, and extra workers only add phase-barrier overhead; on
multicore hosts the shards genuinely overlap.

Results: a rendered table in ``benchmarks/results/perf_amr.txt`` plus a
machine-readable ``BENCH_amr.json`` at the repo root (steps/sec, cells/sec,
speedups, worker scaling) for trend tracking in CI.
"""

import json
import os
import time
from pathlib import Path

from repro.amr import AmrConfig, AmrDriver
from repro.amr.parallel import ParallelAmrDriver
from repro.solver import ShockBubbleProblem

MX = 16
MAX_LEVEL = 4
NSTEPS = 24
#: Timed repetitions per backend; best-of damps scheduler noise.
REPEATS = 2
#: Shard counts for the worker-scaling section.
WORKER_COUNTS = (1, 2, 4)

BENCH_JSON = Path(__file__).parent.parent / "BENCH_amr.json"


def _advance(driver):
    """The timed stepping loop shared by all backends."""
    t0 = time.perf_counter()
    for k in range(NSTEPS):
        dt = driver.compute_dt()
        driver.step(dt)
        if (k + 1) % driver.config.regrid_interval == 0:
            driver.regrid()
    return time.perf_counter() - t0


def _run(batched, workers=None):
    """One full run; returns (elapsed_seconds, cells_advanced, num_steps)."""
    cfg = AmrConfig(mx=MX, min_level=1, max_level=MAX_LEVEL, batched=batched)
    if workers is None:
        driver = AmrDriver(ShockBubbleProblem(), cfg)
        elapsed = _advance(driver)
    else:
        with ParallelAmrDriver(
            ShockBubbleProblem(), cfg, num_workers=workers
        ) as driver:
            elapsed = _advance(driver)
    cells = sum(rec.cells_advanced for rec in driver.stats.steps)
    return elapsed, cells, NSTEPS


def _best_of(batched, workers=None):
    best = None
    for _ in range(REPEATS):
        run = _run(batched, workers)
        if best is None or run[0] < best[0]:
            best = run
    return best


def test_perf_batched_vs_per_patch_vs_parallel(report):
    t_batch, cells, steps = _best_of(batched=True)
    t_patch, cells_ref, _ = _best_of(batched=False)
    assert cells == cells_ref, "backends must advance identical hierarchies"
    speedup = t_patch / t_batch

    scaling = []
    for workers in WORKER_COUNTS:
        t_par, cells_par, _ = _best_of(batched=True, workers=workers)
        assert cells_par == cells, "parallel must advance the same hierarchy"
        scaling.append((workers, t_par, t_batch / t_par))

    rows = [
        f"{'backend':>13}  {'wall_s':>8}  {'steps/s':>8}  {'Mcells/s':>9}",
        f"{'per-patch':>13}  {t_patch:>8.3f}  {steps / t_patch:>8.2f}  "
        f"{1e-6 * cells / t_patch:>9.3f}",
        f"{'batched':>13}  {t_batch:>8.3f}  {steps / t_batch:>8.2f}  "
        f"{1e-6 * cells / t_batch:>9.3f}",
    ]
    for workers, t_par, _s in scaling:
        rows.append(
            f"{f'parallel W={workers}':>13}  {t_par:>8.3f}  "
            f"{steps / t_par:>8.2f}  {1e-6 * cells / t_par:>9.3f}"
        )
    rows.append(
        f"batched vs per-patch: {speedup:.2f}x; parallel W=4 vs batched: "
        f"{scaling[-1][2]:.2f}x  (mx={MX}, max_level={MAX_LEVEL}, "
        f"{steps} steps, host_cores={os.cpu_count()})"
    )
    report("perf_amr", "\n".join(rows))

    BENCH_JSON.write_text(
        json.dumps(
            {
                "benchmark": "amr_batched_stepping",
                "host_cores": os.cpu_count(),
                "config": {
                    "mx": MX,
                    "max_level": MAX_LEVEL,
                    "nsteps": steps,
                },
                "per_patch": {
                    "wall_s": round(t_patch, 4),
                    "steps_per_s": round(steps / t_patch, 3),
                    "cells_per_s": round(cells / t_patch, 1),
                },
                "batched": {
                    "wall_s": round(t_batch, 4),
                    "steps_per_s": round(steps / t_batch, 3),
                    "cells_per_s": round(cells / t_batch, 1),
                },
                "speedup": round(speedup, 3),
                "workers": {
                    "host_cores": os.cpu_count(),
                    "note": (
                        "sharded drivers step through the compiled C "
                        "kernels; serial backends are the numpy reference"
                    ),
                    "scaling": [
                        {
                            "workers": workers,
                            "wall_s": round(t_par, 4),
                            "steps_per_s": round(steps / t_par, 3),
                            "speedup_vs_batched": round(s, 3),
                        }
                        for workers, t_par, s in scaling
                    ],
                },
            },
            indent=2,
        )
        + "\n"
    )

    assert speedup >= 3.0, (
        f"batched stepping must be >= 3x faster (got {speedup:.2f}x)"
    )
    w4 = scaling[-1]
    assert w4[0] == 4 and w4[2] >= 3.0, (
        f"4-worker sharded stepping must be >= 3x over batched serial "
        f"(got {w4[2]:.2f}x)"
    )
