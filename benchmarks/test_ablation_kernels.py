"""Ablation A: kernel choice (paper Sec. VI future work).

The paper uses an isotropic RBF kernel for comparability with earlier work
and defers anisotropic RBF and Matérn kernels to future work.  This
ablation runs the same MaxSigma AL trajectory under each kernel and
compares final cost-model RMSE — quantifying what the proposed extensions
would buy.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import ActiveLearner, MaxSigma, random_partition
from repro.gp import default_kernel

KERNELS = {
    "rbf_isotropic": lambda: default_kernel(),
    "rbf_anisotropic": lambda: default_kernel(anisotropic_dims=5),
    "matern_1.5": lambda: default_kernel(matern_nu=1.5),
    "matern_2.5": lambda: default_kernel(matern_nu=2.5),
}
SEEDS = (0, 1)
ITERATIONS = 40


def run_one(dataset, kernel_factory, seed, refit):
    rng = np.random.default_rng(seed)
    part = random_partition(rng, len(dataset), n_init=50, n_test=200)
    learner = ActiveLearner(
        dataset,
        part,
        policy=MaxSigma(),
        rng=rng,
        kernel=kernel_factory(),
        max_iterations=ITERATIONS,
        hyper_refit_interval=refit,
    )
    return learner.run()


def test_ablation_kernel_choice(benchmark, report, dataset, bench_scale):
    refit = bench_scale["hyper_refit_interval"]
    results = {}

    def run():
        for name, factory in KERNELS.items():
            results[name] = [run_one(dataset, factory, s, refit) for s in SEEDS]

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, trajs in results.items():
        rows.append(
            [
                name,
                float(np.median([t.initial_rmse_cost for t in trajs])),
                float(np.median([t.final_rmse_cost for t in trajs])),
                float(np.median([t.final_rmse_mem for t in trajs])),
            ]
        )
    report(
        "ablation_kernels",
        format_table(["kernel", "rmse0_cost", "rmse_cost", "rmse_mem"], rows),
    )

    # --- shape assertions -----------------------------------------------------
    # Every kernel produces a usable model (finite, improving on the prior
    # scale of the response).
    for name, trajs in results.items():
        final = np.median([t.final_rmse_cost for t in trajs])
        assert np.isfinite(final), name
        assert final < float(dataset.cost.max()), name
    # The anisotropic kernel, with per-feature length scales, should not be
    # substantially worse than the isotropic one on this anisotropic
    # response surface.
    iso = np.median([t.final_rmse_cost for t in results["rbf_isotropic"]])
    ard = np.median([t.final_rmse_cost for t in results["rbf_anisotropic"]])
    assert ard < 3.0 * iso
