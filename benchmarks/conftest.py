"""Shared infrastructure for the figure/table regeneration benchmarks.

Every benchmark regenerates one table or figure of the paper and prints its
rows/series (run pytest with ``-s`` to see them live); the rendered text is
also written to ``benchmarks/results/<name>.txt``.

Scaling: the paper's full runs (hundreds of AL iterations, many
trajectories) take minutes; benchmarks default to a reduced but
shape-preserving configuration.  Set ``REPRO_BENCH_SCALE=full`` for
paper-scale runs.

Parallelism: the fig2/fig3/fig4 benchmarks fan their independent
trajectories out over :func:`repro.core.run_trajectories`' process pool.
``REPRO_BENCH_WORKERS`` overrides the worker count (1 = serial); results
are worker-count-independent by seed design.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from repro.data import run_campaign

RESULTS_DIR = Path(__file__).parent / "results"

#: Reduced vs full experiment scales.
SCALES = {
    "quick": dict(
        n_trajectories=3,
        fig2_iterations=100,
        fig34_iterations=80,
        hyper_refit_interval=2,
    ),
    "full": dict(
        n_trajectories=5,
        fig2_iterations=150,
        fig34_iterations=350,
        hyper_refit_interval=1,
    ),
}


@pytest.fixture(scope="session")
def bench_scale() -> dict:
    name = os.environ.get("REPRO_BENCH_SCALE", "quick")
    if name not in SCALES:
        raise ValueError(f"REPRO_BENCH_SCALE must be one of {sorted(SCALES)}")
    return SCALES[name]


@pytest.fixture(scope="session")
def bench_workers() -> int:
    """Process-pool width for trajectory fan-out (capped, env-overridable)."""
    raw = os.environ.get("REPRO_BENCH_WORKERS")
    if raw is not None:
        workers = int(raw)
        if workers < 1:
            raise ValueError("REPRO_BENCH_WORKERS must be >= 1")
        return workers
    return max(1, min(os.cpu_count() or 1, 4))


@pytest.fixture(scope="session")
def dataset():
    """The paper-scale 600-job dataset (fixed seed: one dataset per run)."""
    return run_campaign(np.random.default_rng(42)).dataset


@pytest.fixture(scope="session")
def memory_limit(dataset) -> float:
    """L_mem per the paper's rule (95% of log-bytes max = 42% of raw max)."""
    return dataset.memory_limit()


@pytest.fixture
def report():
    """Print a rendered table/figure and persist it under results/."""

    def _report(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n=== {name} ===\n{text}\n")

    return _report
