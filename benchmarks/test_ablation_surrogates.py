"""Ablation G: the surrogate-model family of Sec. II-B.

Fits each surrogate — exact GPR (the paper's), local GP mixture, sparse
DTC GP, sparse-spectrum GP, and treed GP — once on 400 training rows of
the 600-job dataset and evaluates non-log cost RMSE on the held-out 200,
plus wall-clock fit time.  This measures the accuracy/scalability
trade-off the paper says these approximations buy for "massive
experimental datasets".
"""

import time

import numpy as np

from repro.analysis import format_table
from repro.core.metrics import rmse_nonlog
from repro.core.preprocessing import DesignTransform
from repro.gp import (
    GPRegressor,
    LocalGPRegressor,
    SparseGPRegressor,
    SpectralGPRegressor,
    TreedGPRegressor,
)


def surrogates(rng):
    return {
        "exact_gpr": GPRegressor(rng=rng, n_restarts=2),
        "local_k6": LocalGPRegressor(n_regions=6, rng=rng),
        "sparse_dtc_m60": SparseGPRegressor(n_inducing=60, rng=rng),
        "spectral_m100": SpectralGPRegressor(n_frequencies=100, rng=rng),
        "treed_leaf100": TreedGPRegressor(max_leaf_size=100, rng=rng),
    }


def test_ablation_surrogate_family(benchmark, report, dataset):
    transform = DesignTransform(dataset.bounds)
    U = transform.transform(dataset.X)
    y = dataset.log_cost()
    rng = np.random.default_rng(0)
    perm = rng.permutation(len(dataset))
    train, test = perm[:400], perm[400:]

    results = {}

    def run():
        for name, model in surrogates(np.random.default_rng(1)).items():
            t0 = time.perf_counter()
            model.fit(U[train], y[train])
            fit_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            mu = model.predict(U[test])
            pred_s = time.perf_counter() - t0
            results[name] = (
                rmse_nonlog(mu, dataset.cost[test]),
                fit_s,
                pred_s,
            )

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [[name, *vals] for name, vals in results.items()]
    report(
        "ablation_surrogates",
        format_table(["surrogate", "rmse_cost_nh", "fit_s", "predict_s"], rows),
    )

    # --- shape assertions -----------------------------------------------------
    exact_rmse = results["exact_gpr"][0]
    assert np.isfinite(exact_rmse) and exact_rmse < float(dataset.cost.max())
    for name, (rmse, fit_s, _) in results.items():
        assert np.isfinite(rmse), name
        # Approximations trade accuracy for speed but must stay in the same
        # regime as the exact model on this small-n dataset.
        assert rmse < 8.0 * exact_rmse + 0.5, name
    # The sparse methods must not be drastically slower than exact at this n
    # (their payoff grows with n; here we just require sanity).
    assert results["sparse_dtc_m60"][1] < 60.0
    assert results["spectral_m100"][1] < 60.0
