"""Perf headline: amortized zero-refit selection vs GP-backed scoring.

The amortized policy replaces the whole GP serving stack — refit,
refactor, cached cross-covariance, ``predict_from_cross`` — with one
batched MLP matmul over a GP-free feature matrix whose per-step update is
O(m·d).  Its selection cost is therefore *independent of the training-set
size*, while every GP backend pays per-``n`` scoring (dense O(n^2 M),
iterative O(n r M), sparse O(m^2 M)) on top of refits this benchmark does
not even charge them for.  Three claims are pinned:

- **selection throughput** (full scale): the full amortized serving path
  (feature assembly + scoring + sampling) sustains >= 20x the *iterative*
  backend's selections/sec at n = 20000 — and the GP numbers are scoring
  only, against a pre-built cross-covariance cache;
- **service throughput**: a :class:`~repro.core.service.CampaignService`
  fleet under the amortized policy commits slices faster than the same
  fleet under RGMA, because amortized slices skip ``gp_fit`` entirely;
- **regret guardrail**: on held-out seeds (disjoint from the teacher's
  training seeds) the amortized policy's final cumulative regret stays
  within ``GUARDRAIL_FACTOR`` x RGMA's (plus an absolute slack for
  near-zero baselines) — the speed is not bought with constraint
  violations.

The scorer is trained *inside* the benchmark (simulate RGMA through the
service on the 600-job dataset, then listwise-CE fit), so the artifact is
self-contained and reproducible.  GP checkpoints beyond the campaign
generator's 1920-unique-config ceiling use a synthetic dataset sampled
from the Table I grid with replacement, priced by the noise-free machine
models plus lognormal response noise.

Protocol per checkpoint mirrors ``test_perf_select.py``: hyperparameters
from one exact fit at n = 600 shared by every GP backend, one untimed
factorization at ``n``, then the scoring pass over a fixed M = 256 pool
timed best-of-``REPEATS`` with ``PASSES`` passes per timing.  Results:
``benchmarks/results/perf_policy.txt`` plus a machine-readable
``BENCH_policy.json`` (schema ``policy_amortized_serving``) at the repo
root.  ``REPRO_BENCH_SCALE=quick`` (default) stops at n = 600; ``full``
adds n = 5000 and n = 20000.
"""

import functools
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core import ActiveLearner, ALConfig, RGMA, random_partition
from repro.core.policies import CandidateView
from repro.core.preprocessing import DesignTransform
from repro.core.service import CampaignService, CampaignSpec
from repro.data.space import TABLE1_SPACE
from repro.gp import GPRegressor, IterativeGPRegressor, SparseGPRegressor
from repro.gp.surrogate import cross_points
from repro.policy import AmortizedPolicy, PolicyContext, load_amortized_policy, train_scorer
from repro.policy.features import FeatureExtractor, machine_log_predictions
from repro.policy.simulate import generate_decisions

#: Candidate-pool size scored per selection pass.
N_CANDIDATES = 256
#: Timed repetitions; best-of damps scheduler noise.
REPEATS = 3
#: Scoring passes per timed repetition (smooths sub-ms passes).
PASSES = 5
#: Training size whose exact fit supplies theta to every GP backend.
FIT_N = 600
#: log10 response noise of the synthetic large-n dataset.
NOISE_DECADES = 0.05

#: Teacher-replay + scorer-fit configuration (runs inside the benchmark).
TRAIN_CAMPAIGNS = 2
TRAIN_ITERATIONS = 12
TRAIN_HIDDEN = 16
TRAIN_EPOCHS = 40

#: Service-throughput fleet (per policy): campaigns x iterations.
SERVICE_CAMPAIGNS = 2
SERVICE_ITERATIONS = 8
SERVICE_STEPS_PER_SLICE = 4

#: Held-out regret comparison: seeds disjoint from the teacher's
#: ``base_seed=2024`` tree, RGMA vs amortized on identical partitions.
HOLDOUT_SEED = 777
REGRET_SEEDS = 3
REGRET_ITERATIONS = 20
#: Amortized final regret must be <= factor * RGMA + slack node-hours.
GUARDRAIL_FACTOR = 1.5
GUARDRAIL_SLACK = 0.05

CHECKPOINTS_BY_SCALE = {"quick": (600,), "full": (600, 5000, 20000)}

BENCH_JSON = Path(__file__).parent.parent / "BENCH_policy.json"


def _scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "quick")


def _synthetic_dataset(n, seed):
    """n grid-sampled jobs priced by the machine models + lognormal noise.

    ``run_campaign`` tops out at the grid's 1920 unique configurations, so
    large-n checkpoints sample Table I rows *with replacement* and price
    them analytically — the response surface the GPs then model is the
    same one the real campaigns draw from.
    """
    from repro.data.dataset import Dataset

    rng = np.random.default_rng(seed)
    grid = np.array(
        [[c.p, c.mx, c.maxlevel, c.r0, c.rhoin] for c in TABLE1_SPACE.grid()]
    )
    X = grid[rng.integers(0, grid.shape[0], size=n)]
    log_cost, log_mem = machine_log_predictions(X)
    cost = 10.0 ** (log_cost + NOISE_DECADES * rng.standard_normal(n))
    mem = 10.0 ** (log_mem + NOISE_DECADES * rng.standard_normal(n))
    wall = cost * 3600.0 / X[:, 0]
    return Dataset(
        X=X, wall=wall, cost=cost, mem=mem, bounds=TABLE1_SPACE.bounds()
    )


def _fit_theta(Xs, y):
    """The shared hyperparameters: one exact fit at the paper's n = 600."""
    gp = GPRegressor(n_restarts=1, rng=np.random.default_rng(1))
    gp.fit(Xs[:FIT_N], y[:FIT_N])
    return gp.kernel_


def _setup_gp(name, kernel, Xs, y):
    """Factorize ``n`` training points under the shared frozen theta."""
    if name == "dense":
        model = GPRegressor(n_restarts=0, use_workspace=False)
    elif name == "iterative":
        model = IterativeGPRegressor(n_restarts=0, use_workspace=False)
    else:
        model = SparseGPRegressor(n_inducing=64, rng=np.random.default_rng(2))
    model.kernel_ = kernel.with_theta(kernel.theta)
    t0 = time.perf_counter()
    model.refactor(Xs, y)
    return model, time.perf_counter() - t0


def _gp_selections_per_sec(model, U):
    """Scoring-only throughput against a pre-built cross covariance."""
    kernel = model.kernel_
    Ks = kernel(U, cross_points(model))
    prior = kernel.diag(U)
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        for _ in range(PASSES):
            _, sd = model.predict_from_cross(Ks, prior, return_std=True)
            int(np.argmax(sd))
        best = min(best, (time.perf_counter() - t0) / PASSES)
    return 1.0 / best


def _amortized_selections_per_sec(policy, dataset, n_train, limit):
    """Full serving path: feature assembly + batched scoring + sampling.

    The extractor sees ``n_train`` training points (the column the GP
    backends scale in); selection work is O(m · n_features) regardless.
    """
    pool = np.arange(N_CANDIDATES, dtype=np.int64)
    train = np.arange(N_CANDIDATES, N_CANDIDATES + n_train, dtype=np.int64)
    scaler = DesignTransform(dataset.bounds)
    t0 = time.perf_counter()
    policy.prepare(
        PolicyContext(
            dataset=dataset,
            scaler=scaler,
            pool_indices=pool,
            train_indices=train,
            memory_limit_MB=limit,
        )
    )
    setup_s = time.perf_counter() - t0
    U = np.asarray(scaler.transform(dataset.X[pool]))
    nan = np.full(N_CANDIDATES, np.nan)
    view = CandidateView(X=U, mu_cost=nan, sigma_cost=nan, mu_mem=nan, sigma_mem=nan)
    best = float("inf")
    for rep in range(REPEATS):
        rng = np.random.default_rng(12345 + rep)
        t0 = time.perf_counter()
        for _ in range(PASSES):
            policy.select(view, rng)
        best = min(best, (time.perf_counter() - t0) / PASSES)
    return 1.0 / best, setup_s


def _train_policy_file(dataset, limit, out_dir):
    """Simulate the RGMA teacher through the service, fit, serialize."""
    log = generate_decisions(
        dataset,
        n_campaigns=TRAIN_CAMPAIGNS,
        iterations=TRAIN_ITERATIONS,
        memory_limit_MB=limit,
    )
    scorer, history = train_scorer(
        log, hidden=TRAIN_HIDDEN, epochs=TRAIN_EPOCHS, seed=0
    )
    path = out_dir / "bench_policy.npz"
    scorer.save(path)
    return path, scorer, {
        "decisions": len(log),
        "final_loss": round(history["loss"][-1], 4),
        "teacher_agreement": round(history["agreement"][-1], 4),
    }


def _service_slices_per_sec(dataset, policy_factory):
    """Wall-clock slice throughput of a small in-memory fleet."""
    svc = CampaignService(
        dataset, store=None, steps_per_slice=SERVICE_STEPS_PER_SLICE
    )
    for i in range(SERVICE_CAMPAIGNS):
        svc.submit(
            CampaignSpec(
                campaign_id=f"bench-{i}",
                policy_factory=policy_factory,
                base_seed=4242,
                traj_index=i,
                n_init=20,
                n_test=30,
                config=ALConfig(max_iterations=SERVICE_ITERATIONS),
            )
        )
    slices = SERVICE_CAMPAIGNS * -(-SERVICE_ITERATIONS // SERVICE_STEPS_PER_SLICE)
    t0 = time.perf_counter()
    svc.run()
    return slices / (time.perf_counter() - t0)


def _final_regret(dataset, make_policy_fn):
    """Mean final cumulative regret over held-out seed-tree positions."""
    regrets = []
    for k in range(REGRET_SEEDS):
        rng = np.random.default_rng([HOLDOUT_SEED, k])
        partition = random_partition(rng, len(dataset), n_init=30, n_test=60)
        learner = ActiveLearner(
            dataset,
            partition,
            policy=make_policy_fn(),
            rng=np.random.default_rng([HOLDOUT_SEED, k, 1]),
            max_iterations=REGRET_ITERATIONS,
        )
        regrets.append(learner.run().total_regret)
    return float(np.mean(regrets))


def test_perf_amortized_serving(report, dataset, memory_limit, tmp_path):
    scale = _scale()
    checkpoints = CHECKPOINTS_BY_SCALE[scale]
    n_max = checkpoints[-1]

    # Offline phase (untimed): teacher replay + scorer fit + serialize.
    policy_file, scorer, training = _train_policy_file(
        dataset, memory_limit, tmp_path
    )

    # Selection throughput on the synthetic large-n response surface.
    syn = _synthetic_dataset(n_max + N_CANDIDATES, seed=5)
    syn_limit = syn.memory_limit()
    Xs_all = syn.scaled_features()
    U = Xs_all[:N_CANDIDATES]
    Xs = Xs_all[N_CANDIDATES:]
    y = np.log10(syn.cost[N_CANDIDATES:])
    kernel = _fit_theta(Xs, y)

    rows = [
        f"{'n_train':>8}  {'dense/s':>9}  {'iterative/s':>11}  "
        f"{'sparse/s':>9}  {'amortized/s':>11}  {'speedup':>8}"
    ]
    checkpoints_json = []
    for n in checkpoints:
        sps = {}
        setup = {}
        for name in ("dense", "iterative", "sparse"):
            model, setup_s = _setup_gp(name, kernel, Xs[:n], y[:n])
            sps[name] = _gp_selections_per_sec(model, U)
            setup[name] = setup_s
        policy = AmortizedPolicy(scorer, memory_limit_MB=syn_limit)
        sps["amortized"], setup["amortized"] = _amortized_selections_per_sec(
            policy, syn, n, syn_limit
        )
        speedup = sps["amortized"] / sps["iterative"]
        rows.append(
            f"{n:>8}  {sps['dense']:>9.1f}  {sps['iterative']:>11.1f}  "
            f"{sps['sparse']:>9.1f}  {sps['amortized']:>11.1f}  "
            f"{speedup:>7.1f}x"
        )
        checkpoints_json.append(
            {
                "n_train": n,
                "dense_sps": round(sps["dense"], 2),
                "iterative_sps": round(sps["iterative"], 2),
                "sparse_sps": round(sps["sparse"], 2),
                "amortized_sps": round(sps["amortized"], 2),
                "dense_setup_s": round(setup["dense"], 3),
                "iterative_setup_s": round(setup["iterative"], 3),
                "sparse_setup_s": round(setup["sparse"], 3),
                "amortized_setup_s": round(setup["amortized"], 3),
                "speedup": round(speedup, 3),
            }
        )

    # Service throughput: amortized slices skip gp_fit entirely.
    rgma_sls = _service_slices_per_sec(
        dataset, functools.partial(RGMA, memory_limit_MB=memory_limit)
    )
    amortized_factory = functools.partial(
        load_amortized_policy, str(policy_file), memory_limit_MB=memory_limit
    )
    amortized_sls = _service_slices_per_sec(dataset, amortized_factory)

    # Held-out regret guardrail on the campaign-generated dataset.
    rgma_regret = _final_regret(
        dataset, lambda: RGMA(memory_limit_MB=memory_limit)
    )
    amortized_regret = _final_regret(dataset, amortized_factory)
    within = amortized_regret <= GUARDRAIL_FACTOR * rgma_regret + GUARDRAIL_SLACK

    rows.append("")
    rows.append(
        f"training: {training['decisions']} teacher decisions, "
        f"agreement {training['teacher_agreement']:.2f}, "
        f"fingerprint {scorer.fingerprint}"
    )
    rows.append(
        f"service : rgma {rgma_sls:.2f} slices/s, "
        f"amortized {amortized_sls:.2f} slices/s "
        f"({amortized_sls / rgma_sls:.1f}x)"
    )
    rows.append(
        f"regret  : rgma {rgma_regret:.3f} nh, amortized "
        f"{amortized_regret:.3f} nh over {REGRET_SEEDS} held-out seeds "
        f"(guardrail {GUARDRAIL_FACTOR}x + {GUARDRAIL_SLACK}: "
        f"{'ok' if within else 'VIOLATED'})"
    )
    report("perf_policy", "\n".join(rows))

    final_speedup = checkpoints_json[-1]["speedup"]
    BENCH_JSON.write_text(
        json.dumps(
            {
                "benchmark": "policy_amortized_serving",
                "host_cores": os.cpu_count(),
                "config": {
                    "n_candidates": N_CANDIDATES,
                    "repeats": REPEATS,
                    "passes": PASSES,
                    "fit_n": FIT_N,
                    "scale": scale,
                    "noise_decades": NOISE_DECADES,
                    "train_campaigns": TRAIN_CAMPAIGNS,
                    "train_iterations": TRAIN_ITERATIONS,
                    "train_hidden": TRAIN_HIDDEN,
                    "train_epochs": TRAIN_EPOCHS,
                    "regret_seeds": REGRET_SEEDS,
                    "regret_iterations": REGRET_ITERATIONS,
                },
                "training": {**training, "fingerprint": scorer.fingerprint},
                "checkpoints": checkpoints_json,
                "service": {
                    "rgma_slices_per_s": round(rgma_sls, 3),
                    "amortized_slices_per_s": round(amortized_sls, 3),
                    "campaigns": SERVICE_CAMPAIGNS,
                    "iterations": SERVICE_ITERATIONS,
                    "steps_per_slice": SERVICE_STEPS_PER_SLICE,
                },
                "regret": {
                    "rgma_final_regret": round(rgma_regret, 4),
                    "amortized_final_regret": round(amortized_regret, 4),
                    "guardrail_factor": GUARDRAIL_FACTOR,
                    "guardrail_slack": GUARDRAIL_SLACK,
                    "within_guardrail": bool(within),
                },
                "speedup": final_speedup,
            },
            indent=2,
        )
        + "\n"
    )

    assert within, (
        f"amortized final regret {amortized_regret:.3f} exceeded "
        f"{GUARDRAIL_FACTOR}x rgma ({rgma_regret:.3f}) + {GUARDRAIL_SLACK}"
    )
    if n_max >= 20000:
        assert final_speedup >= 20.0, (
            f"amortized serving must be >= 20x iterative scoring at "
            f"n={n_max} (got {final_speedup:.2f}x)"
        )
