"""Fig. 1: shock-bubble visualization at increasing refinement levels.

The paper's figure shows that enabling additional refinement levels reveals
finer features while computational demand grows unpredictably.  This
benchmark runs the *real* AMR solver at maxlevel 2..4, renders an ASCII
density view, and reports the work growth per extra level.
"""

import numpy as np

from repro.amr import AmrConfig, AmrDriver
from repro.analysis import format_table
from repro.solver import ShockBubbleProblem

T_END = 0.06
LEVELS = (2, 3, 4)


def ascii_density(driver: AmrDriver, nx: int = 72, ny: int = 24) -> str:
    img = driver.sample_uniform(nx, ny, field=0)
    lo, hi = img.min(), img.max()
    ramp = " .:-=+*#%@"
    norm = (img - lo) / (hi - lo + 1e-300)
    rows = []
    for j in reversed(range(ny)):
        rows.append("".join(ramp[int(v * (len(ramp) - 1))] for v in norm[:, j]))
    return "\n".join(rows)


def run_level(maxlevel: int) -> tuple[AmrDriver, dict]:
    prob = ShockBubbleProblem(r0=0.3, rhoin=0.1, mach=2.0)
    cfg = AmrConfig(mx=8, min_level=1, max_level=maxlevel, refine_threshold=0.05)
    driver = AmrDriver(prob, cfg)
    stats = driver.run(t_end=T_END)
    return driver, stats.summary()


def test_fig1_refinement_levels(benchmark, report):
    drivers = {}
    summaries = {}

    def run_all():
        for lv in LEVELS:
            drivers[lv], summaries[lv] = run_level(lv)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for lv in LEVELS:
        s = summaries[lv]
        rows.append(
            [
                lv,
                int(s["num_steps"]),
                int(s["peak_patches"]),
                int(s["total_cells_advanced"]),
                s["peak_bytes"] / 1e6,
            ]
        )
    table = format_table(
        ["maxlevel", "steps", "peak_patches", "cell_updates", "peak_MB"], rows
    )
    art = ascii_density(drivers[max(LEVELS)])
    report("fig1_amr_refinement", table + "\n\ndensity (maxlevel=4):\n" + art)

    # --- shape assertions ---------------------------------------------------
    # Work grows superlinearly with each extra level (the paper's point
    # about unpredictable growth in computational demand).
    cells = [summaries[lv]["total_cells_advanced"] for lv in LEVELS]
    assert cells[1] > 2.0 * cells[0]
    assert cells[2] > 2.0 * cells[1]
    # Finer levels resolve finer features: more patches at the peak.
    patches = [summaries[lv]["peak_patches"] for lv in LEVELS]
    assert patches[0] < patches[1] < patches[2]
    # All runs remain physical and conservative enough to finish.
    for lv in LEVELS:
        m, e = drivers[lv].conserved_totals()
        assert np.isfinite(m) and np.isfinite(e) and m > 0 and e > 0
