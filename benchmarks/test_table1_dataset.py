"""Table I: the AMR shock-bubble dataset with 600 selected samples.

Regenerates the campaign and prints min/median/mean/max for every feature
and response side by side with the paper's values.  The benchmark measures
the cost of the full campaign generation (1920 work estimates + 600
simulated jobs).
"""

import numpy as np

from repro.data import render_table1, run_campaign, summarize_dataset
from repro.data.summary import TABLE1_PAPER


def test_table1_regeneration(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_campaign(np.random.default_rng(42)), rounds=3, iterations=1
    )
    ds = result.dataset
    report("table1_dataset", render_table1(ds, compare_paper=True))

    # --- shape assertions against the paper -------------------------------
    assert len(ds) == 600
    assert ds.num_unique_configs() == 525

    s = summarize_dataset(ds)
    # Feature marginals are exact (same sampled grid as Table I).
    for feat in ("p", "mx", "maxlevel", "r0", "rhoin"):
        assert s[feat].minimum == TABLE1_PAPER[feat][0]
        assert s[feat].maximum == TABLE1_PAPER[feat][3]

    # Responses: same order of magnitude at every summary point.
    for resp in ("wall_seconds", "cost_node_hours", "max_rss_MB"):
        mine = s[resp]
        paper_min, paper_med, paper_mean, paper_max = TABLE1_PAPER[resp]
        for got, want in [
            (mine.minimum, paper_min),
            (mine.median, paper_med),
            (mine.mean, paper_mean),
            (mine.maximum, paper_max),
        ]:
            assert want / 12 < got < want * 12, (resp, got, want)

    # Cost dynamic range: paper reports 5.4e3.
    assert 5e2 < ds.cost_dynamic_range() < 5e4
