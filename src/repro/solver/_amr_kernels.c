/* Compiled per-shard AMR kernels.
 *
 * These routines are the execution engine of the sharded AMR workers
 * (repro.amr.parallel): each worker advances its contiguous slice of the
 * shape-stacked hierarchy with a fused finite-volume sweep, computes its
 * per-patch CFL wave speeds, and applies the index-compiled parts of the
 * ghost-exchange program.
 *
 * Bit-identity contract: every arithmetic expression below reproduces the
 * numpy reference (repro.solver.fv._sweep_stack and friends) operation for
 * operation — same association order, same floors, same guard values — and
 * the build disables FP contraction (-ffp-contract=off), so results are
 * bit-for-bit equal to the serial batched path.  tests/solver/test_kernels.py
 * enforces this for every riemann x limiter combination.
 *
 * numpy semantics replicated explicitly:
 *   np.maximum(a, b) -> a >= b ? a : b      (propagates a's NaN like numpy
 *   np.minimum(a, b) -> a <= b ? a : b       only through the a slot; the
 *   np.sign(x)       -> x > 0 ? 1 : (x < 0 ? -1 : x)   driver checks states)
 */

#include <math.h>
#include <stdint.h>
#include <stdlib.h>

#define DENSITY_FLOOR 1e-12
#define PRESSURE_FLOOR 1e-12

static inline double npmax(double a, double b) { return a >= b ? a : b; }
static inline double npmin(double a, double b) { return a <= b ? a : b; }
static inline double npabs(double a) { return fabs(a); }
static inline double npsign(double a) { return a > 0.0 ? 1.0 : (a < 0.0 ? -1.0 : a); }

/* limiter ids: 0=minmod 1=superbee 2=mc 3=van_leer (lim < 0 => first order) */
static inline double limit_one(int lim, double a, double b) {
    switch (lim) {
    case 0:
        return a * b <= 0.0 ? 0.0 : (npabs(a) < npabs(b) ? a : b);
    case 1: {
        double ta = 2.0 * a, tb = 2.0 * b;
        double s1 = ta * b <= 0.0 ? 0.0 : (npabs(ta) < npabs(b) ? ta : b);
        double s2 = a * tb <= 0.0 ? 0.0 : (npabs(a) < npabs(tb) ? a : tb);
        double mag = npmax(npabs(s1), npabs(s2));
        return a * b <= 0.0 ? 0.0 : npsign(a) * mag;
    }
    case 2: {
        double central = 0.5 * (a + b);
        double bound = 2.0 * npmin(npabs(a), npabs(b));
        double mag = npmin(npabs(central), bound);
        return a * b <= 0.0 ? 0.0 : npsign(central) * mag;
    }
    default: {
        double prod = a * b;
        double denom = a + b;
        double safe = denom == 0.0 ? 1.0 : denom;
        return prod <= 0.0 ? 0.0 : 2.0 * prod / safe;
    }
    }
}

/* riemann ids: 0=rusanov 1=hll 2=hllc.  States arrive normal-rotated:
 * slot 1 is the normal momentum, slot 2 tangential (as in _sweep_stack). */
static inline void flux_one(int rie, double gamma,
                            double ql0, double ql1, double ql2, double ql3,
                            double qr0, double qr1, double qr2, double qr3,
                            double *f0, double *f1, double *f2, double *f3) {
    double rl = npmax(ql0, DENSITY_FLOOR);
    double ul = ql1 / rl, vl = ql2 / rl;
    double pl = (gamma - 1.0) * (ql3 - (0.5 * rl) * (ul * ul + vl * vl));
    pl = npmax(pl, PRESSURE_FLOOR);
    double rr = npmax(qr0, DENSITY_FLOOR);
    double ur = qr1 / rr, vr = qr2 / rr;
    double pr = (gamma - 1.0) * (qr3 - (0.5 * rr) * (ur * ur + vr * vr));
    pr = npmax(pr, PRESSURE_FLOOR);

    double cl = sqrt(gamma * pl / rl);
    double cr = sqrt(gamma * pr / rr);

    double fl0 = rl * ul, fl1 = rl * ul * ul + pl, fl2 = rl * ul * vl,
           fl3 = (ql3 + pl) * ul;
    double fr0 = rr * ur, fr1 = rr * ur * ur + pr, fr2 = rr * ur * vr,
           fr3 = (qr3 + pr) * ur;

    if (rie == 0) {
        double smax = npmax(npabs(ul) + cl, npabs(ur) + cr);
        *f0 = 0.5 * (fl0 + fr0) - 0.5 * smax * (qr0 - ql0);
        *f1 = 0.5 * (fl1 + fr1) - 0.5 * smax * (qr1 - ql1);
        *f2 = 0.5 * (fl2 + fr2) - 0.5 * smax * (qr2 - ql2);
        *f3 = 0.5 * (fl3 + fr3) - 0.5 * smax * (qr3 - ql3);
        return;
    }
    double sl = npmin(ul - cl, ur - cr);
    double sr = npmax(ul + cl, ur + cr);
    if (rie == 1) {
        double denom = sr - sl == 0.0 ? 1.0 : sr - sl;
        double fs0 = (sr * fl0 - sl * fr0 + sl * sr * (qr0 - ql0)) / denom;
        double fs1 = (sr * fl1 - sl * fr1 + sl * sr * (qr1 - ql1)) / denom;
        double fs2 = (sr * fl2 - sl * fr2 + sl * sr * (qr2 - ql2)) / denom;
        double fs3 = (sr * fl3 - sl * fr3 + sl * sr * (qr3 - ql3)) / denom;
        *f0 = sl >= 0.0 ? fl0 : (sr <= 0.0 ? fr0 : fs0);
        *f1 = sl >= 0.0 ? fl1 : (sr <= 0.0 ? fr1 : fs1);
        *f2 = sl >= 0.0 ? fl2 : (sr <= 0.0 ? fr2 : fs2);
        *f3 = sl >= 0.0 ? fl3 : (sr <= 0.0 ? fr3 : fs3);
        return;
    }
    double num = pr - pl + rl * ul * (sl - ul) - rr * ur * (sr - ur);
    double den = rl * (sl - ul) - rr * (sr - ur);
    den = den == 0.0 ? 1e-300 : den;
    double sm = num / den;

    double coefl = rl * (sl - ul) / (sl - sm == 0.0 ? 1e-300 : sl - sm);
    double el = ql3 / rl +
        (sm - ul) * (sm + pl / (rl * (sl - ul == 0.0 ? 1e-300 : sl - ul)));
    double qsl0 = coefl, qsl1 = coefl * sm, qsl2 = coefl * vl, qsl3 = coefl * el;

    double coefr = rr * (sr - ur) / (sr - sm == 0.0 ? 1e-300 : sr - sm);
    double er = qr3 / rr +
        (sm - ur) * (sm + pr / (rr * (sr - ur == 0.0 ? 1e-300 : sr - ur)));
    double qsr0 = coefr, qsr1 = coefr * sm, qsr2 = coefr * vr, qsr3 = coefr * er;

    double fsl0 = fl0 + sl * (qsl0 - ql0), fsl1 = fl1 + sl * (qsl1 - ql1),
           fsl2 = fl2 + sl * (qsl2 - ql2), fsl3 = fl3 + sl * (qsl3 - ql3);
    double fsr0 = fr0 + sr * (qsr0 - qr0), fsr1 = fr1 + sr * (qsr1 - qr1),
           fsr2 = fr2 + sr * (qsr2 - qr2), fsr3 = fr3 + sr * (qsr3 - qr3);

    *f0 = sl >= 0.0 ? fl0 : (sm >= 0.0 ? fsl0 : (sr >= 0.0 ? fsr0 : fr0));
    *f1 = sl >= 0.0 ? fl1 : (sm >= 0.0 ? fsl1 : (sr >= 0.0 ? fsr1 : fr1));
    *f2 = sl >= 0.0 ? fl2 : (sm >= 0.0 ? fsl2 : (sr >= 0.0 ? fsr2 : fr2));
    *f3 = sl >= 0.0 ? fl3 : (sm >= 0.0 ? fsl3 : (sr >= 0.0 ? fsr3 : fr3));
}

/* One fused dimensional sweep over P stacked patches.  The primitive
 * scratch W spans normal cells lo-1..hi+1 so the slope and reconstruction
 * stages are branch-free over their index ranges; one flux row is built per
 * interface and immediately applied (fluxes live only in the F scratch). */
static inline void sweep_body(double *restrict q, long P, long n, long ng,
                              const double *restrict dt_d, int axis, int rie,
                              int lim, double gamma,
                              double *restrict w, double *restrict dw,
                              double *restrict f) {
    long mx = n - 2 * ng;
    long lo = ng - 1;
    long ncw = mx + 4;  /* cells lo-1 .. hi+1 */
    long nf = mx + 1;
    long tan = mx;
#define W(c, i, j) w[((c) * ncw + (i)) * tan + (j)]
#define DW(c, i, j) dw[((c) * ncw + (i)) * tan + (j)]
#define F(c, k, j) f[((c) * nf + (k)) * tan + (j)]
    long imn = axis == 0 ? 1 : 2;
    long imt = axis == 0 ? 2 : 1;
    long comp[4];
    comp[0] = 0; comp[1] = imn; comp[2] = imt; comp[3] = 3;
    for (long p = 0; p < P; p++) {
        double *qp = q + p * 4 * n * n;
        double fac = dt_d[p];
        /* gather primitives (or raw conserved states for first order) */
        for (long i = 0; i < ncw; i++) {
            long ni = lo - 1 + i;
            const double *q0r, *q1r, *q2r, *q3r;
            long stride;
            if (axis == 0) {
                q0r = qp + 0 * n * n + ni * n + ng;
                q1r = qp + imn * n * n + ni * n + ng;
                q2r = qp + imt * n * n + ni * n + ng;
                q3r = qp + 3 * n * n + ni * n + ng;
                stride = 1;
            } else {
                q0r = qp + 0 * n * n + ng * n + ni;
                q1r = qp + imn * n * n + ng * n + ni;
                q2r = qp + imt * n * n + ng * n + ni;
                q3r = qp + 3 * n * n + ng * n + ni;
                stride = n;
            }
            if (lim < 0) {
                for (long j = 0; j < tan; j++) {
                    W(0, i, j) = q0r[j * stride];
                    W(1, i, j) = q1r[j * stride];
                    W(2, i, j) = q2r[j * stride];
                    W(3, i, j) = q3r[j * stride];
                }
            } else {
                for (long j = 0; j < tan; j++) {
                    double q0 = q0r[j * stride], q1 = q1r[j * stride];
                    double q2 = q2r[j * stride], q3 = q3r[j * stride];
                    double rho = npmax(q0, DENSITY_FLOOR);
                    double u = q1 / rho, v = q2 / rho;
                    double pp = (gamma - 1.0) *
                        (q3 - (0.5 * rho) * (u * u + v * v));
                    W(0, i, j) = rho;
                    W(1, i, j) = u;
                    W(2, i, j) = v;
                    W(3, i, j) = npmax(pp, PRESSURE_FLOOR);
                }
            }
        }
        if (lim >= 0) {
            /* limited slopes at cells lo..hi => W rows 1..ncw-2 */
            for (long c = 0; c < 4; c++) {
                for (long i = 1; i < ncw - 1; i++) {
                    const double *wm = &W(c, i - 1, 0);
                    const double *wc = &W(c, i, 0);
                    const double *wp = &W(c, i + 1, 0);
                    double *out = &DW(c, i, 0);
                    for (long j = 0; j < tan; j++) {
                        double a = wc[j] - wm[j];
                        double b = wp[j] - wc[j];
                        out[j] = limit_one(lim, a, b);
                    }
                }
            }
        }
        for (long k = 0; k < nf; k++) {
            long il = k + 1, ir = k + 2; /* W rows of cells lo+k, lo+k+1 */
            for (long j = 0; j < tan; j++) {
                double ql0, ql1, ql2, ql3, qr0, qr1, qr2, qr3;
                if (lim < 0) {
                    ql0 = W(0, il, j); ql1 = W(1, il, j);
                    ql2 = W(2, il, j); ql3 = W(3, il, j);
                    qr0 = W(0, ir, j); qr1 = W(1, ir, j);
                    qr2 = W(2, ir, j); qr3 = W(3, ir, j);
                } else {
                    double wl0 = W(0, il, j) + 0.5 * DW(0, il, j);
                    double wl1 = W(1, il, j) + 0.5 * DW(1, il, j);
                    double wl2 = W(2, il, j) + 0.5 * DW(2, il, j);
                    double wl3 = W(3, il, j) + 0.5 * DW(3, il, j);
                    double wr0 = W(0, ir, j) - 0.5 * DW(0, ir, j);
                    double wr1 = W(1, ir, j) - 0.5 * DW(1, ir, j);
                    double wr2 = W(2, ir, j) - 0.5 * DW(2, ir, j);
                    double wr3 = W(3, ir, j) - 0.5 * DW(3, ir, j);
                    ql0 = wl0; ql1 = wl0 * wl1; ql2 = wl0 * wl2;
                    ql3 = wl3 / (gamma - 1.0) +
                        (0.5 * wl0) * (wl1 * wl1 + wl2 * wl2);
                    qr0 = wr0; qr1 = wr0 * wr1; qr2 = wr0 * wr2;
                    qr3 = wr3 / (gamma - 1.0) +
                        (0.5 * wr0) * (wr1 * wr1 + wr2 * wr2);
                }
                flux_one(rie, gamma, ql0, ql1, ql2, ql3, qr0, qr1, qr2, qr3,
                         &F(0, k, j), &F(1, k, j), &F(2, k, j), &F(3, k, j));
            }
        }
        for (long m = 0; m < mx; m++) {
            for (long c = 0; c < 4; c++) {
                const double *fhi = &F(c, m + 1, 0);
                const double *flo = &F(c, m, 0);
                double *row;
                long stride;
                if (axis == 0) {
                    row = qp + comp[c] * n * n + (ng + m) * n + ng;
                    stride = 1;
                } else {
                    row = qp + comp[c] * n * n + ng * n + (ng + m);
                    stride = n;
                }
                for (long j = 0; j < tan; j++)
                    row[j * stride] -= fac * (fhi[j] - flo[j]);
            }
        }
    }
#undef W
#undef DW
#undef F
}

/* Per-combination specializations let the compiler constant-fold the
 * riemann/limiter dispatch out of the inner loops; anything else falls back
 * to the generic body. */
#define SPECIALIZE(name, RIE, LIM)                                          \
    static void name(double *restrict q, long P, long n, long ng,           \
                     const double *restrict dt_d, int axis, double gamma,   \
                     double *restrict w, double *restrict dw,               \
                     double *restrict f) {                                  \
        sweep_body(q, P, n, ng, dt_d, axis, (RIE), (LIM), gamma, w, dw, f); \
    }

SPECIALIZE(sweep_hllc_mc, 2, 2)
SPECIALIZE(sweep_hllc_minmod, 2, 0)
SPECIALIZE(sweep_hll_mc, 1, 2)
SPECIALIZE(sweep_rusanov_mc, 0, 2)

void fused_sweep(double *restrict q, long P, long n, long ng,
                 const double *restrict dt_d, int axis, int rie, int lim,
                 double gamma) {
    long mx = n - 2 * ng;
    long ncw = mx + 4, nf = mx + 1, tan = mx;
    double *w = malloc(sizeof(double) * 4 * ncw * tan);
    double *dw = malloc(sizeof(double) * 4 * ncw * tan);
    double *f = malloc(sizeof(double) * 4 * nf * tan);
    if (!w || !dw || !f) { free(w); free(dw); free(f); return; }
    if (rie == 2 && lim == 2)
        sweep_hllc_mc(q, P, n, ng, dt_d, axis, gamma, w, dw, f);
    else if (rie == 2 && lim == 0)
        sweep_hllc_minmod(q, P, n, ng, dt_d, axis, gamma, w, dw, f);
    else if (rie == 1 && lim == 2)
        sweep_hll_mc(q, P, n, ng, dt_d, axis, gamma, w, dw, f);
    else if (rie == 0 && lim == 2)
        sweep_rusanov_mc(q, P, n, ng, dt_d, axis, gamma, w, dw, f);
    else
        sweep_body(q, P, n, ng, dt_d, axis, rie, lim, gamma, w, dw, f);
    free(w); free(dw); free(f);
}

/* Per-patch CFL wave-speed maxima over patch interiors: sx[p] is the max
 * of |u|+c, sy[p] the max of |v|+c.  Per-cell arithmetic mirrors
 * primitive_from_conserved; the max reductions are order-insensitive, so
 * the values match PatchStack.compute_dt's bit for bit. */
void wave_speeds(const double *restrict q, long P, long n, long ng,
                 double gamma, double *restrict sx, double *restrict sy) {
    long mx = n - 2 * ng;
    for (long p = 0; p < P; p++) {
        const double *qp = q + p * 4 * n * n;
        double mx_sx = -HUGE_VAL, mx_sy = -HUGE_VAL;
        for (long i = 0; i < mx; i++) {
            const double *q0r = qp + 0 * n * n + (ng + i) * n + ng;
            const double *q1r = qp + 1 * n * n + (ng + i) * n + ng;
            const double *q2r = qp + 2 * n * n + (ng + i) * n + ng;
            const double *q3r = qp + 3 * n * n + (ng + i) * n + ng;
            for (long j = 0; j < mx; j++) {
                double rho = npmax(q0r[j], DENSITY_FLOOR);
                double u = q1r[j] / rho, v = q2r[j] / rho;
                double pp = (gamma - 1.0) *
                    (q3r[j] - (0.5 * rho) * (u * u + v * v));
                pp = npmax(pp, PRESSURE_FLOOR);
                double c = sqrt(gamma * pp / rho);
                double cx = npabs(u) + c, cy = npabs(v) + c;
                if (cx > mx_sx) mx_sx = cx;
                if (cy > mx_sy) mx_sy = cy;
            }
        }
        sx[p] = mx_sx;
        sy[p] = mx_sy;
    }
}

/* Index-compiled ghost traffic: flat[dst[k]] = flat[src[k]] (pure copies)
 * or the same with a sign flip (reflecting-wall momentum rows).  scale is
 * restricted to +/-1 so the copy path stays a bit-exact move. */
void copy_indexed(double *restrict flat, const int32_t *restrict dst,
                  const int32_t *restrict src, long K, double scale) {
    if (scale == 1.0) {
        for (long k = 0; k < K; k++) flat[dst[k]] = flat[src[k]];
    } else {
        for (long k = 0; k < K; k++) flat[dst[k]] = flat[src[k]] * scale;
    }
}

/* Batched minmod-limited prolongation of R (nx, ny) slabs to (2nx, 2ny),
 * replicating repro.amr.transfer.prolong_patch: slopes are zero at slab
 * borders and each coarse cell emits c + fx*sx + fy*sy at the four
 * sub-cell centers (fx, fy in {-0.25, +0.25}). */
void prolong_blocks(const double *restrict src, long R, long nx, long ny,
                    double *restrict dst) {
    for (long r = 0; r < R; r++) {
        const double *c = src + r * nx * ny;
        double *f = dst + r * 4 * nx * ny;
        long fny = 2 * ny;
        for (long i = 0; i < nx; i++) {
            for (long j = 0; j < ny; j++) {
                double cc = c[i * ny + j];
                double sx = 0.0, sy = 0.0;
                if (i > 0 && i < nx - 1) {
                    double a = cc - c[(i - 1) * ny + j];
                    double b = c[(i + 1) * ny + j] - cc;
                    sx = a * b <= 0.0 ? 0.0 : (npabs(a) < npabs(b) ? a : b);
                }
                if (j > 0 && j < ny - 1) {
                    double a = cc - c[i * ny + j - 1];
                    double b = c[i * ny + j + 1] - cc;
                    sy = a * b <= 0.0 ? 0.0 : (npabs(a) < npabs(b) ? a : b);
                }
                double qx = 0.25 * sx, qy = 0.25 * sy;
                f[(2 * i) * fny + 2 * j] = (cc + -qx) + -qy;
                f[(2 * i) * fny + 2 * j + 1] = (cc + -qx) + qy;
                f[(2 * i + 1) * fny + 2 * j] = (cc + qx) + -qy;
                f[(2 * i + 1) * fny + 2 * j + 1] = (cc + qx) + qy;
            }
        }
    }
}

/* Batched 2x2 area restriction of R (nx, ny) slabs to (nx/2, ny/2),
 * replicating numpy's view.mean(axis=(-3, -1)) pairwise order:
 * ((a00 + a01) + (a10 + a11)) / 4. */
void restrict_blocks(const double *restrict src, long R, long nx, long ny,
                     double *restrict dst) {
    long hx = nx / 2, hy = ny / 2;
    for (long r = 0; r < R; r++) {
        const double *f = src + r * nx * ny;
        double *c = dst + r * hx * hy;
        for (long i = 0; i < hx; i++) {
            const double *r0 = f + (2 * i) * ny;
            const double *r1 = f + (2 * i + 1) * ny;
            for (long j = 0; j < hy; j++) {
                c[i * hy + j] =
                    ((r0[2 * j] + r0[2 * j + 1]) + (r1[2 * j] + r1[2 * j + 1]))
                    / 4.0;
            }
        }
    }
}

/* Gather flat[idx[k]] into out[k] (normalized strip staging buffers). */
void gather_indexed(const double *restrict flat, const int32_t *restrict idx,
                    double *restrict out, long K) {
    for (long k = 0; k < K; k++) out[k] = flat[idx[k]];
}

/* Scatter vals[k] to flat[idx[k]] (writing prolonged/restricted strips). */
void scatter_indexed(double *restrict flat, const int32_t *restrict idx,
                     const double *restrict vals, long K) {
    for (long k = 0; k < K; k++) flat[idx[k]] = vals[k];
}
