"""Ghost-cell boundary conditions for uniform ghosted patches.

Three physical conditions cover the shock–bubble setup: ``outflow``
(zero-order extrapolation), ``reflect`` (solid wall: mirror cells, negate
the normal momentum), and ``periodic``.  Conditions are specified per side
in the order (left, right, bottom, top), matching the face convention of
:mod:`repro.mesh`.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.solver.state import IMX, IMY


class BoundaryCondition(str, Enum):
    """Physical boundary condition applied at one side of the domain."""

    OUTFLOW = "outflow"
    REFLECT = "reflect"
    PERIODIC = "periodic"


def _as_bc(bc) -> BoundaryCondition:
    return bc if isinstance(bc, BoundaryCondition) else BoundaryCondition(bc)


def fill_ghosts(
    q: np.ndarray,
    ng: int,
    bcs: tuple = ("outflow", "outflow", "outflow", "outflow"),
) -> None:
    """Fill all ghost layers of ``q`` in place.

    Parameters
    ----------
    q : ndarray, shape (4, nx + 2*ng, ny + 2*ng)
    ng : int
        Ghost width.
    bcs : 4-tuple of BoundaryCondition or str
        Conditions for the (left, right, bottom, top) sides.  Periodic
        conditions must be specified on both opposing sides.
    """
    left, right, bottom, top = (_as_bc(b) for b in bcs)
    if (left == BoundaryCondition.PERIODIC) != (right == BoundaryCondition.PERIODIC):
        raise ValueError("periodic BC must pair left with right")
    if (bottom == BoundaryCondition.PERIODIC) != (top == BoundaryCondition.PERIODIC):
        raise ValueError("periodic BC must pair bottom with top")

    # --- x direction -----------------------------------------------------
    if left == BoundaryCondition.PERIODIC:
        q[:, :ng, :] = q[:, -2 * ng : -ng, :]
        q[:, -ng:, :] = q[:, ng : 2 * ng, :]
    else:
        _fill_side_x(q, ng, left, low=True)
        _fill_side_x(q, ng, right, low=False)

    # --- y direction -----------------------------------------------------
    if bottom == BoundaryCondition.PERIODIC:
        q[:, :, :ng] = q[:, :, -2 * ng : -ng]
        q[:, :, -ng:] = q[:, :, ng : 2 * ng]
    else:
        _fill_side_y(q, ng, bottom, low=True)
        _fill_side_y(q, ng, top, low=False)


def _fill_side_x(q: np.ndarray, ng: int, bc: BoundaryCondition, low: bool) -> None:
    if bc == BoundaryCondition.OUTFLOW:
        if low:
            q[:, :ng, :] = q[:, ng : ng + 1, :]
        else:
            q[:, -ng:, :] = q[:, -ng - 1 : -ng, :]
    elif bc == BoundaryCondition.REFLECT:
        if low:
            mirror = q[:, ng : 2 * ng, :][:, ::-1, :]
            q[:, :ng, :] = mirror
            q[IMX, :ng, :] *= -1.0
        else:
            mirror = q[:, -2 * ng : -ng, :][:, ::-1, :]
            q[:, -ng:, :] = mirror
            q[IMX, -ng:, :] *= -1.0
    else:  # pragma: no cover - periodic handled by caller
        raise AssertionError


def _fill_side_y(q: np.ndarray, ng: int, bc: BoundaryCondition, low: bool) -> None:
    if bc == BoundaryCondition.OUTFLOW:
        if low:
            q[:, :, :ng] = q[:, :, ng : ng + 1]
        else:
            q[:, :, -ng:] = q[:, :, -ng - 1 : -ng]
    elif bc == BoundaryCondition.REFLECT:
        if low:
            mirror = q[:, :, ng : 2 * ng][:, :, ::-1]
            q[:, :, :ng] = mirror
            q[IMY, :, :ng] *= -1.0
        else:
            mirror = q[:, :, -2 * ng : -ng][:, :, ::-1]
            q[:, :, -ng:] = mirror
            q[IMY, :, -ng:] *= -1.0
    else:  # pragma: no cover
        raise AssertionError
