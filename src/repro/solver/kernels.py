"""Runtime-compiled C kernels for the sharded AMR execution engine.

The shard workers of :mod:`repro.amr.parallel` advance their slice of the
shape-stacked hierarchy with the fused sweep in ``_amr_kernels.c``.  This
module owns the build-and-load lifecycle:

- **Build cache** — the shared library is compiled once per source hash
  into a per-user cache directory (override with ``REPRO_KERNEL_CACHE``)
  and reused across processes and sessions; concurrent builders race
  benignly through an atomic rename.
- **Graceful degradation** — if no C compiler is available (or the build
  fails for any reason) :func:`available` returns ``False`` and callers
  fall back to the numpy reference path; nothing in the repo *requires*
  the compiled kernels.
- **Bit-identity** — the C routines replicate the numpy expression trees
  of :func:`repro.solver.fv._sweep_stack` operation for operation and are
  built with ``-ffp-contract=off`` (no FMA contraction), so their results
  are bit-for-bit equal to the reference; ``tests/solver/test_kernels.py``
  pins this for every riemann x limiter combination.

Workers in spawned processes call :func:`load` independently; they hit the
same cache file, so the compile cost is paid once per machine, not once
per process.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from pathlib import Path

import numpy as np

#: Enum values shared with ``_amr_kernels.c``.
RIEMANN_IDS = {"rusanov": 0, "hll": 1, "hllc": 2}
LIMITER_IDS = {"minmod": 0, "superbee": 1, "mc": 2, "vanleer": 3, "none": -1}

_SOURCE = Path(__file__).with_name("_amr_kernels.c")

#: ``-ffp-contract=off`` is load-bearing: contraction to FMA would change
#: rounding and break bit-identity with the numpy reference.
_CFLAGS = ("-O3", "-march=native", "-ffp-contract=off", "-fno-math-errno",
           "-fPIC", "-shared")

_lib: ctypes.CDLL | None = None
_load_failed: str | None = None


def _cache_dir() -> Path:
    env = os.environ.get("REPRO_KERNEL_CACHE")
    if env:
        return Path(env)
    uid = getattr(os, "getuid", lambda: 0)()
    return Path(tempfile.gettempdir()) / f"repro-kernels-{uid}"


def _lib_path(source: str) -> Path:
    digest = hashlib.sha256(
        (source + "\0" + " ".join(_CFLAGS)).encode()
    ).hexdigest()[:16]
    return _cache_dir() / f"amr_kernels_{digest}.so"


def _build(source: str, out: Path) -> None:
    out.parent.mkdir(parents=True, exist_ok=True)
    tmp = out.with_suffix(f".{os.getpid()}.tmp")
    cmd = ["gcc", *_CFLAGS, "-o", str(tmp), str(_SOURCE)]
    try:
        subprocess.run(
            cmd, check=True, capture_output=True, text=True, timeout=120
        )
        os.replace(tmp, out)  # atomic: concurrent builders race benignly
    finally:
        if tmp.exists():
            tmp.unlink(missing_ok=True)


def _bind(lib: ctypes.CDLL) -> ctypes.CDLL:
    dp = ctypes.POINTER(ctypes.c_double)
    ip = ctypes.POINTER(ctypes.c_int32)
    lib.fused_sweep.argtypes = [
        dp, ctypes.c_long, ctypes.c_long, ctypes.c_long, dp,
        ctypes.c_int, ctypes.c_int, ctypes.c_int, ctypes.c_double,
    ]
    lib.fused_sweep.restype = None
    lib.wave_speeds.argtypes = [
        dp, ctypes.c_long, ctypes.c_long, ctypes.c_long, ctypes.c_double,
        dp, dp,
    ]
    lib.wave_speeds.restype = None
    lib.copy_indexed.argtypes = [dp, ip, ip, ctypes.c_long, ctypes.c_double]
    lib.copy_indexed.restype = None
    lib.prolong_blocks.argtypes = [
        dp, ctypes.c_long, ctypes.c_long, ctypes.c_long, dp
    ]
    lib.prolong_blocks.restype = None
    lib.restrict_blocks.argtypes = [
        dp, ctypes.c_long, ctypes.c_long, ctypes.c_long, dp
    ]
    lib.restrict_blocks.restype = None
    lib.gather_indexed.argtypes = [dp, ip, dp, ctypes.c_long]
    lib.gather_indexed.restype = None
    lib.scatter_indexed.argtypes = [dp, ip, dp, ctypes.c_long]
    lib.scatter_indexed.restype = None
    return lib


def load() -> ctypes.CDLL | None:
    """The bound kernel library, building it on first use; None on failure."""
    global _lib, _load_failed
    if _lib is not None:
        return _lib
    if _load_failed is not None:
        return None
    try:
        source = _SOURCE.read_text()
        path = _lib_path(source)
        if not path.exists():
            _build(source, path)
        _lib = _bind(ctypes.CDLL(str(path)))
        return _lib
    except Exception as exc:  # noqa: BLE001 - any failure means "no kernels"
        _load_failed = repr(exc)
        return None


def available() -> bool:
    """True iff the compiled kernels can be (or already were) loaded."""
    return load() is not None


def load_error() -> str | None:
    """Why :func:`load` failed, for diagnostics; None if it didn't."""
    load()
    return _load_failed


def _as_double_ptr(a: np.ndarray):
    return a.ctypes.data_as(ctypes.POINTER(ctypes.c_double))


def _as_int32_ptr(a: np.ndarray):
    return a.ctypes.data_as(ctypes.POINTER(ctypes.c_int32))


def fused_sweep(
    q: np.ndarray,
    dt_dx: np.ndarray,
    ng: int,
    axis: int,
    riemann: str,
    limiter: str,
    gamma: float,
) -> None:
    """In-place fused dimensional sweep over a ``(P, 4, n, n)`` sub-stack.

    ``q`` must be C-contiguous float64 (a contiguous row slice of a
    :class:`~repro.amr.batch.PatchStack` qualifies); ``dt_dx`` holds the
    per-patch ``dt / dx`` factors.  ``axis`` 0 sweeps x, 1 sweeps y.
    """
    lib = load()
    if lib is None:
        raise RuntimeError(f"compiled kernels unavailable: {_load_failed}")
    if not (q.flags.c_contiguous and q.dtype == np.float64):
        raise ValueError("q must be C-contiguous float64")
    dtd = np.ascontiguousarray(dt_dx, dtype=np.float64)
    P, _, n, _ = q.shape
    lib.fused_sweep(
        _as_double_ptr(q), P, n, ng, _as_double_ptr(dtd),
        int(axis), RIEMANN_IDS[riemann], LIMITER_IDS[limiter], float(gamma),
    )


def wave_speeds(
    q: np.ndarray, ng: int, gamma: float, sx: np.ndarray, sy: np.ndarray
) -> None:
    """Per-patch interior maxima of ``|u|+c`` / ``|v|+c`` into sx / sy."""
    lib = load()
    if lib is None:
        raise RuntimeError(f"compiled kernels unavailable: {_load_failed}")
    P, _, n, _ = q.shape
    lib.wave_speeds(
        _as_double_ptr(q), P, n, ng, float(gamma),
        _as_double_ptr(sx), _as_double_ptr(sy),
    )


def copy_indexed(
    flat: np.ndarray, dst: np.ndarray, src: np.ndarray, scale: float = 1.0
) -> None:
    """``flat[dst] = flat[src] * scale`` without numpy fancy-index overhead.

    ``dst`` and ``src`` must be disjoint (the shard programs copy interiors
    into ghost cells, never the reverse): the loop copies element by
    element, while numpy's fancy assignment gathers the source first.
    Index vectors are int32 (half the shard-program shipping cost of
    int64; a stack would need >2^31 elements to overflow, far beyond any
    hierarchy the driver builds).
    """
    lib = load()
    if lib is None:
        raise RuntimeError(f"compiled kernels unavailable: {_load_failed}")
    lib.copy_indexed(
        _as_double_ptr(flat), _as_int32_ptr(dst), _as_int32_ptr(src),
        dst.size, float(scale),
    )


def prolong_blocks(src: np.ndarray, nx: int, ny: int, dst: np.ndarray) -> None:
    """Batched minmod prolongation of ``R`` ``(nx, ny)`` slabs to 2x size."""
    lib = load()
    if lib is None:
        raise RuntimeError(f"compiled kernels unavailable: {_load_failed}")
    lib.prolong_blocks(
        _as_double_ptr(src), src.size // (nx * ny), nx, ny, _as_double_ptr(dst)
    )


def restrict_blocks(src: np.ndarray, nx: int, ny: int, dst: np.ndarray) -> None:
    """Batched 2x2 area restriction of ``R`` ``(nx, ny)`` slabs."""
    lib = load()
    if lib is None:
        raise RuntimeError(f"compiled kernels unavailable: {_load_failed}")
    lib.restrict_blocks(
        _as_double_ptr(src), src.size // (nx * ny), nx, ny, _as_double_ptr(dst)
    )


def gather_indexed(flat: np.ndarray, idx: np.ndarray, out: np.ndarray) -> None:
    """``out.ravel()[:] = flat[idx]`` into a preallocated staging buffer."""
    lib = load()
    if lib is None:
        raise RuntimeError(f"compiled kernels unavailable: {_load_failed}")
    lib.gather_indexed(
        _as_double_ptr(flat), _as_int32_ptr(idx), _as_double_ptr(out), idx.size
    )


def scatter_indexed(flat: np.ndarray, idx: np.ndarray, vals: np.ndarray) -> None:
    """``flat[idx] = vals.ravel()`` from a staging buffer."""
    lib = load()
    if lib is None:
        raise RuntimeError(f"compiled kernels unavailable: {_load_failed}")
    lib.scatter_indexed(
        _as_double_ptr(flat), _as_int32_ptr(idx), _as_double_ptr(vals), idx.size
    )
