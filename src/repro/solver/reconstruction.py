"""MUSCL interface reconstruction.

Second-order accuracy is obtained by reconstructing piecewise-linear
primitive states in each cell with a limited slope and evaluating them at
cell faces.  Reconstruction is performed along the *last* axis, so x- and
y-sweeps both reduce to the same routine after a transpose.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.solver.limiters import LIMITERS
from repro.solver.state import (
    GAMMA_AIR,
    conserved_from_primitive,
    primitive_from_conserved,
)


def limited_slopes(
    w: np.ndarray, limiter: Callable[[np.ndarray, np.ndarray], np.ndarray]
) -> np.ndarray:
    """Per-cell limited slopes of ``w`` along its last axis.

    Boundary cells (first and last along the axis) get zero slope; the
    callers always keep at least two ghost layers, so those cells never
    touch an interior interface.
    """
    slopes = np.zeros_like(w)
    a = w[..., 1:-1] - w[..., :-2]  # backward difference
    b = w[..., 2:] - w[..., 1:-1]  # forward difference
    slopes[..., 1:-1] = limiter(a, b)
    return slopes


def muscl_interface_states(
    q: np.ndarray,
    limiter: str | Callable = "mc",
    gamma: float = GAMMA_AIR,
) -> tuple[np.ndarray, np.ndarray]:
    """Left/right conserved states at interior interfaces along the last axis.

    Reconstruction is done in primitive variables (the standard Clawpack /
    MUSCL-Hancock practice: limiting primitives avoids spurious pressure
    oscillations at contacts).

    Parameters
    ----------
    q : ndarray, shape (4, ..., n)
        Conserved states of a 1-D pencil (trailing axis is the sweep
        direction), including ghost cells.
    limiter : str or callable
        Limiter name from :data:`repro.solver.limiters.LIMITERS` or a
        callable ``phi(a, b)``.  Use ``"none"`` for first-order (Godunov).

    Returns
    -------
    (ql, qr) : ndarrays, shape (4, ..., n-1)
        States immediately left and right of each interior interface
        ``i+1/2`` for ``i = 0 .. n-2``.
    """
    if isinstance(limiter, str):
        if limiter == "none":
            ql = q[..., :-1]
            qr = q[..., 1:]
            return ql.copy(), qr.copy()
        try:
            limiter_fn = LIMITERS[limiter]
        except KeyError:
            raise ValueError(
                f"unknown limiter {limiter!r}; choose from {sorted(LIMITERS)} or 'none'"
            ) from None
    else:
        limiter_fn = limiter

    w = primitive_from_conserved(q, gamma)
    dw = limited_slopes(w, limiter_fn)
    wl = w[..., :-1] + 0.5 * dw[..., :-1]  # right face of left cell
    wr = w[..., 1:] - 0.5 * dw[..., 1:]  # left face of right cell
    return (
        conserved_from_primitive(wl, gamma),
        conserved_from_primitive(wr, gamma),
    )
