"""CFL-limited time-step control."""

from __future__ import annotations

import numpy as np

from repro.solver.state import GAMMA_AIR, max_wave_speed


def cfl_dt(
    q: np.ndarray,
    dx: float,
    dy: float,
    cfl: float = 0.4,
    gamma: float = GAMMA_AIR,
    dt_max: float = np.inf,
) -> float:
    """Largest stable time step for state ``q`` under the CFL condition.

    Uses the split-scheme criterion ``dt <= cfl * min(dx, dy) / smax`` where
    ``smax`` is the largest characteristic speed in either direction.

    Parameters
    ----------
    q : ndarray, shape (4, ...)
        Conserved state (interior cells; including ghosts is harmless but
        slightly conservative).
    cfl : float
        Courant number in (0, 1]; 0.4 is a safe default for Strang-split
        MUSCL with HLLC.
    dt_max : float
        Upper bound, e.g. the remaining time to an output instant.

    Returns
    -------
    float
    """
    if not 0.0 < cfl <= 1.0:
        raise ValueError("cfl must be in (0, 1]")
    smax = max_wave_speed(q, gamma)
    if smax <= 0.0 or not np.isfinite(smax):
        return float(dt_max)
    return float(min(cfl * min(dx, dy) / smax, dt_max))
