"""Finite-volume solver for the 2-D compressible Euler equations.

This is the Clawpack-style numerical core that ForestClaw wraps: a
high-resolution Godunov method with MUSCL reconstruction, slope limiters,
and approximate Riemann solvers, applied with dimensional splitting on
logically Cartesian patches.  The shock–bubble interaction problem from the
paper's Fig. 1 is provided as an initial condition.

Conserved state layout: arrays of shape ``(4, nx, ny)`` holding
``(rho, rho*u, rho*v, E)``.

Public API
----------
- :mod:`state` — conserved/primitive conversions, gamma-law EOS.
- :mod:`riemann` — Rusanov, HLL, and HLLC approximate Riemann solvers.
- :mod:`limiters` — minmod, MC, superbee, van Leer slope limiters.
- :mod:`reconstruction` — MUSCL interface reconstruction.
- :mod:`fv` — dimensionally-split patch update.
- :mod:`timestep` — CFL-limited step control.
- :mod:`boundary` — ghost-cell fills for uniform patches.
- :mod:`initial_conditions` — shock–bubble and standard test states.
"""

from repro.solver.state import (
    GAMMA_AIR,
    EulerState,
    conserved_from_primitive,
    primitive_from_conserved,
    pressure,
    sound_speed,
    max_wave_speed,
    total_mass,
    total_energy,
    check_physical,
)
from repro.solver.riemann import (
    rusanov_flux,
    hll_flux,
    hllc_flux,
    physical_flux_x,
    RIEMANN_SOLVERS,
)
from repro.solver.limiters import (
    minmod,
    superbee,
    mc_limiter,
    van_leer,
    LIMITERS,
)
from repro.solver.reconstruction import muscl_interface_states, limited_slopes
from repro.solver.fv import sweep_x, sweep_y, advance_patch
from repro.solver.timestep import cfl_dt
from repro.solver.boundary import fill_ghosts, BoundaryCondition
from repro.solver.initial_conditions import (
    ShockBubbleProblem,
    shock_bubble_state,
    sod_state,
    uniform_state,
)
from repro.solver.exact_riemann import (
    RiemannSolution,
    solve_riemann,
    sample_solution,
    sod_exact,
)

__all__ = [
    "GAMMA_AIR",
    "EulerState",
    "conserved_from_primitive",
    "primitive_from_conserved",
    "pressure",
    "sound_speed",
    "max_wave_speed",
    "total_mass",
    "total_energy",
    "check_physical",
    "rusanov_flux",
    "hll_flux",
    "hllc_flux",
    "physical_flux_x",
    "RIEMANN_SOLVERS",
    "minmod",
    "superbee",
    "mc_limiter",
    "van_leer",
    "LIMITERS",
    "muscl_interface_states",
    "limited_slopes",
    "sweep_x",
    "sweep_y",
    "advance_patch",
    "cfl_dt",
    "fill_ghosts",
    "BoundaryCondition",
    "ShockBubbleProblem",
    "shock_bubble_state",
    "sod_state",
    "uniform_state",
    "RiemannSolution",
    "solve_riemann",
    "sample_solution",
    "sod_exact",
]
