"""Initial conditions: the shock–bubble interaction and standard tests.

The shock–bubble problem (paper Fig. 1) places a circular bubble of light
or heavy gas in quiescent ambient air and drives a planar shock into it.
Two of the paper's five input-space features parameterize it directly:

- ``r0`` — bubble radius ("bubble size", Table I range 0.2–0.5),
- ``rhoin`` — density inside the bubble (Table I range 0.02–0.5).

The pre-shock/post-shock states satisfy the Rankine–Hugoniot conditions
for a given shock Mach number, so the shock propagates cleanly from the
initial data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.solver.state import GAMMA_AIR, EulerState, conserved_from_primitive


def uniform_state(state: EulerState, nx: int, ny: int, gamma: float = GAMMA_AIR) -> np.ndarray:
    """A ``(4, nx, ny)`` patch filled with a single uniform state."""
    prim = np.empty((4, nx, ny), dtype=np.float64)
    prim[0] = state.rho
    prim[1] = state.u
    prim[2] = state.v
    prim[3] = state.p
    return conserved_from_primitive(prim, gamma)


def sod_state(x: np.ndarray, y: np.ndarray, gamma: float = GAMMA_AIR) -> np.ndarray:
    """Sod shock tube in x: the canonical validation problem.

    Parameters
    ----------
    x, y : ndarray
        Cell-center coordinate arrays of identical shape ``(nx, ny)``.

    Returns
    -------
    ndarray, shape (4, nx, ny)
    """
    left = x < 0.5
    prim = np.empty((4,) + x.shape, dtype=np.float64)
    prim[0] = np.where(left, 1.0, 0.125)
    prim[1] = 0.0
    prim[2] = 0.0
    prim[3] = np.where(left, 1.0, 0.1)
    return conserved_from_primitive(prim, gamma)


def postshock_state(
    mach: float, rho0: float = 1.0, p0: float = 1.0, gamma: float = GAMMA_AIR
) -> EulerState:
    """Post-shock state behind a right-moving shock of Mach ``mach``.

    Computed from the Rankine–Hugoniot jump conditions for a shock moving
    into quiescent gas ``(rho0, 0, 0, p0)``.
    """
    if mach <= 1.0:
        raise ValueError("shock Mach number must exceed 1")
    g = gamma
    m2 = mach * mach
    p1 = p0 * (2.0 * g * m2 - (g - 1.0)) / (g + 1.0)
    rho1 = rho0 * ((g + 1.0) * m2) / ((g - 1.0) * m2 + 2.0)
    c0 = np.sqrt(g * p0 / rho0)
    u1 = (2.0 * (m2 - 1.0)) / ((g + 1.0) * mach) * c0
    return EulerState(rho=float(rho1), u=float(u1), v=0.0, p=float(p1))


@dataclass(frozen=True, slots=True)
class ShockBubbleProblem:
    """Configuration of the 2-D shock–bubble interaction.

    The domain is ``[0, width] x [0, height]`` in brick coordinates.  The
    shock starts at ``x = shock_x`` moving in +x; the bubble is centered at
    ``(bubble_x, height/2)``.

    Attributes
    ----------
    r0 : float
        Bubble radius (Table I "bubble size").
    rhoin : float
        Density inside the bubble (Table I "bubble density").
    mach : float
        Incident shock Mach number.
    """

    r0: float = 0.3
    rhoin: float = 0.1
    mach: float = 2.0
    width: float = 2.0
    height: float = 1.0
    shock_x: float = 0.2
    bubble_x: float = 0.75
    rho_ambient: float = 1.0
    p_ambient: float = 1.0
    gamma: float = GAMMA_AIR

    def __post_init__(self) -> None:
        if self.r0 <= 0:
            raise ValueError("bubble radius must be positive")
        if self.rhoin <= 0:
            raise ValueError("bubble density must be positive")
        if not self.shock_x < self.bubble_x - self.r0:
            raise ValueError("shock must start upstream of the bubble")

    @property
    def bubble_center(self) -> tuple[float, float]:
        return (self.bubble_x, self.height / 2.0)

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Conserved initial state at cell centers ``(x, y)``.

        Parameters
        ----------
        x, y : ndarray
            Coordinate arrays of identical shape.

        Returns
        -------
        ndarray, shape (4,) + x.shape
        """
        ps = postshock_state(self.mach, self.rho_ambient, self.p_ambient, self.gamma)
        cx, cy = self.bubble_center
        in_bubble = (x - cx) ** 2 + (y - cy) ** 2 < self.r0**2
        behind_shock = x < self.shock_x

        prim = np.empty((4,) + np.shape(x), dtype=np.float64)
        prim[0] = np.where(
            behind_shock, ps.rho, np.where(in_bubble, self.rhoin, self.rho_ambient)
        )
        prim[1] = np.where(behind_shock, ps.u, 0.0)
        prim[2] = 0.0
        prim[3] = np.where(behind_shock, ps.p, self.p_ambient)
        return conserved_from_primitive(prim, self.gamma)

    def interface_distance(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Signed distance to the bubble boundary (negative inside).

        Used by refinement tagging to seed resolution at the material
        interface before the solution develops gradients.
        """
        cx, cy = self.bubble_center
        return np.sqrt((x - cx) ** 2 + (y - cy) ** 2) - self.r0


def shock_bubble_state(
    problem: ShockBubbleProblem, nx: int, ny: int
) -> np.ndarray:
    """Sample ``problem`` on a uniform ``nx x ny`` grid of its domain."""
    dx = problem.width / nx
    dy = problem.height / ny
    xc = (np.arange(nx) + 0.5) * dx
    yc = (np.arange(ny) + 0.5) * dy
    x, y = np.meshgrid(xc, yc, indexing="ij")
    return problem.evaluate(x, y)
