"""Dimensionally-split finite-volume update of a uniform patch.

A patch is a ``(4, nx + 2*ng, ny + 2*ng)`` conserved-state array with ``ng``
ghost layers on every side.  One time step is a Godunov/Strang splitting of
1-D sweeps: each sweep reconstructs interface states along its direction,
evaluates an approximate Riemann flux, and applies the conservative update
``q_i -= dt/dx * (F_{i+1/2} - F_{i-1/2})`` on interior cells only.

y-sweeps reuse the x-flux routines by swapping the momentum components and
transposing the spatial axes — the Euler equations are rotationally
invariant, so ``G(q) = swap(F(swap(q)))``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.solver.riemann import RIEMANN_SOLVERS
from repro.solver.state import GAMMA_AIR


def _resolve_solver(riemann: str | Callable) -> Callable:
    if callable(riemann):
        return riemann
    try:
        return RIEMANN_SOLVERS[riemann]
    except KeyError:
        raise ValueError(
            f"unknown Riemann solver {riemann!r}; choose from {sorted(RIEMANN_SOLVERS)}"
        ) from None


def sweep_x(
    q: np.ndarray,
    dt_dx: float,
    ng: int,
    riemann: str | Callable = "hllc",
    limiter: str = "mc",
    gamma: float = GAMMA_AIR,
) -> None:
    """In-place x-direction sweep on a ghosted patch.

    Updates the interior ``q[:, ng:-ng, :]``; ghost layers are read but not
    written (the caller refreshes them between sweeps).

    Parameters
    ----------
    q : ndarray, shape (4, nx + 2*ng, ny + 2*ng)
        Patch state, modified in place.
    dt_dx : float
        Time step over cell width.
    ng : int
        Number of ghost layers (must be >= 2 for second order).
    """
    from repro.solver.reconstruction import muscl_interface_states

    flux_fn = _resolve_solver(riemann)
    # Move the sweep axis (axis 1) last: shape (4, ny_tot, nx_tot).
    qt = np.ascontiguousarray(np.swapaxes(q, 1, 2))
    ql, qr = muscl_interface_states(qt, limiter=limiter, gamma=gamma)
    f = flux_fn(ql, qr, gamma)  # (4, ny_tot, nx_tot - 1)
    # Interior cells i = ng .. n-ng-1 use interfaces i-1/2 and i+1/2,
    # i.e. f[..., i-1] and f[..., i].
    n = qt.shape[-1]
    dq = f[..., ng : n - ng] - f[..., ng - 1 : n - ng - 1]
    qt[..., ng : n - ng] -= dt_dx * dq
    q[:, ng:-ng, :] = np.swapaxes(qt, 1, 2)[:, ng:-ng, :]


def sweep_y(
    q: np.ndarray,
    dt_dy: float,
    ng: int,
    riemann: str | Callable = "hllc",
    limiter: str = "mc",
    gamma: float = GAMMA_AIR,
) -> None:
    """In-place y-direction sweep; momentum-swapped reuse of the x solver."""
    from repro.solver.reconstruction import muscl_interface_states

    flux_fn = _resolve_solver(riemann)
    # Swap momenta so "u" is the sweep-normal velocity, keep y as last axis.
    qs = q[[0, 2, 1, 3], ...]
    ql, qr = muscl_interface_states(qs, limiter=limiter, gamma=gamma)
    f = flux_fn(ql, qr, gamma)  # (4, nx_tot, ny_tot - 1), momentum-swapped
    n = qs.shape[-1]
    dq = f[..., ng : n - ng] - f[..., ng - 1 : n - ng - 1]
    qs = qs.copy()
    qs[..., ng : n - ng] -= dt_dy * dq
    q[:, :, ng:-ng] = qs[[0, 2, 1, 3], ...][:, :, ng:-ng]


def advance_patch(
    q: np.ndarray,
    dt: float,
    dx: float,
    dy: float,
    ng: int,
    refresh_ghosts: Callable[[np.ndarray], None] | None = None,
    riemann: str | Callable = "hllc",
    limiter: str = "mc",
    gamma: float = GAMMA_AIR,
    strang: bool = True,
) -> None:
    """Advance a ghosted patch one step of size ``dt`` (in place).

    Parameters
    ----------
    refresh_ghosts : callable, optional
        Called with ``q`` between sweeps to refill ghost layers (boundary
        conditions and/or neighbor exchange).  When ``None`` the stale ghost
        values from before the step are reused — acceptable only for interior
        patches whose ghosts are wide enough for the splitting order.
    strang : bool
        If True use Strang splitting ``X(dt/2) Y(dt) X(dt/2)`` (second-order
        in time); otherwise Godunov splitting ``X(dt) Y(dt)``.
    """
    if ng < 2:
        raise ValueError("second-order MUSCL needs at least 2 ghost layers")
    kw = dict(riemann=riemann, limiter=limiter, gamma=gamma)

    def refresh():
        if refresh_ghosts is not None:
            refresh_ghosts(q)

    if strang:
        sweep_x(q, 0.5 * dt / dx, ng, **kw)
        refresh()
        sweep_y(q, dt / dy, ng, **kw)
        refresh()
        sweep_x(q, 0.5 * dt / dx, ng, **kw)
    else:
        sweep_x(q, dt / dx, ng, **kw)
        refresh()
        sweep_y(q, dt / dy, ng, **kw)
