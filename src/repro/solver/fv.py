"""Dimensionally-split finite-volume update of uniform patches.

A patch is a ``(4, nx + 2*ng, ny + 2*ng)`` conserved-state array with ``ng``
ghost layers on every side.  One time step is a Godunov/Strang splitting of
1-D sweeps: each sweep reconstructs interface states along its direction,
evaluates an approximate Riemann flux, and applies the conservative update
``q_i -= dt/dx * (F_{i+1/2} - F_{i-1/2})`` on interior cells only.

y-sweeps reuse the x-flux routines by swapping the momentum components and
transposing the spatial axes — the Euler equations are rotationally
invariant, so ``G(q) = swap(F(swap(q)))``.

Both sweeps also accept a *shape-stacked hierarchy* ``(P, 4, n, n)`` — P
same-shape patches in one array — together with a per-patch ``(P,)`` array
of ``dt/dx`` factors, and then run reconstruction, flux evaluation and the
conservative update over the whole stack.  Every kernel downstream
(limiters, MUSCL reconstruction, Riemann fluxes) is elementwise, so the
batched sweep is bit-identical to P separate per-patch sweeps.  The stacked
path differs from the reference loop only in how the same arithmetic is
scheduled:

- sweeps are *axis-aware* instead of transposing the sweep direction last —
  elementwise kernels do not care which axis the stencil slices run along,
  and the momentum swap of a y-sweep reduces to component indexing;
- the stack is processed in cache-sized chunks of patches
  (:data:`_CHUNK_BYTES`), keeping every intermediate of the fused
  reconstruct/flux/update pipeline resident in L2;
- each side's primitive variables are converted once and shared by the
  wave-speed estimate and the flux evaluation;
- only the interfaces and rows that touch interior cells are evaluated
  (a sweep's writes to face-ghost strips are overwritten by the following
  ghost exchange before anything reads them).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.solver.limiters import LIMITERS
from repro.solver.reconstruction import muscl_interface_states
from repro.solver.riemann import RIEMANN_SOLVERS
from repro.solver.state import (
    DENSITY_FLOOR,
    GAMMA_AIR,
    PRESSURE_FLOOR,
    conserved_from_primitive,
    primitive_from_conserved,
)


def _resolve_solver(riemann: str | Callable) -> Callable:
    if callable(riemann):
        return riemann
    try:
        return RIEMANN_SOLVERS[riemann]
    except KeyError:
        raise ValueError(
            f"unknown Riemann solver {riemann!r}; choose from {sorted(RIEMANN_SOLVERS)}"
        ) from None


def _resolve_limiter(limiter: str | Callable) -> Callable | None:
    """Limiter callable, or ``None`` for first-order (``"none"``)."""
    if not isinstance(limiter, str):
        return limiter
    if limiter == "none":
        return None
    try:
        return LIMITERS[limiter]
    except KeyError:
        raise ValueError(
            f"unknown limiter {limiter!r}; choose from {sorted(LIMITERS)} or 'none'"
        ) from None


#: Working-set budget per chunk of the cache-blocked stacked sweep.  The
#: fused pipeline keeps ~14 same-shape intermediates alive; chunks are sized
#: so all of them fit in L2 together, which on memory-bound hosts is worth
#: ~2x over streaming the full stack through every elementwise pass.
_CHUNK_BYTES = 2_500_000

#: Live same-shape intermediates of the fused sweep pipeline (sizing only).
_PIPELINE_ARRAYS = 14


def _sweep_stack(
    q: np.ndarray,
    dt_d: float | np.ndarray,
    ng: int,
    normal: str,
    riemann: str | Callable,
    limiter: str | Callable,
    gamma: float,
) -> None:
    """Fused, cache-blocked sweep over a ``(P, 4, n, n)`` patch stack.

    ``normal`` is ``"x"`` or ``"y"``.  Bit-identical to looping
    :func:`sweep_x`/:func:`sweep_y` over the patches: the pipeline runs the
    same elementwise kernels on the same values — it only schedules them
    differently (per cache-sized chunk, stencil slices taken along the sweep
    axis instead of transposing it last, momentum swap done by component
    indexing, primitives converted once per side, and only the interfaces
    and rows that reach interior cells evaluated).
    """
    limiter_fn = _resolve_limiter(limiter)
    flux_fn = _resolve_solver(riemann)
    pass_prims = not callable(riemann)
    num, _, nx, ny = q.shape
    if num == 0:
        return
    if normal == "x":
        imn, imt = 1, 2
        n = nx

        def cut(arr: np.ndarray, sl: slice) -> np.ndarray:
            return arr[..., sl, :]

    else:
        imn, imt = 2, 1
        n = ny

        def cut(arr: np.ndarray, sl: slice) -> np.ndarray:
            return arr[..., sl]

    lo, hi = ng - 1, n - ng  # cells lo..hi feed the interfaces that matter
    factors = np.broadcast_to(
        np.asarray(dt_d, dtype=np.float64).reshape(-1), (num,)
    )
    blk_bytes = _PIPELINE_ARRAYS * 4 * (nx if normal == "x" else nx - 2 * ng) * (
        ny - 2 * ng if normal == "x" else ny
    ) * 8
    chunk = max(1, int(_CHUNK_BYTES // max(1, blk_bytes)))
    for s in range(0, num, chunk):
        e = min(num, s + chunk)
        if normal == "x":
            qc = np.moveaxis(q[s:e, :, :, ng:-ng], 1, 0)  # (4, C, nx, my)
        else:
            qc = np.moveaxis(q[s:e, :, ng:-ng, :], 1, 0)  # (4, C, mx, ny)
        if limiter_fn is None:
            # First-order: interface states are the (momentum-swapped)
            # conserved cell states themselves.
            qsw = qc[[0, imn, imt, 3]]
            ql = np.ascontiguousarray(cut(qsw, slice(lo, hi)))
            qr = np.ascontiguousarray(cut(qsw, slice(lo + 1, hi + 1)))
        else:
            # Primitives with the sweep-normal velocity in the "u" slot —
            # the reference reaches the same layout by fancy-indexing the
            # momentum components before converting.
            rho = np.maximum(qc[0], DENSITY_FLOOR)
            u = qc[imn] / rho
            v = qc[imt] / rho
            p = (gamma - 1.0) * (qc[3] - 0.5 * rho * (u * u + v * v))
            w = np.empty((4,) + rho.shape, dtype=np.float64)
            w[0] = rho
            w[1] = u
            w[2] = v
            w[3] = np.maximum(p, PRESSURE_FLOOR)
            a = cut(w, slice(lo, hi + 1)) - cut(w, slice(lo - 1, hi))
            b = cut(w, slice(lo + 1, hi + 2)) - cut(w, slice(lo, hi + 1))
            dw = limiter_fn(a, b)  # slopes at cells lo..hi, never boundaries
            wc = cut(w, slice(lo, hi + 1))
            wl = cut(wc, slice(None, -1)) + 0.5 * cut(dw, slice(None, -1))
            wr = cut(wc, slice(1, None)) - 0.5 * cut(dw, slice(1, None))
            ql = conserved_from_primitive(wl, gamma)
            qr = conserved_from_primitive(wr, gamma)
        if pass_prims:
            pl = primitive_from_conserved(ql, gamma)
            pr = primitive_from_conserved(qr, gamma)
            f = flux_fn(ql, qr, gamma, pl=pl, pr=pr)
        else:
            f = flux_fn(ql, qr, gamma)
        dq = cut(f, slice(1, None)) - cut(f, slice(None, -1))
        upd = factors[s:e].reshape(-1, 1, 1) * dq
        qi = q[s:e, :, ng:-ng, ng:-ng]
        qi[:, 0] -= upd[0]
        qi[:, imn] -= upd[1]
        qi[:, imt] -= upd[2]
        qi[:, 3] -= upd[3]


def sweep_x(
    q: np.ndarray,
    dt_dx: float | np.ndarray,
    ng: int,
    riemann: str | Callable = "hllc",
    limiter: str = "mc",
    gamma: float = GAMMA_AIR,
) -> None:
    """In-place x-direction sweep on a ghosted patch or patch stack.

    Updates the interior rows; ghost layers are read but not written (the
    caller refreshes them between sweeps).

    Parameters
    ----------
    q : ndarray, shape (4, nx + 2*ng, ny + 2*ng) or (P, 4, n, n)
        Patch state — or a stack of P same-shape patches — modified in place.
    dt_dx : float or ndarray
        Time step over cell width; for a stack, a scalar or a per-patch
        ``(P,)`` array broadcast over each patch's cells.
    ng : int
        Number of ghost layers (must be >= 2 for second order).
    """
    if q.ndim == 4:
        _sweep_stack(q, dt_dx, ng, "x", riemann, limiter, gamma)
        return
    flux_fn = _resolve_solver(riemann)
    # Move the sweep axis (axis 1) last: shape (4, ny_tot, nx_tot).
    qt = np.ascontiguousarray(np.swapaxes(q, 1, 2))
    factor = dt_dx
    ql, qr = muscl_interface_states(qt, limiter=limiter, gamma=gamma)
    f = flux_fn(ql, qr, gamma)  # (4, ..., nx_tot - 1)
    # Interior cells i = ng .. n-ng-1 use interfaces i-1/2 and i+1/2,
    # i.e. f[..., i-1] and f[..., i].
    n = qt.shape[-1]
    dq = f[..., ng : n - ng] - f[..., ng - 1 : n - ng - 1]
    qt[..., ng : n - ng] -= factor * dq
    q[:, ng:-ng, :] = np.swapaxes(qt, 1, 2)[:, ng:-ng, :]


def sweep_y(
    q: np.ndarray,
    dt_dy: float | np.ndarray,
    ng: int,
    riemann: str | Callable = "hllc",
    limiter: str = "mc",
    gamma: float = GAMMA_AIR,
) -> None:
    """In-place y-direction sweep; momentum-swapped reuse of the x solver.

    Accepts the same single-patch or ``(P, 4, n, n)`` stacked layouts as
    :func:`sweep_x`.
    """
    if q.ndim == 4:
        _sweep_stack(q, dt_dy, ng, "y", riemann, limiter, gamma)
        return
    flux_fn = _resolve_solver(riemann)
    # Swap momenta so "u" is the sweep-normal velocity, keep y as last axis;
    # the advanced index produces the working copy the update is applied to.
    qs = q[[0, 2, 1, 3], ...]
    factor = dt_dy
    ql, qr = muscl_interface_states(qs, limiter=limiter, gamma=gamma)
    f = flux_fn(ql, qr, gamma)  # (4, ..., ny_tot - 1), momentum-swapped
    n = qs.shape[-1]
    dq = f[..., ng : n - ng] - f[..., ng - 1 : n - ng - 1]
    qs[..., ng : n - ng] -= factor * dq
    q[:, :, ng:-ng] = qs[[0, 2, 1, 3], ...][:, :, ng:-ng]


def advance_patch(
    q: np.ndarray,
    dt: float,
    dx: float,
    dy: float,
    ng: int,
    refresh_ghosts: Callable[[np.ndarray], None] | None = None,
    riemann: str | Callable = "hllc",
    limiter: str = "mc",
    gamma: float = GAMMA_AIR,
    strang: bool = True,
) -> None:
    """Advance a ghosted patch one step of size ``dt`` (in place).

    Parameters
    ----------
    refresh_ghosts : callable, optional
        Called with ``q`` between sweeps to refill ghost layers (boundary
        conditions and/or neighbor exchange).  When ``None`` the stale ghost
        values from before the step are reused — acceptable only for interior
        patches whose ghosts are wide enough for the splitting order.
    strang : bool
        If True use Strang splitting ``X(dt/2) Y(dt) X(dt/2)`` (second-order
        in time); otherwise Godunov splitting ``X(dt) Y(dt)``.
    """
    if ng < 2:
        raise ValueError("second-order MUSCL needs at least 2 ghost layers")
    kw = dict(riemann=riemann, limiter=limiter, gamma=gamma)

    def refresh():
        if refresh_ghosts is not None:
            refresh_ghosts(q)

    if strang:
        sweep_x(q, 0.5 * dt / dx, ng, **kw)
        refresh()
        sweep_y(q, dt / dy, ng, **kw)
        refresh()
        sweep_x(q, 0.5 * dt / dx, ng, **kw)
    else:
        sweep_x(q, dt / dx, ng, **kw)
        refresh()
        sweep_y(q, dt / dy, ng, **kw)
