"""Approximate Riemann solvers for the 2-D Euler equations.

All solvers compute the numerical flux through x-normal interfaces from
left/right conserved states of shape ``(4, ...)``; y-sweeps reuse them by
swapping the momentum components (see :mod:`repro.solver.fv`).  Three
solvers of increasing resolution are provided:

- :func:`rusanov_flux` — local Lax–Friedrichs; most dissipative, most robust.
- :func:`hll_flux` — two-wave HLL with Davis wave-speed estimates.
- :func:`hllc_flux` — HLL with contact restoration (Toro); resolves the
  contact and shear waves that dominate the shock–bubble problem.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.solver.state import GAMMA_AIR, primitive_from_conserved


def physical_flux_x(
    q: np.ndarray, gamma: float = GAMMA_AIR, prim: np.ndarray | None = None
) -> np.ndarray:
    """Exact Euler flux in the x direction of conserved states ``q``.

    ``prim`` may carry the precomputed primitives of ``q`` to skip the
    (deterministic, hence bit-identical) conversion — the batched sweep path
    computes them once per side and reuses them across the wave-speed
    estimate and both flux evaluations.
    """
    if prim is None:
        prim = primitive_from_conserved(q, gamma)
    rho, u, v, p = prim[0], prim[1], prim[2], prim[3]
    f = np.empty_like(q)
    f[0] = rho * u
    f[1] = rho * u * u + p
    f[2] = rho * u * v
    f[3] = (q[3] + p) * u
    return f


def _wave_speeds_davis(
    ql: np.ndarray,
    qr: np.ndarray,
    gamma: float,
    pl: np.ndarray | None = None,
    pr: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Davis estimates: ``sl = min(ul - cl, ur - cr)``, ``sr = max(...)``."""
    if pl is None:
        pl = primitive_from_conserved(ql, gamma)
    if pr is None:
        pr = primitive_from_conserved(qr, gamma)
    cl = np.sqrt(gamma * pl[3] / pl[0])
    cr = np.sqrt(gamma * pr[3] / pr[0])
    sl = np.minimum(pl[1] - cl, pr[1] - cr)
    sr = np.maximum(pl[1] + cl, pr[1] + cr)
    return sl, sr


def rusanov_flux(
    ql: np.ndarray,
    qr: np.ndarray,
    gamma: float = GAMMA_AIR,
    pl: np.ndarray | None = None,
    pr: np.ndarray | None = None,
) -> np.ndarray:
    """Local Lax–Friedrichs flux ``0.5*(F(ql)+F(qr)) - 0.5*smax*(qr-ql)``."""
    if pl is None:
        pl = primitive_from_conserved(ql, gamma)
    if pr is None:
        pr = primitive_from_conserved(qr, gamma)
    cl = np.sqrt(gamma * pl[3] / pl[0])
    cr = np.sqrt(gamma * pr[3] / pr[0])
    smax = np.maximum(np.abs(pl[1]) + cl, np.abs(pr[1]) + cr)
    fl = physical_flux_x(ql, gamma, prim=pl)
    fr = physical_flux_x(qr, gamma, prim=pr)
    return 0.5 * (fl + fr) - 0.5 * smax * (qr - ql)


def hll_flux(
    ql: np.ndarray,
    qr: np.ndarray,
    gamma: float = GAMMA_AIR,
    pl: np.ndarray | None = None,
    pr: np.ndarray | None = None,
) -> np.ndarray:
    """Two-wave HLL flux with Davis wave-speed estimates."""
    if pl is None:
        pl = primitive_from_conserved(ql, gamma)
    if pr is None:
        pr = primitive_from_conserved(qr, gamma)
    sl, sr = _wave_speeds_davis(ql, qr, gamma, pl=pl, pr=pr)
    fl = physical_flux_x(ql, gamma, prim=pl)
    fr = physical_flux_x(qr, gamma, prim=pr)
    # HLL average flux in the star region; guard the degenerate sr == sl case.
    denom = np.where(sr - sl == 0.0, 1.0, sr - sl)
    fstar = (sr * fl - sl * fr + sl * sr * (qr - ql)) / denom
    out = np.where(sl >= 0.0, fl, np.where(sr <= 0.0, fr, fstar))
    return out


def hllc_flux(
    ql: np.ndarray,
    qr: np.ndarray,
    gamma: float = GAMMA_AIR,
    pl: np.ndarray | None = None,
    pr: np.ndarray | None = None,
) -> np.ndarray:
    """HLLC flux (Toro, Spruce & Speares): HLL plus a restored contact wave.

    Resolves the middle (contact/shear) wave exactly for isolated contacts,
    which matters for the density interface of the shock–bubble problem.
    """
    if pl is None:
        pl = primitive_from_conserved(ql, gamma)
    if pr is None:
        pr = primitive_from_conserved(qr, gamma)
    rl, ul, vl, prl = pl[0], pl[1], pl[2], pl[3]
    rr, ur, vr, prr = pr[0], pr[1], pr[2], pr[3]
    sl, sr = _wave_speeds_davis(ql, qr, gamma, pl=pl, pr=pr)

    # Contact wave speed (Toro eq. 10.37).
    num = prr - prl + rl * ul * (sl - ul) - rr * ur * (sr - ur)
    den = rl * (sl - ul) - rr * (sr - ur)
    den = np.where(den == 0.0, 1e-300, den)
    sm = num / den

    fl = physical_flux_x(ql, gamma, prim=pl)
    fr = physical_flux_x(qr, gamma, prim=pr)

    def star_state(q, r, u, v, p, s, sm):
        """Conserved state in the star region behind wave ``s``."""
        coef = r * (s - u) / np.where(s - sm == 0.0, 1e-300, s - sm)
        qs = np.empty_like(q)
        qs[0] = coef
        qs[1] = coef * sm
        qs[2] = coef * v
        energy = q[3] / r + (sm - u) * (sm + p / (r * np.where(s - u == 0.0, 1e-300, s - u)))
        qs[3] = coef * energy
        return qs

    qsl = star_state(ql, rl, ul, vl, prl, sl, sm)
    qsr = star_state(qr, rr, ur, vr, prr, sr, sm)
    fsl = fl + sl * (qsl - ql)
    fsr = fr + sr * (qsr - qr)

    out = np.where(
        sl >= 0.0,
        fl,
        np.where(sm >= 0.0, fsl, np.where(sr >= 0.0, fsr, fr)),
    )
    return out


#: Registry used by the AMR driver's configuration layer.
RIEMANN_SOLVERS: dict[str, Callable[..., np.ndarray]] = {
    "rusanov": rusanov_flux,
    "hll": hll_flux,
    "hllc": hllc_flux,
}
