"""Exact Riemann solver for the 1-D Euler equations (Toro, Ch. 4).

Validation ground truth for the approximate solvers and for shock-tube
tests: given left/right primitive states, a Newton iteration on the
pressure in the star region resolves the exact wave pattern, and the
solution can be sampled at any similarity coordinate ``x/t``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.solver.state import GAMMA_AIR


@dataclass(frozen=True, slots=True)
class RiemannSolution:
    """Star-region state and wave structure of an exact Riemann solution.

    Attributes
    ----------
    p_star, u_star : float
        Pressure and velocity between the two nonlinear waves.
    rho_star_l, rho_star_r : float
        Densities adjacent to the contact on either side.
    left_is_shock, right_is_shock : bool
        Character of the two nonlinear waves.
    """

    p_star: float
    u_star: float
    rho_star_l: float
    rho_star_r: float
    left_is_shock: bool
    right_is_shock: bool


def _f_K(p: float, rho_k: float, p_k: float, gamma: float) -> tuple[float, float]:
    """Toro's f_K(p) and its derivative for one side (shock or rarefaction)."""
    if p > p_k:  # shock
        A = 2.0 / ((gamma + 1.0) * rho_k)
        B = (gamma - 1.0) / (gamma + 1.0) * p_k
        sq = np.sqrt(A / (p + B))
        f = (p - p_k) * sq
        df = sq * (1.0 - 0.5 * (p - p_k) / (p + B))
    else:  # rarefaction
        c_k = np.sqrt(gamma * p_k / rho_k)
        pr = p / p_k
        f = 2.0 * c_k / (gamma - 1.0) * (pr ** ((gamma - 1.0) / (2.0 * gamma)) - 1.0)
        df = 1.0 / (rho_k * c_k) * pr ** (-(gamma + 1.0) / (2.0 * gamma))
    return float(f), float(df)


def solve_riemann(
    rho_l: float,
    u_l: float,
    p_l: float,
    rho_r: float,
    u_r: float,
    p_r: float,
    gamma: float = GAMMA_AIR,
    tol: float = 1e-12,
    max_iter: int = 100,
) -> RiemannSolution:
    """Exact star-region solution of the 1-D Euler Riemann problem.

    Raises
    ------
    ValueError
        For non-physical inputs or vacuum-generating data (the two
        rarefactions separate and no star state exists).
    """
    for name, v in (("rho_l", rho_l), ("p_l", p_l), ("rho_r", rho_r), ("p_r", p_r)):
        if v <= 0:
            raise ValueError(f"{name} must be positive")
    c_l = np.sqrt(gamma * p_l / rho_l)
    c_r = np.sqrt(gamma * p_r / rho_r)
    # Vacuum check (Toro eq. 4.40).
    if 2.0 * (c_l + c_r) / (gamma - 1.0) <= u_r - u_l:
        raise ValueError("initial data generates vacuum; no star state")

    du = u_r - u_l
    # Initial guess: two-rarefaction approximation, floored.
    p_pv = 0.5 * (p_l + p_r) - 0.125 * du * (rho_l + rho_r) * (c_l + c_r)
    p = max(tol, p_pv)
    for _ in range(max_iter):
        f_l, df_l = _f_K(p, rho_l, p_l, gamma)
        f_r, df_r = _f_K(p, rho_r, p_r, gamma)
        g = f_l + f_r + du
        dp = g / (df_l + df_r)
        p_new = p - dp
        if p_new <= 0:
            p_new = tol
        if abs(p_new - p) < tol * max(1.0, p):
            p = p_new
            break
        p = p_new
    f_l, _ = _f_K(p, rho_l, p_l, gamma)
    f_r, _ = _f_K(p, rho_r, p_r, gamma)
    u_star = 0.5 * (u_l + u_r) + 0.5 * (f_r - f_l)

    gm = (gamma - 1.0) / (gamma + 1.0)
    if p > p_l:  # left shock: RH density jump
        rho_sl = rho_l * ((p / p_l + gm) / (gm * p / p_l + 1.0))
        left_shock = True
    else:  # left rarefaction: isentropic
        rho_sl = rho_l * (p / p_l) ** (1.0 / gamma)
        left_shock = False
    if p > p_r:
        rho_sr = rho_r * ((p / p_r + gm) / (gm * p / p_r + 1.0))
        right_shock = True
    else:
        rho_sr = rho_r * (p / p_r) ** (1.0 / gamma)
        right_shock = False
    return RiemannSolution(
        p_star=float(p),
        u_star=float(u_star),
        rho_star_l=float(rho_sl),
        rho_star_r=float(rho_sr),
        left_is_shock=left_shock,
        right_is_shock=right_shock,
    )


def sample_solution(
    sol: RiemannSolution,
    rho_l: float,
    u_l: float,
    p_l: float,
    rho_r: float,
    u_r: float,
    p_r: float,
    xi,
    gamma: float = GAMMA_AIR,
) -> np.ndarray:
    """Primitive state ``(rho, u, p)`` at similarity coordinates ``xi = x/t``.

    Vectorized over ``xi``; returns an array of shape ``(3,) + xi.shape``.
    """
    xi = np.asarray(xi, dtype=np.float64)
    c_l = np.sqrt(gamma * p_l / rho_l)
    c_r = np.sqrt(gamma * p_r / rho_r)
    out = np.empty((3,) + xi.shape)

    # --- left of the contact ------------------------------------------------
    if sol.left_is_shock:
        # Shock speed from RH (Toro eq. 4.52).
        s_l = u_l - c_l * np.sqrt(
            (gamma + 1.0) / (2.0 * gamma) * sol.p_star / p_l
            + (gamma - 1.0) / (2.0 * gamma)
        )
        left_region = np.where(
            xi < s_l,
            0,  # undisturbed left
            1,  # left star
        )
    else:
        c_star_l = c_l * (sol.p_star / p_l) ** ((gamma - 1.0) / (2.0 * gamma))
        head = u_l - c_l
        tail = sol.u_star - c_star_l
        left_region = np.where(xi < head, 0, np.where(xi < tail, 2, 1))

    # --- right of the contact -----------------------------------------------
    if sol.right_is_shock:
        s_r = u_r + c_r * np.sqrt(
            (gamma + 1.0) / (2.0 * gamma) * sol.p_star / p_r
            + (gamma - 1.0) / (2.0 * gamma)
        )
        right_region = np.where(xi > s_r, 5, 4)
    else:
        c_star_r = c_r * (sol.p_star / p_r) ** ((gamma - 1.0) / (2.0 * gamma))
        head = u_r + c_r
        tail = sol.u_star + c_star_r
        right_region = np.where(xi > head, 5, np.where(xi > tail, 3, 4))

    region = np.where(xi < sol.u_star, left_region, right_region)

    # Region constants.
    gm1, gp1 = gamma - 1.0, gamma + 1.0
    # 0: left state, 1: left star, 4: right star, 5: right state.
    for r, (rho, u, p) in {
        0: (rho_l, u_l, p_l),
        1: (sol.rho_star_l, sol.u_star, sol.p_star),
        4: (sol.rho_star_r, sol.u_star, sol.p_star),
        5: (rho_r, u_r, p_r),
    }.items():
        mask = region == r
        out[0][mask] = rho
        out[1][mask] = u
        out[2][mask] = p
    # 2: inside the left rarefaction fan.
    mask = region == 2
    if mask.any():
        u_fan = 2.0 / gp1 * (c_l + gm1 / 2.0 * u_l + xi[mask])
        c_fan = 2.0 / gp1 * (c_l + gm1 / 2.0 * (u_l - xi[mask]))
        out[0][mask] = rho_l * (c_fan / c_l) ** (2.0 / gm1)
        out[1][mask] = u_fan
        out[2][mask] = p_l * (c_fan / c_l) ** (2.0 * gamma / gm1)
    # 3: inside the right rarefaction fan.
    mask = region == 3
    if mask.any():
        u_fan = 2.0 / gp1 * (-c_r + gm1 / 2.0 * u_r + xi[mask])
        c_fan = 2.0 / gp1 * (c_r - gm1 / 2.0 * (u_r - xi[mask]))
        out[0][mask] = rho_r * (c_fan / c_r) ** (2.0 / gm1)
        out[1][mask] = u_fan
        out[2][mask] = p_r * (c_fan / c_r) ** (2.0 * gamma / gm1)
    return out


def sod_exact(xi, gamma: float = GAMMA_AIR) -> np.ndarray:
    """Exact Sod-tube solution at similarity coordinates (convenience)."""
    sol = solve_riemann(1.0, 0.0, 1.0, 0.125, 0.0, 0.1, gamma)
    return sample_solution(sol, 1.0, 0.0, 1.0, 0.125, 0.0, 0.1, xi, gamma)
