"""Euler equation state vectors and the gamma-law equation of state.

Conserved variables ``q = (rho, rho*u, rho*v, E)`` are stored along axis 0
of ``(4, ...)`` arrays; all conversions are vectorized over the trailing
axes so the same routines serve 1-D interface slices and full 2-D patches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Ratio of specific heats for a diatomic ideal gas (air).
GAMMA_AIR = 1.4

#: Indices into the conserved state vector.
IRHO, IMX, IMY, IENE = 0, 1, 2, 3

#: Floor applied to density and pressure to keep states physical.
DENSITY_FLOOR = 1e-12
PRESSURE_FLOOR = 1e-12


@dataclass(frozen=True, slots=True)
class EulerState:
    """A primitive-variable description of a uniform gas state.

    Attributes
    ----------
    rho : float
        Density.
    u, v : float
        Velocity components.
    p : float
        Pressure.
    """

    rho: float
    u: float
    v: float
    p: float

    def conserved(self, gamma: float = GAMMA_AIR) -> np.ndarray:
        """The ``(4,)`` conserved vector for this state."""
        prim = np.array([self.rho, self.u, self.v, self.p], dtype=np.float64)
        return conserved_from_primitive(prim.reshape(4, 1), gamma)[:, 0]


def conserved_from_primitive(prim: np.ndarray, gamma: float = GAMMA_AIR) -> np.ndarray:
    """Convert primitive ``(rho, u, v, p)`` arrays to conserved variables.

    Parameters
    ----------
    prim : ndarray, shape (4, ...)
    gamma : float

    Returns
    -------
    ndarray, shape (4, ...)
    """
    rho, u, v, p = prim[0], prim[1], prim[2], prim[3]
    q = np.empty_like(prim)
    q[IRHO] = rho
    q[IMX] = rho * u
    q[IMY] = rho * v
    q[IENE] = p / (gamma - 1.0) + 0.5 * rho * (u * u + v * v)
    return q


def primitive_from_conserved(q: np.ndarray, gamma: float = GAMMA_AIR) -> np.ndarray:
    """Convert conserved variables to primitive ``(rho, u, v, p)``.

    Density is floored at ``DENSITY_FLOOR`` before dividing, and pressure at
    ``PRESSURE_FLOOR``, so the conversion never produces NaNs for states
    perturbed slightly past vacuum by the scheme.
    """
    rho = np.maximum(q[IRHO], DENSITY_FLOOR)
    u = q[IMX] / rho
    v = q[IMY] / rho
    p = (gamma - 1.0) * (q[IENE] - 0.5 * rho * (u * u + v * v))
    prim = np.empty_like(q)
    prim[0] = rho
    prim[1] = u
    prim[2] = v
    prim[3] = np.maximum(p, PRESSURE_FLOOR)
    return prim


def pressure(q: np.ndarray, gamma: float = GAMMA_AIR) -> np.ndarray:
    """Pressure field of a conserved state array."""
    return primitive_from_conserved(q, gamma)[3]


def sound_speed(q: np.ndarray, gamma: float = GAMMA_AIR) -> np.ndarray:
    """Speed of sound ``sqrt(gamma * p / rho)`` of a conserved state array."""
    prim = primitive_from_conserved(q, gamma)
    return np.sqrt(gamma * prim[3] / prim[0])


def max_wave_speed(q: np.ndarray, gamma: float = GAMMA_AIR) -> float:
    """Largest characteristic speed ``max(|u| + c, |v| + c)`` over the array.

    Used by the CFL step control; returns a scalar.
    """
    prim = primitive_from_conserved(q, gamma)
    c = np.sqrt(gamma * prim[3] / prim[0])
    sx = np.abs(prim[1]) + c
    sy = np.abs(prim[2]) + c
    return float(max(sx.max(), sy.max()))


def total_mass(q: np.ndarray, cell_area: float = 1.0) -> float:
    """Domain integral of density (a conserved quantity)."""
    return float(q[IRHO].sum() * cell_area)


def total_energy(q: np.ndarray, cell_area: float = 1.0) -> float:
    """Domain integral of total energy (a conserved quantity)."""
    return float(q[IENE].sum() * cell_area)


def check_physical(q: np.ndarray, gamma: float = GAMMA_AIR) -> bool:
    """True iff every cell has positive density and pressure and no NaNs."""
    if not np.all(np.isfinite(q)):
        return False
    rho = q[IRHO]
    if np.any(rho <= 0.0):
        return False
    p = (gamma - 1.0) * (q[IENE] - 0.5 * (q[IMX] ** 2 + q[IMY] ** 2) / rho)
    return bool(np.all(p > 0.0))
