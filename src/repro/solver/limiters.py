"""Slope limiters for MUSCL reconstruction.

Each limiter takes the backward and forward one-sided differences
``a = q_i - q_{i-1}`` and ``b = q_{i+1} - q_i`` and returns a limited slope
per cell.  All are vectorized, symmetric (``phi(a, b) == phi(b, a)``), and
TVD: the returned slope is zero at extrema (``a * b <= 0``).
"""

from __future__ import annotations

from typing import Callable

import numpy as np


def minmod(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Most dissipative TVD limiter: smallest-magnitude one-sided slope."""
    return np.where(a * b <= 0.0, 0.0, np.where(np.abs(a) < np.abs(b), a, b))


def superbee(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Roe's superbee: the least dissipative second-order TVD limiter."""
    s1 = minmod(2.0 * a, b)
    s2 = minmod(a, 2.0 * b)
    mag = np.maximum(np.abs(s1), np.abs(s2))
    return np.where(a * b <= 0.0, 0.0, np.sign(a) * mag)


def mc_limiter(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Monotonized central-difference limiter (van Leer's MC)."""
    central = 0.5 * (a + b)
    bound = 2.0 * np.minimum(np.abs(a), np.abs(b))
    mag = np.minimum(np.abs(central), bound)
    return np.where(a * b <= 0.0, 0.0, np.sign(central) * mag)


def van_leer(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Van Leer's harmonic-mean limiter, smooth away from extrema."""
    prod = a * b
    denom = a + b
    safe = np.where(denom == 0.0, 1.0, denom)
    return np.where(prod <= 0.0, 0.0, 2.0 * prod / safe)


#: Registry keyed by the names used in solver configurations.
LIMITERS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "minmod": minmod,
    "superbee": superbee,
    "mc": mc_limiter,
    "vanleer": van_leer,
}
