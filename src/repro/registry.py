"""Decorator-registered component registries for policies and surrogates.

The selection policy and surrogate backends used to be wired through
hand-maintained string tables (``ALConfig._SURROGATES``, the
``make_policy`` if/else chain, per-backend CLI flag groups).  Every new
component meant touching all three.  This module replaces that with two
registries populated by decorators at class-definition time::

    from repro.registry import register_surrogate

    @register_surrogate("iterative")
    class IterativeGPRegressor(GPRegressor):
        ...

Resolution rules (documented in DESIGN.md):

- Registration is *lazy*: the registries import their built-in modules
  only when first queried (``get``/``names``/``in``), never at import
  time, so ``repro.registry`` itself has no dependencies and can be
  imported from anywhere (including ``repro.core.config``) without
  cycles.
- Lookup of an unknown name raises :class:`KeyError` listing every
  registered key — misspellings fail loudly with the fix in the message.
- Re-registering a name to a *different* object raises; re-running the
  same decorator (module reload) is a no-op.
- Third-party code may register additional components before building an
  :class:`~repro.core.config.ALConfig`; validation and construction both
  resolve through the same registry, so a registered name is usable
  everywhere a built-in name is (config, CLI, campaign service).
"""

from __future__ import annotations

import importlib
from typing import Any, Callable, Iterator

__all__ = [
    "Registry",
    "policy_registry",
    "surrogate_registry",
    "register_policy",
    "register_surrogate",
]


class Registry:
    """A name -> component mapping with decorator registration.

    Parameters
    ----------
    kind : str
        Human-readable component kind (``"policy"``/``"surrogate"``),
        used in error messages.
    builtin_modules : tuple[str, ...]
        Modules whose import populates the built-in entries.  Imported
        lazily on first query so the registry itself stays dependency
        free (see module docstring).
    """

    def __init__(self, kind: str, builtin_modules: tuple[str, ...] = ()) -> None:
        self.kind = kind
        self._builtin_modules = tuple(builtin_modules)
        self._entries: dict[str, Any] = {}
        self._loaded = False

    def register(self, name: str) -> Callable[[Any], Any]:
        """Decorator registering ``name`` -> the decorated object."""
        if not isinstance(name, str) or not name:
            raise ValueError(f"{self.kind} name must be a non-empty string")

        def decorator(obj: Any) -> Any:
            existing = self._entries.get(name)
            if existing is not None and existing is not obj:
                raise ValueError(
                    f"{self.kind} {name!r} is already registered "
                    f"to {existing!r}"
                )
            self._entries[name] = obj
            return obj

        return decorator

    def _load_builtins(self) -> None:
        if self._loaded:
            return
        # Flip the flag first: the built-in modules may themselves query
        # the registry while importing (e.g. to build CLI choices).
        self._loaded = True
        for module in self._builtin_modules:
            importlib.import_module(module)

    def names(self) -> tuple[str, ...]:
        """Sorted tuple of every registered name."""
        self._load_builtins()
        return tuple(sorted(self._entries))

    def get(self, name: str) -> Any:
        """The component registered as ``name``.

        Raises :class:`KeyError` listing the registered keys when the
        name is unknown.
        """
        self._load_builtins()
        try:
            return self._entries[name]
        except KeyError:
            raise KeyError(
                f"unknown {self.kind} {name!r}; registered "
                f"{self.kind}s: {', '.join(self.names())}"
            ) from None

    def __contains__(self, name: object) -> bool:
        self._load_builtins()
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        self._load_builtins()
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        loaded = "loaded" if self._loaded else "unloaded"
        return f"Registry(kind={self.kind!r}, {loaded}, n={len(self._entries)})"


#: Selection policies (``SelectionPolicy`` implementations).
policy_registry = Registry(
    "policy",
    builtin_modules=(
        "repro.core.policies",
        "repro.core.portfolio",
        "repro.policy.amortized",
    ),
)

#: Surrogate model backends (``Surrogate`` implementations).
surrogate_registry = Registry(
    "surrogate",
    builtin_modules=(
        "repro.gp.gpr",
        "repro.gp.iterative",
        "repro.gp.sparse",
        "repro.gp.local",
        "repro.gp.treed",
        "repro.gp.multifidelity",
    ),
)

register_policy = policy_registry.register
register_surrogate = surrogate_registry.register
