"""Evaluation metrics of Sec. V-B.

- **RMSE** (Eq. (10)) — aggregate prediction error on the Test partition,
  computed in **non-log** space: model outputs are exponentiated before
  comparison against the unmodified responses.
- **Cumulative cost** — total node-hours of the samples AL has selected.
- **Cumulative regret** (Eq. (11)) — opportunity cost of selections that
  violate the memory limit: the job runs almost to completion, exceeds
  ``L_mem`` at the very end, and crashes; its entire cost is wasted.
"""

from __future__ import annotations

import numpy as np

from repro.core.preprocessing import unlog10_response


def rmse_nonlog(mu_log: np.ndarray, y_raw: np.ndarray, weights: np.ndarray | None = None) -> float:
    """Eq. (10): RMSE of exponentiated predictions against raw responses.

    Parameters
    ----------
    mu_log : ndarray
        Predictive means in log10 space.
    y_raw : ndarray
        Measured responses in natural units.
    weights : ndarray, optional
        Non-negative diagonal weighting ``rho`` (Eq. (12), Sec. V-D); must
        sum to a positive value.  ``None`` means uniform, as in Eq. (10).
    """
    mu_log = np.asarray(mu_log, dtype=np.float64)
    y_raw = np.asarray(y_raw, dtype=np.float64)
    if mu_log.shape != y_raw.shape:
        raise ValueError("shapes must match")
    e = unlog10_response(mu_log) - y_raw
    if weights is None:
        return float(np.sqrt(np.mean(e * e)))
    w = np.asarray(weights, dtype=np.float64)
    if w.shape != e.shape or np.any(w < 0):
        raise ValueError("weights must be non-negative and aligned")
    total = w.sum()
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    return float(np.sqrt((w * e * e).sum() / total))


def individual_regret(cost: float, mem: float, memory_limit_MB: float) -> float:
    """Scalar fast path of :func:`individual_regrets` for a single sample.

    The AL loop accrues regret one acquisition at a time; going through
    the vectorized form costs two array allocations per iteration for a
    single comparison.
    """
    if memory_limit_MB <= 0:
        raise ValueError("memory limit must be positive")
    return float(cost) if mem >= memory_limit_MB else 0.0


def individual_regrets(
    costs: np.ndarray, mems: np.ndarray, memory_limit_MB: float
) -> np.ndarray:
    """Eq. (11) inner term: ``IR_i = c_i`` if ``m_i >= L_mem`` else 0.

    ``costs`` and ``mems`` are the *actual* measured cost and memory of the
    selected samples, in selection order.
    """
    costs = np.asarray(costs, dtype=np.float64)
    mems = np.asarray(mems, dtype=np.float64)
    if costs.shape != mems.shape:
        raise ValueError("costs and mems must align")
    if memory_limit_MB <= 0:
        raise ValueError("memory limit must be positive")
    return np.where(mems >= memory_limit_MB, costs, 0.0)


def cumulative_regret(
    costs: np.ndarray, mems: np.ndarray, memory_limit_MB: float
) -> np.ndarray:
    """Running sum of individual regrets after each iteration (Eq. (11))."""
    return np.cumsum(individual_regrets(costs, mems, memory_limit_MB))


def cumulative_cost(costs: np.ndarray) -> np.ndarray:
    """Running sum of selected-sample costs after each iteration."""
    return np.cumsum(np.asarray(costs, dtype=np.float64))


def cost_weighted_rmse_weights(costs_test: np.ndarray) -> np.ndarray:
    """A scale-dependent weighting for Eq. (12).

    Sec. V-D argues prediction errors on expensive experiments matter more
    than the same errors on cheap ones; weighting each test sample by its
    cost realizes that priority.
    """
    w = np.asarray(costs_test, dtype=np.float64)
    if np.any(w < 0):
        raise ValueError("costs must be non-negative")
    return w
