"""The campaign service: async, sharded, resumable AL at scale.

One production deployment of this codebase does not run one AL campaign —
it multiplexes *thousands* (one per machine configuration under study,
per policy, per seed) over a bounded worker fleet, for weeks.  This
module is that long-lived scheduler:

- **Slices, not runs.**  A campaign executes as a sequence of *slices* —
  a handful of :meth:`~repro.core.loop.ActiveLearner.step` calls — and
  the learner is pickled between slices.  The pickle *is* the
  checkpoint: a campaign killed at any point resumes from its last
  committed slice bit-identically (the stepwise learner keeps every
  piece of loop state, including the RNG, on the instance).
- **Budget-ordered round-robin.**  :class:`CampaignQueue` orders ready
  campaigns by remaining node-hour budget (priced through
  :class:`~repro.machine.accounting.CampaignLedger`) *within* a
  round-robin round, so big allocations run first but nothing starves:
  a campaign that just ran re-enters at the next round, behind every
  campaign still waiting in the current one.  Capacity-bounded, with a
  FIFO backlog for backpressure.
- **Exactly-once selections.**  A slice is a pure function of its input
  checkpoint; its result *commits* atomically (blob + counters +
  ledger) or is discarded whole.  A crashed, OOM-killed, or timed-out
  slice is re-run from the same checkpoint and — by the learner's
  resume bit-identity — selects exactly the same samples.  Nothing is
  lost, nothing is duplicated; commit-time contiguity assertions make a
  violation loud instead of silent.
- **Chaos harness.**  With a :class:`ChaosConfig`, every dispatch passes
  a synthetic accounting record through the PR-2 fault layer
  (:class:`~repro.faults.model.FaultInjector`) under a per-campaign RNG:
  CRASH really kills the worker process (``os._exit``), OOM aborts the
  slice and the scheduler retries at half the slice length, TIMEOUT is
  enforced by a parent-side deadline kill, STRAGGLER delays (and
  surcharges) the slice, RSS_LOST drops its observability payload.
  Because faults only ever discard whole slices, campaign selection
  sequences under chaos are bit-identical to a fault-free run — the
  property the chaos test-suite pins.
- **Per-campaign observability lanes.**  Worker metrics/spans ride home
  with each committed slice, are buffered per campaign, and merge into
  the global :mod:`repro.obs` state in campaign-submission order at
  drain time — deterministic for any worker count or completion order.

Two execution modes share every scheduling/commit/chaos code path:
``workers=0`` runs slices inline (fast, fully deterministic — what the
property tests drive), ``workers=N`` runs them on ``N`` spawn-safe
worker processes fed over pipes (what the chaos suite kills).
"""

from __future__ import annotations

import hashlib
import heapq
import io
import json
import os
import pickle
import time
import traceback as _traceback
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from multiprocessing import connection, get_context
from pathlib import Path
from typing import Callable, Iterator

import numpy as np

from repro import obs
from repro.core.config import ALConfig
from repro.core.loop import ActiveLearner
from repro.core.parallel import TrajectoryFailure
from repro.core.partitions import random_partition
from repro.core.trajectory import StopReason, Trajectory
from repro.data.dataset import Dataset
from repro.faults.model import FaultConfig, FaultEvent, FaultInjector, FaultKind
from repro.faults.resilient import RetryPolicy
from repro.machine.accounting import CampaignLedger, JobRecord
from repro.obs.metrics import MetricsRegistry


class ServiceError(RuntimeError):
    """A campaign-service invariant was violated (loud by design)."""


class CampaignStatus(str, Enum):
    """Lifecycle of one campaign inside the service."""

    PENDING = "pending"  # has work and may be scheduled
    PAUSED = "paused"  # held out of the queue; resumable
    DONE = "done"  # finished (own stop condition or budget)
    FAILED = "failed"  # permanent error or retries exhausted


#: Checkpoint payload format version (bump on incompatible change).
CHECKPOINT_VERSION = 1

#: Fault kinds that kill a slice (its result is discarded and re-run).
_FATAL_KINDS = frozenset({FaultKind.CRASH, FaultKind.OOM, FaultKind.TIMEOUT})


# ----------------------------------------------------------------- specs


@dataclass(frozen=True)
class CampaignSpec:
    """One campaign: a seeded AL run plus its node-hour allocation.

    The seed tree is shared with :class:`~repro.core.parallel.TrajectorySpec`
    — ``SeedSequence(entropy=base_seed, spawn_key=(traj_index,))`` — so a
    campaign's fault-free result is identical to the same run executed by
    :func:`~repro.core.parallel.run_trajectories`.

    Attributes
    ----------
    campaign_id : str
        Unique name (also the checkpoint filename stem; restricted to
        ``[A-Za-z0-9._-]``).
    policy_factory : callable
        Zero-argument factory for a fresh policy — picklable (a class or
        ``functools.partial``, not a lambda), since it crosses process
        boundaries and lives inside checkpoints.
    base_seed, traj_index : int
        Seed-tree position (partition + RNG stream).
    n_init, n_test : int
        Partition sizes.
    config : ALConfig
        The learner configuration; its
        :meth:`~repro.core.config.ALConfig.fingerprint` is stamped into
        every checkpoint and verified on resume.
    budget_node_hours : float
        The campaign's allocation; committed *and* wasted node-hours
        draw it down, and exhaustion finalizes the campaign with
        :attr:`~repro.core.trajectory.StopReason.BUDGET_EXHAUSTED`.
    steps_per_slice : int, optional
        Per-campaign override of the service's slice length.
    """

    campaign_id: str
    policy_factory: Callable[[], object]
    base_seed: int = 0
    traj_index: int = 0
    n_init: int = 50
    n_test: int = 200
    config: ALConfig = ALConfig()
    budget_node_hours: float = float("inf")
    steps_per_slice: int | None = None

    def __post_init__(self) -> None:
        if not self.campaign_id:
            raise ValueError("campaign_id must be non-empty")
        ok = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-")
        if not set(self.campaign_id) <= ok:
            raise ValueError(
                f"campaign_id {self.campaign_id!r} may only contain [A-Za-z0-9._-]"
            )
        if self.budget_node_hours <= 0:
            raise ValueError("budget_node_hours must be positive")
        if self.n_init < 1 or self.n_test < 1:
            raise ValueError("n_init and n_test must be positive")
        if self.steps_per_slice is not None and self.steps_per_slice < 1:
            raise ValueError("steps_per_slice must be >= 1")


@dataclass(frozen=True)
class ChaosConfig:
    """What the chaos harness may do to dispatched slices.

    Every dispatch synthesizes a :class:`~repro.machine.accounting.JobRecord`
    for the slice (``wall = steps * step_wall_seconds``, ``rss = base +
    steps * per_step``) and passes it through the PR-2
    :class:`~repro.faults.model.FaultInjector` under a *per-campaign* RNG
    (``SeedSequence(entropy=seed, spawn_key=(campaign_seq,))``).  The
    injector's fixed-draw contract makes every campaign's fault stream a
    deterministic function of (config, campaign, dispatch number) —
    independent of worker count, completion order, and which other
    campaigns run — which is what makes chaos runs reproducible.

    Attributes
    ----------
    faults : FaultConfig
        Probabilities and limits, evaluated against the synthetic record.
    retry : RetryPolicy
        Shared resubmission rule (:meth:`RetryPolicy.should_retry`);
        backoff is charged to the ledger's queue-wait bucket, never slept.
    seed : int
        Root of the per-campaign chaos RNG tree.
    step_wall_seconds : float
        Synthetic wall-clock per AL step (node-hour pricing of slices).
    slice_rss_base_MB, slice_rss_per_step_MB : float
        Synthetic footprint model; drives the OOM trigger.
    straggler_sleep_s : float
        Real delay a straggling *process* worker sleeps before running
        (inline mode only accounts, never sleeps).
    timeout_kill_s : float
        Parent-side grace before a timed-out slice's worker is killed.
    """

    faults: FaultConfig
    retry: RetryPolicy = RetryPolicy()
    seed: int = 0
    step_wall_seconds: float = 30.0
    slice_rss_base_MB: float = 512.0
    slice_rss_per_step_MB: float = 256.0
    straggler_sleep_s: float = 0.02
    timeout_kill_s: float = 0.25

    def __post_init__(self) -> None:
        if self.step_wall_seconds <= 0:
            raise ValueError("step_wall_seconds must be positive")
        if self.slice_rss_base_MB < 0 or self.slice_rss_per_step_MB < 0:
            raise ValueError("slice rss model must be non-negative")
        if self.straggler_sleep_s < 0 or self.timeout_kill_s <= 0:
            raise ValueError("chaos delays must be positive")


# ----------------------------------------------- checkpoint (de)serialization


def dataset_fingerprint(dataset: Dataset) -> str:
    """Short stable hash of the dataset arrays (checkpoint-store identity)."""
    h = hashlib.sha1()
    for arr in (dataset.X, dataset.wall, dataset.cost, dataset.mem):
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()[:16]


def build_learner(spec: CampaignSpec, dataset: Dataset) -> ActiveLearner:
    """Cold-start a campaign's learner at its seed-tree position.

    Configs with a fidelity axis (``num_fidelities > 1``), a batch size,
    or a round budget get a
    :class:`~repro.core.portfolio.MultiFidelityActiveLearner`.  The
    fidelity surfaces are priced deterministically from
    ``(config.resolved_schedule(), config.fidelity_seed)``, so every
    cold start of the same spec sees identical surfaces — and the
    config's fingerprint covers the fidelity axis, so a checkpoint
    written under one schedule refuses to resume under another.
    """
    seed_seq = np.random.SeedSequence(
        entropy=spec.base_seed, spawn_key=(spec.traj_index,)
    )
    rng = np.random.default_rng(seed_seq)
    partition = random_partition(
        rng, len(dataset), n_init=spec.n_init, n_test=spec.n_test
    )
    cfg = spec.config
    if cfg.num_fidelities > 1 or cfg.batch_size > 1 or (
        cfg.round_budget_node_hours is not None
    ):
        from repro.core.portfolio import MultiFidelityActiveLearner
        from repro.data.fidelity import MultiFidelityDataset

        ds = dataset
        if cfg.num_fidelities > 1:
            ds = MultiFidelityDataset.from_dataset(
                dataset, cfg.resolved_schedule(), seed=cfg.fidelity_seed
            )
        return MultiFidelityActiveLearner(
            ds, partition, policy=spec.policy_factory(), rng=rng, config=cfg
        )
    return ActiveLearner(
        dataset, partition, policy=spec.policy_factory(), rng=rng, config=cfg
    )


def policy_fingerprint(spec: CampaignSpec) -> str | None:
    """Content fingerprint of the spec's policy, if it declares one.

    Policies backed by an offline-trained artifact (the amortized
    scorer) expose a ``fingerprint`` property hashing the artifact's
    exact parameters.  The service stamps it into every checkpoint and
    refuses to resume across a change — a silently retrained policy file
    would break slice re-run bit-identity exactly like a changed
    ``ALConfig`` or dataset.  Policies without the attribute (all the
    Sec. IV-B algorithms) fingerprint as ``None``.
    """
    return getattr(spec.policy_factory(), "fingerprint", None)


#: Persistent-id token replacing the shared dataset inside campaign blobs.
_DATASET_PID = "repro.core.service:dataset"


class _InterningPickler(pickle.Pickler):
    """Pickles a learner with the shared dataset replaced by a token.

    The dataset is identical across every campaign the service runs, so
    blobs ship and store it zero times instead of once per slice — and
    :func:`loads_campaign` re-attaches the service's single in-memory
    copy by construction (no per-campaign duplicates after resume).
    """

    def __init__(self, buf: io.BytesIO, dataset: Dataset) -> None:
        super().__init__(buf, protocol=pickle.HIGHEST_PROTOCOL)
        self._dataset = dataset

    def persistent_id(self, obj):  # noqa: D102 - pickle protocol hook
        return _DATASET_PID if obj is self._dataset else None


class _InterningUnpickler(pickle.Unpickler):
    def __init__(self, buf: io.BytesIO, dataset: Dataset) -> None:
        super().__init__(buf)
        self._dataset = dataset

    def persistent_load(self, pid):  # noqa: D102 - pickle protocol hook
        if pid == _DATASET_PID:
            return self._dataset
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")


def dumps_campaign(learner: ActiveLearner, dataset: Dataset) -> bytes:
    """Serialize mid-run learner state as a checkpoint blob.

    The candidate cross-covariance caches are invalidated first: they are
    exact (silently rebuilt from the kernel on next use, bit-identically)
    and they dominate the pickle size, so checkpoints store working state
    only.  The dataset is interned via persistent-id.  Everything else —
    both GP models, the RNG, the pool, the partial records — rides along,
    and pickle memoization preserves the learner/model RNG *sharing*, so
    a restored learner continues the identical stream.
    """
    learner._cache_cost.invalidate()
    learner._cache_mem.invalidate()
    buf = io.BytesIO()
    _InterningPickler(buf, dataset).dump(learner)
    return buf.getvalue()


def loads_campaign(blob: bytes, dataset: Dataset) -> ActiveLearner:
    """Restore a learner from a checkpoint blob against the live dataset."""
    return _InterningUnpickler(io.BytesIO(blob), dataset).load()


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write-then-rename: readers see the old file or the new, never half.

    The temp file is flushed and fsynced before ``os.replace`` so a
    machine crash mid-checkpoint cannot leave a torn file behind — the
    atomicity half of the service's exactly-once contract.
    """
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


class CheckpointStore:
    """Atomic per-campaign checkpoint files under one directory.

    Layout: ``<root>/meta.json`` (store identity: the dataset
    fingerprint) plus one ``<campaign_id>.ckpt`` pickle per campaign.
    Every write is atomic (:func:`_atomic_write_bytes`), so the store is
    consistent after a kill at *any* instant — the chaos suite's
    kill-and-resume tests rely on exactly this.
    """

    META_NAME = "meta.json"

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path(self, campaign_id: str) -> Path:
        return self.root / f"{campaign_id}.ckpt"

    def save(self, campaign_id: str, payload: dict) -> None:
        _atomic_write_bytes(
            self.path(campaign_id),
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
        )

    def load(self, campaign_id: str) -> dict:
        with open(self.path(campaign_id), "rb") as fh:
            return pickle.load(fh)

    def delete(self, campaign_id: str) -> None:
        self.path(campaign_id).unlink(missing_ok=True)

    def campaign_ids(self) -> list[str]:
        return sorted(p.stem for p in self.root.glob("*.ckpt"))

    def load_all(self) -> dict[str, dict]:
        return {cid: self.load(cid) for cid in self.campaign_ids()}

    def read_meta(self) -> dict | None:
        meta = self.root / self.META_NAME
        if not meta.exists():
            return None
        return json.loads(meta.read_text())

    def write_meta(self, meta: dict) -> None:
        _atomic_write_bytes(
            self.root / self.META_NAME, json.dumps(meta, indent=2).encode()
        )


# ------------------------------------------------------------------ queue


class CampaignQueue:
    """Bounded, budget-ordered round-robin queue of ready campaigns.

    Ready entries live in a heap keyed ``(round, -remaining_budget,
    seq)``: within a round-robin round the campaign with the *most*
    remaining node-hours runs first (big allocations make progress
    early, mirroring how backfill schedulers favour wide jobs), but the
    round number dominates — a campaign that just finished a slice
    re-enters at ``round + 1``, behind every campaign still waiting in
    the current round.  That makes starvation impossible: between two
    consecutive slices of any campaign, every other ready campaign is
    scheduled at least once, whatever the budgets.

    ``capacity`` bounds the *ready* heap; submissions beyond it park in
    a FIFO backlog (admission happens as pops free space) — the
    backpressure surface a driver feeding thousands of campaigns sees.
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None for unbounded)")
        self.capacity = capacity
        self._heap: list[tuple[int, float, int, str]] = []
        self._backlog: deque[tuple[int, float, int, str]] = deque()
        self._members: set[str] = set()
        self._round_floor = 0
        self.parked_total = 0

    def __len__(self) -> int:
        return len(self._heap) + len(self._backlog)

    def __contains__(self, campaign_id: str) -> bool:
        return campaign_id in self._members

    @property
    def ready_size(self) -> int:
        return len(self._heap)

    @property
    def backlog_size(self) -> int:
        return len(self._backlog)

    def push(
        self,
        campaign_id: str,
        remaining_node_hours: float,
        seq: int,
        round_: int | None = None,
    ) -> bool:
        """Enqueue a campaign; returns False when parked in the backlog.

        ``round_=None`` admits at the current round floor (new work joins
        the round in progress rather than jumping ahead of it).
        """
        if campaign_id in self._members:
            raise ValueError(f"campaign {campaign_id!r} is already queued")
        if round_ is None:
            round_ = self._round_floor
        entry = (round_, -float(remaining_node_hours), seq, campaign_id)
        self._members.add(campaign_id)
        if self.capacity is not None and len(self._heap) >= self.capacity:
            self._backlog.append(entry)
            self.parked_total += 1
            return False
        heapq.heappush(self._heap, entry)
        return True

    def pop(self) -> tuple[str, int] | None:
        """Highest-priority ready campaign as ``(campaign_id, round)``."""
        if not self._heap:
            self._admit()
        if not self._heap:
            return None
        round_, _negrem, _seq, campaign_id = heapq.heappop(self._heap)
        self._round_floor = max(self._round_floor, round_)
        self._members.discard(campaign_id)
        self._admit()
        return campaign_id, round_

    def _admit(self) -> None:
        while self._backlog and (
            self.capacity is None or len(self._heap) < self.capacity
        ):
            heapq.heappush(self._heap, self._backlog.popleft())


# ------------------------------------------------------------ slice worker


def _run_slice(dataset: Dataset, job: dict) -> tuple[str, dict | TrajectoryFailure]:
    """Execute one campaign slice; shared by workers and inline mode.

    A slice is a pure function of its input checkpoint: restore (or
    cold-start) the learner, advance at most ``job["steps"]`` steps,
    re-serialize.  Exceptions become :class:`TrajectoryFailure` data —
    the same raising-across-pipes discipline as
    :mod:`repro.core.parallel` — so a poisoned policy costs one campaign,
    never the fleet.
    """
    cid = job["cid"]
    try:
        if job["blob"] is None:
            learner = build_learner(job["spec"], dataset)
        else:
            learner = loads_campaign(job["blob"], dataset)
        n_before = len(learner.records)
        steps_done = 0
        with obs.span(
            "campaign_slice", cat="service", campaign=cid, steps=job["steps"]
        ):
            learner.start()
            for _ in range(job["steps"]):
                if not learner.step():
                    break
                steps_done += 1
        finished = learner.finished
        trajectory = learner.finalize() if finished else None
        return (
            "ok",
            {
                "cid": cid,
                "blob": dumps_campaign(learner, dataset),
                "n_records_before": n_before,
                "n_records": len(learner.records),
                "new_indices": [
                    int(r.dataset_index) for r in learner.records[n_before:]
                ],
                "iterations": learner.iteration,
                "steps_done": steps_done,
                "cum_cost": learner.cumulative_cost_spent,
                "finished": finished,
                "trajectory": trajectory,
                "obs": None,
            },
        )
    except Exception as exc:  # noqa: BLE001 - the boundary must be total
        return (
            "failed",
            TrajectoryFailure(
                name=cid, error=repr(exc), traceback=_traceback.format_exc()
            ),
        )


def _campaign_worker_main(conn, rank: int, trace_enabled: bool) -> None:
    """Entry point of one spawned campaign worker (must be importable).

    Protocol: ``("dataset", ds)`` installs the shared dataset (doubles as
    the readiness handshake), ``("slice", job)`` runs one slice,
    ``("ping", None)`` / ``("close", None)`` are liveness/shutdown.
    Chaos directives ride on the job: ``crash`` hard-kills the process
    (``os._exit`` — the parent sees EOF, exactly like a node failure),
    ``oom`` aborts before any work, ``timeout`` sleeps past the parent's
    deadline kill, ``straggler`` sleeps then runs normally.
    """
    if trace_enabled:
        obs.enable_tracing()
    dataset: Dataset | None = None
    while True:
        try:
            cmd, payload = conn.recv()
        except (EOFError, KeyboardInterrupt):
            break
        if cmd == "close":
            conn.send(("ok", None))
            break
        if cmd == "dataset":
            dataset = payload
            conn.send(("ok", rank))
            continue
        if cmd == "ping":
            conn.send(("ok", rank))
            continue
        if cmd != "slice":
            conn.send(
                ("failed", TrajectoryFailure(name="?", error=f"unknown command {cmd!r}"))
            )
            continue
        try:
            directive = payload.get("directive")
            if directive == "crash":
                os._exit(17)  # a node failure does not unwind the stack
            if directive == "oom":
                conn.send(("fault", {"kind": FaultKind.OOM.value, "cid": payload["cid"]}))
                continue
            if directive in ("timeout", "straggler"):
                time.sleep(payload["sleep_s"])
                if directive == "timeout":
                    # Only reached if the parent's deadline kill raced
                    # behind; either path yields the same TIMEOUT fault.
                    conn.send(
                        ("fault", {"kind": FaultKind.TIMEOUT.value, "cid": payload["cid"]})
                    )
                    continue
            status, value = _run_slice(dataset, payload)
            if status == "ok":
                snap = obs.snapshot_state(reset_after=True)
                value["obs"] = None if payload.get("drop_obs") else snap
            conn.send((status, value))
        except Exception as exc:  # noqa: BLE001 - report, never kill the pipe
            conn.send(
                (
                    "failed",
                    TrajectoryFailure(
                        name=payload.get("cid", "?") if isinstance(payload, dict) else "?",
                        error=repr(exc),
                        traceback=_traceback.format_exc(),
                    ),
                )
            )


class _WorkerHandle:
    """One live worker process: its pipe plus the slice it is running."""

    __slots__ = ("rank", "proc", "conn", "ticket")

    def __init__(self, rank, proc, conn) -> None:
        self.rank = rank
        self.proc = proc
        self.conn = conn
        self.ticket: "_Ticket | None" = None


class CampaignWorkerPool:
    """Spawn-safe campaign workers the service dispatches slices to.

    Unlike :class:`~repro.core.parallel.ShardWorkerPool` (synchronous
    phases, the parent is the barrier), campaign workers are *free
    running*: each owns at most one in-flight slice and the service
    multiplexes replies with :func:`multiprocessing.connection.wait`.
    Workers are expendable — a dead one (chaos crash, real crash) is
    respawned in place and re-fed the dataset; the slice it was running
    is re-dispatched from its checkpoint by the scheduler.
    """

    def __init__(self, num_workers: int, dataset: Dataset) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self._ctx = get_context("spawn")
        self._dataset = dataset
        self.workers = [self._spawn(rank) for rank in range(num_workers)]

    def __len__(self) -> int:
        return len(self.workers)

    def _spawn(self, rank: int) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_campaign_worker_main,
            args=(child_conn, rank, obs.tracing_enabled()),
            daemon=True,
            name=f"campaign-worker-{rank}",
        )
        proc.start()
        child_conn.close()
        # Shipping the dataset doubles as the readiness handshake.
        parent_conn.send(("dataset", self._dataset))
        status, _ = parent_conn.recv()
        if status != "ok":  # pragma: no cover - import-time breakage only
            raise ServiceError(f"campaign worker {rank} failed to initialize")
        return _WorkerHandle(rank, proc, parent_conn)

    def respawn(self, handle: _WorkerHandle) -> None:
        """Replace a dead (or condemned) worker in place."""
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if handle.proc.is_alive():
            handle.proc.terminate()
        handle.proc.join(timeout=5.0)
        fresh = self._spawn(handle.rank)
        handle.proc = fresh.proc
        handle.conn = fresh.conn
        handle.ticket = None

    def idle(self) -> Iterator[_WorkerHandle]:
        return (w for w in self.workers if w.ticket is None)

    def busy(self) -> list[_WorkerHandle]:
        return [w for w in self.workers if w.ticket is not None]

    def close(self) -> None:
        """Shut every worker down; safe to call twice."""
        for w in self.workers:
            try:
                if w.proc.is_alive():
                    if w.ticket is not None:
                        # Mid-slice: no point draining — the result would
                        # be discarded anyway (nothing committed).
                        w.proc.terminate()
                    else:
                        w.conn.send(("close", None))
                        if w.conn.poll(2.0):
                            w.conn.recv()
            except (OSError, BrokenPipeError):
                pass
            finally:
                try:
                    w.conn.close()
                except OSError:
                    pass
        for w in self.workers:
            w.proc.join(timeout=2.0)
            if w.proc.is_alive():  # pragma: no cover - stuck worker
                w.proc.terminate()
        self.workers = []

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            if self.workers:
                self.close()
        except Exception:
            pass


# ------------------------------------------------------------- service


@dataclass
class _Ticket:
    """One dispatched slice: its chaos verdict and fault-accounting data."""

    cid: str
    directive: str | None = None
    deadline: float | None = None
    wasted_node_hours: float = 0.0
    lost_wall_seconds: float = 0.0
    straggle_overhead_nh: float = 0.0


@dataclass
class _Campaign:
    """The service's mutable per-campaign record (checkpoint mirror)."""

    spec: CampaignSpec
    seq: int
    status: CampaignStatus = CampaignStatus.PENDING
    blob: bytes | None = None
    n_records: int = 0
    iterations: int = 0
    steps_done: int = 0
    slice_steps: int = 1
    slice_index: int = 0
    attempt: int = 0
    round: int = 0
    cum_cost_seen: float = 0.0
    ledger: CampaignLedger = field(default_factory=CampaignLedger)
    fault_events: list[FaultEvent] = field(default_factory=list)
    failure: TrajectoryFailure | None = None
    trajectory: Trajectory | None = None
    chaos_rng: np.random.Generator | None = None
    obs_metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    trace_payloads: list = field(default_factory=list)
    policy_fingerprint: str | None = None


@dataclass(frozen=True)
class CampaignInfo:
    """One row of the service's campaign listing (CLI surface)."""

    campaign_id: str
    status: str
    iterations: int
    records: int
    round: int
    budget_node_hours: float
    committed_node_hours: float
    wasted_node_hours: float
    remaining_node_hours: float
    queue_wait_seconds: float
    faults: int
    stop_reason: str | None

    def as_dict(self) -> dict:
        return {
            "campaign_id": self.campaign_id,
            "status": self.status,
            "iterations": self.iterations,
            "records": self.records,
            "round": self.round,
            "budget_node_hours": self.budget_node_hours,
            "committed_node_hours": self.committed_node_hours,
            "wasted_node_hours": self.wasted_node_hours,
            "remaining_node_hours": self.remaining_node_hours,
            "queue_wait_seconds": self.queue_wait_seconds,
            "faults": self.faults,
            "stop_reason": self.stop_reason,
        }


@dataclass(frozen=True)
class ServiceReport:
    """What one :meth:`CampaignService.run` call (cumulatively) did."""

    slices_committed: int
    slices_discarded: int
    fault_counts: dict
    campaigns: dict

    @property
    def done(self) -> int:
        return sum(1 for s in self.campaigns.values() if s == "done")

    @property
    def failed(self) -> int:
        return sum(1 for s in self.campaigns.values() if s == "failed")

    def as_dict(self) -> dict:
        return {
            "slices_committed": self.slices_committed,
            "slices_discarded": self.slices_discarded,
            "fault_counts": dict(self.fault_counts),
            "campaigns": dict(self.campaigns),
        }


class CampaignService:
    """Long-lived scheduler multiplexing AL campaigns over a worker fleet.

    Parameters
    ----------
    dataset : Dataset
        The shared job table every campaign selects from (interned out of
        all checkpoints; the store refuses a different dataset).
    store : CheckpointStore or path, optional
        Durable checkpoint directory.  Existing campaigns are attached on
        construction — constructing a service over a store left by a
        killed one *is* the resume path.  ``None`` keeps checkpoints in
        memory only (fast property-test mode; no kill-resume).
    workers : int
        0 (default) runs slices inline — same scheduler, same commit
        path, no processes.  ``N >= 1`` spawns a
        :class:`CampaignWorkerPool` and multiplexes.
    steps_per_slice : int
        Default AL steps per slice (per-campaign override on the spec).
    queue_capacity : int, optional
        Ready-queue bound; see :class:`CampaignQueue`.
    chaos : ChaosConfig, optional
        Enable the chaos harness.
    """

    def __init__(
        self,
        dataset: Dataset,
        store: CheckpointStore | str | Path | None = None,
        *,
        workers: int = 0,
        steps_per_slice: int = 8,
        queue_capacity: int | None = None,
        chaos: ChaosConfig | None = None,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if steps_per_slice < 1:
            raise ValueError("steps_per_slice must be >= 1")
        self.dataset = dataset
        self.workers = workers
        self.steps_per_slice = steps_per_slice
        self.chaos = chaos
        self._injector = (
            FaultInjector(chaos.faults)
            if chaos is not None and chaos.faults.enabled
            else None
        )
        self._queue = CampaignQueue(queue_capacity)
        self._campaigns: dict[str, _Campaign] = {}
        self._seq = 0
        self._pool: CampaignWorkerPool | None = None
        self._slices_committed = 0
        self._slices_discarded = 0
        self._fault_counts: dict[str, int] = {}

        if store is None:
            self.store: CheckpointStore | None = None
        else:
            self.store = store if isinstance(store, CheckpointStore) else CheckpointStore(store)
            fp = dataset_fingerprint(dataset)
            meta = self.store.read_meta()
            if meta is None:
                self.store.write_meta(
                    {"version": CHECKPOINT_VERSION, "dataset_fingerprint": fp}
                )
            elif meta.get("dataset_fingerprint") != fp:
                raise ServiceError(
                    "checkpoint store belongs to a different dataset "
                    f"(store {meta.get('dataset_fingerprint')!r} != {fp!r})"
                )
            self._attach_existing()

    # ------------------------------------------------------------- lifecycle

    def __enter__(self) -> "CampaignService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    # ------------------------------------------------------------- submission

    def submit(self, spec: CampaignSpec) -> str:
        """Register a campaign and enqueue it; returns its id."""
        if spec.campaign_id in self._campaigns:
            raise ValueError(f"campaign {spec.campaign_id!r} already exists")
        rec = _Campaign(
            spec=spec,
            seq=self._seq,
            slice_steps=spec.steps_per_slice or self.steps_per_slice,
            ledger=CampaignLedger(budget_node_hours=spec.budget_node_hours),
            chaos_rng=self._fresh_chaos_rng(self._seq),
            policy_fingerprint=policy_fingerprint(spec),
        )
        self._seq += 1
        self._campaigns[spec.campaign_id] = rec
        self._queue.push(
            spec.campaign_id, rec.ledger.remaining_node_hours, rec.seq, round_=rec.round
        )
        obs.incr("service.campaign.submitted")
        self._checkpoint(rec)
        return spec.campaign_id

    def _fresh_chaos_rng(self, seq: int) -> np.random.Generator | None:
        if self.chaos is None:
            return None
        return np.random.default_rng(
            np.random.SeedSequence(entropy=self.chaos.seed, spawn_key=(seq,))
        )

    def pause(self, campaign_id: str) -> None:
        """Hold a campaign out of scheduling (its stale queue entry is
        skipped lazily; an in-flight slice still commits, then parks)."""
        rec = self._rec(campaign_id)
        if rec.status not in (CampaignStatus.PENDING, CampaignStatus.PAUSED):
            raise ServiceError(f"cannot pause {campaign_id!r} ({rec.status.value})")
        rec.status = CampaignStatus.PAUSED
        self._checkpoint(rec)

    def resume_campaign(self, campaign_id: str) -> None:
        """Re-admit a paused campaign at the current round-robin round."""
        rec = self._rec(campaign_id)
        if rec.status is not CampaignStatus.PAUSED:
            raise ServiceError(f"cannot resume {campaign_id!r} ({rec.status.value})")
        rec.status = CampaignStatus.PENDING
        if campaign_id not in self._queue:
            self._queue.push(
                campaign_id, rec.ledger.remaining_node_hours, rec.seq, round_=None
            )
        self._checkpoint(rec)

    def campaigns(self) -> list[CampaignInfo]:
        """Listing of every known campaign, in submission order."""
        out = []
        for rec in sorted(self._campaigns.values(), key=lambda r: r.seq):
            out.append(
                CampaignInfo(
                    campaign_id=rec.spec.campaign_id,
                    status=rec.status.value,
                    iterations=rec.iterations,
                    records=rec.n_records,
                    round=rec.round,
                    budget_node_hours=rec.ledger.budget_node_hours,
                    committed_node_hours=rec.ledger.committed_node_hours,
                    wasted_node_hours=rec.ledger.wasted_node_hours,
                    remaining_node_hours=rec.ledger.remaining_node_hours,
                    queue_wait_seconds=rec.ledger.queue_wait_seconds,
                    faults=len(rec.fault_events),
                    stop_reason=(
                        rec.trajectory.stop_reason.value if rec.trajectory else None
                    ),
                )
            )
        return out

    def result(self, campaign_id: str) -> Trajectory | TrajectoryFailure | None:
        """The campaign's outcome, or None while it is still running."""
        rec = self._rec(campaign_id)
        if rec.status is CampaignStatus.DONE:
            return rec.trajectory
        if rec.status is CampaignStatus.FAILED:
            return rec.failure
        return None

    def fault_events(self, campaign_id: str) -> tuple[FaultEvent, ...]:
        return tuple(self._rec(campaign_id).fault_events)

    def _rec(self, campaign_id: str) -> _Campaign:
        try:
            return self._campaigns[campaign_id]
        except KeyError:
            raise KeyError(f"unknown campaign {campaign_id!r}") from None

    # ------------------------------------------------------------ event loop

    def run(self, max_slices: int | None = None) -> ServiceReport:
        """Schedule until done (or ``max_slices`` commits), then report.

        ``max_slices`` bounds *committed* slices this call — the chaos
        suite's kill switch: a service run to ``max_slices=k`` and closed
        has exactly the first ``k`` commits checkpointed, and a fresh
        service over the same store continues from there bit-identically
        (in-flight un-committed slices are pure re-runnable work).
        """
        goal = None if max_slices is None else self._slices_committed + max_slices
        if self.workers == 0:
            while goal is None or self._slices_committed < goal:
                if not self._run_one_inline():
                    break
        else:
            if self._pool is None:
                self._pool = CampaignWorkerPool(self.workers, self.dataset)
            while goal is None or self._slices_committed < goal:
                self._fill_workers()
                if not self._pool.busy():
                    break
                self._wait_and_handle()
        self.drain_observability()
        return self.report()

    def report(self) -> ServiceReport:
        return ServiceReport(
            slices_committed=self._slices_committed,
            slices_discarded=self._slices_discarded,
            fault_counts=dict(self._fault_counts),
            campaigns={
                r.spec.campaign_id: r.status.value
                for r in sorted(self._campaigns.values(), key=lambda r: r.seq)
            },
        )

    def _next_pending(self) -> _Campaign | None:
        """Pop ready campaigns, lazily skipping paused/finished entries."""
        while True:
            nxt = self._queue.pop()
            if nxt is None:
                return None
            campaign_id, _round = nxt
            rec = self._campaigns[campaign_id]
            if rec.status is not CampaignStatus.PENDING:
                continue
            if rec.ledger.exhausted:
                self._finalize_budget(rec)
                self._checkpoint(rec)
                continue
            return rec

    # --- inline mode

    def _run_one_inline(self) -> bool:
        rec = self._next_pending()
        if rec is None:
            return False
        ticket = self._decide(rec)
        if ticket.directive in ("crash", "oom", "timeout"):
            # Inline has no process to kill: a fatal verdict simply means
            # the slice's work is discarded before it exists — identical
            # commit-state semantics to killing a real worker.
            self._discard(rec, FaultKind(ticket.directive), ticket)
            return True
        job = self._make_job(rec, ticket)
        # Bracket the slice with snapshots so its metrics/spans form the
        # same per-campaign payload a process worker would ship, then
        # restore the service's own accumulated state.
        stash = obs.snapshot_state(reset_after=True)
        status, value = _run_slice(self.dataset, job)
        payload = obs.snapshot_state(reset_after=True)
        obs.merge_state(stash)
        if status == "ok":
            value["obs"] = None if job["drop_obs"] else payload
            self._commit(rec, value, ticket)
        else:
            self._fail(rec, value)
        return True

    # --- process mode

    def _fill_workers(self) -> None:
        for worker in list(self._pool.idle()):
            rec = self._next_pending()
            if rec is None:
                return
            ticket = self._decide(rec)
            job = self._make_job(rec, ticket)
            if ticket.directive == "timeout":
                ticket.deadline = time.monotonic() + self.chaos.timeout_kill_s
            worker.conn.send(("slice", job))
            worker.ticket = ticket

    def _wait_and_handle(self) -> None:
        busy = self._pool.busy()
        deadlines = [w.ticket.deadline for w in busy if w.ticket.deadline is not None]
        timeout = None
        if deadlines:
            timeout = max(0.0, min(deadlines) - time.monotonic())
        ready = connection.wait([w.conn for w in busy], timeout)
        by_conn = {w.conn: w for w in busy}
        for conn in ready:
            worker = by_conn[conn]
            try:
                status, value = conn.recv()
            except (EOFError, ConnectionResetError, OSError):
                self._handle_worker_death(worker)
                continue
            ticket, worker.ticket = worker.ticket, None
            rec = self._campaigns[ticket.cid]
            if status == "ok":
                self._commit(rec, value, ticket)
            elif status == "fault":
                self._discard(rec, FaultKind(value["kind"]), ticket)
            else:
                self._fail(rec, value)
        now = time.monotonic()
        for worker in busy:
            t = worker.ticket
            if t is not None and t.deadline is not None and now >= t.deadline:
                # Deadline kill: the slice overran its window (chaos
                # TIMEOUT); condemn the worker and discard the slice.
                ticket, worker.ticket = t, None
                self._pool.respawn(worker)
                self._discard(self._campaigns[ticket.cid], FaultKind.TIMEOUT, ticket)

    def _handle_worker_death(self, worker: _WorkerHandle) -> None:
        ticket, worker.ticket = worker.ticket, None
        self._pool.respawn(worker)
        if ticket is None:  # pragma: no cover - death between slices
            return
        # Whether chaos ordered the crash or the worker genuinely died,
        # the response is the same: discard, respawn, re-run.
        self._discard(self._campaigns[ticket.cid], FaultKind.CRASH, ticket)

    # ------------------------------------------------------- chaos decisions

    def _decide(self, rec: _Campaign) -> _Ticket:
        """Pass a synthetic slice record through the fault injector."""
        ticket = _Ticket(cid=rec.spec.campaign_id)
        if self._injector is None:
            return ticket
        c = self.chaos
        steps = rec.slice_steps
        synthetic = JobRecord(
            job_id=rec.slice_index,
            features=(),
            wall_seconds=steps * c.step_wall_seconds,
            nodes=1,
            max_rss_MB=c.slice_rss_base_MB + steps * c.slice_rss_per_step_MB,
        )
        insp = self._injector.inspect(synthetic, rec.chaos_rng)
        if insp.fault is None:
            return ticket
        ticket.directive = insp.fault.value
        if insp.fatal:
            ticket.wasted_node_hours = insp.record.cost_node_hours
            ticket.lost_wall_seconds = insp.record.wall_seconds
        elif insp.fault is FaultKind.STRAGGLER:
            ticket.straggle_overhead_nh = (
                (insp.record.wall_seconds - synthetic.wall_seconds)
                * synthetic.nodes
                / 3600.0
            )
        return ticket

    def _make_job(self, rec: _Campaign, ticket: _Ticket) -> dict:
        sleep_s = 0.0
        if ticket.directive == "straggler":
            sleep_s = self.chaos.straggler_sleep_s
        elif ticket.directive == "timeout":
            # Far past the parent's kill deadline: the sleep only ends if
            # the kill raced behind, and the worker then self-reports.
            sleep_s = self.chaos.timeout_kill_s * 50.0
        return {
            "cid": rec.spec.campaign_id,
            "spec": rec.spec if rec.blob is None else None,
            "blob": rec.blob,
            "steps": rec.slice_steps,
            "directive": ticket.directive,
            "sleep_s": sleep_s,
            "drop_obs": ticket.directive == "rss_lost",
        }

    # ------------------------------------------------------------ transitions

    def _commit(self, rec: _Campaign, value: dict, ticket: _Ticket) -> None:
        """Fold one completed slice into committed campaign state."""
        cid = rec.spec.campaign_id
        if value["n_records_before"] != rec.n_records:
            raise ServiceError(
                f"exactly-once violation on {cid!r}: slice ran from "
                f"{value['n_records_before']} records, checkpoint has {rec.n_records}"
            )
        if value["n_records"] != rec.n_records + len(value["new_indices"]):
            raise ServiceError(f"non-contiguous record commit on {cid!r}")
        delta_cost = value["cum_cost"] - rec.cum_cost_seen
        if delta_cost < -1e-12:
            raise ServiceError(f"cumulative cost moved backwards on {cid!r}")
        rec.ledger.charge(max(0.0, delta_cost))
        rec.cum_cost_seen = value["cum_cost"]
        if ticket.directive == "straggler":
            rec.ledger.waste(ticket.straggle_overhead_nh)
            self._record_fault(
                rec,
                FaultKind.STRAGGLER,
                detail=f"slice slowed x{self.chaos.faults.straggler_slowdown}",
            )
        elif ticket.directive == "rss_lost":
            self._record_fault(
                rec, FaultKind.RSS_LOST, detail="slice observability payload lost"
            )
        rec.blob = value["blob"]
        rec.n_records = value["n_records"]
        rec.iterations = value["iterations"]
        rec.steps_done += value["steps_done"]
        rec.slice_index += 1
        rec.attempt = 0
        payload = value.get("obs")
        if payload is not None:
            rec.obs_metrics.merge(payload.get("metrics", {}))
            if payload.get("trace") is not None:
                rec.trace_payloads.append(payload["trace"])
        self._slices_committed += 1
        obs.incr("service.slice.committed")
        if value["finished"]:
            rec.trajectory = value["trajectory"]
            rec.status = CampaignStatus.DONE
            obs.incr("service.campaign.done")
        elif rec.ledger.exhausted:
            self._finalize_budget(rec)
        elif rec.status is CampaignStatus.PENDING:
            rec.round += 1
            self._queue.push(
                cid, rec.ledger.remaining_node_hours, rec.seq, round_=rec.round
            )
        # A PAUSED campaign's in-flight slice commits but does not
        # re-enqueue; resume_campaign() re-admits it.
        self._checkpoint(rec)

    def _discard(self, rec: _Campaign, kind: FaultKind, ticket: _Ticket) -> None:
        """A slice died: charge the waste, retry or fail — never commit."""
        cid = rec.spec.campaign_id
        rec.ledger.waste(ticket.wasted_node_hours)
        self._slices_discarded += 1
        obs.incr("service.slice.discarded")
        retry = self.chaos.retry if self.chaos is not None else RetryPolicy()
        if rec.ledger.exhausted:
            self._record_fault(
                rec,
                kind,
                lost_wall=ticket.lost_wall_seconds,
                detail="budget exhausted by waste",
            )
            self._finalize_budget(rec)
        elif retry.should_retry(kind, True, rec.attempt):
            rec.attempt += 1
            backoff = retry.backoff_seconds(rec.attempt)
            rec.ledger.wait(backoff)
            detail = "slice resubmitted"
            halve = (kind is FaultKind.OOM and retry.escalate_p_on_oom) or (
                kind is FaultKind.TIMEOUT
            )
            if halve and rec.slice_steps > 1:
                # The slice shape did not fit (footprint or wall-clock
                # window): resubmit half as long, the scheduler analog of
                # ResilientJobRunner's resubmit-wider OOM response.
                rec.slice_steps = max(1, rec.slice_steps // 2)
                detail = f"slice resubmitted at steps={rec.slice_steps}"
            self._record_fault(
                rec,
                kind,
                lost_wall=ticket.lost_wall_seconds,
                backoff=backoff,
                detail=detail,
            )
            if rec.status is CampaignStatus.PENDING and cid not in self._queue:
                self._queue.push(
                    cid, rec.ledger.remaining_node_hours, rec.seq, round_=rec.round
                )
        else:
            self._record_fault(
                rec, kind, lost_wall=ticket.lost_wall_seconds, detail="gave up"
            )
            rec.status = CampaignStatus.FAILED
            rec.failure = TrajectoryFailure(
                name=cid,
                error=(
                    f"slice discarded by {kind.value} "
                    f"after {rec.attempt + 1} attempts"
                ),
            )
            obs.incr("service.campaign.failed")
        self._checkpoint(rec)

    def _fail(self, rec: _Campaign, failure: TrajectoryFailure) -> None:
        """The slice itself raised: deterministic, so never retried."""
        rec.status = CampaignStatus.FAILED
        rec.failure = failure
        obs.incr("service.campaign.failed")
        self._checkpoint(rec)

    def _finalize_budget(self, rec: _Campaign) -> None:
        """Close out a campaign whose ledger ran dry."""
        if rec.blob is not None:
            learner = loads_campaign(rec.blob, self.dataset)
        else:
            learner = build_learner(rec.spec, self.dataset)
        rec.trajectory = learner.finalize(stop=StopReason.BUDGET_EXHAUSTED)
        rec.status = CampaignStatus.DONE
        obs.incr("service.campaign.done")
        obs.incr("service.campaign.budget_exhausted")

    def _record_fault(
        self,
        rec: _Campaign,
        kind: FaultKind,
        lost_wall: float = 0.0,
        backoff: float = 0.0,
        detail: str = "",
    ) -> None:
        self._fault_counts[kind.value] = self._fault_counts.get(kind.value, 0) + 1
        obs.incr(f"service.fault.{kind.value}")
        rec.fault_events.append(
            FaultEvent(
                job_id=rec.slice_index,
                attempt=rec.attempt,
                kind=kind,
                lost_wall_seconds=lost_wall,
                nodes=1,
                backoff_seconds=backoff,
                detail=detail,
            )
        )

    # ------------------------------------------------------------ checkpoints

    def _checkpoint(self, rec: _Campaign) -> None:
        if self.store is None:
            return
        self.store.save(
            rec.spec.campaign_id,
            {
                "version": CHECKPOINT_VERSION,
                "spec": rec.spec,
                "seq": rec.seq,
                "status": rec.status.value,
                "blob": rec.blob,
                "n_records": rec.n_records,
                "iterations": rec.iterations,
                "steps_done": rec.steps_done,
                "slice_steps": rec.slice_steps,
                "slice_index": rec.slice_index,
                "attempt": rec.attempt,
                "round": rec.round,
                "cum_cost_seen": rec.cum_cost_seen,
                "ledger": rec.ledger,
                "fault_events": tuple(rec.fault_events),
                "failure": rec.failure,
                "trajectory": rec.trajectory,
                "chaos_rng": rec.chaos_rng,
                "config_fingerprint": rec.spec.config.fingerprint(),
                # New in PR 9; read back with .get() so version-1
                # checkpoints written before the key stay loadable.
                "policy_fingerprint": rec.policy_fingerprint,
            },
        )

    def _attach_existing(self) -> None:
        for campaign_id, payload in self.store.load_all().items():
            if payload.get("version") != CHECKPOINT_VERSION:
                raise ServiceError(
                    f"checkpoint {campaign_id!r} has version "
                    f"{payload.get('version')!r}, expected {CHECKPOINT_VERSION}"
                )
            spec: CampaignSpec = payload["spec"]
            stamped = payload["config_fingerprint"]
            current = spec.config.fingerprint()
            if stamped != current:
                raise ServiceError(
                    f"refusing to resume {campaign_id!r}: its checkpoint was "
                    f"written under config {stamped}, which no longer matches "
                    f"{current} — resume bit-identity cannot be guaranteed"
                )
            stamped_policy = payload.get("policy_fingerprint")
            current_policy = policy_fingerprint(spec)
            if stamped_policy != current_policy:
                raise ServiceError(
                    f"refusing to resume {campaign_id!r}: its checkpoint was "
                    f"written under policy fingerprint {stamped_policy}, which "
                    f"no longer matches {current_policy} — the policy artifact "
                    "changed (retrained?) and resume bit-identity cannot be "
                    "guaranteed"
                )
            rec = _Campaign(
                spec=spec,
                seq=payload["seq"],
                status=CampaignStatus(payload["status"]),
                blob=payload["blob"],
                n_records=payload["n_records"],
                iterations=payload["iterations"],
                steps_done=payload["steps_done"],
                slice_steps=payload["slice_steps"],
                slice_index=payload["slice_index"],
                attempt=payload["attempt"],
                round=payload["round"],
                cum_cost_seen=payload["cum_cost_seen"],
                ledger=payload["ledger"],
                fault_events=list(payload["fault_events"]),
                failure=payload["failure"],
                trajectory=payload["trajectory"],
                # A checkpoint written by a chaos-free service carries no
                # chaos stream; a chaos-enabled service attaching to it
                # seeds the campaign's stream at its fixed tree position.
                chaos_rng=(
                    payload["chaos_rng"]
                    if payload["chaos_rng"] is not None
                    else self._fresh_chaos_rng(payload["seq"])
                ),
                policy_fingerprint=stamped_policy,
            )
            self._campaigns[campaign_id] = rec
            self._seq = max(self._seq, rec.seq + 1)
            if rec.status is CampaignStatus.PENDING:
                self._queue.push(
                    campaign_id,
                    rec.ledger.remaining_node_hours,
                    rec.seq,
                    round_=rec.round,
                )

    # ---------------------------------------------------------- observability

    def drain_observability(self) -> None:
        """Merge buffered per-campaign payloads home, one lane each.

        Payloads were buffered per campaign at commit time; merging
        happens here in campaign-*submission* order (seq), onto trace
        lane ``seq + 1`` — so the final global state is identical for
        any worker count and any completion interleaving.  Metrics
        merging is commutative anyway (sums; gauges keep the max); the
        fixed lane assignment makes the trace deterministic too.
        """
        for rec in sorted(self._campaigns.values(), key=lambda r: r.seq):
            obs.merge_state({"metrics": rec.obs_metrics.state(), "trace": None})
            rec.obs_metrics.reset()
            for trace in rec.trace_payloads:
                obs.merge_state({"metrics": {}, "trace": trace}, track=rec.seq + 1)
            rec.trace_payloads.clear()
