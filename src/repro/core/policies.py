"""The five candidate-selection algorithms of Sec. IV-B.

Each policy sees a :class:`CandidateView` — the remaining Active samples
with the current models' predictive means and standard deviations for the
(log10) cost and memory responses — and returns the position of the chosen
candidate, or ``None`` to terminate AL early (only RGMA does this, when no
candidate satisfies the memory constraint).

All predictions are in **log10 space**: ``sigma - mu`` of log values is the
log of the non-log ratio ``sigma-weighted uncertainty per unit cost`` that
MinPred and RandGoodness chase.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro import obs
from repro.registry import register_policy


def timed_select(select):
    """Credit a policy's ``select`` to the ``select`` metrics phase.

    Applied to every built-in policy so :func:`repro.obs.report` breaks
    the AL hot loop down into fit / refactor / predict / select without
    the loop having to wrap each call site.  When tracing is enabled the
    same region also becomes a ``select`` span (annotated with the policy
    name) nested under the current AL iteration.
    """

    @functools.wraps(select)
    def wrapper(self, view: "CandidateView", rng: np.random.Generator):
        with obs.timed("select", cat="al", policy=getattr(self, "name", "?")):
            return select(self, view, rng)

    return wrapper


@dataclass(frozen=True)
class CandidateView:
    """Model state over the remaining candidates at one AL iteration.

    Attributes
    ----------
    X : ndarray, shape (m, d)
        Scaled features of the remaining Active samples.
    mu_cost, sigma_cost : ndarray, shape (m,)
        Predictive mean / std of the log10-cost model.
    mu_mem, sigma_mem : ndarray, shape (m,)
        Predictive mean / std of the log10-memory model.
    """

    X: np.ndarray
    mu_cost: np.ndarray
    sigma_cost: np.ndarray
    mu_mem: np.ndarray
    sigma_mem: np.ndarray

    def __post_init__(self) -> None:
        m = self.X.shape[0]
        for name in ("mu_cost", "sigma_cost", "mu_mem", "sigma_mem"):
            if getattr(self, name).shape != (m,):
                raise ValueError(f"{name} must have shape ({m},)")

    def __len__(self) -> int:
        return int(self.X.shape[0])


class SelectionPolicy(Protocol):
    """Callable deciding which candidate to run next."""

    #: Short name used in registries, tables and figures.
    name: str

    def select(self, view: CandidateView, rng: np.random.Generator) -> int | None:
        """Index into ``view`` of the next experiment, or None to stop."""
        ...


@register_policy("rand_uniform")
class RandUniform:
    """Uniform random sampling — the reference point, no model feedback.

    Not useful in sequential AL (batch sampling would be cheaper), but it
    anchors the comparison of every model-driven scheme.
    """

    name = "rand_uniform"

    @timed_select
    def select(self, view: CandidateView, rng: np.random.Generator) -> int | None:
        if len(view) == 0:
            return None
        return int(rng.integers(len(view)))


@register_policy("max_sigma")
class MaxSigma:
    """Uncertainty sampling: the largest predictive std of the cost model.

    Called "Variance Reduction" in the authors' earlier work; Settles'
    survey knows it as Uncertainty Sampling with least-confident selection.
    Ignores the magnitude of the cost itself, so it happily buys the most
    expensive experiment on the menu.
    """

    name = "max_sigma"

    @timed_select
    def select(self, view: CandidateView, rng: np.random.Generator) -> int | None:
        if len(view) == 0:
            return None
        return int(np.argmax(view.sigma_cost))


@register_policy("min_pred")
class MinPred:
    """Greedy "uncertainty per unit cost": argmax (sigma - mu) in log space.

    Equivalent to maximizing the non-log ratio ``sigma/mu``.  As the paper
    observes, the variation of ``mu`` across candidates dwarfs that of
    ``sigma`` (often by two orders of magnitude), so the policy degrades to
    selecting the *cheapest predicted* candidate — hence its name.
    """

    name = "min_pred"

    @timed_select
    def select(self, view: CandidateView, rng: np.random.Generator) -> int | None:
        if len(view) == 0:
            return None
        return int(np.argmax(view.sigma_cost - view.mu_cost))


def goodness_distribution(
    mu: np.ndarray, sigma: np.ndarray, base: float = 10.0
) -> np.ndarray:
    """Normalized candidate "goodness" ``base ** (sigma - mu)``.

    Base 10 matches the log10 pre-processing; higher bases skew the
    distribution further toward the cheap candidates.  The exponent is
    shifted by its maximum before exponentiation so the computation never
    overflows, which leaves the normalized distribution unchanged.
    """
    if base <= 1.0:
        raise ValueError("base must exceed 1")
    expo = sigma - mu
    expo = expo - expo.max()
    g = np.power(base, expo)
    total = g.sum()
    if not np.isfinite(total) or total <= 0:
        # Degenerate (all -inf but the max): fall back to the argmax.
        g = np.zeros_like(expo)
        g[np.argmax(expo)] = 1.0
        return g
    return g / total


@register_policy("rand_goodness")
class RandGoodness:
    """Randomized cost-efficiency sampling (the paper's exploration fix).

    Samples candidates from the goodness distribution
    ``g = 10 ** (sigma_cost - mu_cost)``, normalized.  Mostly picks near
    MinPred's choices but occasionally buys a more expensive, informative
    candidate — restoring the exploration MinPred lost.
    """

    name = "rand_goodness"

    def __init__(self, base: float = 10.0) -> None:
        self.base = float(base)

    @timed_select
    def select(self, view: CandidateView, rng: np.random.Generator) -> int | None:
        if len(view) == 0:
            return None
        g = goodness_distribution(view.mu_cost, view.sigma_cost, self.base)
        return int(rng.choice(len(view), p=g))


@register_policy("rgma")
class RGMA:
    """RandGoodness with Memory Awareness — Algorithm 2.

    Candidates whose predicted (log10) memory exceeds the limit are marked
    undesirable and removed before the goodness draw.  When *no* candidate
    satisfies the constraint the policy terminates AL early (the stopping
    condition discussed in Sec. V-D).

    Parameters
    ----------
    memory_limit_MB : float
        ``L_mem`` in raw MB; compared in log10 space against ``mu_mem``.
    base : float
        Goodness base, as in :class:`RandGoodness`.
    """

    name = "rgma"

    def __init__(self, memory_limit_MB: float, base: float = 10.0) -> None:
        if memory_limit_MB <= 0:
            raise ValueError("memory limit must be positive")
        self.memory_limit_MB = float(memory_limit_MB)
        self.base = float(base)

    @property
    def log_limit(self) -> float:
        return float(np.log10(self.memory_limit_MB))

    @timed_select
    def select(self, view: CandidateView, rng: np.random.Generator) -> int | None:
        if len(view) == 0:
            return None
        satisfying = np.flatnonzero(view.mu_mem < self.log_limit)
        if satisfying.size == 0:
            return None  # early termination: everything looks unsafe
        g = goodness_distribution(
            view.mu_cost[satisfying], view.sigma_cost[satisfying], self.base
        )
        return int(satisfying[rng.choice(satisfying.size, p=g)])


#: Registry keyed by policy name; values are the policy classes.
POLICIES: dict[str, type] = {
    RandUniform.name: RandUniform,
    MaxSigma.name: MaxSigma,
    MinPred.name: MinPred,
    RandGoodness.name: RandGoodness,
    RGMA.name: RGMA,
}
