"""Parallel execution of independent AL trajectories.

The figure benchmarks and the paper's cross-validation run many AL
trajectories that share nothing but the (read-only) dataset — one per
(policy, partition seed) pair.  :func:`run_trajectories` fans a list of
:class:`TrajectorySpec` out over a spawn-safe ``concurrent.futures``
process pool.

Determinism: every spec derives its own ``Generator`` from
``SeedSequence(entropy=base_seed, spawn_key=(traj_index,))`` — the same
stream construction :mod:`repro.core.batch` has always used — so results
are identical serial or parallel, at any worker count, and specs with the
same ``(base_seed, traj_index)`` share a partition (paired comparisons
across policies).

Spawn-safety: workers are started with the ``spawn`` method (fresh
interpreters, no inherited locks or BLAS thread state); everything a
worker needs — a module-level worker function and picklable policy
factories (classes or :func:`functools.partial`, not lambdas) — crosses
the process boundary by pickling.  The shared read-only dataset is
shipped **once per worker** through the pool initializer
(:func:`_pool_init`) instead of riding along with every submitted spec,
so submitting ``S`` specs to ``W`` workers pickles the dataset ``W``
times, not ``S`` times.

Failure isolation: exceptions are caught *inside* the worker and returned
as :class:`TrajectoryFailure` values, so one trajectory that raises (or a
worker process that dies outright) never hangs the pool or discards the
other trajectories' results — see ``run_trajectories(on_error=...)``.
"""

from __future__ import annotations

import os
import traceback as _traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Callable, Iterable, Sequence

import numpy as np

from repro import obs
from repro.core.loop import ActiveLearner
from repro.core.partitions import random_partition
from repro.core.trajectory import Trajectory
from repro.data.dataset import Dataset


@dataclass(frozen=True)
class TrajectorySpec:
    """One independent AL run: a policy factory plus its seed-tree position.

    Attributes
    ----------
    name : str
        Display name the result is reported under.
    policy_factory : callable
        Zero-argument factory for a fresh policy instance.  Must be
        picklable for parallel execution — a policy class or a
        ``functools.partial``, not a lambda.
    base_seed, traj_index : int
        Position in the seed tree; specs sharing both get the same
        partition and RNG stream.
    n_init, n_test, max_iterations, hyper_refit_interval, n_restarts :
        Forwarded to :class:`~repro.core.loop.ActiveLearner`.
    learner_kwargs : dict
        Extra keyword arguments for :class:`ActiveLearner` (e.g.
        ``stopping_rule``, ``cache_candidates``).
    """

    name: str
    policy_factory: Callable[[], object]
    base_seed: int = 0
    traj_index: int = 0
    n_init: int = 50
    n_test: int = 200
    max_iterations: int | None = None
    hyper_refit_interval: int = 1
    n_restarts: int = 2
    learner_kwargs: dict = field(default_factory=dict)


@dataclass(frozen=True)
class TrajectoryFailure:
    """A trajectory that died instead of returning a :class:`Trajectory`.

    Returned in place of the trajectory when ``on_error="return"``, so one
    bad spec (a policy that raises, a worker that crashes) costs exactly
    one result — never the whole batch.

    Attributes
    ----------
    name : str
        The failed spec's display name.
    error : str
        ``repr`` of the exception (or a pool-level diagnosis).
    traceback : str
        Formatted traceback from the worker, for postmortems.
    """

    name: str
    error: str
    traceback: str = ""


def _run_spec(dataset: Dataset, spec: TrajectorySpec) -> tuple[str, Trajectory]:
    """Worker body: one fully seeded AL run."""
    seed_seq = np.random.SeedSequence(
        entropy=spec.base_seed, spawn_key=(spec.traj_index,)
    )
    rng = np.random.default_rng(seed_seq)
    partition = random_partition(
        rng, len(dataset), n_init=spec.n_init, n_test=spec.n_test
    )
    learner = ActiveLearner(
        dataset,
        partition,
        policy=spec.policy_factory(),
        rng=rng,
        n_restarts=spec.n_restarts,
        hyper_refit_interval=spec.hyper_refit_interval,
        max_iterations=spec.max_iterations,
        **spec.learner_kwargs,
    )
    return spec.name, learner.run()


def _run_spec_guarded(
    dataset: Dataset, spec: TrajectorySpec
) -> tuple[str, Trajectory | TrajectoryFailure]:
    """Worker body that converts exceptions into data.

    Raising across the process boundary would poison ``pool.map`` — every
    later result is lost and, for unpicklable exceptions, the pool can
    deadlock.  Catching *inside* the worker makes a failed trajectory an
    ordinary return value.
    """
    try:
        return _run_spec(dataset, spec)
    except Exception as exc:  # noqa: BLE001 - the boundary must be total
        return spec.name, TrajectoryFailure(
            name=spec.name, error=repr(exc), traceback=_traceback.format_exc()
        )


#: Dataset installed by :func:`_pool_init` in each worker process.
_POOL_DATASET: Dataset | None = None


def _pool_init(dataset: Dataset, trace_enabled: bool = False) -> None:
    """Pool initializer: receive the shared dataset once per worker.

    ``trace_enabled`` propagates the parent's tracing switch, so spans
    recorded inside workers ship home with each result (fresh ``spawn``
    interpreters start with tracing off regardless of the parent).
    """
    global _POOL_DATASET
    _POOL_DATASET = dataset
    if trace_enabled:
        obs.enable_tracing()


def _run_spec_pooled(
    spec: TrajectorySpec,
) -> tuple[str, Trajectory | TrajectoryFailure, dict]:
    """Worker entry point reading the dataset shipped by :func:`_pool_init`.

    Returns the guarded result plus this task's observability payload
    (:func:`repro.obs.snapshot_state` with ``reset_after``, so a worker
    running several specs ships each spec's metrics and spans exactly
    once).  The parent merges payloads in spec order.
    """
    assert _POOL_DATASET is not None, "pool initializer did not run"
    name, result = _run_spec_guarded(_POOL_DATASET, spec)
    return name, result, obs.snapshot_state(reset_after=True)


def default_workers(n_jobs: int) -> int:
    """Worker count capped by the job count and the machine's cores."""
    return max(1, min(n_jobs, os.cpu_count() or 1))


def run_trajectories(
    dataset: Dataset,
    specs: Iterable[TrajectorySpec],
    max_workers: int | None = None,
    on_error: str = "raise",
) -> list[tuple[str, Trajectory | TrajectoryFailure]]:
    """Run every spec; return ``(name, trajectory)`` pairs in spec order.

    ``max_workers=None`` picks :func:`default_workers`; ``1`` runs
    serially in-process (no pool, easiest to debug/profile).  Results are
    independent of the worker count by construction.

    Failure handling (``on_error``):

    - ``"raise"`` (default) — after *every* spec has finished, raise a
      ``RuntimeError`` naming each failed trajectory with its worker-side
      traceback.  Unlike a raw ``pool.map``, completed results are
      computed before the raise and no worker is left hanging.
    - ``"return"`` — substitute a :class:`TrajectoryFailure` for each
      failed trajectory and return the full, spec-ordered list.  Callers
      filter with ``isinstance(t, Trajectory)``.
    """
    if on_error not in ("raise", "return"):
        raise ValueError("on_error must be 'raise' or 'return'")
    spec_list: Sequence[TrajectorySpec] = list(specs)
    if max_workers is None:
        max_workers = default_workers(len(spec_list))
    if max_workers < 1:
        raise ValueError("max_workers must be >= 1")

    results: list[tuple[str, Trajectory | TrajectoryFailure]]
    if max_workers == 1 or len(spec_list) <= 1:
        results = [_run_spec_guarded(dataset, s) for s in spec_list]
    else:
        with ProcessPoolExecutor(
            max_workers=max_workers,
            mp_context=get_context("spawn"),
            initializer=_pool_init,
            initargs=(dataset, obs.tracing_enabled()),
        ) as pool:
            futures = [pool.submit(_run_spec_pooled, s) for s in spec_list]
            results = []
            payloads: list[dict | None] = []
            for spec, fut in zip(spec_list, futures):
                try:
                    name, result, payload = fut.result()
                    results.append((name, result))
                    payloads.append(payload)
                except Exception as exc:  # noqa: BLE001
                    # The worker process itself died (BrokenProcessPool,
                    # unpicklable result, ...): report, don't hang.  Its
                    # observability payload died with it.
                    results.append(
                        (
                            spec.name,
                            TrajectoryFailure(name=spec.name, error=repr(exc)),
                        )
                    )
                    payloads.append(None)
            # Fold worker metrics/spans into this process, in spec order —
            # metric merging is order-independent (sums; gauges keep the
            # max) and spans land on lane ``spec_index + 1``, so the merged
            # state is identical for any worker count or completion order.
            for i, payload in enumerate(payloads):
                if payload is not None:
                    obs.merge_state(payload, track=i + 1)

    failures = [t for _, t in results if isinstance(t, TrajectoryFailure)]
    if failures and on_error == "raise":
        detail = "\n".join(
            f"- {f.name}: {f.error}\n{f.traceback}".rstrip() for f in failures
        )
        raise RuntimeError(
            f"{len(failures)}/{len(spec_list)} trajectories failed:\n{detail}"
        )
    return results
