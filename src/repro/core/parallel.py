"""Parallel execution of independent AL trajectories.

The figure benchmarks and the paper's cross-validation run many AL
trajectories that share nothing but the (read-only) dataset — one per
(policy, partition seed) pair.  :func:`run_trajectories` fans a list of
:class:`TrajectorySpec` out over a spawn-safe ``concurrent.futures``
process pool.

Determinism: every spec derives its own ``Generator`` from
``SeedSequence(entropy=base_seed, spawn_key=(traj_index,))`` — the same
stream construction :mod:`repro.core.batch` has always used — so results
are identical serial or parallel, at any worker count, and specs with the
same ``(base_seed, traj_index)`` share a partition (paired comparisons
across policies).

Spawn-safety: workers are started with the ``spawn`` method (fresh
interpreters, no inherited locks or BLAS thread state); everything a
worker needs — a module-level worker function and picklable policy
factories (classes or :func:`functools.partial`, not lambdas) — crosses
the process boundary by pickling.  The shared read-only dataset is
shipped **once per worker** through the pool initializer
(:func:`_pool_init`) instead of riding along with every submitted spec,
so submitting ``S`` specs to ``W`` workers pickles the dataset ``W``
times, not ``S`` times.

Failure isolation: exceptions are caught *inside* the worker and returned
as :class:`TrajectoryFailure` values, so one trajectory that raises (or a
worker process that dies outright) never hangs the pool or discards the
other trajectories' results — see ``run_trajectories(on_error=...)``.
"""

from __future__ import annotations

import os
import traceback as _traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Callable, Iterable, Sequence

import numpy as np

from repro import obs
from repro.core.loop import ActiveLearner
from repro.core.partitions import random_partition
from repro.core.trajectory import Trajectory
from repro.data.dataset import Dataset


@dataclass(frozen=True)
class TrajectorySpec:
    """One independent AL run: a policy factory plus its seed-tree position.

    Attributes
    ----------
    name : str
        Display name the result is reported under.
    policy_factory : callable
        Zero-argument factory for a fresh policy instance.  Must be
        picklable for parallel execution — a policy class or a
        ``functools.partial``, not a lambda.
    base_seed, traj_index : int
        Position in the seed tree; specs sharing both get the same
        partition and RNG stream.
    n_init, n_test, max_iterations, hyper_refit_interval, n_restarts :
        Forwarded to :class:`~repro.core.loop.ActiveLearner`.
    learner_kwargs : dict
        Extra keyword arguments for :class:`ActiveLearner` (e.g.
        ``stopping_rule``, ``cache_candidates``).
    """

    name: str
    policy_factory: Callable[[], object]
    base_seed: int = 0
    traj_index: int = 0
    n_init: int = 50
    n_test: int = 200
    max_iterations: int | None = None
    hyper_refit_interval: int = 1
    n_restarts: int = 2
    learner_kwargs: dict = field(default_factory=dict)


@dataclass(frozen=True)
class TrajectoryFailure:
    """A trajectory that died instead of returning a :class:`Trajectory`.

    Returned in place of the trajectory when ``on_error="return"``, so one
    bad spec (a policy that raises, a worker that crashes) costs exactly
    one result — never the whole batch.

    Attributes
    ----------
    name : str
        The failed spec's display name.
    error : str
        ``repr`` of the exception (or a pool-level diagnosis).
    traceback : str
        Formatted traceback from the worker, for postmortems.
    """

    name: str
    error: str
    traceback: str = ""


def _run_spec(dataset: Dataset, spec: TrajectorySpec) -> tuple[str, Trajectory]:
    """Worker body: one fully seeded AL run."""
    seed_seq = np.random.SeedSequence(
        entropy=spec.base_seed, spawn_key=(spec.traj_index,)
    )
    rng = np.random.default_rng(seed_seq)
    partition = random_partition(
        rng, len(dataset), n_init=spec.n_init, n_test=spec.n_test
    )
    learner = ActiveLearner(
        dataset,
        partition,
        policy=spec.policy_factory(),
        rng=rng,
        n_restarts=spec.n_restarts,
        hyper_refit_interval=spec.hyper_refit_interval,
        max_iterations=spec.max_iterations,
        **spec.learner_kwargs,
    )
    return spec.name, learner.run()


def _run_spec_guarded(
    dataset: Dataset, spec: TrajectorySpec
) -> tuple[str, Trajectory | TrajectoryFailure]:
    """Worker body that converts exceptions into data.

    Raising across the process boundary would poison ``pool.map`` — every
    later result is lost and, for unpicklable exceptions, the pool can
    deadlock.  Catching *inside* the worker makes a failed trajectory an
    ordinary return value.
    """
    try:
        return _run_spec(dataset, spec)
    except Exception as exc:  # noqa: BLE001 - the boundary must be total
        return spec.name, TrajectoryFailure(
            name=spec.name, error=repr(exc), traceback=_traceback.format_exc()
        )


#: Dataset installed by :func:`_pool_init` in each worker process.
_POOL_DATASET: Dataset | None = None


def _pool_init(dataset: Dataset, trace_enabled: bool = False) -> None:
    """Pool initializer: receive the shared dataset once per worker.

    ``trace_enabled`` propagates the parent's tracing switch, so spans
    recorded inside workers ship home with each result (fresh ``spawn``
    interpreters start with tracing off regardless of the parent).
    """
    global _POOL_DATASET
    _POOL_DATASET = dataset
    if trace_enabled:
        obs.enable_tracing()


def _run_spec_pooled(
    spec: TrajectorySpec,
) -> tuple[str, Trajectory | TrajectoryFailure, dict]:
    """Worker entry point reading the dataset shipped by :func:`_pool_init`.

    Returns the guarded result plus this task's observability payload
    (:func:`repro.obs.snapshot_state` with ``reset_after``, so a worker
    running several specs ships each spec's metrics and spans exactly
    once).  The parent merges payloads in spec order.
    """
    assert _POOL_DATASET is not None, "pool initializer did not run"
    name, result = _run_spec_guarded(_POOL_DATASET, spec)
    return name, result, obs.snapshot_state(reset_after=True)


def default_workers(n_jobs: int) -> int:
    """Worker count capped by the job count and the machine's cores."""
    return max(1, min(n_jobs, os.cpu_count() or 1))


# --------------------------------------------------------------------------
# Persistent shard workers (parallel AMR)
#
# run_trajectories' pool fans out *independent* jobs; the sharded AMR driver
# (repro.amr.parallel) instead needs a persistent, synchronously-phased crew:
# every worker owns a contiguous slice of one shared-memory PatchStack and
# must run the same phase (exchange / sweep / wave speeds) before any worker
# may start the next.  There is deliberately no OS barrier primitive here —
# the parent IS the barrier: it broadcasts a phase command down one pipe per
# worker and collects every reply before issuing the next phase, which on
# measured hardware costs a fraction of a multiprocessing.Barrier cycle and
# keeps all failure handling in one place.
# --------------------------------------------------------------------------


class ShardWorkerError(RuntimeError):
    """A shard worker raised (or died) during a phase."""


class _ShardWorkerState:
    """Per-process state of one shard worker: shared views + programs."""

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self.shm = {}  # name -> SharedMemory, kept attached across installs
        self.q = None
        self.sx = None
        self.sy = None
        self.program = None
        self.lo = 0
        self.hi = 0
        self.dx = None
        self.cfg = {}
        self.use_kernels = False
        self._lib = None

    def _attach(self, name: str):
        from multiprocessing import resource_tracker, shared_memory

        if name not in self.shm:
            # Attaching registers the segment with the resource tracker
            # (CPython registers unconditionally), and spawn children share
            # the parent's tracker process — a worker registration would
            # later fight the parent's own unlink bookkeeping.  Suppress
            # registration for the attach; only the creating parent tracks
            # and unlinks these segments.
            orig = resource_tracker.register

            def _skip(name_, rtype):  # pragma: no cover - trivial shim
                if rtype != "shared_memory":
                    orig(name_, rtype)

            resource_tracker.register = _skip
            try:
                seg = shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = orig
            self.shm[name] = seg
        return self.shm[name]

    def install(self, payload: dict) -> None:
        import numpy as np

        seg = self._attach(payload["q_name"])
        self.q = np.ndarray(payload["q_shape"], dtype=np.float64, buffer=seg.buf)
        scratch = self._attach(payload["scratch_name"])
        cap = payload["scratch_cap"]
        self.sx = np.ndarray((cap,), dtype=np.float64, buffer=scratch.buf)
        self.sy = np.ndarray(
            (cap,), dtype=np.float64, buffer=scratch.buf, offset=cap * 8
        )
        self.program = payload["program"]
        self.lo = payload["lo"]
        self.hi = payload["hi"]
        self.dx = payload["dx"]
        self.cfg = payload["cfg"]
        self.use_kernels = payload["use_kernels"]
        if self.use_kernels and self._lib is None:
            from repro.solver import kernels

            self._lib = kernels.load()
            if self._lib is None:
                self.use_kernels = False

    def exchange(self) -> None:
        self.program.execute(self.q, lib=self._lib if self.use_kernels else None)
        obs.incr("amr.halo.gather_bytes", self.program.halo_gather_bytes)
        obs.incr("amr.halo.scatter_bytes", self.program.halo_scatter_bytes)
        obs.incr("amr.halo.local_bytes", self.program.local_bytes)
        obs.incr("amr.halo.messages", self.program.halo_messages)
        obs.incr("amr.shard.exchanges")

    def sweep(self, axis: int, dt: float, with_speeds: bool = False) -> None:
        if self.hi <= self.lo:  # a shard can own zero patches (W > P)
            return
        rows = self.q[self.lo : self.hi]
        dt_dx = dt / self.dx
        cfg = self.cfg
        if self.use_kernels:
            from repro.solver import kernels

            kernels.fused_sweep(
                rows, dt_dx, cfg["ng"], axis,
                cfg["riemann"], cfg["limiter"], cfg["gamma"],
            )
        else:
            from repro.solver.fv import _sweep_stack

            _sweep_stack(
                rows, dt_dx, cfg["ng"], "x" if axis == 0 else "y",
                cfg["riemann"], cfg["limiter"], cfg["gamma"],
            )
        if with_speeds:
            # Piggyback the next step's CFL wave speeds on the final sweep
            # phase: saves one pool round-trip per step, and the values are
            # identical to a dedicated phase (same post-step interiors).
            self.speeds()

    def speeds(self) -> None:
        if self.hi <= self.lo:
            return
        rows = self.q[self.lo : self.hi]
        ng, gamma = self.cfg["ng"], self.cfg["gamma"]
        if self.use_kernels:
            from repro.solver import kernels

            kernels.wave_speeds(
                rows, ng, gamma, self.sx[self.lo : self.hi],
                self.sy[self.lo : self.hi],
            )
        else:
            from repro.amr.batch import stack_wave_speeds

            sx, sy = stack_wave_speeds(rows[:, :, ng:-ng, ng:-ng], gamma)
            self.sx[self.lo : self.hi] = sx
            self.sy[self.lo : self.hi] = sy

    def handle(self, cmd: str, payload):
        if cmd == "install":
            with obs.span("shard_install", cat="amr", rank=self.rank):
                self.install(payload)
            return None
        if cmd == "exchange":
            self.exchange()
            return None
        if cmd == "sweep":
            self.sweep(*payload)
            return None
        if cmd == "speeds":
            self.speeds()
            return None
        if cmd == "obs":
            return obs.snapshot_state(reset_after=True)
        if cmd == "ping":
            return self.rank
        raise ValueError(f"unknown shard command {cmd!r}")


def _shard_worker_main(conn, rank: int, trace_enabled: bool) -> None:
    """Entry point of one spawned shard worker (must be importable)."""
    if trace_enabled:
        obs.enable_tracing()
    state = _ShardWorkerState(rank)
    while True:
        try:
            cmd, payload = conn.recv()
        except (EOFError, KeyboardInterrupt):
            break
        if cmd == "close":
            conn.send(("ok", None))
            break
        try:
            conn.send(("ok", state.handle(cmd, payload)))
        except Exception:  # noqa: BLE001 - report, never kill the pipe
            conn.send(("error", _traceback.format_exc()))


class ShardWorkerPool:
    """A persistent crew of spawn-safe shard workers, phased by the parent.

    Workers hold no hierarchy state of their own beyond what ``install``
    ships (shared-memory names, their shard program and row slice), so the
    pool outlives regrids and repartitions — only ``install`` is re-sent.
    The parent acts as the phase barrier: :meth:`broadcast` returns only
    after every worker has replied, so a subsequent phase can never observe
    a half-finished predecessor.
    """

    def __init__(self, num_workers: int) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        ctx = get_context("spawn")
        self._conns = []
        self._procs = []
        for rank in range(num_workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker_main,
                args=(child_conn, rank, obs.tracing_enabled()),
                daemon=True,
                name=f"amr-shard-{rank}",
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
        self.broadcast("ping")  # handshake: every worker imported and ready

    def __len__(self) -> int:
        return len(self._procs)

    def broadcast(self, cmd: str, payload=None) -> list:
        """Send one phase command to every worker; gather every reply."""
        for conn in self._conns:
            conn.send((cmd, payload))
        return self._gather(cmd)

    def scatter(self, cmd: str, payloads: Sequence) -> list:
        """Send per-worker payloads (e.g. shard-specific install specs)."""
        if len(payloads) != len(self._conns):
            raise ValueError("need exactly one payload per worker")
        for conn, payload in zip(self._conns, payloads):
            conn.send((cmd, payload))
        return self._gather(cmd)

    def _gather(self, cmd: str) -> list:
        replies = []
        errors = []
        for rank, conn in enumerate(self._conns):
            try:
                status, value = conn.recv()
            except (EOFError, ConnectionResetError) as exc:
                raise ShardWorkerError(
                    f"shard worker {rank} died during {cmd!r}: {exc!r}"
                ) from exc
            if status == "error":
                errors.append((rank, value))
            else:
                replies.append(value)
        if errors:
            detail = "\n".join(f"[worker {r}]\n{tb}" for r, tb in errors)
            raise ShardWorkerError(f"shard phase {cmd!r} failed:\n{detail}")
        return replies

    def drain_observability(self) -> None:
        """Merge every worker's metrics/spans home, one lane per shard."""
        for rank, payload in enumerate(self.broadcast("obs")):
            if payload is not None:
                obs.merge_state(payload, track=rank + 1)

    def close(self) -> None:
        """Shut the workers down; safe to call twice."""
        for conn, proc in zip(self._conns, self._procs):
            try:
                if proc.is_alive():
                    conn.send(("close", None))
                    if conn.poll(2.0):
                        conn.recv()
            except (OSError, BrokenPipeError):
                pass
            finally:
                conn.close()
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
        self._conns = []
        self._procs = []

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            if self._procs:
                self.close()
        except Exception:
            pass


def run_trajectories(
    dataset: Dataset,
    specs: Iterable[TrajectorySpec],
    max_workers: int | None = None,
    on_error: str = "raise",
) -> list[tuple[str, Trajectory | TrajectoryFailure]]:
    """Run every spec; return ``(name, trajectory)`` pairs in spec order.

    ``max_workers=None`` picks :func:`default_workers`; ``1`` runs
    serially in-process (no pool, easiest to debug/profile).  Results are
    independent of the worker count by construction.

    Failure handling (``on_error``):

    - ``"raise"`` (default) — after *every* spec has finished, raise a
      ``RuntimeError`` naming each failed trajectory with its worker-side
      traceback.  Unlike a raw ``pool.map``, completed results are
      computed before the raise and no worker is left hanging.
    - ``"return"`` — substitute a :class:`TrajectoryFailure` for each
      failed trajectory and return the full, spec-ordered list.  Callers
      filter with ``isinstance(t, Trajectory)``.
    """
    if on_error not in ("raise", "return"):
        raise ValueError("on_error must be 'raise' or 'return'")
    spec_list: Sequence[TrajectorySpec] = list(specs)
    if max_workers is None:
        max_workers = default_workers(len(spec_list))
    if max_workers < 1:
        raise ValueError("max_workers must be >= 1")

    results: list[tuple[str, Trajectory | TrajectoryFailure]]
    if max_workers == 1 or len(spec_list) <= 1:
        results = [_run_spec_guarded(dataset, s) for s in spec_list]
    else:
        with ProcessPoolExecutor(
            max_workers=max_workers,
            mp_context=get_context("spawn"),
            initializer=_pool_init,
            initargs=(dataset, obs.tracing_enabled()),
        ) as pool:
            futures = [pool.submit(_run_spec_pooled, s) for s in spec_list]
            results = []
            # Fold worker metrics/spans into this process as each result
            # drains, in spec order — metric merging is order-independent
            # (sums; gauges keep the max) and spans land on lane
            # ``spec_index + 1``, so the merged state is identical for any
            # worker count or completion order.  Merging *inside* the drain
            # loop (rather than after it) means a cancellation mid-drain —
            # KeyboardInterrupt while blocked on a later future — keeps the
            # observability state every finished trajectory already
            # shipped, matching how worker/slice failures ship partial
            # state everywhere else.
            for i, (spec, fut) in enumerate(zip(spec_list, futures)):
                try:
                    name, result, payload = fut.result()
                    results.append((name, result))
                except Exception as exc:  # noqa: BLE001
                    # The worker process itself died (BrokenProcessPool,
                    # unpicklable result, ...): report, don't hang.  Its
                    # observability payload died with it.
                    results.append(
                        (
                            spec.name,
                            TrajectoryFailure(name=spec.name, error=repr(exc)),
                        )
                    )
                    payload = None
                if payload is not None:
                    obs.merge_state(payload, track=i + 1)

    failures = [t for _, t in results if isinstance(t, TrajectoryFailure)]
    if failures and on_error == "raise":
        detail = "\n".join(
            f"- {f.name}: {f.error}\n{f.traceback}".rstrip() for f in failures
        )
        raise RuntimeError(
            f"{len(failures)}/{len(spec_list)} trajectories failed:\n{detail}"
        )
    return results
