"""Pre-processing used before GPR modeling (paper Sec. IV-A).

Two transforms are applied to the dataset before any model sees it:

1. Responses (cost and memory) are ``log10``-transformed.  This reduces
   the error discrepancy between the smallest and largest responses and
   eliminates the nonsensical negative predictions GPR can produce for
   near-zero runtimes; predictions are mapped back by exponentiation.
2. Features are scaled to the unit cube ``[0, 1]^d``.
"""

from __future__ import annotations

import numpy as np


def log10_response(y) -> np.ndarray:
    """``log10`` transform of a positive response vector."""
    y = np.asarray(y, dtype=np.float64)
    if np.any(y <= 0):
        raise ValueError("responses must be positive for the log10 transform")
    return np.log10(y)


def unlog10_response(y_log) -> np.ndarray:
    """Inverse of :func:`log10_response`; always positive."""
    return np.power(10.0, np.asarray(y_log, dtype=np.float64))


class FeatureScaler:
    """Affine map of features onto the unit cube and back.

    Parameters
    ----------
    bounds : ndarray, shape (2, d)
        Row 0 the per-feature minima, row 1 the maxima.  Using the *design
        grid* bounds (not data bounds) keeps the scaling identical across
        dataset partitions, as the paper's cross-validation requires.
    """

    def __init__(self, bounds: np.ndarray) -> None:
        bounds = np.asarray(bounds, dtype=np.float64)
        if bounds.ndim != 2 or bounds.shape[0] != 2:
            raise ValueError("bounds must be (2, d)")
        if np.any(bounds[1] <= bounds[0]):
            raise ValueError("bounds must satisfy max > min per feature")
        self.lo = bounds[0].copy()
        self.hi = bounds[1].copy()

    @property
    def n_features(self) -> int:
        return self.lo.shape[0]

    def transform(self, X) -> np.ndarray:
        """Map raw features into ``[0, 1]^d`` (values may exceed the box
        if ``X`` lies outside the design bounds)."""
        X = np.asarray(X, dtype=np.float64)
        return (X - self.lo) / (self.hi - self.lo)

    def inverse_transform(self, U) -> np.ndarray:
        """Map unit-cube coordinates back to raw feature values."""
        U = np.asarray(U, dtype=np.float64)
        return U * (self.hi - self.lo) + self.lo


class DesignTransform:
    """Unit-cube scaling with optional log2 treatment of selected features.

    Sec. V-D's first tuning direction: features sampled at powers of two
    (the node count ``p``, and in this dataset also ``mx``) are better
    modeled through their *exponent*, so that 2^3 processors is spaced
    equally from 2^2 and 2^4.  This transform applies ``log2`` to the
    chosen columns (of both the data and the design bounds) before the
    affine map onto ``[0, 1]^d``.

    Parameters
    ----------
    bounds : ndarray, shape (2, d)
        Raw design bounds.
    log2_columns : iterable of int
        Indices of features to transform by ``log2``; their raw values and
        bounds must be positive.
    """

    def __init__(self, bounds: np.ndarray, log2_columns=()) -> None:
        bounds = np.asarray(bounds, dtype=np.float64)
        self.log2_columns = tuple(sorted(set(int(c) for c in log2_columns)))
        d = bounds.shape[1] if bounds.ndim == 2 else 0
        for c in self.log2_columns:
            if not 0 <= c < d:
                raise ValueError(f"log2 column {c} outside 0..{d - 1}")
            if bounds[0, c] <= 0:
                raise ValueError(f"log2 column {c} requires positive bounds")
        self._scaler = FeatureScaler(self._log2(bounds))

    def _log2(self, X: np.ndarray) -> np.ndarray:
        X = np.array(X, dtype=np.float64, copy=True)
        for c in self.log2_columns:
            col = X[..., c]
            if np.any(col <= 0):
                raise ValueError(f"log2 column {c} requires positive values")
            X[..., c] = np.log2(col)
        return X

    @property
    def n_features(self) -> int:
        return self._scaler.n_features

    def transform(self, X) -> np.ndarray:
        """Raw features -> (log2 on selected columns) -> unit cube."""
        return self._scaler.transform(self._log2(np.asarray(X, dtype=np.float64)))

    def inverse_transform(self, U) -> np.ndarray:
        """Unit cube -> raw feature values (inverting the log2 columns)."""
        X = self._scaler.inverse_transform(U)
        X = np.array(X, copy=True)
        for c in self.log2_columns:
            X[..., c] = np.exp2(X[..., c])
        return X
