"""Batch Active Learning: select several experiments per iteration.

The paper's future work (Sec. VI) asks about "running multiple simulations
in parallel at each iteration of Active Learning: such schemes increase
the scheduling overhead and result in less greedy and optimal selection
strategies, but the achieved reduction of the time required to train
accurate models may be advantageous".  This module implements that scheme.

Two in-batch strategies are provided:

- ``"independent"`` — ask the policy ``k`` times against the same model
  state, masking already-picked candidates.  Natural for randomized
  policies (RandGoodness, RGMA); for deterministic ones it degenerates to
  the top-k of the acquisition ranking.
- ``"believer"`` — the *kriging believer* heuristic: after each in-batch
  pick, append the model's own predictive mean as a pseudo-observation
  (hyperparameters frozen) and re-predict, so the collapsed uncertainty
  around the pick steers the next one away.  Costlier but less redundant.

:class:`BatchActiveLearner` extends Algorithm 1 accordingly: per round it
selects a batch, "runs" all of its experiments, then retrains once.  Each
selected sample still gets its own :class:`IterationRecord` (so cumulative
cost/regret remain per-sample), but the recorded RMSE only changes between
rounds — the models never see mid-batch results, exactly as a parallel
launch on the machine would behave.
"""

from __future__ import annotations

import numpy as np

from repro.core.loop import ActiveLearner
from repro.core.metrics import individual_regrets
from repro.core.policies import CandidateView, RGMA
from repro.core.trajectory import IterationRecord, StopReason, Trajectory

BATCH_STRATEGIES = ("independent", "believer")


def _mask_view(view: CandidateView, keep: np.ndarray) -> CandidateView:
    return CandidateView(
        X=view.X[keep],
        mu_cost=view.mu_cost[keep],
        sigma_cost=view.sigma_cost[keep],
        mu_mem=view.mu_mem[keep],
        sigma_mem=view.sigma_mem[keep],
    )


class BatchActiveLearner(ActiveLearner):
    """Algorithm 1 with per-round batches of ``batch_size`` selections.

    Parameters
    ----------
    batch_size : int
        Experiments launched per AL round.
    batch_strategy : {"independent", "believer"}
        How in-batch diversity is achieved (see module docstring).
    **kwargs
        Everything :class:`~repro.core.loop.ActiveLearner` accepts;
        ``max_iterations`` counts *selected samples*, not rounds.
    """

    def __init__(self, *args, batch_size: int = 4, batch_strategy: str = "believer", **kwargs):
        super().__init__(*args, **kwargs)
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if batch_strategy not in BATCH_STRATEGIES:
            raise ValueError(f"batch_strategy must be one of {BATCH_STRATEGIES}")
        self.batch_size = int(batch_size)
        self.batch_strategy = batch_strategy

    # ----------------------------------------------------------- batch picks

    def _select_batch(self) -> list[int]:
        """Positions (into ``self._remaining``) of this round's batch."""
        want = min(self.batch_size, len(self._remaining))
        view = self._candidate_view()
        if self.batch_strategy == "independent":
            return self._select_independent(view, want)
        return self._select_believer(view, want)

    def _select_independent(self, view: CandidateView, want: int) -> list[int]:
        available = np.arange(len(view))
        picks: list[int] = []
        for _ in range(want):
            sub = _mask_view(view, available)
            pos = self.policy.select(sub, self.rng)
            if pos is None:
                break
            picks.append(int(available[pos]))
            available = np.delete(available, pos)
        return picks

    def _select_believer(self, view: CandidateView, want: int) -> list[int]:
        idx_all = np.asarray(self._remaining, dtype=np.int64)
        available = np.arange(len(view))
        picks: list[int] = []
        # Working copies of the training sets, extended by pseudo-points.
        train_idx = self._train_indices()
        U = self._U[train_idx]
        yc = self._log_cost[train_idx]
        ym = self._log_mem[train_idx]
        for _ in range(want):
            sub = _mask_view(view, available)
            pos = self.policy.select(sub, self.rng)
            if pos is None:
                break
            g = int(available[pos])
            picks.append(g)
            available = np.delete(available, pos)
            if available.size == 0 or len(picks) == want:
                break
            # Believe the model: pseudo-observe the predictive means at the
            # picked point (hyperparameters frozen), then re-predict.
            u_new = self._U[idx_all[g]][None, :]
            U = np.vstack([U, u_new])
            yc = np.append(yc, view.mu_cost[g])
            ym = np.append(ym, view.mu_mem[g])
            self.gpr_cost.refactor(U, yc)
            self.gpr_mem.refactor(U, ym)
            rem = self._U[idx_all[available]]
            mu_c, sd_c = self.gpr_cost.predict(rem, return_std=True)
            mu_m, sd_m = self.gpr_mem.predict(rem, return_std=True)
            full_mu_c = view.mu_cost.copy()
            full_sd_c = view.sigma_cost.copy()
            full_mu_m = view.mu_mem.copy()
            full_sd_m = view.sigma_mem.copy()
            full_mu_c[available] = mu_c
            full_sd_c[available] = sd_c
            full_mu_m[available] = mu_m
            full_sd_m[available] = sd_m
            view = CandidateView(
                X=view.X,
                mu_cost=full_mu_c,
                sigma_cost=full_sd_c,
                mu_mem=full_mu_m,
                sigma_mem=full_sd_m,
            )
        # Restore the true (pseudo-point-free) factors for the round's refit.
        real_idx = self._train_indices()
        self.gpr_cost.refactor(self._U[real_idx], self._log_cost[real_idx])
        self.gpr_mem.refactor(self._U[real_idx], self._log_mem[real_idx])
        return picks

    # ----------------------------------------------------------------- run

    def run(self) -> Trajectory:
        """Execute batched AL; one retraining per round."""
        self.stopping_rule.reset()
        self._fit_models(optimize=True)
        rmse_c0, rmse_m0, _ = self._test_rmse()

        memory_limit = (
            self.policy.memory_limit_MB if isinstance(self.policy, RGMA) else None
        )
        records: list[IterationRecord] = []
        cum_cost = 0.0
        cum_regret = 0.0
        stop = StopReason.EXHAUSTED
        sample_count = 0
        round_index = 0

        while self._remaining:
            if (
                self.max_iterations is not None
                and sample_count >= self.max_iterations
            ):
                stop = StopReason.MAX_ITERATIONS
                break
            picks = self._select_batch()
            if not picks:
                stop = StopReason.MEMORY_CONSTRAINED
                break
            # Launch the whole batch: observe actual responses.
            chosen_ds = [self._remaining[p] for p in picks]
            for p in sorted(picks, reverse=True):
                del self._remaining[p]
            self._learn_observed(chosen_ds)

            optimize = (round_index % self.hyper_refit_interval) == 0
            self._fit_models(optimize=optimize)
            rmse_c, rmse_m, rmse_w = self._test_rmse()

            for ds_index in chosen_ds:
                cost = float(self.dataset.cost[ds_index])
                mem = float(self.dataset.mem[ds_index])
                cum_cost += cost
                if memory_limit is not None:
                    cum_regret += float(
                        individual_regrets(
                            np.array([cost]), np.array([mem]), memory_limit
                        )[0]
                    )
                records.append(
                    IterationRecord(
                        iteration=sample_count,
                        dataset_index=int(ds_index),
                        cost=cost,
                        mem=mem,
                        rmse_cost=rmse_c,
                        rmse_mem=rmse_m,
                        cumulative_cost=cum_cost,
                        cumulative_regret=cum_regret,
                        rmse_cost_weighted=rmse_w,
                    )
                )
                sample_count += 1
            round_index += 1

        return Trajectory(
            policy_name=f"{self.policy.name}_batch{self.batch_size}",
            n_init=self.partition.n_init,
            records=tuple(records),
            stop_reason=stop,
            initial_rmse_cost=rmse_c0,
            initial_rmse_mem=rmse_m0,
        )

    @property
    def num_rounds_estimate(self) -> int:
        """Rounds needed to exhaust the Active pool at this batch size."""
        return -(-self.partition.n_active // self.batch_size)
