"""Configuration advisor: what the trained surrogates are *for*.

The paper's chief goal is "an experimental framework in which application
specialists running AMR simulations can choose suitable parameter values,
while avoiding those that might lead to overly expensive computations",
and its Sec. II-C lists the downstream uses of the surrogate models:
inverse problems, numerical integration, and multi-objective optimization.
This module implements those uses over trained cost/memory GPs:

- :meth:`ConfigurationAdvisor.feasible` — inverse problem: all grid
  configurations predicted to satisfy a node-hour budget, a wall-clock
  deadline, and/or a memory limit (with a configurable confidence margin);
- :meth:`ConfigurationAdvisor.cheapest_at_resolution` — the cheapest safe
  configuration achieving a requested refinement level;
- :meth:`ConfigurationAdvisor.pareto_front` — the cost/resolution
  trade-off frontier across the grid;
- :meth:`ConfigurationAdvisor.expected_cost` — numerical integration of
  the cost surrogate over a parameter region (mean over the grid points
  inside it).

Predictions are conservative by default: ``mu + z * sigma`` in log space,
so a ``z`` of 1.64 bounds ~95% of the predictive mass.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.preprocessing import DesignTransform
from repro.data.space import ParameterSpace, TABLE1_SPACE
from repro.machine.runner import JobConfig


@dataclass(frozen=True)
class Recommendation:
    """One advised configuration with its conservative predictions."""

    config: JobConfig
    cost_node_hours: float
    max_rss_MB: float
    wall_hours: float

    def as_row(self) -> list:
        return [
            self.config.p,
            self.config.mx,
            self.config.maxlevel,
            self.config.r0,
            self.config.rhoin,
            self.cost_node_hours,
            self.wall_hours,
            self.max_rss_MB,
        ]


class ConfigurationAdvisor:
    """Answers practitioner queries from trained cost/memory surrogates.

    Parameters
    ----------
    gpr_cost, gpr_mem
        Trained models over the *scaled* feature space, predicting log10
        cost (node-hours) and log10 memory (MB) — i.e. the two models an
        :class:`~repro.core.loop.ActiveLearner` trains.
    space : ParameterSpace
        Grid of candidate configurations.
    z : float
        Confidence multiplier on the predictive std (conservative bound).
    log2_features : iterable of int
        Must match the transform the models were trained with.
    """

    def __init__(
        self,
        gpr_cost,
        gpr_mem,
        space: ParameterSpace = TABLE1_SPACE,
        z: float = 1.64,
        log2_features=(),
    ) -> None:
        if z < 0:
            raise ValueError("z must be non-negative")
        self.gpr_cost = gpr_cost
        self.gpr_mem = gpr_mem
        self.space = space
        self.z = float(z)
        self.grid = space.grid()
        feats = np.array([c.as_features() for c in self.grid])
        self._X = feats
        self._U = DesignTransform(space.bounds(), log2_columns=log2_features).transform(feats)
        self._cache: dict[str, np.ndarray] | None = None

    # ----------------------------------------------------------- predictions

    def _predictions(self) -> dict[str, np.ndarray]:
        """Conservative (upper-bound) cost and memory over the whole grid."""
        if self._cache is None:
            mu_c, sd_c = self.gpr_cost.predict(self._U, return_std=True)
            mu_m, sd_m = self.gpr_mem.predict(self._U, return_std=True)
            cost = 10.0 ** (mu_c + self.z * sd_c)
            mem = 10.0 ** (mu_m + self.z * sd_m)
            nodes = self._X[:, 0]
            self._cache = {
                "cost": cost,
                "mem": mem,
                "wall_hours": cost / nodes,
                "cost_mean": 10.0**mu_c,
            }
        return self._cache

    def _recommend(self, i: int) -> Recommendation:
        p = self._predictions()
        return Recommendation(
            config=self.grid[i],
            cost_node_hours=float(p["cost"][i]),
            max_rss_MB=float(p["mem"][i]),
            wall_hours=float(p["wall_hours"][i]),
        )

    # ------------------------------------------------------------- inverse

    def feasible(
        self,
        budget_node_hours: float | None = None,
        memory_limit_MB: float | None = None,
        deadline_hours: float | None = None,
    ) -> list[Recommendation]:
        """All configurations predicted (conservatively) to satisfy the
        given constraints, cheapest first."""
        p = self._predictions()
        mask = np.ones(len(self.grid), dtype=bool)
        if budget_node_hours is not None:
            mask &= p["cost"] <= budget_node_hours
        if memory_limit_MB is not None:
            mask &= p["mem"] < memory_limit_MB
        if deadline_hours is not None:
            mask &= p["wall_hours"] <= deadline_hours
        order = np.argsort(p["cost"])
        return [self._recommend(int(i)) for i in order if mask[i]]

    def cheapest_at_resolution(
        self,
        maxlevel: int,
        memory_limit_MB: float | None = None,
        deadline_hours: float | None = None,
    ) -> Recommendation | None:
        """Cheapest safe configuration reaching refinement level ``maxlevel``."""
        if maxlevel not in self.space.maxlevel_values:
            raise ValueError(
                f"maxlevel {maxlevel} not in the sampled grid {self.space.maxlevel_values}"
            )
        candidates = self.feasible(
            memory_limit_MB=memory_limit_MB, deadline_hours=deadline_hours
        )
        for rec in candidates:  # already cost-sorted
            if rec.config.maxlevel == maxlevel:
                return rec
        return None

    # ------------------------------------------------------ multi-objective

    def pareto_front(self, memory_limit_MB: float | None = None) -> list[Recommendation]:
        """Cost vs. resolution frontier.

        Resolution is the finest cell count per tree edge,
        ``2**maxlevel * mx``; a configuration is Pareto-optimal when no
        safe configuration is both cheaper and at least as resolved.
        """
        p = self._predictions()
        resolution = (2.0 ** self._X[:, 2]) * self._X[:, 1]
        mask = np.ones(len(self.grid), dtype=bool)
        if memory_limit_MB is not None:
            mask &= p["mem"] < memory_limit_MB
        idx = np.flatnonzero(mask)
        order = idx[np.argsort(p["cost"][idx])]
        front: list[int] = []
        best_res = -np.inf
        for i in order:
            if resolution[i] > best_res:
                front.append(int(i))
                best_res = resolution[i]
        return [self._recommend(i) for i in front]

    # ---------------------------------------------------------- integration

    def expected_cost(self, region: dict[str, tuple[float, float]] | None = None) -> float:
        """Mean *predicted-mean* cost over the grid points inside ``region``.

        ``region`` maps feature names (from
        :data:`repro.data.dataset.FEATURE_NAMES`) to inclusive
        ``(low, high)`` intervals; omitted features are unconstrained.
        This is the grid quadrature of the surrogate — the "numerical
        integration" use of Sec. II-C.
        """
        from repro.data.dataset import FEATURE_NAMES

        p = self._predictions()
        mask = np.ones(len(self.grid), dtype=bool)
        if region:
            for name, (lo, hi) in region.items():
                if name not in FEATURE_NAMES:
                    raise ValueError(f"unknown feature {name!r}")
                j = FEATURE_NAMES.index(name)
                mask &= (self._X[:, j] >= lo) & (self._X[:, j] <= hi)
        if not mask.any():
            raise ValueError("region contains no grid points")
        return float(p["cost_mean"][mask].mean())
