"""Algorithm 1: the Active Learning procedure.

The learner owns two GPR models — cost and memory — pre-fit on the Initial
partition.  Each iteration it predicts over the remaining Active samples,
asks the selection policy for a candidate, "runs the experiment" by looking
the sample up in the offline dataset, moves it into the learned set, and
retrains both models warm-started from the previous hyperparameters.
Test-set RMSE, cumulative cost, and cumulative regret are recorded after
every iteration.
"""

from __future__ import annotations

from dataclasses import replace as _dc_replace

import numpy as np

from repro import obs
from repro.core.config import ALConfig
from repro.core.metrics import individual_regret, rmse_nonlog
from repro.core.partitions import Partition
from repro.core.policies import CandidateView, SelectionPolicy
from repro.core.preprocessing import DesignTransform
from repro.core.stopping import NoEarlyStopping, StoppingRule
from repro.core.trajectory import IterationRecord, StopReason, Trajectory
from repro.data.dataset import Dataset
from repro.faults.acquisition import (
    AcquisitionFaultModel,
    AcquisitionOutcome,
    FailurePolicy,
)
from repro.faults.model import FaultEvent, FaultKind
from repro.gp.gpr import GPRegressor
from repro.gp.kernels import Kernel, default_kernel
from repro.gp.surrogate import (
    build_surrogate,
    cross_appends,
    cross_points,
    cross_version,
    supports_cross,
)

#: Sentinel distinguishing "legacy kwarg not passed" from any real value,
#: so explicitly passed legacy kwargs override an ``ALConfig`` while
#: omitted ones defer to it.
_UNSET = object()


class CandidateCovarianceCache:
    """Incrementally maintained cross-covariance for one surrogate model.

    Re-scoring the Active pool each iteration rebuilds the
    ``(candidates x basis)`` kernel matrix from scratch even though only
    one candidate left the pool — and, for training-set bases, one column
    (the newly learned point) joined the basis.  This cache keeps ``Ks``
    and the prior diagonal across iterations: an acquisition deletes the
    selected candidate's row and appends a single freshly evaluated
    column when the model's basis grows on acquisition
    (:func:`repro.gp.surrogate.cross_appends`); models with a frozen
    basis (the sparse GP's inducing set) keep their rows valid with no
    column work at all.

    Exactness invariants:

    - The cache is keyed on the kernel's ``theta`` *and* the model's
      basis epoch (:func:`repro.gp.surrogate.cross_version`); a
      hyperparameter refit or a basis move (inducing re-cluster) makes
      the next :meth:`predict` silently rebuild.
    - ``Ks`` depends only on the kernel and the point sets — *not* on the
      factorization — so a jitter-ladder or full-refactor fallback in
      the model never stales the cache.
    - Models without a ``predict_from_cross`` surface (e.g.
      :class:`repro.gp.local.LocalGPRegressor`) bypass the cache entirely.
    """

    def __init__(self, model) -> None:
        self.model = model
        self._Ks: np.ndarray | None = None
        self._diag: np.ndarray | None = None
        self._theta: np.ndarray | None = None
        self._version = 0

    def invalidate(self) -> None:
        self._Ks = None
        self._diag = None
        self._theta = None

    @property
    def _cacheable(self) -> bool:
        return supports_cross(self.model) and getattr(self.model, "is_fitted", False)

    def _fresh(self) -> bool:
        kernel = getattr(self.model, "kernel_", None)
        basis = cross_points(self.model)
        return (
            self._Ks is not None
            and kernel is not None
            and basis is not None
            and self._theta is not None
            and self._Ks.shape[1] == basis.shape[0]
            and self._version == cross_version(self.model)
            and np.array_equal(kernel.theta, self._theta)
        )

    def predict(self, U_cand: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Candidate mean/std, rebuilding the cached ``Ks`` only when stale."""
        if not self._cacheable:
            return self.model.predict(U_cand, return_std=True)
        if not self._fresh():
            kernel = self.model.kernel_
            self._Ks = kernel(U_cand, cross_points(self.model))
            self._diag = kernel.diag(U_cand)
            self._theta = kernel.theta.copy()
            self._version = cross_version(self.model)
        return self.model.predict_from_cross(self._Ks, self._diag, return_std=True)

    def acquire(self, pos: int, U_remaining: np.ndarray, u_new: np.ndarray) -> None:
        """Candidate ``pos`` was selected: drop its row, append its column.

        ``U_remaining`` are the features of the pool *after* removal and
        ``u_new`` the selected point now joining the training set.  Must
        run before any hyperparameter refit so the single-column kernel
        evaluation uses the same ``theta`` the cache was built under.
        Models whose cross basis does not absorb acquisitions (frozen
        inducing sets) only lose the selected row — their remaining rows
        are still exact.
        """
        if self._Ks is None or not self._fresh():
            self.invalidate()
            return
        self._Ks = np.delete(self._Ks, pos, axis=0)
        self._diag = np.delete(self._diag, pos)
        if not cross_appends(self.model):
            return
        if U_remaining.shape[0] != self._Ks.shape[0]:
            self.invalidate()
            return
        col = self.model.kernel_(U_remaining, u_new[None, :])
        self._Ks = np.hstack([self._Ks, col])

    def drop(self, pos: int) -> None:
        """Candidate ``pos`` left the pool *without* joining the training set.

        The failure-handling path: a crashed or censored acquisition is
        removed from the pool but its column never appears in the kernel
        matrix, so only the row is deleted.  ``Ks`` stays keyed to the
        unchanged training set and the fast path is preserved.
        """
        if self._Ks is None or not self._fresh():
            self.invalidate()
            return
        self._Ks = np.delete(self._Ks, pos, axis=0)
        self._diag = np.delete(self._diag, pos)


class ActiveLearner:
    """Runs Algorithm 1 on an offline dataset.

    Parameters
    ----------
    dataset : Dataset
        Precomputed job table (features + cost/memory responses).
    partition : Partition
        Initial / Active / Test split.
    policy : SelectionPolicy, optional
        One of the Sec. IV-B algorithms (:mod:`repro.core.policies`) or
        any other implementation of the protocol — e.g. the zero-refit
        :class:`repro.policy.AmortizedPolicy`.  ``None`` instantiates the
        policy declared by ``config.policy`` / ``config.policy_options``
        (:func:`repro.policy.make_policy`); a policy with
        ``requires_surrogate = False`` switches the loop into zero-refit
        mode (no GP fit/refactor/RMSE anywhere).
    rng : numpy.random.Generator
        Drives randomized policies and GPR restarts (required).
    kernel : Kernel, optional
        Prior covariance for *both* models; defaults to the paper's
        amplitude * RBF + noise.
    n_restarts : int
        LML restarts on the initial fit (later fits warm-start).
    hyper_refit_interval : int
        Re-optimize hyperparameters every this many iterations; in between,
        the models are refactored on the enlarged training set with frozen
        hyperparameters.  1 (default) is the paper-faithful behaviour.
    stopping_rule : StoppingRule, optional
        Extra early-termination heuristic (Sec. V-D); default never fires.
    max_iterations : int, optional
        Hard cap on AL iterations (e.g. 150 for the Fig. 2 analysis).
    log2_features : iterable of int, optional
        Feature columns to model through their log2 exponent (Sec. V-D:
        powers-of-two features like the node count ``p``).
    weight_rmse_by_cost : bool
        Also record the cost-weighted test RMSE of Eq. (12) each iteration
        (``rho = diag(test costs)``), the scale-dependent metric Sec. V-D
        argues suits cost-efficient AL.
    model_factory : callable, optional
        Zero-argument factory producing the surrogate model for *each* of
        the cost and memory responses.  Anything with the
        ``fit`` / ``refactor`` / ``predict(return_std=True)`` surface of
        :class:`~repro.gp.gpr.GPRegressor` works — e.g.
        :class:`repro.gp.local.LocalGPRegressor` (the paper's "multiple
        local performance models" future work).  Overrides ``kernel`` and
        ``n_restarts``.
    cache_candidates : bool
        Maintain the candidate cross-covariance matrices across iterations
        (:class:`CandidateCovarianceCache`) instead of rebuilding them for
        every :meth:`_candidate_view`.  Exact; disable only to benchmark
        or to cross-check against the straight-line path.
    acquisition_faults : AcquisitionFaultModel, optional
        Failure model for the "run the experiment" step.  ``None`` (or a
        disabled model) takes the paper-faithful path, bit-identical to a
        fault-free build; an enabled model makes each acquisition crash or
        lose its MaxRSS with the configured probabilities, and the loop
        responds per ``on_failure``.  Spent node-hours are charged either
        way — a crashed experiment still burned its allocation.
    on_failure : FailurePolicy or str
        Response to a failed/censored acquisition:

        - ``"drop"`` — discard the sample; the iteration is consumed and
          the models are left untouched.
        - ``"next_best"`` (default) — discard the sample and immediately
          re-ask the policy for a replacement within the same iteration.
        - ``"impute"`` — train on the GP posterior mean at the point
          instead of the lost observation (censored acquisitions impute
          only the memory response; the observed cost is kept).
    use_workspace : bool
        Forwarded to both default :class:`GPRegressor` models: evaluate
        hyperparameter refits through the cached kernel workspace
        (:class:`repro.gp.kernels.KernelWorkspace`) extended across
        acquisitions.  Ignored when ``model_factory`` is given.  Disable
        to force the direct reference LML path (parity tests).
    config : ALConfig, optional
        All of the above knobs as one validated value
        (:class:`repro.core.config.ALConfig`).  Legacy keywords passed
        explicitly override the corresponding config fields; the resolved
        configuration is available as ``self.config`` and embedded in the
        returned :class:`~repro.core.trajectory.Trajectory`.
    """

    def __init__(
        self,
        dataset: Dataset,
        partition: Partition,
        policy: SelectionPolicy | None = None,
        rng: np.random.Generator | None = None,
        kernel: Kernel | None = _UNSET,
        n_restarts: int = _UNSET,
        hyper_refit_interval: int = _UNSET,
        stopping_rule: StoppingRule | None = _UNSET,
        max_iterations: int | None = _UNSET,
        log2_features=_UNSET,
        weight_rmse_by_cost: bool = _UNSET,
        model_factory=_UNSET,
        cache_candidates: bool = _UNSET,
        acquisition_faults: AcquisitionFaultModel | None = _UNSET,
        on_failure: FailurePolicy | str = _UNSET,
        use_workspace: bool = _UNSET,
        surrogate: str = _UNSET,
        surrogate_options=_UNSET,
        config: ALConfig | None = None,
    ) -> None:
        overrides = {
            name: value
            for name, value in (
                ("kernel", kernel),
                ("n_restarts", n_restarts),
                ("hyper_refit_interval", hyper_refit_interval),
                ("stopping_rule", stopping_rule),
                ("max_iterations", max_iterations),
                ("log2_features", log2_features),
                ("weight_rmse_by_cost", weight_rmse_by_cost),
                ("model_factory", model_factory),
                ("cache_candidates", cache_candidates),
                ("acquisition_faults", acquisition_faults),
                ("on_failure", on_failure),
                ("use_workspace", use_workspace),
                ("surrogate", surrogate),
                ("surrogate_options", surrogate_options),
            )
            if value is not _UNSET
        }
        base = config if config is not None else ALConfig()
        # replace() re-runs ALConfig.__post_init__, so overrides are
        # validated and normalized exactly like direct construction.
        cfg = _dc_replace(base, **overrides) if overrides else base
        self.config = cfg

        if rng is None:
            raise ValueError("rng is required")
        if policy is None:
            # Instantiate from the config's declarative policy selection
            # (lazy import: repro.policy depends on this module).
            from repro.policy import make_policy

            policy = make_policy(cfg, dataset)
        # Policies that never consult a surrogate (the amortized server)
        # switch the loop into zero-refit mode: no GP fit, refactor, or
        # RMSE evaluation anywhere on the serving path.
        self._zero_refit = not getattr(policy, "requires_surrogate", True)
        if self._zero_refit:
            if cfg.on_failure is FailurePolicy.IMPUTE:
                raise ValueError(
                    "on_failure='impute' needs surrogate predictions; "
                    f"policy {policy.name!r} is zero-refit"
                )
            if cfg.stopping_rule is not None:
                raise ValueError(
                    "stopping rules consume surrogate predictions; "
                    f"policy {policy.name!r} is zero-refit"
                )
        # Policies may expose incremental-state hooks (prepare /
        # observe_acquire / observe_drop); the loop feeds them so the
        # policy's own caches track the pool exactly like the
        # cross-covariance caches do.
        self._policy_hooks = hasattr(policy, "observe_acquire")

        self.dataset = dataset
        self.partition = partition
        self.policy = policy
        self.rng = rng
        self.hyper_refit_interval = cfg.hyper_refit_interval
        self.stopping_rule = (
            cfg.stopping_rule if cfg.stopping_rule is not None else NoEarlyStopping()
        )
        self.max_iterations = cfg.max_iterations
        self.weight_rmse_by_cost = cfg.weight_rmse_by_cost

        self.scaler = DesignTransform(dataset.bounds, log2_columns=cfg.log2_features)
        self._U = self.scaler.transform(dataset.X)  # all features, unit cube
        self._log_cost = dataset.log_cost()
        self._log_mem = dataset.log_mem()

        if cfg.model_factory is not None:
            self.gpr_cost = cfg.model_factory()
            self.gpr_mem = cfg.model_factory()
        else:
            base_kernel = cfg.kernel if cfg.kernel is not None else default_kernel()
            opts = dict(cfg.surrogate_options)
            # The two models get structurally independent kernel copies
            # (with_theta) so their workspaces/fits never alias.  The
            # backend name resolves through the surrogate registry
            # (repro.registry) — any registered model plugs in here.
            kernels = (base_kernel, base_kernel.with_theta(base_kernel.theta))
            self.gpr_cost, self.gpr_mem = (
                build_surrogate(
                    cfg.surrogate,
                    kernel=k,
                    rng=rng,
                    n_restarts=cfg.n_restarts,
                    use_workspace=cfg.use_workspace,
                    options=opts,
                )
                for k in kernels
            )

        self.acquisition_faults = cfg.acquisition_faults
        self.on_failure = cfg.on_failure

        # Mutable AL state.  The cost and memory models keep separate
        # learned lists because a censored acquisition (MaxRSS lost) feeds
        # only the cost model; targets ride along so the impute policy can
        # substitute posterior means for lost observations.
        self._remaining = list(partition.active_idx)
        self._learned: list[int] = []
        self._targets_cost: list[float] = []
        self._learned_mem: list[int] = []
        self._targets_mem: list[float] = []
        self.cache_candidates = cfg.cache_candidates
        self._cache_cost = CandidateCovarianceCache(self.gpr_cost)
        self._cache_mem = CandidateCovarianceCache(self.gpr_mem)

        # Stepwise-execution state (see start/step/finalize).  Lives on the
        # instance — not in run()-local variables — so a learner pickled
        # between steps checkpoints its complete mid-run state and resumes
        # bit-identically (the campaign service's resume contract).
        self._started = False
        self._stop: StopReason | None = None
        self._records: list[IterationRecord] = []
        self._fault_events: list[FaultEvent] = []
        self._cum_cost = 0.0
        self._cum_regret = 0.0
        self._iteration = 0
        self._initial_rmse = (float("nan"), float("nan"))
        self._prev_rmse = (float("nan"), float("nan"), float("nan"))
        self._memory_limit: float | None = None

    # ---------------------------------------------------------------- helpers

    def _train_indices(self) -> np.ndarray:
        return np.concatenate(
            [self.partition.init_idx, np.asarray(self._learned, dtype=np.int64)]
        )

    def _learn_observed(self, ds_indices) -> None:
        """Add fully observed samples (true targets) to both models.

        The helper subclasses (e.g. the batch learner) must use instead of
        touching ``_learned`` directly, so the per-model target lists stay
        aligned with the index lists.
        """
        for ds_index in ds_indices:
            ds_index = int(ds_index)
            self._learned.append(ds_index)
            self._targets_cost.append(float(self._log_cost[ds_index]))
            self._learned_mem.append(ds_index)
            self._targets_mem.append(float(self._log_mem[ds_index]))

    def _fit_models(self, optimize: bool = True) -> None:
        init = self.partition.init_idx
        idx_c = np.concatenate([init, np.asarray(self._learned, dtype=np.int64)])
        y_c = np.concatenate(
            [self._log_cost[init], np.asarray(self._targets_cost, dtype=np.float64)]
        )
        idx_m = np.concatenate([init, np.asarray(self._learned_mem, dtype=np.int64)])
        y_m = np.concatenate(
            [self._log_mem[init], np.asarray(self._targets_mem, dtype=np.float64)]
        )
        with obs.span("gp_fit", cat="al", optimize=optimize, n=int(idx_c.shape[0])):
            if optimize:
                self.gpr_cost.fit(self._U[idx_c], y_c)
                self.gpr_mem.fit(self._U[idx_m], y_m)
            else:
                self.gpr_cost.refactor(self._U[idx_c], y_c)
                self.gpr_mem.refactor(self._U[idx_m], y_m)

    def _test_rmse(self) -> tuple[float, float, float]:
        t = self.partition.test_idx
        mu_c = self.gpr_cost.predict(self._U[t])
        mu_m = self.gpr_mem.predict(self._U[t])
        weighted = float("nan")
        if self.weight_rmse_by_cost:
            weighted = rmse_nonlog(mu_c, self.dataset.cost[t], weights=self.dataset.cost[t])
        return (
            rmse_nonlog(mu_c, self.dataset.cost[t]),
            rmse_nonlog(mu_m, self.dataset.mem[t]),
            weighted,
        )

    def _candidate_view(self) -> CandidateView:
        idx = np.asarray(self._remaining, dtype=np.int64)
        U = self._U[idx]
        if self._zero_refit:
            # No surrogate exists; the amortized policy scores from its
            # own features and never reads the predictive columns.
            nan = np.full(idx.shape[0], np.nan)
            return CandidateView(
                X=U, mu_cost=nan, sigma_cost=nan, mu_mem=nan, sigma_mem=nan
            )
        if self.cache_candidates:
            mu_c, sd_c = self._cache_cost.predict(U)
            mu_m, sd_m = self._cache_mem.predict(U)
        else:
            mu_c, sd_c = self.gpr_cost.predict(U, return_std=True)
            mu_m, sd_m = self.gpr_mem.predict(U, return_std=True)
        return CandidateView(
            X=U, mu_cost=mu_c, sigma_cost=sd_c, mu_mem=mu_m, sigma_mem=sd_m
        )

    # -------------------------------------------------------------------- run

    def run(self) -> Trajectory:
        """Execute the full AL loop and return its trajectory.

        With an enabled ``acquisition_faults`` model, acquisitions can
        crash (no usable responses) or come back RSS-censored (cost
        observed, memory lost); either way the sample's node-hours are
        charged, the candidate leaves the pool, a
        :class:`~repro.faults.FaultEvent` is appended to the trajectory,
        and the loop proceeds per ``on_failure`` — it never corrupts the
        incremental-Cholesky fast path (lost samples are *dropped* from
        the cached cross-covariance, never appended) and never aborts.
        """
        with obs.span(
            "trajectory",
            cat="al",
            policy=self.policy.name,
            n_init=self.partition.n_init,
        ) as traj_span:
            trajectory = self._run()
            traj_span.annotate(
                iterations=len(trajectory), stop_reason=trajectory.stop_reason.value
            )
            return trajectory

    def _run(self) -> Trajectory:
        self.start()
        while self.step():
            pass
        return self.finalize()

    # ------------------------------------------------------- stepwise API

    @property
    def finished(self) -> bool:
        """True once the run has reached a stop condition."""
        return self._stop is not None

    @property
    def iteration(self) -> int:
        """The next AL iteration to execute (0 before any selection)."""
        return self._iteration

    @property
    def records(self) -> tuple[IterationRecord, ...]:
        """Records committed so far (stable snapshot)."""
        return tuple(self._records)

    @property
    def cumulative_cost_spent(self) -> float:
        """Node-hours charged so far (the campaign ledger's feed)."""
        return self._cum_cost

    def start(self) -> None:
        """Pre-AL initialization: initial fit + baseline RMSE (idempotent).

        Splitting this out of :meth:`run` lets a driver (the campaign
        service) execute the loop one :meth:`step` at a time, pickling the
        learner between steps as a checkpoint.  Everything :meth:`step`
        needs lives on the instance afterwards.
        """
        if self._started:
            return
        self.stopping_rule.reset()
        if not self._zero_refit:
            self._fit_models(optimize=True)
            rmse_c0, rmse_m0, _ = self._test_rmse()
            self._initial_rmse = (rmse_c0, rmse_m0)
            # RMSE reported on iterations that learned nothing (dropped
            # acquisitions leave the models untouched).
            self._prev_rmse = (rmse_c0, rmse_m0, float("nan"))
        self._memory_limit = getattr(self.policy, "memory_limit_MB", None)
        prepare = getattr(self.policy, "prepare", None)
        if prepare is not None:
            # One-time policy state construction (e.g. the amortized
            # feature extractor).  Runs only on a cold start: ``_started``
            # rides the checkpoint pickle, so a resumed learner keeps the
            # policy state it was pickled with instead of rebuilding it.
            from repro.policy.features import PolicyContext

            prepare(
                PolicyContext(
                    dataset=self.dataset,
                    scaler=self.scaler,
                    pool_indices=np.asarray(self._remaining, dtype=np.int64),
                    train_indices=self._train_indices(),
                    memory_limit_MB=getattr(self.policy, "memory_limit_MB", None),
                )
            )
        self._started = True

    def step(self) -> bool:
        """One selection attempt; returns False once the run has ended.

        Exactly one pass of Algorithm 1's loop body: at most one candidate
        leaves the pool, and the ``next_best`` failure path consumes a step
        without advancing the iteration counter (a replacement is selected
        on the following step), matching the historical in-loop ``continue``.
        The learner may be pickled between any two calls and the restored
        copy continues the identical sequence.
        """
        if not self._started:
            self.start()
        if self._stop is not None:
            return False
        if not self._remaining:
            self._stop = StopReason.EXHAUSTED
            return False

        faults = self.acquisition_faults
        faults_on = faults is not None and faults.enabled
        iteration = self._iteration

        with obs.span(
            "al_iteration",
            cat="al",
            iteration=iteration,
            pool=len(self._remaining),
        ):
            if self.max_iterations is not None and iteration >= self.max_iterations:
                self._stop = StopReason.MAX_ITERATIONS
                return False
            view = self._candidate_view()
            if self.stopping_rule.update(view.mu_cost, view.sigma_cost):
                self._stop = StopReason.STOPPING_RULE
                return False
            pos = self.policy.select(view, self.rng)
            if pos is None:
                self._stop = StopReason.MEMORY_CONSTRAINED
                return False
            ds_index = self._remaining.pop(pos)
            outcome = faults.strike(self.rng) if faults_on else AcquisitionOutcome.OK

            # The experiment ran (or died trying): its node-hours are
            # spent regardless of whether the observation is usable.
            cost = float(self.dataset.cost[ds_index])
            mem = float(self.dataset.mem[ds_index])
            self._cum_cost += cost
            if self._memory_limit is not None:
                self._cum_regret += individual_regret(cost, mem, self._memory_limit)

            crashed = outcome is AcquisitionOutcome.CRASHED
            censored = outcome is AcquisitionOutcome.CENSORED
            if crashed and self.on_failure is not FailurePolicy.IMPUTE:
                # The sample is lost entirely: remove it from the cached
                # cross-covariances (row only — it never joins the kernel)
                # and leave both models untouched.
                if self.cache_candidates:
                    self._cache_cost.drop(pos)
                    self._cache_mem.drop(pos)
                if self._policy_hooks:
                    self.policy.observe_drop(pos, cost=cost)
                obs.event(
                    "acquisition_fault",
                    cat="al",
                    kind="crash",
                    dataset_index=int(ds_index),
                    handled=self.on_failure.value,
                )
                self._fault_events.append(
                    FaultEvent(
                        job_id=int(ds_index),
                        attempt=iteration,
                        kind=FaultKind.CRASH,
                        lost_wall_seconds=float(self.dataset.wall[ds_index]),
                        nodes=int(self.dataset.X[ds_index, 0]),
                        detail=f"acquisition crashed ({self.on_failure.value})",
                    )
                )
                self._records.append(
                    IterationRecord(
                        iteration=iteration,
                        dataset_index=int(ds_index),
                        cost=cost,
                        mem=mem,
                        rmse_cost=self._prev_rmse[0],
                        rmse_mem=self._prev_rmse[1],
                        cumulative_cost=self._cum_cost,
                        cumulative_regret=self._cum_regret,
                        rmse_cost_weighted=self._prev_rmse[2],
                        failed=True,
                    )
                )
                if self.on_failure is not FailurePolicy.NEXT_BEST:
                    self._iteration += 1  # DROP: the iteration is consumed
                return True  # NEXT_BEST: replacement selected next step

            # The sample (or an imputation of it) joins the training sets.
            u_new = self._U[ds_index]
            target_cost = float(self._log_cost[ds_index])
            target_mem = float(self._log_mem[ds_index])
            learn_mem = True
            if crashed:  # IMPUTE policy: both observations were lost
                target_cost = float(self.gpr_cost.predict(u_new[None, :])[0])
                target_mem = float(self.gpr_mem.predict(u_new[None, :])[0])
            elif censored:  # cost observed, MaxRSS lost
                if self.on_failure is FailurePolicy.IMPUTE:
                    target_mem = float(self.gpr_mem.predict(u_new[None, :])[0])
                else:
                    learn_mem = False

            self._learned.append(ds_index)
            self._targets_cost.append(target_cost)
            if learn_mem:
                self._learned_mem.append(ds_index)
                self._targets_mem.append(target_mem)
            if self.cache_candidates and not self._zero_refit:
                U_rem = self._U[np.asarray(self._remaining, dtype=np.int64)]
                self._cache_cost.acquire(pos, U_rem, u_new)
                if learn_mem:
                    self._cache_mem.acquire(pos, U_rem, u_new)
                else:
                    self._cache_mem.drop(pos)
            if self._policy_hooks:
                self.policy.observe_acquire(
                    pos,
                    u_new,
                    cost=cost,
                    target_cost=target_cost,
                    target_mem=target_mem,
                    learn_mem=learn_mem,
                )
            if crashed or censored:
                obs.event(
                    "acquisition_fault",
                    cat="al",
                    kind="crash" if crashed else "rss_lost",
                    dataset_index=int(ds_index),
                    handled=self.on_failure.value,
                )
                self._fault_events.append(
                    FaultEvent(
                        job_id=int(ds_index),
                        attempt=iteration,
                        kind=FaultKind.CRASH if crashed else FaultKind.RSS_LOST,
                        lost_wall_seconds=(
                            float(self.dataset.wall[ds_index]) if crashed else 0.0
                        ),
                        nodes=int(self.dataset.X[ds_index, 0]),
                        detail=f"handled via {self.on_failure.value}",
                    )
                )

            if self._zero_refit:
                # The whole point: no fit, no refactor, no RMSE pass.
                rmse_c, rmse_m, rmse_w = self._prev_rmse
            else:
                optimize = (iteration % self.hyper_refit_interval) == 0
                self._fit_models(optimize=optimize)
                rmse_c, rmse_m, rmse_w = self._test_rmse()
                self._prev_rmse = (rmse_c, rmse_m, rmse_w)
            self._records.append(
                IterationRecord(
                    iteration=iteration,
                    dataset_index=int(ds_index),
                    cost=cost,
                    mem=mem,
                    rmse_cost=rmse_c,
                    rmse_mem=rmse_m,
                    cumulative_cost=self._cum_cost,
                    cumulative_regret=self._cum_regret,
                    rmse_cost_weighted=rmse_w,
                    failed=crashed,
                    censored=censored,
                )
            )
            self._iteration += 1
        return True

    def finalize(self, stop: StopReason | None = None) -> Trajectory:
        """Build the :class:`Trajectory` for the run so far.

        ``stop`` overrides the recorded stop reason — the campaign service
        uses it to close out a run its ledger terminated early
        (:attr:`StopReason.BUDGET_EXHAUSTED`).  Without an override, an
        unfinished run reports ``EXHAUSTED`` (the historical default for a
        loop that never hit another condition).
        """
        if stop is None:
            stop = self._stop if self._stop is not None else StopReason.EXHAUSTED
        else:
            self._stop = stop
        return Trajectory(
            policy_name=self.policy.name,
            n_init=self.partition.n_init,
            records=tuple(self._records),
            stop_reason=stop,
            initial_rmse_cost=self._initial_rmse[0],
            initial_rmse_mem=self._initial_rmse[1],
            fault_events=tuple(self._fault_events),
            config=self.config.describe(),
        )
