"""Algorithm 1: the Active Learning procedure.

The learner owns two GPR models — cost and memory — pre-fit on the Initial
partition.  Each iteration it predicts over the remaining Active samples,
asks the selection policy for a candidate, "runs the experiment" by looking
the sample up in the offline dataset, moves it into the learned set, and
retrains both models warm-started from the previous hyperparameters.
Test-set RMSE, cumulative cost, and cumulative regret are recorded after
every iteration.
"""

from __future__ import annotations

import numpy as np

from repro.core.metrics import individual_regrets, rmse_nonlog
from repro.core.partitions import Partition
from repro.core.policies import CandidateView, RGMA, SelectionPolicy
from repro.core.preprocessing import DesignTransform
from repro.core.stopping import NoEarlyStopping, StoppingRule
from repro.core.trajectory import IterationRecord, StopReason, Trajectory
from repro.data.dataset import Dataset
from repro.gp.gpr import GPRegressor
from repro.gp.kernels import Kernel, default_kernel


class ActiveLearner:
    """Runs Algorithm 1 on an offline dataset.

    Parameters
    ----------
    dataset : Dataset
        Precomputed job table (features + cost/memory responses).
    partition : Partition
        Initial / Active / Test split.
    policy : SelectionPolicy
        One of the Sec. IV-B algorithms (:mod:`repro.core.policies`).
    rng : numpy.random.Generator
        Drives randomized policies and GPR restarts.
    kernel : Kernel, optional
        Prior covariance for *both* models; defaults to the paper's
        amplitude * RBF + noise.
    n_restarts : int
        LML restarts on the initial fit (later fits warm-start).
    hyper_refit_interval : int
        Re-optimize hyperparameters every this many iterations; in between,
        the models are refactored on the enlarged training set with frozen
        hyperparameters.  1 (default) is the paper-faithful behaviour.
    stopping_rule : StoppingRule, optional
        Extra early-termination heuristic (Sec. V-D); default never fires.
    max_iterations : int, optional
        Hard cap on AL iterations (e.g. 150 for the Fig. 2 analysis).
    log2_features : iterable of int, optional
        Feature columns to model through their log2 exponent (Sec. V-D:
        powers-of-two features like the node count ``p``).
    weight_rmse_by_cost : bool
        Also record the cost-weighted test RMSE of Eq. (12) each iteration
        (``rho = diag(test costs)``), the scale-dependent metric Sec. V-D
        argues suits cost-efficient AL.
    model_factory : callable, optional
        Zero-argument factory producing the surrogate model for *each* of
        the cost and memory responses.  Anything with the
        ``fit`` / ``refactor`` / ``predict(return_std=True)`` surface of
        :class:`~repro.gp.gpr.GPRegressor` works — e.g.
        :class:`repro.gp.local.LocalGPRegressor` (the paper's "multiple
        local performance models" future work).  Overrides ``kernel`` and
        ``n_restarts``.
    """

    def __init__(
        self,
        dataset: Dataset,
        partition: Partition,
        policy: SelectionPolicy,
        rng: np.random.Generator,
        kernel: Kernel | None = None,
        n_restarts: int = 2,
        hyper_refit_interval: int = 1,
        stopping_rule: StoppingRule | None = None,
        max_iterations: int | None = None,
        log2_features=(),
        weight_rmse_by_cost: bool = False,
        model_factory=None,
    ) -> None:
        if hyper_refit_interval < 1:
            raise ValueError("hyper_refit_interval must be >= 1")
        self.dataset = dataset
        self.partition = partition
        self.policy = policy
        self.rng = rng
        self.hyper_refit_interval = int(hyper_refit_interval)
        self.stopping_rule = stopping_rule if stopping_rule is not None else NoEarlyStopping()
        self.max_iterations = max_iterations
        self.weight_rmse_by_cost = weight_rmse_by_cost

        self.scaler = DesignTransform(dataset.bounds, log2_columns=log2_features)
        self._U = self.scaler.transform(dataset.X)  # all features, unit cube
        self._log_cost = dataset.log_cost()
        self._log_mem = dataset.log_mem()

        if model_factory is not None:
            self.gpr_cost = model_factory()
            self.gpr_mem = model_factory()
        else:
            base_kernel = kernel if kernel is not None else default_kernel()
            self.gpr_cost = GPRegressor(kernel=base_kernel, n_restarts=n_restarts, rng=rng)
            self.gpr_mem = GPRegressor(
                kernel=base_kernel.with_theta(base_kernel.theta),
                n_restarts=n_restarts,
                rng=rng,
            )

        # Mutable AL state.
        self._remaining = list(partition.active_idx)
        self._learned: list[int] = []

    # ---------------------------------------------------------------- helpers

    def _train_indices(self) -> np.ndarray:
        return np.concatenate(
            [self.partition.init_idx, np.asarray(self._learned, dtype=np.int64)]
        )

    def _fit_models(self, optimize: bool = True) -> None:
        idx = self._train_indices()
        U, lc, lm = self._U[idx], self._log_cost[idx], self._log_mem[idx]
        if optimize:
            self.gpr_cost.fit(U, lc)
            self.gpr_mem.fit(U, lm)
        else:
            self.gpr_cost.refactor(U, lc)
            self.gpr_mem.refactor(U, lm)

    def _test_rmse(self) -> tuple[float, float, float]:
        t = self.partition.test_idx
        mu_c = self.gpr_cost.predict(self._U[t])
        mu_m = self.gpr_mem.predict(self._U[t])
        weighted = float("nan")
        if self.weight_rmse_by_cost:
            weighted = rmse_nonlog(mu_c, self.dataset.cost[t], weights=self.dataset.cost[t])
        return (
            rmse_nonlog(mu_c, self.dataset.cost[t]),
            rmse_nonlog(mu_m, self.dataset.mem[t]),
            weighted,
        )

    def _candidate_view(self) -> CandidateView:
        idx = np.asarray(self._remaining, dtype=np.int64)
        U = self._U[idx]
        mu_c, sd_c = self.gpr_cost.predict(U, return_std=True)
        mu_m, sd_m = self.gpr_mem.predict(U, return_std=True)
        return CandidateView(
            X=U, mu_cost=mu_c, sigma_cost=sd_c, mu_mem=mu_m, sigma_mem=sd_m
        )

    # -------------------------------------------------------------------- run

    def run(self) -> Trajectory:
        """Execute the full AL loop and return its trajectory."""
        self.stopping_rule.reset()
        self._fit_models(optimize=True)
        rmse_c0, rmse_m0, _ = self._test_rmse()

        memory_limit = (
            self.policy.memory_limit_MB if isinstance(self.policy, RGMA) else None
        )
        records: list[IterationRecord] = []
        cum_cost = 0.0
        cum_regret = 0.0
        stop = StopReason.EXHAUSTED

        iteration = 0
        while self._remaining:
            if self.max_iterations is not None and iteration >= self.max_iterations:
                stop = StopReason.MAX_ITERATIONS
                break
            view = self._candidate_view()
            if self.stopping_rule.update(view.mu_cost, view.sigma_cost):
                stop = StopReason.STOPPING_RULE
                break
            pos = self.policy.select(view, self.rng)
            if pos is None:
                stop = StopReason.MEMORY_CONSTRAINED
                break
            ds_index = self._remaining.pop(pos)
            self._learned.append(ds_index)

            cost = float(self.dataset.cost[ds_index])
            mem = float(self.dataset.mem[ds_index])
            cum_cost += cost
            if memory_limit is not None:
                cum_regret += float(
                    individual_regrets(
                        np.array([cost]), np.array([mem]), memory_limit
                    )[0]
                )

            optimize = (iteration % self.hyper_refit_interval) == 0
            self._fit_models(optimize=optimize)
            rmse_c, rmse_m, rmse_w = self._test_rmse()
            records.append(
                IterationRecord(
                    iteration=iteration,
                    dataset_index=int(ds_index),
                    cost=cost,
                    mem=mem,
                    rmse_cost=rmse_c,
                    rmse_mem=rmse_m,
                    cumulative_cost=cum_cost,
                    cumulative_regret=cum_regret,
                    rmse_cost_weighted=rmse_w,
                )
            )
            iteration += 1

        return Trajectory(
            policy_name=self.policy.name,
            n_init=self.partition.n_init,
            records=tuple(records),
            stop_reason=stop,
            initial_rmse_cost=rmse_c0,
            initial_rmse_mem=rmse_m0,
        )
