"""Cost- and memory-aware Active Learning (the paper's contribution).

Implements Algorithm 1 (the AL loop over an offline dataset), the five
candidate-selection policies of Sec. IV-B — RandUniform, MaxSigma, MinPred,
RandGoodness, and RGMA (Algorithm 2) — and the evaluation metrics of
Sec. V-B: test-set RMSE in non-log space, cumulative cost, and cumulative
regret under a memory limit.

Typical use::

    from repro.core import ActiveLearner, random_partition, POLICIES
    from repro.data import run_campaign

    ds = run_campaign(rng).dataset
    part = random_partition(rng, len(ds), n_init=50, n_test=200)
    learner = ActiveLearner(ds, part, policy=POLICIES["rgma"](memory_limit_MB=ds.memory_limit()), rng=rng)
    trajectory = learner.run()
"""

from repro.core.preprocessing import (
    DesignTransform,
    FeatureScaler,
    log10_response,
    unlog10_response,
)
from repro.core.partitions import Partition, random_partition
from repro.core.policies import (
    CandidateView,
    SelectionPolicy,
    RandUniform,
    MaxSigma,
    MinPred,
    RandGoodness,
    RGMA,
    POLICIES,
)
from repro.core.metrics import (
    rmse_nonlog,
    cumulative_cost,
    cumulative_regret,
    individual_regrets,
)
from repro.core.trajectory import IterationRecord, Trajectory, StopReason
from repro.core.config import ALConfig
from repro.core.loop import ActiveLearner, CandidateCovarianceCache
from repro.core.batch import BatchConfig, BatchResult, run_batch
from repro.core.parallel import (
    ShardWorkerError,
    ShardWorkerPool,
    TrajectoryFailure,
    TrajectorySpec,
    run_trajectories,
)
from repro.core.service import (
    CampaignInfo,
    CampaignQueue,
    CampaignService,
    CampaignSpec,
    CampaignStatus,
    ChaosConfig,
    CheckpointStore,
    ServiceError,
    ServiceReport,
    build_learner,
    dataset_fingerprint,
    dumps_campaign,
    loads_campaign,
)
from repro.core.portfolio import (
    MultiFidelityActiveLearner,
    PortfolioCandidateView,
    PortfolioPolicy,
)
from repro.core.batch_selection import BATCH_STRATEGIES, BatchActiveLearner
from repro.core.online import OnlineActiveLearner, OnlineResult
from repro.core.advisor import ConfigurationAdvisor, Recommendation
from repro.core.stopping import (
    StoppingRule,
    NoEarlyStopping,
    StabilizingPredictions,
    UncertaintyReduction,
)

__all__ = [
    "ALConfig",
    "DesignTransform",
    "FeatureScaler",
    "log10_response",
    "unlog10_response",
    "Partition",
    "random_partition",
    "CandidateView",
    "SelectionPolicy",
    "RandUniform",
    "MaxSigma",
    "MinPred",
    "RandGoodness",
    "RGMA",
    "POLICIES",
    "rmse_nonlog",
    "cumulative_cost",
    "cumulative_regret",
    "individual_regrets",
    "IterationRecord",
    "Trajectory",
    "StopReason",
    "ActiveLearner",
    "CandidateCovarianceCache",
    "ShardWorkerError",
    "ShardWorkerPool",
    "TrajectoryFailure",
    "TrajectorySpec",
    "run_trajectories",
    "CampaignInfo",
    "CampaignQueue",
    "CampaignService",
    "CampaignSpec",
    "CampaignStatus",
    "ChaosConfig",
    "CheckpointStore",
    "ServiceError",
    "ServiceReport",
    "build_learner",
    "dataset_fingerprint",
    "dumps_campaign",
    "loads_campaign",
    "MultiFidelityActiveLearner",
    "PortfolioCandidateView",
    "PortfolioPolicy",
    "BatchActiveLearner",
    "BATCH_STRATEGIES",
    "BatchConfig",
    "OnlineActiveLearner",
    "OnlineResult",
    "ConfigurationAdvisor",
    "Recommendation",
    "BatchResult",
    "run_batch",
    "StoppingRule",
    "NoEarlyStopping",
    "StabilizingPredictions",
    "UncertaintyReduction",
]
