"""Batch multi-fidelity acquisition: portfolios of (point, fidelity) pairs.

The paper's RGMA loop picks one full-fidelity job at a time.  This module
extends selection to *portfolios*: each acquisition round greedily picks
up to B pairs ``(candidate, fidelity)`` — maximizing predicted
information per node-hour — subject to a per-round node-hour budget
tracked by a :class:`~repro.machine.accounting.CampaignLedger`
(following Li et al., "Batch Multi-Fidelity Active Learning with Budget
Constraints", PAPERS.md).

Invariants (DESIGN.md "Batch multi-fidelity portfolios"):

- **Budget feasibility**: every pick's *predicted* cost
  ``10**mu_cost`` is charged against the round ledger at selection
  time; a pair that does not fit the ledger's remaining node-hours is
  infeasible, so the predicted cost of every emitted batch never
  exceeds the round budget.
- **Exact B=1/F=1 reduction**: with one fidelity, batch size 1, and no
  round budget, :meth:`PortfolioPolicy.select_batch` evaluates the
  identical memory mask, goodness distribution, and single
  ``rng.choice`` draw as :meth:`repro.core.policies.RGMA.select` —
  selections are bit-identical to the sequential paper policy.
- **Y-free in-batch conditioning**: between picks of one round the cost
  sigmas are deflated by the *prior* covariance each already-picked pair
  shares with the remainder (no observations are fantasized), keeping
  the greedy selection submodular-style diverse without extra rng draws
  — it therefore never perturbs the B=1 reduction.
- Scoring uses the *effective* top-fidelity sigma ``|w_f| * sigma_f``:
  the share of a fidelity-``f`` observation's uncertainty that
  propagates into the top-fidelity posterior through the co-kriging
  recursion (``w_f = prod(rho_{f+1..F-1})``, exactly 1 at ``F=1``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace as _dc_replace

import numpy as np

from repro import obs
from repro.core.config import ALConfig
from repro.core.loop import ActiveLearner
from repro.core.metrics import individual_regret
from repro.core.partitions import Partition
from repro.core.policies import RGMA, goodness_distribution
from repro.core.trajectory import IterationRecord, StopReason
from repro.data.dataset import Dataset
from repro.data.fidelity import FidelitySchedule, MultiFidelityDataset
from repro.machine.accounting import CampaignLedger
from repro.registry import register_policy

__all__ = [
    "MultiFidelityActiveLearner",
    "PortfolioCandidateView",
    "PortfolioPolicy",
]


@dataclass(frozen=True)
class PortfolioCandidateView:
    """Per-fidelity model state over the remaining candidates.

    The batch analogue of :class:`~repro.core.policies.CandidateView`:
    every predictive array carries one row per fidelity (low to high).

    Attributes
    ----------
    X : ndarray, shape (m, d)
        Scaled features of the remaining candidates.
    mu_cost, sigma_cost : ndarray, shape (F, m)
        Predictive mean / std of the log10-cost stack at each fidelity.
    mu_mem : ndarray, shape (F, m)
        Predictive mean of the log10-memory stack at each fidelity.
    weights : ndarray, shape (F,)
        ``|w_f|``: how much a fidelity-``f`` observation's sigma
        propagates into the top-fidelity posterior (1.0 at the top).
    blocked : ndarray of bool, shape (F, m)
        Pairs no longer available (already observed at that fidelity).
    """

    X: np.ndarray
    mu_cost: np.ndarray
    sigma_cost: np.ndarray
    mu_mem: np.ndarray
    weights: np.ndarray
    blocked: np.ndarray

    def __post_init__(self) -> None:
        F, m = self.mu_cost.shape
        if self.X.shape[0] != m:
            raise ValueError(f"X must have {m} rows")
        for name in ("sigma_cost", "mu_mem", "blocked"):
            if getattr(self, name).shape != (F, m):
                raise ValueError(f"{name} must have shape ({F}, {m})")
        if self.weights.shape != (F,):
            raise ValueError(f"weights must have shape ({F},)")

    @property
    def num_fidelities(self) -> int:
        return int(self.mu_cost.shape[0])

    def __len__(self) -> int:
        return int(self.X.shape[0])


@register_policy("portfolio")
class PortfolioPolicy(RGMA):
    """Greedy budgeted portfolio selection over (point, fidelity) pairs.

    Subclasses :class:`RGMA`, so the sequential ``select`` surface (and
    the memory-awareness parameters) behave exactly like the paper
    policy; :meth:`select_batch` is the batch extension the
    :class:`MultiFidelityActiveLearner` drives.
    """

    name = "portfolio"

    def select_batch(
        self,
        view: PortfolioCandidateView,
        rng: np.random.Generator,
        ledger: CampaignLedger | None = None,
        batch_size: int = 1,
        conditioner=None,
    ) -> list[tuple[int, int]]:
        """Pick up to ``batch_size`` feasible ``(position, fidelity)`` pairs.

        Feasibility of a pair: predicted memory under the limit, pair not
        blocked, point not already picked this round, and — when a round
        ``ledger`` is given — predicted cost within its remaining
        node-hours (charged per pick, so the batch's predicted total
        never exceeds the budget).  Each pick consumes exactly one
        ``rng.choice`` through the RGMA goodness path; ``conditioner``
        (if given) deflates the remaining sigmas between picks.
        """
        with obs.timed("select", cat="al", policy=self.name):
            F, m = view.mu_cost.shape
            if m == 0:
                return []
            sigma = view.sigma_cost
            blocked = view.blocked.copy()
            mem_ok = view.mu_mem < self.log_limit
            mu_flat = view.mu_cost.reshape(-1)
            picks: list[tuple[int, int]] = []
            for b in range(batch_size):
                feasible = mem_ok & ~blocked
                if ledger is not None:
                    pred_cost = np.power(10.0, view.mu_cost)
                    feasible = feasible & (
                        pred_cost <= ledger.remaining_node_hours
                    )
                satisfying = np.flatnonzero(feasible.reshape(-1))
                if satisfying.size == 0:
                    break
                sigma_eff = (view.weights[:, None] * sigma).reshape(-1)
                g = goodness_distribution(
                    mu_flat[satisfying], sigma_eff[satisfying], self.base
                )
                j = int(satisfying[rng.choice(satisfying.size, p=g)])
                fid, pos = divmod(j, m)
                picks.append((pos, fid))
                # One observation per design point per round: picking the
                # same point twice in a batch would double-count its
                # (unconditioned) information.
                blocked[:, pos] = True
                if ledger is not None:
                    ledger.charge(float(10.0 ** view.mu_cost[fid, pos]))
                if b + 1 < batch_size and conditioner is not None:
                    sigma = conditioner(np.array(sigma, copy=True), pos, fid)
            return picks


class MultiFidelityActiveLearner(ActiveLearner):
    """Algorithm 1 with batch multi-fidelity portfolio acquisition.

    One :meth:`step` executes one *portfolio round*: score every
    remaining (point, fidelity) pair, greedily select up to
    ``config.batch_size`` pairs under ``config.round_budget_node_hours``,
    observe them all at their fidelity's price, then refit the co-kriging
    stacks once.  All mutable state lives on the instance, so the
    campaign service's pickle-between-steps checkpointing (and its resume
    bit-identity contract) applies unchanged — per-fidelity training sets
    ride the pickle like the base learner's lists do.

    With ``F=1``/``B=1`` and no round budget, every round reduces to the
    base learner's single RGMA-style acquisition — selections, cache
    operations, and rng consumption are identical (the tested reduction).

    Parameters
    ----------
    dataset : MultiFidelityDataset or Dataset
        The priced fidelity surfaces.  A plain :class:`Dataset` is
        accepted for single-fidelity configurations only (the wrap is
        free); multi-fidelity runs must price one via
        :meth:`MultiFidelityDataset.from_dataset`.
    partition, rng : as on :class:`ActiveLearner`.
    policy : optional
        Must offer ``select_batch`` (e.g. :class:`PortfolioPolicy`);
        defaults to a :class:`PortfolioPolicy` at the dataset's memory
        limit.
    config : ALConfig, optional
        ``num_fidelities``/``fidelity_schedule``/``batch_size``/
        ``round_budget_node_hours`` drive the portfolio; the surrogate is
        normalized to the registered ``"multifidelity"`` backend with the
        dataset's fidelity count.
    """

    def __init__(
        self,
        dataset: MultiFidelityDataset | Dataset,
        partition: Partition,
        policy=None,
        rng: np.random.Generator | None = None,
        config: ALConfig | None = None,
    ) -> None:
        cfg = config if config is not None else ALConfig()
        if isinstance(dataset, MultiFidelityDataset):
            mf = dataset
        else:
            if cfg.num_fidelities != 1:
                raise ValueError(
                    "multi-fidelity configurations need a MultiFidelityDataset "
                    "(price one with MultiFidelityDataset.from_dataset)"
                )
            mf = MultiFidelityDataset(
                base=dataset,
                wall=dataset.wall[None, :],
                cost=dataset.cost[None, :],
                mem=dataset.mem[None, :],
                schedule=FidelitySchedule(),
            )
        F = mf.num_fidelities
        # Normalize the config so describe()/fingerprint() reflect the
        # run's real identity: the multifidelity surrogate backend and
        # the fidelity axis actually in effect.
        opts = dict(cfg.surrogate_options)
        opts["num_fidelities"] = F
        cfg = _dc_replace(
            cfg,
            surrogate="multifidelity",
            surrogate_options=opts,
            num_fidelities=F,
            fidelity_schedule=tuple(
                tuple(level.describe()) for level in mf.schedule.levels
            ),
        )
        if policy is None and cfg.policy is None:
            policy = PortfolioPolicy(memory_limit_MB=mf.memory_limit())
        super().__init__(mf.base, partition, policy=policy, rng=rng, config=cfg)
        if not hasattr(self.policy, "select_batch"):
            raise ValueError(
                f"policy {self.policy.name!r} has no select_batch surface; "
                "portfolio acquisition needs a PortfolioPolicy-style policy"
            )
        if self._zero_refit:
            raise ValueError("portfolio selection needs a surrogate-backed policy")
        faults = cfg.acquisition_faults
        if faults is not None and faults.enabled and (F > 1 or cfg.batch_size > 1):
            raise ValueError(
                "acquisition faults are supported only at F=1/B=1 "
                "(the sequential reduction)"
            )
        self.mf = mf
        self._F = F
        self.batch_size = cfg.batch_size
        self.round_budget = cfg.round_budget_node_hours
        self._mf_log_cost = np.log10(mf.cost)
        self._mf_log_mem = np.log10(mf.mem)
        # Sub-top training sets (the top fidelity reuses the base-class
        # lists, keeping every inherited helper coherent).
        self._lofi_learned: list[list[int]] = [[] for _ in range(F - 1)]
        self._lofi_targets_cost: list[list[float]] = [[] for _ in range(F - 1)]
        self._lofi_targets_mem: list[list[float]] = [[] for _ in range(F - 1)]
        self._observed_pairs: set[tuple[int, int]] = set()
        #: Lifetime ledger of *actual* node-hours committed by this
        #: learner's acquisitions (the bench's denominator).
        self.ledger = CampaignLedger()

    # ----------------------------------------------------------- modelling

    def _fit_models(self, optimize: bool = True) -> None:
        if self._F == 1:
            super()._fit_models(optimize)
            return
        init = self.partition.init_idx
        X_cost, y_cost, X_mem, y_mem = [], [], [], []
        for f in range(self._F):
            if f == self._F - 1:
                idx_c = np.concatenate(
                    [init, np.asarray(self._learned, dtype=np.int64)]
                )
                t_c = np.concatenate(
                    [
                        self._log_cost[init],
                        np.asarray(self._targets_cost, dtype=np.float64),
                    ]
                )
                idx_m = np.concatenate(
                    [init, np.asarray(self._learned_mem, dtype=np.int64)]
                )
                t_m = np.concatenate(
                    [
                        self._log_mem[init],
                        np.asarray(self._targets_mem, dtype=np.float64),
                    ]
                )
            else:
                lidx = np.asarray(self._lofi_learned[f], dtype=np.int64)
                idx_c = idx_m = np.concatenate([init, lidx])
                t_c = np.concatenate(
                    [
                        self._mf_log_cost[f][init],
                        np.asarray(self._lofi_targets_cost[f], dtype=np.float64),
                    ]
                )
                t_m = np.concatenate(
                    [
                        self._mf_log_mem[f][init],
                        np.asarray(self._lofi_targets_mem[f], dtype=np.float64),
                    ]
                )
            fid_col_c = np.full(idx_c.shape[0], float(f))
            fid_col_m = np.full(idx_m.shape[0], float(f))
            X_cost.append(np.column_stack([self._U[idx_c], fid_col_c]))
            y_cost.append(t_c)
            X_mem.append(np.column_stack([self._U[idx_m], fid_col_m]))
            y_mem.append(t_m)
        Xc, yc = np.vstack(X_cost), np.concatenate(y_cost)
        Xm, ym = np.vstack(X_mem), np.concatenate(y_mem)
        with obs.span("gp_fit", cat="al", optimize=optimize, n=int(Xc.shape[0])):
            if optimize:
                self.gpr_cost.fit(Xc, yc)
                self.gpr_mem.fit(Xm, ym)
            else:
                self.gpr_cost.refactor(Xc, yc)
                self.gpr_mem.refactor(Xm, ym)

    # ----------------------------------------------------------- selection

    def _portfolio_view(self) -> PortfolioCandidateView:
        idx = np.asarray(self._remaining, dtype=np.int64)
        U = self._U[idx]
        F, m = self._F, idx.shape[0]
        top = self._candidate_view()  # top fidelity through the warm caches
        mu_c = np.empty((F, m))
        sd_c = np.empty((F, m))
        mu_m = np.empty((F, m))
        mu_c[F - 1] = top.mu_cost
        sd_c[F - 1] = top.sigma_cost
        mu_m[F - 1] = top.mu_mem
        for f in range(F - 1):
            mc, sc = self.gpr_cost.predict_fidelity(U, f, return_std=True)
            mu_c[f] = mc
            sd_c[f] = sc
            mu_m[f] = self.gpr_mem.predict_fidelity(U, f)
        if F == 1:
            weights = np.ones(1)
        else:
            weights = np.abs(self.gpr_cost.fidelity_weights(F - 1))
        blocked = np.zeros((F, m), dtype=bool)
        if self._observed_pairs:
            for pos, ds_index in enumerate(idx):
                for f in range(F - 1):
                    if (int(ds_index), f) in self._observed_pairs:
                        blocked[f, pos] = True
        return PortfolioCandidateView(
            X=U,
            mu_cost=mu_c,
            sigma_cost=sd_c,
            mu_mem=mu_m,
            weights=weights,
            blocked=blocked,
        )

    def _conditioner(self, U: np.ndarray):
        """Y-free sigma deflation given one in-batch pick (prior-based)."""

        def deflate(sigma: np.ndarray, pos: int, fid: int) -> np.ndarray:
            u_star = U[pos]
            denom = self.gpr_cost.prior_var_fidelity(u_star, fid)
            if not np.isfinite(denom) or denom <= 0:
                return sigma
            var = sigma * sigma
            for fq in range(self._F):
                c = self.gpr_cost.prior_cov_fidelity(U, fq, u_star, fid)
                var[fq] = np.maximum(var[fq] - (c * c) / denom, 0.0)
            return np.sqrt(var)

        return deflate

    # ----------------------------------------------------------------- step

    def step(self) -> bool:
        """One portfolio round; returns False once the run has ended."""
        if not self._started:
            self.start()
        if self._stop is not None:
            return False
        if not self._remaining:
            self._stop = StopReason.EXHAUSTED
            return False
        iteration = self._iteration
        with obs.span(
            "al_round",
            cat="al",
            iteration=iteration,
            pool=len(self._remaining),
            batch_size=self.batch_size,
        ):
            if self.max_iterations is not None and iteration >= self.max_iterations:
                self._stop = StopReason.MAX_ITERATIONS
                return False
            view = self._portfolio_view()
            top_row = view.num_fidelities - 1
            if self.stopping_rule.update(
                view.mu_cost[top_row], view.sigma_cost[top_row]
            ):
                self._stop = StopReason.STOPPING_RULE
                return False
            round_ledger = (
                CampaignLedger(budget_node_hours=self.round_budget)
                if self.round_budget is not None
                else None
            )
            conditioner = (
                self._conditioner(view.X) if self.batch_size > 1 else None
            )
            picks = self.policy.select_batch(
                view,
                self.rng,
                ledger=round_ledger,
                batch_size=self.batch_size,
                conditioner=conditioner,
            )
            if not picks:
                mem_feasible = (
                    view.mu_mem < self.policy.log_limit
                ) & ~view.blocked
                self._stop = (
                    StopReason.BUDGET_EXHAUSTED
                    if mem_feasible.any()
                    else StopReason.MEMORY_CONSTRAINED
                )
                return False
            self._observe_portfolio(picks, view)
        return True

    def _observe_portfolio(
        self, picks: list[tuple[int, int]], view: PortfolioCandidateView
    ) -> None:
        top = self._F - 1
        iteration = self._iteration
        if len(picks) == 1 and self._F == 1:
            # Single-fidelity single pick: the exact base-learner
            # acquisition path, byte for byte — keeps the candidate
            # caches warm (row drop + column append) so the B=1/F=1
            # reduction is bit-identical to sequential RGMA.
            pos, fid = picks[0]
            ds_index = self._remaining.pop(pos)
            cost = float(self.dataset.cost[ds_index])
            mem = float(self.dataset.mem[ds_index])
            self._cum_cost += cost
            self.ledger.charge(cost)
            if self._memory_limit is not None:
                self._cum_regret += individual_regret(
                    cost, mem, self._memory_limit
                )
            u_new = self._U[ds_index]
            self._learn_observed([ds_index])
            if self.cache_candidates:
                U_rem = self._U[np.asarray(self._remaining, dtype=np.int64)]
                self._cache_cost.acquire(pos, U_rem, u_new)
                self._cache_mem.acquire(pos, U_rem, u_new)
            optimize = (iteration % self.hyper_refit_interval) == 0
            self._fit_models(optimize=optimize)
            rmse_c, rmse_m, rmse_w = self._test_rmse()
            self._prev_rmse = (rmse_c, rmse_m, rmse_w)
            self._records.append(
                IterationRecord(
                    iteration=iteration,
                    dataset_index=int(ds_index),
                    cost=cost,
                    mem=mem,
                    rmse_cost=rmse_c,
                    rmse_mem=rmse_m,
                    cumulative_cost=self._cum_cost,
                    cumulative_regret=self._cum_regret,
                    rmse_cost_weighted=rmse_w,
                    fidelity=fid,
                )
            )
            self._iteration += 1
            return

        # General portfolio: resolve dataset indices before mutating the
        # pool (positions all refer to the selection-time ordering).
        resolved = [(self._remaining[pos], fid) for pos, fid in picks]
        for pos in sorted((p for p, f in picks if f == top), reverse=True):
            self._remaining.pop(pos)
        # The batch refit rebuilds the stacked cross basis anyway
        # (cross_version_ bump), so the caches just rebuild next round.
        self._cache_cost.invalidate()
        self._cache_mem.invalidate()
        staged: list[tuple[int, int, float, float, float, float]] = []
        for ds_index, fid in resolved:
            ds_index = int(ds_index)
            cost = float(self.mf.cost[fid, ds_index])
            mem = float(self.mf.mem[fid, ds_index])
            self._cum_cost += cost
            self.ledger.charge(cost)
            if self._memory_limit is not None:
                self._cum_regret += individual_regret(
                    cost, mem, self._memory_limit
                )
            if fid == top:
                self._learn_observed([ds_index])
            else:
                self._lofi_learned[fid].append(ds_index)
                self._lofi_targets_cost[fid].append(
                    float(self._mf_log_cost[fid][ds_index])
                )
                self._lofi_targets_mem[fid].append(
                    float(self._mf_log_mem[fid][ds_index])
                )
                self._observed_pairs.add((ds_index, fid))
            obs.event(
                "portfolio_pick",
                cat="al",
                dataset_index=ds_index,
                fidelity=fid,
                cost_node_hours=round(cost, 6),
            )
            staged.append(
                (ds_index, fid, cost, mem, self._cum_cost, self._cum_regret)
            )
        optimize = (iteration % self.hyper_refit_interval) == 0
        self._fit_models(optimize=optimize)
        rmse_c, rmse_m, rmse_w = self._test_rmse()
        self._prev_rmse = (rmse_c, rmse_m, rmse_w)
        for ds_index, fid, cost, mem, cum_cost, cum_regret in staged:
            self._records.append(
                IterationRecord(
                    iteration=self._iteration,
                    dataset_index=ds_index,
                    cost=cost,
                    mem=mem,
                    rmse_cost=rmse_c,
                    rmse_mem=rmse_m,
                    cumulative_cost=cum_cost,
                    cumulative_regret=cum_regret,
                    rmse_cost_weighted=rmse_w,
                    fidelity=fid,
                )
            )
            self._iteration += 1
