"""Optional AL stopping heuristics (paper Sec. V-D, second direction).

The paper notes that finding optimal stopping conditions is non-trivial and
points to stabilizing predictions [Bloodgood & Vijay-Shanker] as a usable
heuristic; it also observes RMSE can *grow* in the last iterations when
candidates become scarce.  These rules let callers stop before the pool is
exhausted.  They are extensions — the paper's headline runs use
:class:`NoEarlyStopping` (plus RGMA's built-in constraint termination).
"""

from __future__ import annotations

from collections import deque
from typing import Protocol

import numpy as np


class StoppingRule(Protocol):
    """Decides after each iteration whether AL should stop."""

    def update(self, mu_cost: np.ndarray, sigma_cost: np.ndarray) -> bool:
        """Feed the latest candidate predictions; True means stop now."""
        ...

    def reset(self) -> None:
        """Clear internal state before a new trajectory."""
        ...


class NoEarlyStopping:
    """Never stops; the default."""

    def update(self, mu_cost: np.ndarray, sigma_cost: np.ndarray) -> bool:
        return False

    def reset(self) -> None:  # pragma: no cover - nothing to clear
        pass


class StabilizingPredictions:
    """Stop when successive models agree on the remaining candidates.

    Tracks the mean absolute change of the predictive means between
    consecutive iterations (restricted to candidates present in both);
    stops after ``patience`` consecutive iterations below ``tolerance``.
    """

    def __init__(self, tolerance: float = 1e-3, patience: int = 5) -> None:
        if tolerance <= 0 or patience < 1:
            raise ValueError("tolerance must be positive, patience >= 1")
        self.tolerance = float(tolerance)
        self.patience = int(patience)
        self._prev: np.ndarray | None = None
        self._calm = 0

    def update(self, mu_cost: np.ndarray, sigma_cost: np.ndarray) -> bool:
        mu = np.asarray(mu_cost, dtype=np.float64)
        if self._prev is not None and mu.size > 0:
            # One candidate was removed since last time; compare on the
            # overlap by trimming to the shorter length is wrong in general,
            # so compare distributional summaries instead, which are
            # insensitive to the removed element.
            prev_summary = np.percentile(self._prev, [10, 50, 90])
            cur_summary = np.percentile(mu, [10, 50, 90])
            delta = float(np.abs(prev_summary - cur_summary).mean())
            self._calm = self._calm + 1 if delta < self.tolerance else 0
        self._prev = mu.copy()
        return self._calm >= self.patience

    def reset(self) -> None:
        self._prev = None
        self._calm = 0


class UncertaintyReduction:
    """Stop when the pool's maximum predictive std falls below a floor.

    Once every remaining candidate is predicted with confidence, more
    samples buy little model improvement.
    """

    def __init__(self, sigma_floor: float = 0.02, patience: int = 3) -> None:
        if sigma_floor <= 0 or patience < 1:
            raise ValueError("sigma_floor must be positive, patience >= 1")
        self.sigma_floor = float(sigma_floor)
        self.patience = int(patience)
        self._recent: deque[float] = deque(maxlen=patience)

    def update(self, mu_cost: np.ndarray, sigma_cost: np.ndarray) -> bool:
        sigma = np.asarray(sigma_cost, dtype=np.float64)
        if sigma.size == 0:
            return True
        self._recent.append(float(sigma.max()))
        return (
            len(self._recent) == self.patience
            and max(self._recent) < self.sigma_floor
        )

    def reset(self) -> None:
        self._recent.clear()
