"""ALConfig: the resolved configuration of one Active-Learning run.

:class:`~repro.core.loop.ActiveLearner` grew a dozen keyword arguments;
this dataclass consolidates every knob that is *configuration* (as opposed
to the run's data inputs — dataset, partition, policy, rng, which remain
positional on the learner).  Benefits over loose kwargs:

- one value to validate, log, and pass around (``ActiveLearner(...,
  config=cfg)``; the legacy keywords still work and are mapped onto a
  config internally);
- :meth:`ALConfig.describe` renders the resolved configuration as a
  JSON-able dict, which the learner embeds in its
  :class:`~repro.core.trajectory.Trajectory` and the CLI embeds in
  exported Chrome traces — runs are self-describing.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from typing import Any, Callable

from repro.core.stopping import StoppingRule
from repro.faults.acquisition import AcquisitionFaultModel, FailurePolicy
from repro.gp.kernels import Kernel
from repro.registry import policy_registry, surrogate_registry


@dataclass(frozen=True)
class ALConfig:
    """Every tuning knob of Algorithm 1, in one validated value.

    Field semantics are documented on :class:`~repro.core.loop.ActiveLearner`
    (they are the learner's former keyword arguments, unchanged).
    """

    kernel: Kernel | None = None
    n_restarts: int = 2
    hyper_refit_interval: int = 1
    stopping_rule: StoppingRule | None = None
    max_iterations: int | None = None
    log2_features: tuple[int, ...] = ()
    weight_rmse_by_cost: bool = False
    model_factory: Callable[[], Any] | None = None
    cache_candidates: bool = True
    acquisition_faults: AcquisitionFaultModel | None = None
    on_failure: FailurePolicy = FailurePolicy.NEXT_BEST
    use_workspace: bool = True
    #: Which built-in surrogate backend backs the cost/memory models when
    #: no ``model_factory`` is given: ``"dense"`` (exact GPRegressor),
    #: ``"iterative"`` (CG/Lanczos large-n fast path) or ``"sparse"``
    #: (DTC inducing points).
    surrogate: str = "dense"
    #: Extra constructor keywords for the selected surrogate backend
    #: (e.g. ``{"exact_lml_max_n": 2000}`` or ``{"n_inducing": 64}``),
    #: normalized to a sorted tuple of pairs so the config stays hashable
    #: and its fingerprint deterministic.
    surrogate_options: tuple[tuple[str, Any], ...] = ()
    #: Declarative policy selection, used when the learner is constructed
    #: without an explicit policy object: a name from
    #: :data:`repro.core.policies.POLICIES` or ``"amortized"``
    #: (the offline-trained zero-refit server, :mod:`repro.policy`).
    #: ``None`` means the caller passes the policy object itself.
    policy: str | None = None
    #: Constructor keywords for the declared policy (e.g.
    #: ``{"policy_file": "policy.npz", "epsilon": 0.05}``), normalized
    #: like ``surrogate_options``.
    policy_options: tuple[tuple[str, Any], ...] = ()
    #: The fidelity axis (:mod:`repro.data.fidelity`): how many rungs the
    #: co-kriging stack models.  1 is classic single-fidelity AL.
    num_fidelities: int = 1
    #: Explicit ``((mx_divisor, maxlevel_delta), ...)`` ladder, low to
    #: high, one pair per fidelity (the top pair must be the identity
    #: ``(1, 0)``).  Empty selects the default ladder for
    #: ``num_fidelities`` (:func:`repro.data.fidelity.default_schedule`).
    fidelity_schedule: tuple[tuple[int, int], ...] = ()
    #: Seed of the deterministic sub-top pricing stream
    #: (:meth:`repro.data.fidelity.MultiFidelityDataset.from_dataset`).
    fidelity_seed: int = 0
    #: Picks per acquisition round (portfolio size B).  1 reduces the
    #: batch layer to sequential selection.
    batch_size: int = 1
    #: Per-round node-hour budget the portfolio must fit under
    #: (``None`` = unbudgeted); enforced on predicted costs through a
    #: per-round :class:`~repro.machine.accounting.CampaignLedger`.
    round_budget_node_hours: float | None = None

    def __post_init__(self) -> None:
        if self.n_restarts < 0:
            raise ValueError("n_restarts must be non-negative")
        if self.hyper_refit_interval < 1:
            raise ValueError("hyper_refit_interval must be >= 1")
        if self.max_iterations is not None and self.max_iterations < 0:
            raise ValueError("max_iterations must be non-negative")
        # Normalize loosely-typed inputs (frozen, so via object.__setattr__).
        object.__setattr__(
            self, "log2_features", tuple(int(c) for c in self.log2_features)
        )
        object.__setattr__(self, "on_failure", FailurePolicy(self.on_failure))
        object.__setattr__(
            self, "weight_rmse_by_cost", bool(self.weight_rmse_by_cost)
        )
        object.__setattr__(self, "cache_candidates", bool(self.cache_candidates))
        object.__setattr__(self, "use_workspace", bool(self.use_workspace))
        # Surrogate/policy names resolve through the registries
        # (:mod:`repro.registry`): anything registered — built-in or
        # third-party — is a valid configuration value, and unknown
        # names fail listing the registered keys.
        if self.surrogate not in surrogate_registry:
            raise ValueError(
                f"surrogate must be one of the registered surrogates "
                f"{surrogate_registry.names()}, got {self.surrogate!r}"
            )
        opts = self.surrogate_options
        if isinstance(opts, dict):
            opts = opts.items()
        object.__setattr__(
            self,
            "surrogate_options",
            tuple(sorted((str(k), v) for k, v in opts)),
        )
        if self.policy is not None and self.policy not in policy_registry:
            raise ValueError(
                f"policy must be one of the registered policies "
                f"{policy_registry.names()}, got {self.policy!r}"
            )
        popts = self.policy_options
        if isinstance(popts, dict):
            popts = popts.items()
        object.__setattr__(
            self,
            "policy_options",
            tuple(sorted((str(k), v) for k, v in popts)),
        )
        if self.num_fidelities < 1:
            raise ValueError("num_fidelities must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if (
            self.round_budget_node_hours is not None
            and self.round_budget_node_hours <= 0
        ):
            raise ValueError("round_budget_node_hours must be positive (or None)")
        schedule = tuple(
            (int(d), int(m)) for d, m in self.fidelity_schedule
        )
        if schedule:
            if len(schedule) != self.num_fidelities:
                raise ValueError(
                    f"fidelity_schedule must list {self.num_fidelities} "
                    f"(mx_divisor, maxlevel_delta) pairs, got {len(schedule)}"
                )
            if schedule[-1] != (1, 0):
                raise ValueError(
                    "the top fidelity_schedule pair must be the identity (1, 0)"
                )
        object.__setattr__(self, "fidelity_schedule", schedule)

    def describe(self) -> dict[str, Any]:
        """JSON-able summary of the resolved configuration.

        Object-valued fields collapse to names: the kernel to its ``repr``,
        the stopping rule and model factory to their type/function names,
        the fault model to its enabled flag.  Embedded in
        :class:`~repro.core.trajectory.Trajectory` metadata and in exported
        trace files, so a trajectory (or trace) carries the configuration
        that produced it.
        """
        faults = self.acquisition_faults
        return {
            "kernel": None if self.kernel is None else repr(self.kernel),
            "n_restarts": self.n_restarts,
            "hyper_refit_interval": self.hyper_refit_interval,
            "stopping_rule": (
                None
                if self.stopping_rule is None
                else type(self.stopping_rule).__name__
            ),
            "max_iterations": self.max_iterations,
            "log2_features": list(self.log2_features),
            "weight_rmse_by_cost": self.weight_rmse_by_cost,
            "model_factory": (
                None
                if self.model_factory is None
                else getattr(
                    self.model_factory, "__name__", type(self.model_factory).__name__
                )
            ),
            "cache_candidates": self.cache_candidates,
            "acquisition_faults": (
                None if faults is None else {"enabled": bool(faults.enabled)}
            ),
            "on_failure": self.on_failure.value,
            "use_workspace": self.use_workspace,
            "surrogate": self.surrogate,
            "surrogate_options": [[k, v] for k, v in self.surrogate_options],
            "policy": self.policy,
            "policy_options": [[k, v] for k, v in self.policy_options],
            # The fidelity axis is part of the config identity: a
            # checkpoint written under one fidelity schedule must be
            # refused on resume under another (the fingerprint pin).
            "num_fidelities": self.num_fidelities,
            "fidelity_schedule": [list(pair) for pair in self.fidelity_schedule],
            "fidelity_seed": self.fidelity_seed,
            "batch_size": self.batch_size,
            "round_budget_node_hours": self.round_budget_node_hours,
        }

    def resolved_schedule(self):
        """The :class:`~repro.data.fidelity.FidelitySchedule` declared here.

        An explicit ``fidelity_schedule`` wins; otherwise the default
        ladder for ``num_fidelities``.  Lazy import: the data layer must
        stay importable without the core package.
        """
        from repro.data.fidelity import FidelitySchedule, default_schedule

        if self.fidelity_schedule:
            return FidelitySchedule.from_pairs(self.fidelity_schedule)
        return default_schedule(self.num_fidelities)

    def fingerprint(self) -> str:
        """Short stable hash of :meth:`describe`.

        The campaign service stamps every checkpoint with the fingerprint
        of the configuration that produced it and refuses to resume a
        campaign under a different one — a silently changed config would
        break the resume bit-identity contract, so the mismatch must be
        loud.
        """
        blob = json.dumps(self.describe(), sort_keys=True).encode()
        return hashlib.sha1(blob).hexdigest()[:16]


#: Names of the legacy ``ActiveLearner`` keyword arguments that map 1:1
#: onto :class:`ALConfig` fields (everything except the data inputs).
LEGACY_KWARGS: tuple[str, ...] = tuple(f.name for f in fields(ALConfig))
