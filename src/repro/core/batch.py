"""Batch execution of AL trajectories (the paper's cross-validation).

The paper compares algorithms by running AL on many random partitions of
the dataset and reasoning about the statistics of the resulting
trajectories, parallelizing the batch with Python's process-based
``multiprocessing``.  :func:`run_batch` reproduces that: one trajectory per
(policy, partition seed) pair, executed serially or across worker
processes.

Determinism: every trajectory derives its own ``Generator`` from
``(base_seed, trajectory_index)`` via ``SeedSequence.spawn``, so results
are identical whether run serially or in parallel, at any worker count.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.loop import ActiveLearner
from repro.core.partitions import random_partition
from repro.core.trajectory import Trajectory
from repro.data.dataset import Dataset


@dataclass(frozen=True)
class BatchConfig:
    """Specification of a trajectory batch.

    Attributes
    ----------
    n_trajectories : int
        Random partitions per policy.
    n_init, n_test : int
        Partition sizes (paper: n_init in {1, 50, 100}, n_test = 200).
    max_iterations : int, optional
        Iteration cap per trajectory (None runs the Active pool dry).
    hyper_refit_interval : int
        Passed through to :class:`ActiveLearner`.
    n_restarts : int
        LML restarts for the initial fits.
    base_seed : int
        Root of the per-trajectory seed tree.
    processes : int
        Worker processes; 1 means serial in-process execution.
    """

    n_trajectories: int = 5
    n_init: int = 50
    n_test: int = 200
    max_iterations: int | None = None
    hyper_refit_interval: int = 1
    n_restarts: int = 2
    base_seed: int = 0
    processes: int = 1

    def __post_init__(self) -> None:
        if self.n_trajectories < 1:
            raise ValueError("n_trajectories must be >= 1")
        if self.processes < 1:
            raise ValueError("processes must be >= 1")


@dataclass
class BatchResult:
    """Trajectories grouped by policy name."""

    trajectories: dict[str, list[Trajectory]] = field(default_factory=dict)

    def policies(self) -> list[str]:
        return sorted(self.trajectories)

    def __getitem__(self, policy_name: str) -> list[Trajectory]:
        return self.trajectories[policy_name]


def _run_one(
    dataset: Dataset,
    policy_factory: Callable[[], object],
    config: BatchConfig,
    traj_index: int,
) -> Trajectory:
    """Worker body: one policy on one partition, fully seeded."""
    seed_seq = np.random.SeedSequence(entropy=config.base_seed, spawn_key=(traj_index,))
    rng = np.random.default_rng(seed_seq)
    partition = random_partition(
        rng, len(dataset), n_init=config.n_init, n_test=config.n_test
    )
    learner = ActiveLearner(
        dataset,
        partition,
        policy=policy_factory(),  # fresh policy instance per trajectory
        rng=rng,
        n_restarts=config.n_restarts,
        hyper_refit_interval=config.hyper_refit_interval,
        max_iterations=config.max_iterations,
    )
    return learner.run()


def _star(args) -> tuple[str, Trajectory]:
    name, dataset, factory, config, idx = args
    return name, _run_one(dataset, factory, config, idx)


def run_batch(
    dataset: Dataset,
    policy_factories: dict[str, Callable[[], object]],
    config: BatchConfig = BatchConfig(),
) -> BatchResult:
    """Run ``n_trajectories`` AL runs per policy.

    Parameters
    ----------
    policy_factories : dict
        Maps a display name to a zero-argument factory producing a fresh
        policy instance (policies may be stateful).

    Notes
    -----
    Trajectory ``i`` of *every* policy shares the same partition (same
    spawn key), giving a paired comparison across policies — differences in
    outcomes come from the algorithms, not from partition luck.
    """
    jobs = [
        (name, dataset, factory, config, i)
        for i in range(config.n_trajectories)
        for name, factory in policy_factories.items()
    ]
    result = BatchResult({name: [] for name in policy_factories})
    if config.processes == 1:
        pairs = map(_star, jobs)
        for name, traj in pairs:
            result.trajectories[name].append(traj)
    else:
        with mp.get_context("spawn").Pool(config.processes) as pool:
            for name, traj in pool.map(_star, jobs):
                result.trajectories[name].append(traj)
    return result
