"""Batch execution of AL trajectories (the paper's cross-validation).

The paper compares algorithms by running AL on many random partitions of
the dataset and reasoning about the statistics of the resulting
trajectories, parallelizing the batch with process-based workers.
:func:`run_batch` reproduces that: one trajectory per (policy, partition
seed) pair, translated into :class:`~repro.core.parallel.TrajectorySpec`
jobs and executed by :func:`repro.core.parallel.run_trajectories` —
serially (``processes=1``) or across a spawn-safe process pool.

Determinism: every trajectory derives its own ``Generator`` from
``(base_seed, trajectory_index)`` via ``SeedSequence.spawn``, so results
are identical whether run serially or in parallel, at any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.parallel import TrajectorySpec, run_trajectories
from repro.core.trajectory import Trajectory
from repro.data.dataset import Dataset


@dataclass(frozen=True)
class BatchConfig:
    """Specification of a trajectory batch.

    Attributes
    ----------
    n_trajectories : int
        Random partitions per policy.
    n_init, n_test : int
        Partition sizes (paper: n_init in {1, 50, 100}, n_test = 200).
    max_iterations : int, optional
        Iteration cap per trajectory (None runs the Active pool dry).
    hyper_refit_interval : int
        Passed through to :class:`ActiveLearner`.
    n_restarts : int
        LML restarts for the initial fits.
    base_seed : int
        Root of the per-trajectory seed tree.
    processes : int
        Worker processes; 1 means serial in-process execution.
    """

    n_trajectories: int = 5
    n_init: int = 50
    n_test: int = 200
    max_iterations: int | None = None
    hyper_refit_interval: int = 1
    n_restarts: int = 2
    base_seed: int = 0
    processes: int = 1

    def __post_init__(self) -> None:
        if self.n_trajectories < 1:
            raise ValueError("n_trajectories must be >= 1")
        if self.processes < 1:
            raise ValueError("processes must be >= 1")


@dataclass
class BatchResult:
    """Trajectories grouped by policy name."""

    trajectories: dict[str, list[Trajectory]] = field(default_factory=dict)

    def policies(self) -> list[str]:
        return sorted(self.trajectories)

    def __getitem__(self, policy_name: str) -> list[Trajectory]:
        return self.trajectories[policy_name]


def run_batch(
    dataset: Dataset,
    policy_factories: dict[str, Callable[[], object]],
    config: BatchConfig = BatchConfig(),
) -> BatchResult:
    """Run ``n_trajectories`` AL runs per policy.

    Parameters
    ----------
    policy_factories : dict
        Maps a display name to a zero-argument factory producing a fresh
        policy instance (policies may be stateful).  Factories must be
        picklable (a class or ``functools.partial``) when
        ``config.processes > 1``.

    Notes
    -----
    Trajectory ``i`` of *every* policy shares the same partition (same
    spawn key), giving a paired comparison across policies — differences in
    outcomes come from the algorithms, not from partition luck.
    """
    specs = [
        TrajectorySpec(
            name=name,
            policy_factory=factory,
            base_seed=config.base_seed,
            traj_index=i,
            n_init=config.n_init,
            n_test=config.n_test,
            max_iterations=config.max_iterations,
            hyper_refit_interval=config.hyper_refit_interval,
            n_restarts=config.n_restarts,
        )
        for i in range(config.n_trajectories)
        for name, factory in policy_factories.items()
    ]
    result = BatchResult({name: [] for name in policy_factories})
    for name, traj in run_trajectories(dataset, specs, max_workers=config.processes):
        result.trajectories[name].append(traj)
    return result
