"""Dataset partitioning for the AL simulator (paper Sec. IV).

Each experiment shuffles the dataset and splits it into three disjoint
index sets:

- **Initial** — fits the models before AL starts (n_init of 1, 50, or 100
  in the paper's evaluation),
- **Active** — the pool AL selects from, one sample per iteration,
- **Test** — held out for RMSE estimation only (n_test = 200).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Partition:
    """Disjoint Initial / Active / Test index sets over a dataset."""

    init_idx: np.ndarray
    active_idx: np.ndarray
    test_idx: np.ndarray

    def __post_init__(self) -> None:
        for name in ("init_idx", "active_idx", "test_idx"):
            v = np.asarray(getattr(self, name), dtype=np.int64)
            object.__setattr__(self, name, v)
        allidx = np.concatenate([self.init_idx, self.active_idx, self.test_idx])
        if np.unique(allidx).size != allidx.size:
            raise ValueError("partitions must be disjoint")
        if self.init_idx.size < 1:
            raise ValueError("Initial partition must have at least 1 sample")
        if self.active_idx.size < 1:
            raise ValueError("Active partition must be non-empty")
        if self.test_idx.size < 1:
            raise ValueError("Test partition must be non-empty")

    @property
    def n_init(self) -> int:
        return int(self.init_idx.size)

    @property
    def n_active(self) -> int:
        return int(self.active_idx.size)

    @property
    def n_test(self) -> int:
        return int(self.test_idx.size)


def random_partition(
    rng: np.random.Generator,
    n: int,
    n_init: int = 50,
    n_test: int = 200,
    n_active: int | None = None,
) -> Partition:
    """Shuffle ``range(n)`` and split as in the paper.

    The paper assigns 200 samples to Test, then splits the remaining 400
    between Initial and Active; here ``n_active`` defaults to everything
    left after Test and Initial are taken.
    """
    if n_init < 1 or n_test < 1:
        raise ValueError("n_init and n_test must be >= 1")
    remaining = n - n_test - n_init
    if n_active is None:
        n_active = remaining
    if n_active < 1 or n_active > remaining:
        raise ValueError(
            f"cannot take n_init={n_init}, n_active={n_active}, n_test={n_test} from n={n}"
        )
    perm = rng.permutation(n)
    test = perm[:n_test]
    init = perm[n_test : n_test + n_init]
    active = perm[n_test + n_init : n_test + n_init + n_active]
    return Partition(init_idx=init, active_idx=active, test_idx=test)
