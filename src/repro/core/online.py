"""Online Active Learning: decide, *run*, then learn — no precomputed pool.

The paper's analysis framework "runs in an 'offline' mode, consulting a
database of precomputed performance samples ... In contrast, an 'online'
AL system makes decisions about what experiment to run next" and then
actually runs it.  This module implements that mode against the simulated
machine: the candidate pool is the full parameter grid (e.g. all 1920
Table I combinations), each selected configuration is executed by the
:class:`~repro.machine.runner.JobRunner`, and the measured cost/memory
feed the models.

Differences from the offline :class:`~repro.core.loop.ActiveLearner`:

- candidates are *configurations*, not dataset rows; repeats are allowed
  only if ``allow_repeats`` is set (machine noise makes them informative);
- there is no Test partition with measured truth — model quality is
  tracked against noise-free machine-model ground truth on a held-out
  subset of the grid (something a real experimenter cannot do; it is
  reported for evaluation, exactly like the paper's simulator);
- an out-of-memory selection *fails*: it returns no memory measurement,
  costs its full price (the regret), and only the cost model learns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.metrics import rmse_nonlog
from repro.core.policies import CandidateView, RGMA, SelectionPolicy
from repro.core.preprocessing import DesignTransform
from repro.core.trajectory import IterationRecord, StopReason, Trajectory
from repro.data.space import ParameterSpace, TABLE1_SPACE
from repro.gp.gpr import GPRegressor
from repro.gp.kernels import default_kernel
from repro.machine.runner import JobConfig, JobRunner


@dataclass(frozen=True)
class OnlineResult:
    """Trajectory plus the online-specific bookkeeping."""

    trajectory: Trajectory
    executed: tuple[JobConfig, ...]
    failed_configs: tuple[JobConfig, ...]
    total_node_hours: float


class OnlineActiveLearner:
    """AL driving real (simulated-machine) job executions.

    Parameters
    ----------
    runner : JobRunner
        Executes selected configurations.
    policy : SelectionPolicy
        Any of the Sec. IV-B policies.
    rng : numpy.random.Generator
    space : ParameterSpace
        Candidate grid (default: the Table I space).
    n_init : int
        Random configurations run before AL starts (the paper's Initial
        phase; with ``n_init=1`` this is the "first run on a new platform"
        scenario).
    n_eval : int
        Held-out grid points used for ground-truth RMSE tracking.
    memory_limit_MB : float, optional
        Enforced at *execution*: selections whose measured memory reaches
        the limit crash (cost spent, memory unobserved).  Defaults to the
        RGMA policy's limit when one is used.
    max_runs : int
        Experiment budget (AL iterations after the initial phase).
    """

    def __init__(
        self,
        runner: JobRunner,
        policy: SelectionPolicy,
        rng: np.random.Generator,
        space: ParameterSpace = TABLE1_SPACE,
        n_init: int = 5,
        n_eval: int = 100,
        memory_limit_MB: float | None = None,
        max_runs: int = 50,
        hyper_refit_interval: int = 1,
        allow_repeats: bool = False,
    ) -> None:
        if n_init < 1 or max_runs < 1 or n_eval < 1:
            raise ValueError("n_init, n_eval and max_runs must be >= 1")
        self.runner = runner
        self.policy = policy
        self.rng = rng
        self.space = space
        self.n_init = n_init
        self.max_runs = max_runs
        self.hyper_refit_interval = int(hyper_refit_interval)
        self.allow_repeats = allow_repeats
        if memory_limit_MB is None and isinstance(policy, RGMA):
            memory_limit_MB = policy.memory_limit_MB
        self.memory_limit_MB = memory_limit_MB

        self.grid = space.grid()
        self._features = np.array([c.as_features() for c in self.grid])
        self.scaler = DesignTransform(space.bounds())
        self._U = self.scaler.transform(self._features)

        # Held-out evaluation set with noise-free ground truth.
        eval_idx = rng.choice(len(self.grid), size=min(n_eval, len(self.grid)), replace=False)
        self._eval_idx = np.asarray(eval_idx)
        perf = runner._perf()
        mem = runner._mem()
        truth_cost = []
        truth_mem = []
        for i in self._eval_idx:
            work = runner.work_estimate(self.grid[i])
            truth_cost.append(perf.node_hours(work, self.grid[i].p))
            truth_mem.append(mem.max_rss_MB(work, self.grid[i].p))
        self._truth_cost = np.array(truth_cost)
        self._truth_mem = np.array(truth_mem)

        kernel = default_kernel()
        self.gpr_cost = GPRegressor(kernel=kernel, rng=rng, n_restarts=2)
        self.gpr_mem = GPRegressor(
            kernel=kernel.with_theta(kernel.theta), rng=rng, n_restarts=2
        )

        # Mutable state: executed observations.
        self._obs_U: list[np.ndarray] = []
        self._obs_cost: list[float] = []
        self._obs_mem_U: list[np.ndarray] = []
        self._obs_mem: list[float] = []
        self._available = np.ones(len(self.grid), dtype=bool)

    # --------------------------------------------------------------- internals

    def _execute(self, grid_index: int, job_id: int):
        record = self.runner.run(
            self.grid[grid_index],
            self.rng,
            job_id=job_id,
            memory_limit_MB=self.memory_limit_MB,
        )
        u = self._U[grid_index]
        self._obs_U.append(u)
        self._obs_cost.append(np.log10(record.cost_node_hours))
        if not record.failed:
            self._obs_mem_U.append(u)
            self._obs_mem.append(np.log10(record.max_rss_MB))
        if not self.allow_repeats:
            self._available[grid_index] = False
        return record

    def _fit(self, optimize: bool) -> None:
        Uc = np.asarray(self._obs_U)
        yc = np.asarray(self._obs_cost)
        if optimize or not self.gpr_cost.is_fitted:
            self.gpr_cost.fit(Uc, yc)
        else:
            self.gpr_cost.refactor(Uc, yc)
        if self._obs_mem:
            Um = np.asarray(self._obs_mem_U)
            ym = np.asarray(self._obs_mem)
            if optimize or not self.gpr_mem.is_fitted:
                self.gpr_mem.fit(Um, ym)
            else:
                self.gpr_mem.refactor(Um, ym)

    def _eval_rmse(self) -> tuple[float, float]:
        mu_c = self.gpr_cost.predict(self._U[self._eval_idx])
        rmse_c = rmse_nonlog(mu_c, self._truth_cost)
        if self.gpr_mem.is_fitted:
            mu_m = self.gpr_mem.predict(self._U[self._eval_idx])
            rmse_m = rmse_nonlog(mu_m, self._truth_mem)
        else:
            rmse_m = float("nan")
        return rmse_c, rmse_m

    def _view(self) -> tuple[CandidateView, np.ndarray]:
        idx = np.flatnonzero(self._available)
        U = self._U[idx]
        mu_c, sd_c = self.gpr_cost.predict(U, return_std=True)
        if self.gpr_mem.is_fitted:
            mu_m, sd_m = self.gpr_mem.predict(U, return_std=True)
        else:
            # No memory data yet: everything looks safe (prior mean 0 =
            # 1 MB), with prior uncertainty.
            mu_m = np.zeros(len(idx))
            sd_m = np.ones(len(idx))
        return (
            CandidateView(X=U, mu_cost=mu_c, sigma_cost=sd_c, mu_mem=mu_m, sigma_mem=sd_m),
            idx,
        )

    # --------------------------------------------------------------------- run

    def run(self) -> OnlineResult:
        """Initial phase, then AL-driven execution until the budget ends."""
        executed: list[JobConfig] = []
        failed: list[JobConfig] = []
        total_nh = 0.0

        init_idx = self.rng.choice(len(self.grid), size=self.n_init, replace=False)
        job_id = 0
        for gi in init_idx:
            rec = self._execute(int(gi), job_id)
            executed.append(self.grid[int(gi)])
            total_nh += rec.cost_node_hours
            if rec.failed:
                failed.append(self.grid[int(gi)])
            job_id += 1
        self._fit(optimize=True)
        rmse_c0, rmse_m0 = self._eval_rmse()

        records: list[IterationRecord] = []
        cum_cost = 0.0
        cum_regret = 0.0
        stop = StopReason.MAX_ITERATIONS
        for iteration in range(self.max_runs):
            view, idx = self._view()
            if len(view) == 0:
                stop = StopReason.EXHAUSTED
                break
            pos = self.policy.select(view, self.rng)
            if pos is None:
                stop = StopReason.MEMORY_CONSTRAINED
                break
            gi = int(idx[pos])
            rec = self._execute(gi, job_id)
            job_id += 1
            executed.append(self.grid[gi])
            total_nh += rec.cost_node_hours
            cum_cost += rec.cost_node_hours
            if rec.failed:
                failed.append(self.grid[gi])
                cum_regret += rec.cost_node_hours

            optimize = (iteration % self.hyper_refit_interval) == 0
            self._fit(optimize=optimize)
            rmse_c, rmse_m = self._eval_rmse()
            records.append(
                IterationRecord(
                    iteration=iteration,
                    dataset_index=gi,
                    cost=rec.cost_node_hours,
                    mem=rec.max_rss_MB if not rec.failed else float("inf"),
                    rmse_cost=rmse_c,
                    rmse_mem=rmse_m,
                    cumulative_cost=cum_cost,
                    cumulative_regret=cum_regret,
                )
            )

        trajectory = Trajectory(
            policy_name=f"online_{self.policy.name}",
            n_init=self.n_init,
            records=tuple(records),
            stop_reason=stop,
            initial_rmse_cost=rmse_c0,
            initial_rmse_mem=rmse_m0,
        )
        return OnlineResult(
            trajectory=trajectory,
            executed=tuple(executed),
            failed_configs=tuple(failed),
            total_node_hours=total_nh,
        )
