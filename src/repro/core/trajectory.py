"""Trajectory records: everything one AL run produces.

A :class:`Trajectory` captures the per-iteration state Algorithm 1 emits —
which sample was selected, its actual cost and memory, the test-set RMSE of
both models, and the running cumulative cost/regret — plus why and when the
run stopped.  Batch analysis (:mod:`repro.core.batch`,
:mod:`repro.analysis`) aggregates many trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.faults.model import FaultEvent


class StopReason(str, Enum):
    """Why an AL run ended."""

    EXHAUSTED = "exhausted"  # every Active sample was selected
    MEMORY_CONSTRAINED = "memory_constrained"  # RGMA: no satisfying candidate
    MAX_ITERATIONS = "max_iterations"  # caller-imposed iteration budget
    STOPPING_RULE = "stopping_rule"  # a StoppingRule fired
    BUDGET_EXHAUSTED = "budget_exhausted"  # campaign ledger ran out of node-hours


@dataclass(frozen=True, slots=True)
class IterationRecord:
    """State after one AL iteration.

    Attributes
    ----------
    iteration : int
        0-based AL iteration.
    dataset_index : int
        Row of the selected sample in the full dataset.
    cost : float
        Actual cost (node-hours) of the selected sample.
    mem : float
        Actual MaxRSS (MB) of the selected sample.
    rmse_cost, rmse_mem : float
        Non-log test RMSE of the cost / memory model after retraining.
    cumulative_cost : float
        Sum of selected costs so far.
    cumulative_regret : float
        Sum of individual regrets so far (0 unless a memory limit is set).
    rmse_cost_weighted : float
        Cost-weighted test RMSE (Eq. (12) with rho = diag(test costs)):
        the scale-dependent error metric Sec. V-D argues for.  NaN when
        weighting is disabled.
    failed : bool
        The acquisition crashed — its cost is charged but the observation
        was lost (handled per the learner's ``on_failure`` policy).
    censored : bool
        The acquisition completed but lost its MaxRSS (the accounting
        bug); only the cost response was usable.
    fidelity : int
        Fidelity level the sample was observed at (0 = coarsest rung of
        the :mod:`repro.data.fidelity` ladder); ``-1`` for records from
        single-fidelity runs predating the axis.
    """

    iteration: int
    dataset_index: int
    cost: float
    mem: float
    rmse_cost: float
    rmse_mem: float
    cumulative_cost: float
    cumulative_regret: float
    rmse_cost_weighted: float = float("nan")
    failed: bool = False
    censored: bool = False
    fidelity: int = -1


@dataclass(frozen=True)
class Trajectory:
    """One complete AL run.

    Attributes
    ----------
    policy_name : str
    n_init : int
        Size of the Initial partition the models were pre-fit on.
    records : tuple of IterationRecord
    stop_reason : StopReason
    initial_rmse_cost, initial_rmse_mem : float
        Test RMSE after the pre-AL fit (iteration "-1" baseline).
    fault_events : tuple of FaultEvent
        Acquisition-level faults struck during the run (empty without an
        enabled fault model).
    config : dict, optional
        JSON-able :meth:`~repro.core.config.ALConfig.describe` of the
        learner configuration that produced this run — trajectories (and
        the traces exported from them) are self-describing.
    """

    policy_name: str
    n_init: int
    records: tuple[IterationRecord, ...]
    stop_reason: StopReason
    initial_rmse_cost: float
    initial_rmse_mem: float
    fault_events: tuple[FaultEvent, ...] = field(default=())
    config: dict | None = field(default=None)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def num_failed_acquisitions(self) -> int:
        """Acquisitions that crashed (cost spent, observation lost)."""
        return sum(1 for r in self.records if r.failed)

    @property
    def num_censored_acquisitions(self) -> int:
        """Acquisitions that completed but lost their MaxRSS."""
        return sum(1 for r in self.records if r.censored)

    # Convenience column extractors -------------------------------------------------

    def _col(self, attr: str) -> np.ndarray:
        return np.array([getattr(r, attr) for r in self.records], dtype=np.float64)

    @property
    def costs(self) -> np.ndarray:
        return self._col("cost")

    @property
    def mems(self) -> np.ndarray:
        return self._col("mem")

    @property
    def rmse_cost(self) -> np.ndarray:
        return self._col("rmse_cost")

    @property
    def rmse_mem(self) -> np.ndarray:
        return self._col("rmse_mem")

    @property
    def rmse_cost_weighted(self) -> np.ndarray:
        return self._col("rmse_cost_weighted")

    @property
    def cumulative_cost(self) -> np.ndarray:
        return self._col("cumulative_cost")

    @property
    def cumulative_regret(self) -> np.ndarray:
        return self._col("cumulative_regret")

    @property
    def selected_indices(self) -> np.ndarray:
        return np.array([r.dataset_index for r in self.records], dtype=np.int64)

    @property
    def final_rmse_cost(self) -> float:
        return self.records[-1].rmse_cost if self.records else self.initial_rmse_cost

    @property
    def final_rmse_mem(self) -> float:
        return self.records[-1].rmse_mem if self.records else self.initial_rmse_mem

    @property
    def total_cost(self) -> float:
        return float(self.records[-1].cumulative_cost) if self.records else 0.0

    @property
    def total_regret(self) -> float:
        return float(self.records[-1].cumulative_regret) if self.records else 0.0
