"""End-to-end execution of one AMR job on the simulated machine.

A :class:`JobConfig` is a point of the paper's 5-dimensional input space:
``(p, mx, maxlevel, r0, rhoin)``.  The :class:`JobRunner` turns it into a
:class:`~repro.machine.accounting.JobRecord` via two interchangeable paths:

- ``mode="surrogate"`` (default): the analytic work profile of
  :func:`repro.machine.perf_model.estimate_work` feeds the performance and
  memory models directly.  This is how the 600-job dataset is generated.
- ``mode="simulate"``: a real (scaled-down) :class:`repro.amr.AmrDriver`
  run produces the work counters, which feed the same machine models.
  Used for validation and the Fig. 1 reproduction.

Both paths add multiplicative log-normal measurement noise, reproducing
the machine variability the paper captured with repeated measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro import obs
from repro.machine.accounting import JobRecord, SlurmAccounting
from repro.machine.memory_model import MemoryModel
from repro.machine.perf_model import PerformanceModel, WorkEstimate, estimate_work
from repro.machine.spec import EDISON, MachineSpec


@dataclass(frozen=True, slots=True)
class JobConfig:
    """One configuration of the paper's 5-D input space (Table I order).

    Attributes
    ----------
    p : int
        Number of nodes (4–32 in the dataset).
    mx : int
        Patch box size (8–32).
    maxlevel : int
        Maximum refinement level (3–6).
    r0 : float
        Bubble size (0.2–0.5).
    rhoin : float
        Bubble density (0.02–0.5).
    """

    p: int
    mx: int
    maxlevel: int
    r0: float
    rhoin: float

    def __post_init__(self) -> None:
        if self.p < 1:
            raise ValueError("p must be positive")
        if self.mx < 4 or self.mx % 2:
            raise ValueError("mx must be an even integer >= 4")
        if self.maxlevel < 1:
            raise ValueError("maxlevel must be >= 1")
        if not 0 < self.r0 < 1:
            raise ValueError("r0 must be in (0, 1)")
        if self.rhoin <= 0:
            raise ValueError("rhoin must be positive")

    def as_features(self) -> tuple[float, ...]:
        """Feature vector in Table I column order."""
        return (float(self.p), float(self.mx), float(self.maxlevel), self.r0, self.rhoin)


@dataclass(frozen=True, slots=True)
class JobRunner:
    """Executes :class:`JobConfig` instances on a simulated machine.

    Attributes
    ----------
    spec : MachineSpec
    perf : PerformanceModel
    mem : MemoryModel
    accounting : SlurmAccounting
    wall_noise_sigma : float
        Log-normal sigma of wall-clock variability (machine noise).
    rss_noise_sigma : float
        Log-normal sigma of MaxRSS variability.
    t_end : float
        Physical end time of the canonical campaign run.
    amr_batched : bool
        Use the shape-stacked AMR stepping backend for ``mode="simulate"``
        runs (bit-identical to the per-patch reference, just faster).
    """

    spec: MachineSpec = EDISON
    perf: PerformanceModel | None = None
    mem: MemoryModel | None = None
    accounting: SlurmAccounting | None = None
    wall_noise_sigma: float = 0.04
    rss_noise_sigma: float = 0.015
    t_end: float = 2.0
    amr_batched: bool = True

    def _perf(self) -> PerformanceModel:
        return self.perf if self.perf is not None else PerformanceModel(
            self.spec, seconds_per_cell=5.0e-6
        )

    def _mem(self) -> MemoryModel:
        return self.mem if self.mem is not None else MemoryModel(self.spec)

    def _accounting(self) -> SlurmAccounting:
        return self.accounting if self.accounting is not None else SlurmAccounting()

    # ------------------------------------------------------------------ paths

    def work_estimate(self, config: JobConfig) -> WorkEstimate:
        """Analytic work profile for ``config`` (surrogate path)."""
        return estimate_work(
            mx=config.mx,
            max_level=config.maxlevel,
            r0=config.r0,
            rhoin=config.rhoin,
            t_end=self.t_end,
        )

    def work_from_simulation(
        self, config: JobConfig, t_end: float | None = None
    ) -> WorkEstimate:
        """Work profile measured from a real AMR run (simulate path).

        The run uses the true solver at the configured resolution; callers
        keep ``t_end`` short and ``maxlevel`` modest, then the machine model
        extrapolates cost as it does for the analytic path.
        """
        from repro.amr import AmrConfig, AmrDriver
        from repro.solver import ShockBubbleProblem

        problem = ShockBubbleProblem(r0=config.r0, rhoin=config.rhoin)
        amr_cfg = AmrConfig(
            mx=config.mx,
            min_level=1,
            max_level=config.maxlevel,
            batched=self.amr_batched,
        )
        driver = AmrDriver(problem, amr_cfg)
        stats = driver.run(t_end=self.t_end if t_end is None else t_end)
        hist = driver.forest.level_histogram()
        return WorkEstimate(
            patches_per_level=tuple(sorted(hist.items())),
            mx=config.mx,
            ng=amr_cfg.ng,
            num_steps=stats.num_steps,
            num_regrids=stats.num_regrids,
        )

    # ------------------------------------------------------------------ runs

    def run(
        self,
        config: JobConfig,
        rng: np.random.Generator,
        job_id: int = 0,
        mode: Literal["surrogate", "simulate"] = "surrogate",
        memory_limit_MB: float | None = None,
        apply_accounting_bug: bool = False,
    ) -> JobRecord:
        """Execute one job and return its accounting record.

        Parameters
        ----------
        rng : numpy.random.Generator
            Source of measurement noise (explicit, per the repo's
            determinism policy).
        memory_limit_MB : float, optional
            If given and the job's MaxRSS reaches it, the job is marked
            ``failed`` — modeling the out-of-memory crash whose wasted cost
            the paper's cumulative-regret metric charges.
        apply_accounting_bug : bool
            Pass records through the MaxRSS=0 reporting bug.
        """
        with obs.span(
            "job_run", cat="machine", job_id=job_id, p=config.p, mode=mode
        ) as job_span:
            if mode == "surrogate":
                work = self.work_estimate(config)
            elif mode == "simulate":
                work = self.work_from_simulation(config)
            else:
                raise ValueError(f"unknown mode {mode!r}")

            wall = self._perf().wall_time(work, config.p)
            rss = self._mem().max_rss_MB(work, config.p)
            wall *= float(np.exp(rng.normal(0.0, self.wall_noise_sigma)))
            rss *= float(np.exp(rng.normal(0.0, self.rss_noise_sigma)))

            failed = memory_limit_MB is not None and rss >= memory_limit_MB
            job_span.annotate(
                wall_seconds=round(wall, 6), max_rss_MB=round(rss, 3), failed=failed
            )
            record = JobRecord(
                job_id=job_id,
                features=config.as_features(),
                wall_seconds=wall,
                nodes=config.p,
                max_rss_MB=rss,
                failed=failed,
            )
            if apply_accounting_bug:
                record = self._accounting().finalize(record, rng)
            return record
