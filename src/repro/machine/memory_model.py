"""Per-process peak memory (MaxRSS) model.

SLURM's MaxRSS field reports the largest resident set among a job's tasks.
For a patch-based AMR code that is the most-loaded rank's footprint: its
patches (with ghost layers), the sweep workspace, ghost-exchange buffers,
and the distributed mesh metadata, on top of a small fixed baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from repro.machine.perf_model import WorkEstimate
from repro.machine.spec import MachineSpec

#: Conserved fields per cell.
NUM_FIELDS = 4
#: Bytes per double.
DOUBLE = 8


@dataclass(frozen=True, slots=True)
class MemoryModel:
    """Maps a :class:`WorkEstimate` and node count to MaxRSS in MB.

    Attributes
    ----------
    spec : MachineSpec
    base_rss_MB : float
        Fixed per-process baseline (runtime, MPI bookkeeping).  The paper's
        smallest reported MaxRSS is ~16 KB, so the baseline is tiny.
    workspace_factor : float
        Sweep/reconstruction temporaries relative to resident patch state.
    metadata_bytes_per_patch : float
        Distributed-mesh metadata (quadrant records, neighbor tables)
        per *global* patch, replicated O(1) per task by p4est's ghost layer.
    tasks_per_node : int
        Accounting tasks per node.  The paper's MaxRSS magnitudes (median
        8 MB on 64 GB nodes) match one accounting task per node aggregating
        that node's share of the hierarchy, so 1 is the default.
    """

    spec: MachineSpec
    base_rss_MB: float = 0.016
    workspace_factor: float = 1.0
    metadata_bytes_per_patch: float = 256.0
    tasks_per_node: int = 1

    def patch_bytes(self, mx: int, ng: int) -> int:
        """Resident bytes of one ghosted patch."""
        n = mx + 2 * ng
        return NUM_FIELDS * n * n * DOUBLE

    def max_rss_MB(self, work: WorkEstimate, nodes: int) -> float:
        """Peak resident set (MB) of the most-loaded task."""
        tasks = nodes * self.tasks_per_node
        per_task = ceil(work.total_patches / tasks)
        state = per_task * self.patch_bytes(work.mx, work.ng)
        workspace = self.workspace_factor * state
        metadata = work.total_patches * self.metadata_bytes_per_patch / tasks
        ghost_buffers = per_task * 4 * NUM_FIELDS * work.ng * work.mx * DOUBLE
        total = state + workspace + metadata + ghost_buffers
        return float(self.base_rss_MB + total / 1e6)

    def fits_node(self, work: WorkEstimate, nodes: int) -> bool:
        """Whether the per-node footprint stays under the node's DRAM."""
        rss = self.max_rss_MB(work, nodes)
        per_node = rss * self.tasks_per_node
        return per_node <= self.spec.mem_per_node_GB * 1024.0


#: Simultaneous O(n²) capacity buffers a dense GP fit holds: the in-place
#: Cholesky scratch, the fused-gradient inner matrix, the kernel-workspace
#: distance cache, and the incremental factor buffer.
GP_SQUARE_BUFFERS = 4


def gp_square_capacity(n: int) -> int:
    """Capacity edge the GP's square buffers allocate for ``n`` live rows.

    Mirrors the ``_grow_square`` amortization contract in
    ``repro.gp.kernels`` (1.5x headroom so the AL loop's one-sample
    appends reuse the allocation).
    """
    return max(int(1.5 * n) + 8, 64)


def gp_capacity_MB(n: int, n_buffers: int = GP_SQUARE_BUFFERS) -> float:
    """Peak O(n²) buffer footprint (MB) of a dense GP fit at ``n`` samples.

    What ``GPRegressor`` would resident-set if asked to factorize ``n``
    training points: ``n_buffers`` square capacity buffers of doubles.
    Drives the ``max_memory_MB`` guard in ``repro.gp.gpr`` and the
    dense-vs-matrix-free mode selection in ``repro.gp.iterative``.
    """
    cap = gp_square_capacity(n)
    return n_buffers * cap * cap * DOUBLE / 1e6
