"""Analytic work estimation and the work -> wall-clock performance model.

Running the full AMR hierarchy for every one of the paper's 1920 parameter
combinations took 30K core-hours on Edison; reproducing that with the
pure-Python solver is equally impractical.  Instead the default pipeline
estimates the *work profile* of a run analytically — how many patches exist
per level, how many steps the CFL condition forces, how much is regridded —
using the same geometric drivers that control the real hierarchy (bubble
perimeter, shock front, density contrast).  The :class:`PerformanceModel`
then converts a work profile into wall-clock seconds for a given node
count, including strong-scaling rolloff from communication and load
imbalance.  :class:`repro.machine.runner.JobRunner` can alternatively fill
the same :class:`WorkEstimate` from a true :class:`repro.amr.AmrDriver` run.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, pi

import numpy as np

from repro.machine.comms import LogPModel
from repro.machine.spec import MachineSpec


@dataclass(frozen=True, slots=True)
class WorkEstimate:
    """Work profile of an AMR run, the input to the machine models.

    Attributes
    ----------
    patches_per_level : tuple of (level, count)
        Patch population of the hierarchy (steady-state representative).
    mx : int
        Cells per patch side.
    ng : int
        Ghost width.
    num_steps : int
        Time steps to reach the final time.
    num_regrids : int
        Regrid passes performed.
    """

    patches_per_level: tuple[tuple[int, int], ...]
    mx: int
    ng: int
    num_steps: int
    num_regrids: int

    @property
    def total_patches(self) -> int:
        return sum(n for _, n in self.patches_per_level)

    @property
    def cells_per_step(self) -> int:
        return self.total_patches * self.mx * self.mx

    @property
    def total_cell_updates(self) -> float:
        return float(self.cells_per_step) * self.num_steps


def complexity_factor(rhoin: float, rho_ambient: float = 1.0) -> float:
    """Flow-complexity multiplier from the bubble density contrast.

    A lighter bubble (smaller ``rhoin``) has a larger acoustic impedance
    mismatch: the transmitted shock accelerates, the interface becomes
    Richtmyer–Meshkov unstable sooner, and the refined wake grows.  The
    multiplier is logarithmic in the contrast and equals 1 for no contrast.
    """
    if rhoin <= 0 or rho_ambient <= 0:
        raise ValueError("densities must be positive")
    contrast = abs(np.log10(rho_ambient / rhoin))
    return float(1.0 + 0.9 * contrast)


def estimate_work(
    mx: int,
    max_level: int,
    r0: float,
    rhoin: float,
    min_level: int = 1,
    t_end: float = 0.75,
    cfl: float = 0.4,
    mach: float = 2.0,
    domain_trees: int = 2,
    regrid_interval: int = 4,
    ng: int = 2,
) -> WorkEstimate:
    """Analytic work profile of a shock–bubble AMR run.

    The refined region tracks the bubble interface (perimeter ``2*pi*r0``),
    the shock front (length = domain height 1), and the wake, whose extent
    grows with the density contrast.  At level ``l`` the tagged band is
    ~2 patches wide, so the patch count scales like ``perimeter * 2**l`` —
    the classic surface-dominated AMR population.  On top of the band, a
    wake *area* term (fraction of the domain refined to the finest level)
    grows with ``r0`` and the contrast, which is what makes deep-refinement
    jobs so much more expensive than their shallow counterparts.
    """
    if max_level < min_level:
        raise ValueError("max_level must be >= min_level")
    if not 0 < r0 < 1:
        raise ValueError("r0 must be in (0, 1)")
    chi = complexity_factor(rhoin)
    perimeter = 2.0 * pi * r0 + 1.0 + 0.6 * chi  # bubble + shock + wake arms

    levels: list[tuple[int, int]] = []
    # Base level tiles the whole brick.
    base = domain_trees * 4**min_level
    levels.append((min_level, base))
    for lv in range(min_level + 1, max_level + 1):
        band = 2.0 * perimeter * chi * (1 << lv)
        n = int(ceil(band))
        if lv == max_level:
            # Wake area refined to the finest level.
            wake_fraction = min(0.35, 0.12 * chi * (r0 / 0.3))
            n += int(ceil(wake_fraction * domain_trees * 4**lv))
        levels.append((lv, n))

    # CFL steps: dt ~ cfl * h_fine / smax with smax ~ shock speed + sound.
    h_fine = 1.0 / ((1 << max_level) * mx)
    smax = mach + 1.5
    dt = cfl * h_fine / smax
    num_steps = int(ceil(t_end / dt))
    num_regrids = num_steps // regrid_interval
    return WorkEstimate(
        patches_per_level=tuple(levels),
        mx=mx,
        ng=ng,
        num_steps=num_steps,
        num_regrids=num_regrids,
    )


@dataclass(frozen=True, slots=True)
class PerformanceModel:
    """Converts a :class:`WorkEstimate` into wall-clock seconds.

    Attributes
    ----------
    spec : MachineSpec
    seconds_per_cell : float
        Single-core cost of one cell update; defaults to the spec's flop
        estimate.  Real AMR codes land at 0.5–5 microseconds per cell.
    step_overhead_s : float
        Per-step fixed cost per rank (dt allreduce hidden here too).
    startup_s : float
        Job launch + MPI_Init + initial mesh generation.
    regrid_cost_factor : float
        Regrid pass cost relative to one compute step.
    imbalance_base : float
        Residual load imbalance of curve partitioning at large patch counts.
    """

    spec: MachineSpec
    seconds_per_cell: float | None = None
    step_overhead_s: float = 2.0e-3
    startup_s: float = 1.5
    regrid_cost_factor: float = 2.5
    imbalance_base: float = 0.05

    def _sec_per_cell(self) -> float:
        if self.seconds_per_cell is not None:
            return self.seconds_per_cell
        return self.spec.seconds_per_cell()

    def load_imbalance(self, total_patches: int, ranks: int) -> float:
        """Max-over-mean patch load from integral curve partitioning.

        With few patches per rank the ceiling effect dominates:
        ``ceil(n/R) / (n/R)``; with many, a small residual remains.
        """
        if total_patches < 1 or ranks < 1:
            raise ValueError("counts must be positive")
        mean = total_patches / ranks
        ceiling = ceil(mean) / mean
        return float(max(ceiling, 1.0 + self.imbalance_base))

    def wall_time(self, work: WorkEstimate, nodes: int) -> float:
        """Predicted wall-clock seconds on ``nodes`` nodes.

        The per-step time is the max-loaded rank's compute plus ghost
        exchange plus the dt-reduction collective; this is the bulk-
        synchronous bound that AMR codes operate near.
        """
        ranks = self.spec.ranks(nodes)
        total_patches = work.total_patches
        imbalance = self.load_imbalance(total_patches, ranks)
        patches_per_rank = total_patches / ranks * imbalance
        cells_per_rank = patches_per_rank * work.mx * work.mx

        comms = LogPModel(self.spec)
        compute = cells_per_rank * self._sec_per_cell()
        ghost = comms.ghost_exchange_time(patches_per_rank, work.mx, work.ng)
        reduce_t = comms.allreduce_time(8, ranks)
        step_time = compute + ghost + reduce_t + self.step_overhead_s

        regrid_time = work.num_regrids * self.regrid_cost_factor * step_time
        return float(self.startup_s + work.num_steps * step_time + regrid_time)

    def node_hours(self, work: WorkEstimate, nodes: int) -> float:
        """Job cost in node-hours — the paper's cost response."""
        return self.wall_time(work, nodes) * nodes / 3600.0

    def parallel_efficiency(self, work: WorkEstimate, nodes: int) -> float:
        """Speedup over 1 node divided by ``nodes`` (diagnostic)."""
        t1 = self.wall_time(work, 1)
        tn = self.wall_time(work, nodes)
        return float(t1 / (nodes * tn))
