"""Simulated supercomputer: an Edison-like machine with SLURM accounting.

The paper measured its 600-job dataset on NERSC Edison (Cray XC30,
two-socket 12-core Ivy Bridge nodes, Aries dragonfly interconnect) under
SLURM.  This subpackage reproduces that pipeline synthetically:

- :class:`MachineSpec` — node/interconnect parameters (Edison defaults).
- :class:`LogPModel` — latency/bandwidth communication cost model.
- :class:`PerformanceModel` — maps AMR work counters (or the analytic
  work estimate) to wall-clock time, including strong-scaling rolloff.
- :class:`MemoryModel` — maps patch allocation to per-process MaxRSS.
- :class:`JobRecord`, :class:`SlurmAccounting` — sacct-like records,
  including the paper's "MaxRSS reported as zero for short jobs" bug.
- :class:`JobRunner` — executes a 5-feature configuration end to end,
  either analytically (fast surrogate) or by running the real
  :class:`repro.amr.AmrDriver`.
"""

from repro.machine.spec import MachineSpec, EDISON
from repro.machine.comms import ExchangeCalibration, LogPModel, calibrate_exchange
from repro.machine.perf_model import PerformanceModel, WorkEstimate, estimate_work
from repro.machine.memory_model import MemoryModel
from repro.machine.accounting import JobRecord, SlurmAccounting
from repro.machine.runner import JobConfig, JobRunner

__all__ = [
    "MachineSpec",
    "EDISON",
    "ExchangeCalibration",
    "LogPModel",
    "calibrate_exchange",
    "PerformanceModel",
    "WorkEstimate",
    "estimate_work",
    "MemoryModel",
    "JobRecord",
    "SlurmAccounting",
    "JobConfig",
    "JobRunner",
]
