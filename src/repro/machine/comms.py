"""LogP-style communication cost model.

Ghost exchange dominates the communication of a patch-based AMR step: each
rank sends one edge strip per patch face whose neighbor lives on another
rank.  The model charges ``latency + bytes / bandwidth`` per message and a
logarithmic tree cost for the collective that reduces the global CFL dt.

:func:`calibrate_exchange` closes the loop with the sharded AMR driver:
the halo counters its exchange programs export (``amr.halo.*`` in
:mod:`repro.obs`) replace the model's surface-to-volume guess with the
measured inter-shard traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2

from repro.machine.spec import MachineSpec


@dataclass(frozen=True, slots=True)
class LogPModel:
    """Latency/bandwidth messaging costs for a :class:`MachineSpec`."""

    spec: MachineSpec

    def message_time(self, nbytes: int) -> float:
        """Time for one point-to-point message of ``nbytes``."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.spec.network_latency_s + nbytes / self.spec.network_bandwidth_Bps

    def allreduce_time(self, nbytes: int, ranks: int) -> float:
        """Binary-tree allreduce estimate over ``ranks`` ranks."""
        if ranks < 1:
            raise ValueError("ranks must be positive")
        rounds = max(1, ceil(log2(max(ranks, 2))))
        return 2.0 * rounds * self.message_time(nbytes)

    def ghost_exchange_time(
        self,
        patches_per_rank: float,
        mx: int,
        ng: int,
        fields: int = 4,
        remote_fraction: float = 0.35,
    ) -> float:
        """Per-step ghost-exchange time for one rank.

        Parameters
        ----------
        patches_per_rank : float
            Average patches owned by a rank (fractional values represent
            load imbalance-adjusted averages).
        mx, ng : int
            Patch interior size and ghost width; a face strip carries
            ``fields * ng * mx`` doubles.
        remote_fraction : float
            Fraction of the 4 faces per patch whose neighbor is off-rank.
            Morton partitioning keeps subdomains compact, so this is well
            below 1; 0.35 matches the surface-to-volume ratio of curve
            segments at the paper's scales — or use
            :func:`calibrate_exchange` to measure it.
        """
        if patches_per_rank < 0:
            raise ValueError("patches_per_rank must be non-negative")
        strip_bytes = fields * ng * mx * 8
        messages = 4.0 * patches_per_rank * remote_fraction
        return messages * self.message_time(strip_bytes)


@dataclass(frozen=True, slots=True)
class ExchangeCalibration:
    """Measured inter-shard traffic folded into the LogP exchange model.

    Produced by :func:`calibrate_exchange` from the halo counters the
    sharded AMR exchange exports through :mod:`repro.obs`
    (``amr.halo.gather_bytes`` / ``amr.halo.messages``, shipped home by
    ``ShardWorkerPool.drain_observability``) or directly from
    :class:`repro.amr.shard.ShardedExchange` accounting.

    Attributes
    ----------
    remote_fraction : float
        Measured fraction of the ``4 * num_patches`` patch faces whose
        source patch lives on another shard — the calibrated replacement
        for :meth:`LogPModel.ghost_exchange_time`'s 0.35 default.
    mean_message_bytes : float
        Average payload of one inter-shard strip message.
    messages_per_rank : float
        Inter-shard messages one rank handles per exchange.
    predicted_time_s : float
        LogP estimate of one rank's per-exchange communication time.
    """

    remote_fraction: float
    mean_message_bytes: float
    messages_per_rank: float
    predicted_time_s: float


def calibrate_exchange(
    model: LogPModel,
    *,
    num_patches: int,
    num_ranks: int,
    halo_messages: int,
    halo_bytes: int,
) -> ExchangeCalibration:
    """Turn measured halo traffic into a calibrated exchange-time estimate.

    Parameters
    ----------
    model : LogPModel
        The machine's messaging costs.
    num_patches : int
        Total patches in the hierarchy the traffic was measured on.
    num_ranks : int
        Shard/rank count the traffic was measured with.
    halo_messages : int
        Inter-shard strip messages per exchange execution, summed over
        ranks (``ShardedExchange.halo_messages_per_exchange``, or the
        ``amr.halo.messages`` counter divided by ``amr.shard.exchanges``).
    halo_bytes : int
        Inter-shard bytes gathered per exchange execution, summed over
        ranks (``ShardedExchange.halo_bytes_per_exchange``).
    """
    if num_patches < 1:
        raise ValueError("num_patches must be positive")
    if num_ranks < 1:
        raise ValueError("num_ranks must be positive")
    if halo_messages < 0 or halo_bytes < 0:
        raise ValueError("halo traffic must be non-negative")
    remote_fraction = halo_messages / (4.0 * num_patches)
    mean_bytes = halo_bytes / halo_messages if halo_messages else 0.0
    messages_per_rank = halo_messages / num_ranks
    predicted = messages_per_rank * model.message_time(int(round(mean_bytes)))
    return ExchangeCalibration(
        remote_fraction=remote_fraction,
        mean_message_bytes=mean_bytes,
        messages_per_rank=messages_per_rank,
        predicted_time_s=predicted,
    )
