"""LogP-style communication cost model.

Ghost exchange dominates the communication of a patch-based AMR step: each
rank sends one edge strip per patch face whose neighbor lives on another
rank.  The model charges ``latency + bytes / bandwidth`` per message and a
logarithmic tree cost for the collective that reduces the global CFL dt.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2

from repro.machine.spec import MachineSpec


@dataclass(frozen=True, slots=True)
class LogPModel:
    """Latency/bandwidth messaging costs for a :class:`MachineSpec`."""

    spec: MachineSpec

    def message_time(self, nbytes: int) -> float:
        """Time for one point-to-point message of ``nbytes``."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.spec.network_latency_s + nbytes / self.spec.network_bandwidth_Bps

    def allreduce_time(self, nbytes: int, ranks: int) -> float:
        """Binary-tree allreduce estimate over ``ranks`` ranks."""
        if ranks < 1:
            raise ValueError("ranks must be positive")
        rounds = max(1, ceil(log2(max(ranks, 2))))
        return 2.0 * rounds * self.message_time(nbytes)

    def ghost_exchange_time(
        self,
        patches_per_rank: float,
        mx: int,
        ng: int,
        fields: int = 4,
        remote_fraction: float = 0.35,
    ) -> float:
        """Per-step ghost-exchange time for one rank.

        Parameters
        ----------
        patches_per_rank : float
            Average patches owned by a rank (fractional values represent
            load imbalance-adjusted averages).
        mx, ng : int
            Patch interior size and ghost width; a face strip carries
            ``fields * ng * mx`` doubles.
        remote_fraction : float
            Fraction of the 4 faces per patch whose neighbor is off-rank.
            Morton partitioning keeps subdomains compact, so this is well
            below 1; 0.35 matches the surface-to-volume ratio of curve
            segments at the paper's scales.
        """
        if patches_per_rank < 0:
            raise ValueError("patches_per_rank must be non-negative")
        strip_bytes = fields * ng * mx * 8
        messages = 4.0 * patches_per_rank * remote_fraction
        return messages * self.message_time(strip_bytes)
