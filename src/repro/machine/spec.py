"""Machine hardware specification.

The defaults model NERSC Edison, the Cray XC30 used in the paper:
two-socket 12-core Intel Ivy Bridge nodes at 2.4 GHz, connected by the
Aries network in a dragonfly topology.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class MachineSpec:
    """Hardware parameters of a simulated cluster.

    Attributes
    ----------
    name : str
        Human-readable machine name.
    cores_per_node : int
        MPI ranks placed per node (one rank per core, the paper's layout).
    cpu_ghz : float
        Nominal clock; enters the per-cell work cost.
    cell_flops : float
        Floating-point operations to advance one cell one step (HLLC MUSCL
        sweep pair costs a few hundred flops per cell).
    flops_per_cycle : float
        Sustained flops per cycle per core for this stencil-ish workload.
    network_latency_s : float
        One-way small-message latency (Aries: ~1.3 microseconds).
    network_bandwidth_Bps : float
        Effective point-to-point bandwidth per rank.
    mem_per_node_GB : float
        Node DRAM; jobs whose per-node footprint exceeds it would be killed.
    """

    name: str = "edison"
    cores_per_node: int = 24
    cpu_ghz: float = 2.4
    cell_flops: float = 640.0
    flops_per_cycle: float = 1.1
    network_latency_s: float = 1.3e-6
    network_bandwidth_Bps: float = 8.0e9
    mem_per_node_GB: float = 64.0

    def __post_init__(self) -> None:
        if self.cores_per_node < 1:
            raise ValueError("cores_per_node must be positive")
        for fieldname in (
            "cpu_ghz",
            "cell_flops",
            "flops_per_cycle",
            "network_latency_s",
            "network_bandwidth_Bps",
            "mem_per_node_GB",
        ):
            if getattr(self, fieldname) <= 0:
                raise ValueError(f"{fieldname} must be positive")

    @property
    def core_flops_per_s(self) -> float:
        """Sustained per-core throughput in flops/s."""
        return self.cpu_ghz * 1e9 * self.flops_per_cycle

    def ranks(self, nodes: int) -> int:
        """Total MPI ranks for a job on ``nodes`` nodes."""
        if nodes < 1:
            raise ValueError("nodes must be positive")
        return nodes * self.cores_per_node

    def seconds_per_cell(self) -> float:
        """Single-core time to advance one cell one step."""
        return self.cell_flops / self.core_flops_per_s


#: The machine the paper collected its dataset on.
EDISON = MachineSpec()
