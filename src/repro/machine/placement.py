"""Placement of an AMR hierarchy's patches onto MPI ranks.

Bridges :mod:`repro.mesh.partition` (Morton-curve splitting) and the
machine models: given a forest and a per-patch weight (cells to advance),
it produces the rank assignment, the load-balance statistics that the
performance model's imbalance term abstracts, and the per-rank memory
footprint that MaxRSS accounting reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.memory_model import DOUBLE, NUM_FIELDS
from repro.mesh.forest import Forest
from repro.mesh.partition import PartitionStats, partition_curve, partition_stats


@dataclass(frozen=True)
class Placement:
    """Result of placing a forest's leaves on ``num_ranks`` ranks.

    Attributes
    ----------
    assignment : ndarray of int
        Rank per leaf, in global (tree-major Morton) leaf order.
    stats : PartitionStats
        Load-balance summary over the leaf weights.
    rank_bytes : ndarray of int
        Resident patch bytes per rank (state arrays with ghosts).
    """

    assignment: np.ndarray
    stats: PartitionStats
    rank_bytes: np.ndarray

    @property
    def max_rank_bytes(self) -> int:
        """The most-loaded rank's footprint — the MaxRSS driver."""
        return int(self.rank_bytes.max()) if self.rank_bytes.size else 0


def leaf_weights(forest: Forest, mx: int) -> np.ndarray:
    """Per-leaf work estimate: interior cells to advance (uniform ``mx^2``).

    ForestClaw weights every patch equally because each carries the same
    ``mx x mx`` grid; the array form leaves room for level-dependent
    weights (e.g. subcycling) without changing callers.
    """
    n = len(forest)
    return np.full(n, float(mx * mx))


def place_forest(forest: Forest, num_ranks: int, mx: int, ng: int = 2) -> Placement:
    """Assign every leaf to a rank along the global Morton curve."""
    if num_ranks < 1:
        raise ValueError("num_ranks must be >= 1")
    weights = leaf_weights(forest, mx)
    assignment = partition_curve(weights, num_ranks)
    stats = partition_stats(weights, assignment, num_ranks)
    patch_bytes = NUM_FIELDS * (mx + 2 * ng) ** 2 * DOUBLE
    counts = np.bincount(assignment, minlength=num_ranks)
    return Placement(
        assignment=assignment,
        stats=stats,
        rank_bytes=counts * patch_bytes,
    )


def remote_face_fraction(forest: Forest, assignment: np.ndarray) -> float:
    """Fraction of leaf faces whose neighbor lives on another rank.

    The empirical counterpart of the LogP model's ``remote_fraction``
    parameter: Morton-contiguous partitions keep this well below 1.
    Physical-boundary faces are excluded from the denominator.
    """
    leaves = forest.leaf_list()
    if len(leaves) != assignment.shape[0]:
        raise ValueError("assignment does not match the forest's leaves")
    rank_of = {key: int(assignment[i]) for i, key in enumerate(leaves)}
    total = 0
    remote = 0
    for i, (tree, quad) in enumerate(leaves):
        for face in range(4):
            hit = forest.face_neighbor(tree, quad, face)
            if hit is None:
                continue
            ntree, nq = hit
            # Same-level neighbor leaf, or its ancestor/descendants; resolve
            # to whichever leaf exists (coarse side counts once).
            owner = rank_of.get((ntree, nq))
            if owner is None:
                # Find the leaf covering nq (coarser ancestor).
                anc = nq
                while anc.level > 0 and owner is None:
                    from repro.mesh.quadrant import quadrant_parent

                    anc = quadrant_parent(anc)
                    owner = rank_of.get((ntree, anc))
            if owner is None:
                # Finer neighbors: approximate with the first child found.
                from repro.mesh.quadrant import quadrant_children

                for child in quadrant_children(nq):
                    owner = rank_of.get((ntree, child))
                    if owner is not None:
                        break
            if owner is None:
                continue
            total += 1
            if owner != assignment[i]:
                remote += 1
    return remote / total if total else 0.0
