"""SLURM-like job accounting records.

The paper's dataset is the output of ``sacct``: per-job elapsed time, node
count, and MaxRSS.  This module reproduces that record format — including
the reporting bug the authors hit, where MaxRSS came back as zero for some
of the *least expensive* jobs (their longest zero-MaxRSS job ran 139 s),
forcing them to drop 1K-612 jobs from the original collection.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np


@dataclass(frozen=True, slots=True)
class JobRecord:
    """One accounting row, as the analysis pipeline consumes it.

    Attributes
    ----------
    job_id : int
        Scheduler job id.
    features : tuple of float
        The 5 input features ``(p, mx, maxlevel, r0, rhoin)``.
    wall_seconds : float
        Elapsed time.
    nodes : int
        Nodes allocated.
    max_rss_MB : float
        Peak per-task resident set; 0.0 when the reporting bug struck.
    failed : bool
        Whether the job crashed (e.g. exceeded a memory limit).
    exit_state : str
        SLURM-like ``State`` string ("COMPLETED", "NODE_FAIL",
        "OUT_OF_MEMORY", "TIMEOUT"); empty means "derive from ``failed``"
        (see :attr:`state`), keeping pre-fault-layer constructors valid.
    """

    job_id: int
    features: tuple[float, ...]
    wall_seconds: float
    nodes: int
    max_rss_MB: float
    failed: bool = False
    exit_state: str = ""

    @property
    def state(self) -> str:
        """The sacct ``State`` column (derived when not set explicitly)."""
        if self.exit_state:
            return self.exit_state
        return "FAILED" if self.failed else "COMPLETED"

    def evolve(self, **changes) -> "JobRecord":
        """A copy with fields replaced (the fault layer's update idiom)."""
        return replace(self, **changes)

    @property
    def cost_node_hours(self) -> float:
        """The paper's cost response: wall-clock time x nodes."""
        return self.wall_seconds * self.nodes / 3600.0

    @property
    def rss_reported(self) -> bool:
        """False when MaxRSS was lost to the accounting bug."""
        return self.max_rss_MB > 0.0


@dataclass(frozen=True, slots=True)
class SlurmAccounting:
    """Post-processing of raw job measurements into accounting rows.

    Attributes
    ----------
    rss_bug_wall_threshold_s : float
        Jobs shorter than this are *eligible* for the MaxRSS=0 bug — the
        paper observed the bug only among its least expensive jobs (longest
        affected: 139 s).
    rss_bug_probability : float
        Probability an eligible job's MaxRSS is reported as zero.
    """

    rss_bug_wall_threshold_s: float = 139.0
    rss_bug_probability: float = 0.55

    def finalize(self, record: JobRecord, rng: np.random.Generator) -> JobRecord:
        """Apply reporting artifacts to a truthful measurement."""
        if (
            record.wall_seconds < self.rss_bug_wall_threshold_s
            and rng.random() < self.rss_bug_probability
        ):
            return replace(record, max_rss_MB=0.0)
        return record


@dataclass(slots=True)
class CampaignLedger:
    """Node-hour accounting for one long-running AL campaign.

    The campaign service prices everything in the paper's currency —
    node-hours, the same unit :attr:`JobRecord.cost_node_hours` reports —
    and schedules campaigns by what is *left* of their allocation.  Three
    buckets:

    - ``committed_node_hours`` — selections the campaign actually kept
      (the sum of the trajectory's per-sample costs, including crashed
      acquisitions, which burn their allocation either way);
    - ``wasted_node_hours`` — slices discarded by the fault layer (worker
      crash, OOM, timeout) and re-run from the last checkpoint: real
      machine time that produced no committed state, exactly the quantity
      :class:`~repro.faults.resilient.ResilientRun` charges at job level;
    - ``queue_wait_seconds`` — backoff the retry policy imposed (delay,
      not machine time; kept separate from the node-hour buckets).

    Remaining budget = ``budget - committed - wasted``; a campaign whose
    remaining budget reaches zero is finalized with
    :attr:`~repro.core.trajectory.StopReason.BUDGET_EXHAUSTED`.
    """

    budget_node_hours: float = float("inf")
    committed_node_hours: float = 0.0
    wasted_node_hours: float = 0.0
    queue_wait_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.budget_node_hours <= 0:
            raise ValueError("budget_node_hours must be positive")

    @property
    def remaining_node_hours(self) -> float:
        """What is left of the allocation (scheduling priority key)."""
        return self.budget_node_hours - self.committed_node_hours - self.wasted_node_hours

    @property
    def exhausted(self) -> bool:
        return self.remaining_node_hours <= 0.0

    def charge(self, node_hours: float) -> None:
        """Commit node-hours the campaign keeps (selected samples)."""
        if node_hours < 0:
            raise ValueError("cannot charge negative node-hours")
        self.committed_node_hours += node_hours

    def waste(self, node_hours: float) -> None:
        """Charge node-hours a discarded (re-run) slice burned."""
        if node_hours < 0:
            raise ValueError("cannot waste negative node-hours")
        self.wasted_node_hours += node_hours

    def wait(self, seconds: float) -> None:
        """Account retry backoff (queue-side delay, not machine time)."""
        self.queue_wait_seconds += seconds

    def as_dict(self) -> dict:
        """JSON-able dump for checkpoints and the CLI listing."""
        return {
            "budget_node_hours": self.budget_node_hours,
            "committed_node_hours": self.committed_node_hours,
            "wasted_node_hours": self.wasted_node_hours,
            "queue_wait_seconds": self.queue_wait_seconds,
        }


def filter_usable(records: list[JobRecord]) -> list[JobRecord]:
    """Drop rows unusable for memory modeling, as the authors did.

    Removes failed jobs and rows that lost MaxRSS to the reporting bug.
    """
    return [r for r in records if not r.failed and r.rss_reported]
