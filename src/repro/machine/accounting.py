"""SLURM-like job accounting records.

The paper's dataset is the output of ``sacct``: per-job elapsed time, node
count, and MaxRSS.  This module reproduces that record format — including
the reporting bug the authors hit, where MaxRSS came back as zero for some
of the *least expensive* jobs (their longest zero-MaxRSS job ran 139 s),
forcing them to drop 1K-612 jobs from the original collection.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np


@dataclass(frozen=True, slots=True)
class JobRecord:
    """One accounting row, as the analysis pipeline consumes it.

    Attributes
    ----------
    job_id : int
        Scheduler job id.
    features : tuple of float
        The 5 input features ``(p, mx, maxlevel, r0, rhoin)``.
    wall_seconds : float
        Elapsed time.
    nodes : int
        Nodes allocated.
    max_rss_MB : float
        Peak per-task resident set; 0.0 when the reporting bug struck.
    failed : bool
        Whether the job crashed (e.g. exceeded a memory limit).
    exit_state : str
        SLURM-like ``State`` string ("COMPLETED", "NODE_FAIL",
        "OUT_OF_MEMORY", "TIMEOUT"); empty means "derive from ``failed``"
        (see :attr:`state`), keeping pre-fault-layer constructors valid.
    """

    job_id: int
    features: tuple[float, ...]
    wall_seconds: float
    nodes: int
    max_rss_MB: float
    failed: bool = False
    exit_state: str = ""

    @property
    def state(self) -> str:
        """The sacct ``State`` column (derived when not set explicitly)."""
        if self.exit_state:
            return self.exit_state
        return "FAILED" if self.failed else "COMPLETED"

    def evolve(self, **changes) -> "JobRecord":
        """A copy with fields replaced (the fault layer's update idiom)."""
        return replace(self, **changes)

    @property
    def cost_node_hours(self) -> float:
        """The paper's cost response: wall-clock time x nodes."""
        return self.wall_seconds * self.nodes / 3600.0

    @property
    def rss_reported(self) -> bool:
        """False when MaxRSS was lost to the accounting bug."""
        return self.max_rss_MB > 0.0


@dataclass(frozen=True, slots=True)
class SlurmAccounting:
    """Post-processing of raw job measurements into accounting rows.

    Attributes
    ----------
    rss_bug_wall_threshold_s : float
        Jobs shorter than this are *eligible* for the MaxRSS=0 bug — the
        paper observed the bug only among its least expensive jobs (longest
        affected: 139 s).
    rss_bug_probability : float
        Probability an eligible job's MaxRSS is reported as zero.
    """

    rss_bug_wall_threshold_s: float = 139.0
    rss_bug_probability: float = 0.55

    def finalize(self, record: JobRecord, rng: np.random.Generator) -> JobRecord:
        """Apply reporting artifacts to a truthful measurement."""
        if (
            record.wall_seconds < self.rss_bug_wall_threshold_s
            and rng.random() < self.rss_bug_probability
        ):
            return replace(record, max_rss_MB=0.0)
        return record


def filter_usable(records: list[JobRecord]) -> list[JobRecord]:
    """Drop rows unusable for memory modeling, as the authors did.

    Removes failed jobs and rows that lost MaxRSS to the reporting bug.
    """
    return [r for r in records if not r.failed and r.rss_reported]
