"""Ghost-layer exchange across patch boundaries of an AMR hierarchy.

Every patch face is in exactly one of four configurations (guaranteed by
2:1 balance): physical boundary, same-level neighbor, one coarser neighbor,
or two finer neighbors.  Strips are normalized to ``(4, width, mx)`` arrays
whose axis 1 is the normal offset *away from the interface* and axis 2 the
tangential coordinate (increasing y for x-faces, increasing x for y-faces);
this makes level transfer uniform for all four faces.

Corner ghost cells are not exchanged: the driver refreshes ghosts between
dimensional sweeps, and a 1-D sweep only reads ghosts in its own row or
column, so corner values never reach interior cells.
"""

from __future__ import annotations

import numpy as np

from repro.amr.patch import Patch
from repro.amr.transfer import prolong_patch, restrict_area_average
from repro.mesh.forest import Forest
from repro.mesh.quadrant import Quadrant, quadrant_children, quadrant_parent
from repro.solver.boundary import BoundaryCondition
from repro.solver.state import IMX, IMY

#: Face opposite to each face index (-x <-> +x, -y <-> +y).
OPPOSITE_FACE = (1, 0, 3, 2)

#: Child ids adjacent to each face of their parent, in tangential order.
#: E.g. a neighbor met through our face 0 (-x) shares its +x face (face 1),
#: so the relevant children are those with the high x bit: ids 1 and 3.
CHILDREN_ON_FACE = ((0, 2), (1, 3), (0, 1), (2, 3))


def take_strip(patch: Patch, face: int, width: int) -> np.ndarray:
    """Interior cells adjacent to ``face``, normalized to (4, width, mx).

    Axis 1 offset 0 is the cell row/column touching the interface, and the
    offset increases *into* the source patch.
    """
    ng, mx = patch.ng, patch.mx
    interior = patch.q[:, ng : ng + mx, ng : ng + mx]
    if face == 0:
        return interior[:, :width, :]
    if face == 1:
        return interior[:, mx - width :, :][:, ::-1, :]
    if face == 2:
        return np.swapaxes(interior[:, :, :width], 1, 2)
    if face == 3:
        return np.swapaxes(interior[:, :, mx - width :][:, :, ::-1], 1, 2)
    raise ValueError(f"face must be 0..3, got {face}")


def write_ghost(patch: Patch, face: int, strip: np.ndarray) -> None:
    """Write a normalized (4, ng, mx) strip into the ghost cells of ``face``.

    Axis 1 offset 0 is the ghost layer touching the interface, increasing
    outward (away from the patch interior).
    """
    ng, mx = patch.ng, patch.mx
    if strip.shape != (patch.q.shape[0], ng, mx):
        raise ValueError(f"strip shape {strip.shape} does not match ({ng}, {mx})")
    if face == 0:
        patch.q[:, :ng, ng : ng + mx] = strip[:, ::-1, :]
    elif face == 1:
        patch.q[:, ng + mx :, ng : ng + mx] = strip
    elif face == 2:
        patch.q[:, ng : ng + mx, :ng] = np.swapaxes(strip, 1, 2)[:, :, ::-1]
    elif face == 3:
        patch.q[:, ng : ng + mx, ng + mx :] = np.swapaxes(strip, 1, 2)
    else:
        raise ValueError(f"face must be 0..3, got {face}")


def _physical_strip(patch: Patch, face: int, bc: BoundaryCondition) -> np.ndarray:
    """Ghost strip implementing a physical boundary condition."""
    ng = patch.ng
    if bc == BoundaryCondition.OUTFLOW:
        edge = take_strip(patch, face, 1)
        return np.repeat(edge, ng, axis=1)
    if bc == BoundaryCondition.REFLECT:
        strip = take_strip(patch, face, ng).copy()
        normal_momentum = IMX if face < 2 else IMY
        strip[normal_momentum] *= -1.0
        return strip
    raise ValueError(f"unsupported physical BC {bc} (periodic needs a torus brick)")


def tangential_half(patch_quad: Quadrant, face: int) -> int:
    """Which half (0=low, 1=high) of a coarse neighbor's face we touch."""
    if face < 2:  # x-face: tangential coordinate is y
        return patch_quad.y & 1
    return patch_quad.x & 1


#: Backwards-compatible alias (pre-batching name).
_tangential_half = tangential_half


def exchange_ghosts(
    forest: Forest,
    patches: dict[tuple[int, Quadrant], Patch],
    bcs: tuple = ("outflow", "outflow", "outflow", "outflow"),
) -> None:
    """Fill the edge ghost strips of every patch in the hierarchy.

    Parameters
    ----------
    forest : Forest
        Must be 2:1 balanced and have exactly the leaves of ``patches``.
    patches : dict
        ``(tree, quadrant) -> Patch`` for every leaf.
    bcs : 4-tuple
        Physical boundary conditions (left, right, bottom, top).
    """
    bc_objs = tuple(
        b if isinstance(b, BoundaryCondition) else BoundaryCondition(b) for b in bcs
    )
    for (tree, quad), patch in patches.items():
        for face in range(4):
            hit = forest.face_neighbor(tree, quad, face)
            if hit is None:
                write_ghost(patch, face, _physical_strip(patch, face, bc_objs[face]))
                continue
            ntree, nq = hit
            opp = OPPOSITE_FACE[face]
            same = patches.get((ntree, nq))
            if same is not None:
                write_ghost(patch, face, take_strip(same, opp, patch.ng))
                continue
            if nq.level > 0:
                coarse = patches.get((ntree, quadrant_parent(nq)))
                if coarse is not None:
                    write_ghost(patch, face, _from_coarse(patch, coarse, quad, face, opp))
                    continue
            write_ghost(patch, face, _from_fine(patch, patches, ntree, nq, opp))


# NOTE: the per-step classification above is also resolved *once per regrid*
# into a batched gather/scatter program by repro.amr.batch.ExchangePlan; this
# per-patch routine is the bit-identical reference implementation.


def _from_coarse(
    patch: Patch, coarse: Patch, quad: Quadrant, face: int, opp: int
) -> np.ndarray:
    """Ghost strip interpolated from a one-level-coarser neighbor."""
    ng, mx = patch.ng, patch.mx
    if ng % 2:
        raise ValueError("coarse-fine ghost exchange requires even ng")
    half = tangential_half(quad, face)
    wide = take_strip(coarse, opp, ng // 2)
    block = wide[:, :, half * (mx // 2) : (half + 1) * (mx // 2)]
    return prolong_patch(np.ascontiguousarray(block))


def _from_fine(
    patch: Patch,
    patches: dict[tuple[int, Quadrant], Patch],
    ntree: int,
    nq: Quadrant,
    opp: int,
) -> np.ndarray:
    """Ghost strip restricted from the two one-level-finer neighbors."""
    ng, mx = patch.ng, patch.mx
    children = quadrant_children(nq)
    pieces = []
    for cid in CHILDREN_ON_FACE[opp]:
        child_patch = patches.get((ntree, children[cid]))
        if child_patch is None:
            raise KeyError(
                f"forest not 2:1 balanced: missing neighbor leaf {children[cid]}"
            )
        fine = take_strip(child_patch, opp, 2 * ng)
        pieces.append(restrict_area_average(np.ascontiguousarray(fine)))
    return np.concatenate(pieces, axis=2)[:, :, :mx]
