"""Shard-aware compilation of the ghost-exchange plan.

:class:`~repro.amr.batch.ExchangePlan` describes the exchange as batched
gather/scatter groups over the whole hierarchy.  For sharded execution
(:mod:`repro.amr.parallel`) each worker owns a contiguous Morton segment of
the stack (``repro.mesh.partition.partition_curve``) and must execute only
the traffic whose *destination* patch it owns, while reading source
interiors anywhere in the shared stack.  This module compiles the plan one
level further, down to flat element indices:

- **copy traffic** (same-level neighbors, outflow walls, the non-negated
  fields of reflecting walls) becomes two flat ``int32`` index vectors:
  ``flat[dst] = flat[src]``;
- **negated traffic** (the wall-normal momentum of reflecting walls)
  becomes the same with a ``* -1.0``;
- **coarse-to-fine** traffic is gathered into a normalized staging buffer,
  run through :func:`repro.amr.transfer.prolong_patch` for *all* faces and
  halves in one batch, and scattered back;
- **fine-to-coarse** traffic is gathered per source piece, restricted in
  one batch, and scattered into the tangential halves of the ghost strips.

The index templates are derived by running :func:`take_strips` /
:func:`write_ghosts` on an index-valued patch, so they are consistent with
the serial exchange by construction; all transforms are elementwise per
traffic row, so the sharded execution is bit-identical to
``ExchangePlan.execute`` for any shard count (pinned by
``tests/amr/test_shard.py``).

Ownership bookkeeping: every traffic row is classified intra-shard (source
owned by the destination's rank) or inter-shard (halo).  Halo volumes are
precomputed per program and exported per exchange through
:mod:`repro.obs` counters — they are the calibration input for
:func:`repro.machine.comms.calibrate_exchange`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.amr.batch import ExchangePlan, PatchStack, take_strips, write_ghosts
from repro.amr.ghost import OPPOSITE_FACE
from repro.amr.patch import NUM_FIELDS
from repro.amr.transfer import prolong_patch, restrict_area_average
from repro.solver.boundary import BoundaryCondition
from repro.solver.state import IMX, IMY


@lru_cache(maxsize=None)
def _src_template(face: int, width: int, mx: int, ng: int) -> np.ndarray:
    """Flat in-patch offsets of ``take_strips(.., face, width)`` sources.

    Shape ``(4, width, mx)`` in normalized strip order.
    """
    n = mx + 2 * ng
    idx = np.arange(NUM_FIELDS * n * n, dtype=np.int64).reshape(NUM_FIELDS, n, n)
    out = take_strips(idx[None], np.array([0]), face, width, mx, ng)[0]
    return np.ascontiguousarray(out)


@lru_cache(maxsize=None)
def _dst_template(face: int, mx: int, ng: int) -> np.ndarray:
    """Flat in-patch offsets of the ``face`` ghost strip, normalized order.

    ``write_ghosts`` of a normalized ``(4, ng, mx)`` strip writes element
    ``(f, k, t)`` to offset ``template[f, k, t]``.
    """
    n = mx + 2 * ng
    buf = np.full((1, NUM_FIELDS, n, n), -1, dtype=np.int64)
    strip = np.arange(NUM_FIELDS * ng * mx, dtype=np.int64).reshape(
        1, NUM_FIELDS, ng, mx
    )
    write_ghosts(buf, np.array([0]), face, strip, mx, ng)
    flat = buf.ravel()
    mask = flat >= 0
    out = np.empty(NUM_FIELDS * ng * mx, dtype=np.int64)
    out[flat[mask]] = np.nonzero(mask)[0]
    return out.reshape(NUM_FIELDS, ng, mx)


def _rows(rows: np.ndarray, template: np.ndarray, patch_stride: int) -> np.ndarray:
    """Full flat indices: one template instance per stack row."""
    return (
        rows.astype(np.int64)[:, None, None, None] * patch_stride
        + template[None]
    ).reshape(len(rows), *template.shape)


@dataclass
class ShardProgram:
    """The executable exchange slice owned by one shard.

    All arrays are plain ``int32`` index vectors / staging shapes, so the
    program pickles cheaply to a worker process.  ``execute`` applies it to
    the shared stack array; it writes only ghost cells of patches owned by
    this shard and reads only patch interiors, so concurrent execution
    across shards is race-free (the ghost-coherence contract, DESIGN.md).
    """

    rank: int
    mx: int
    ng: int
    # flat[dst] = flat[src]
    copy_dst: np.ndarray
    copy_src: np.ndarray
    # flat[dst] = flat[src] * -1.0  (reflecting-wall momentum)
    neg_dst: np.ndarray
    neg_src: np.ndarray
    # coarse->fine: gather (K,4,ng//2,mx//2), prolong, scatter (K,4,ng,mx)
    coarse_gather: np.ndarray
    coarse_scatter: np.ndarray
    # fine->coarse: gather (K,4,2ng,mx), restrict, scatter (K,4,ng,mx//2)
    fine_gather: np.ndarray
    fine_scatter: np.ndarray
    # ownership accounting (bytes per exchange execution)
    local_bytes: int
    halo_gather_bytes: int
    halo_scatter_bytes: int
    halo_messages: int

    def execute(self, stack_q: np.ndarray, lib=None) -> None:
        """Fill this shard's ghost strips from the shared stack array."""
        flat = stack_q.reshape(-1)
        if lib is not None:
            from repro.solver import kernels

            kernels.copy_indexed(flat, self.copy_dst, self.copy_src, 1.0)
            kernels.copy_indexed(flat, self.neg_dst, self.neg_src, -1.0)
            if self.coarse_gather.size:
                gbuf, pbuf = self._coarse_buffers()
                kernels.gather_indexed(flat, self.coarse_gather.reshape(-1), gbuf)
                kernels.prolong_blocks(
                    gbuf, self.coarse_gather.shape[2], self.coarse_gather.shape[3],
                    pbuf,
                )
                kernels.scatter_indexed(flat, self.coarse_scatter.reshape(-1), pbuf)
            if self.fine_gather.size:
                gbuf, rbuf = self._fine_buffers()
                kernels.gather_indexed(flat, self.fine_gather.reshape(-1), gbuf)
                kernels.restrict_blocks(
                    gbuf, self.fine_gather.shape[2], self.fine_gather.shape[3],
                    rbuf,
                )
                kernels.scatter_indexed(flat, self.fine_scatter.reshape(-1), rbuf)
            return
        flat[self.copy_dst] = flat[self.copy_src]
        flat[self.neg_dst] = flat[self.neg_src] * -1.0
        if self.coarse_gather.size:
            blocks = flat[self.coarse_gather]
            flat[self.coarse_scatter] = prolong_patch(blocks)
        if self.fine_gather.size:
            wide = flat[self.fine_gather]
            flat[self.fine_scatter] = restrict_area_average(wide)

    def _coarse_buffers(self) -> tuple[np.ndarray, np.ndarray]:
        buf = getattr(self, "_cbuf", None)
        if buf is None or buf[0].size != self.coarse_gather.size:
            buf = (
                np.empty(self.coarse_gather.size, dtype=np.float64),
                np.empty(self.coarse_scatter.size, dtype=np.float64),
            )
            self._cbuf = buf
        return buf

    def _fine_buffers(self) -> tuple[np.ndarray, np.ndarray]:
        buf = getattr(self, "_fbuf", None)
        if buf is None or buf[0].size != self.fine_gather.size:
            buf = (
                np.empty(self.fine_gather.size, dtype=np.float64),
                np.empty(self.fine_scatter.size, dtype=np.float64),
            )
            self._fbuf = buf
        return buf


@dataclass
class ShardedExchange:
    """Per-rank exchange programs for one (stack, assignment) pair.

    ``covers`` must check the *assignment*, not just the stack structure: a
    rebalance can move a patch across a shard boundary while the stack it
    was compiled against still structurally covers the patch dict (the
    regression in ``tests/amr/test_shard.py`` pins this).
    """

    plan: ExchangePlan
    assignment: np.ndarray
    programs: tuple[ShardProgram, ...]

    @property
    def num_shards(self) -> int:
        return len(self.programs)

    def covers(self, stack: PatchStack, assignment: np.ndarray) -> bool:
        """True iff compiled against this exact plan and shard assignment."""
        if self.plan is not stack.plan:
            return False
        return (
            len(assignment) == len(self.assignment)
            and bool(np.array_equal(assignment, self.assignment))
        )

    def execute_serial(self, stack_q: np.ndarray, use_kernels: bool = False) -> None:
        """Run every shard's program in-process (tests / 1-worker path)."""
        lib = None
        if use_kernels:
            from repro.solver import kernels

            lib = kernels.load()
        for prog in self.programs:
            prog.execute(stack_q, lib=lib)

    @property
    def halo_bytes_per_exchange(self) -> int:
        """Total inter-shard bytes gathered per exchange execution."""
        return sum(p.halo_gather_bytes for p in self.programs)

    @property
    def halo_messages_per_exchange(self) -> int:
        """Inter-shard (src patch, dst face) strips per exchange execution."""
        return sum(p.halo_messages for p in self.programs)


def build_sharded_exchange(
    stack: PatchStack, assignment: np.ndarray
) -> ShardedExchange:
    """Compile ``stack.plan`` into per-shard flat-index programs."""
    plan = stack.plan
    mx, ng = plan.mx, plan.ng
    n = mx + 2 * ng
    S = NUM_FIELDS * n * n
    a = np.asarray(assignment, dtype=np.int64)
    if len(a) != len(stack):
        raise ValueError("assignment must cover every stack row")
    num_shards = int(a.max()) + 1 if a.size else 1

    strip_bytes = NUM_FIELDS * ng * mx * 8
    hmx = mx // 2
    w2 = ng // 2

    # Per-rank accumulators.
    copy_d = [[] for _ in range(num_shards)]
    copy_s = [[] for _ in range(num_shards)]
    neg_d = [[] for _ in range(num_shards)]
    neg_s = [[] for _ in range(num_shards)]
    coarse_g = [[] for _ in range(num_shards)]
    coarse_c = [[] for _ in range(num_shards)]
    fine_g = [[] for _ in range(num_shards)]
    fine_c = [[] for _ in range(num_shards)]
    local_b = [0] * num_shards
    halo_gb = [0] * num_shards
    halo_sb = [0] * num_shards
    halo_n = [0] * num_shards

    def shard_rows(dst: np.ndarray):
        """Yield (rank, member mask) for each shard owning rows of ``dst``."""
        owners = a[dst]
        for rank in np.unique(owners):
            yield int(rank), owners == rank

    for face, bc, dst in plan.physical:
        dst_t = _dst_template(face, mx, ng)
        if bc == BoundaryCondition.OUTFLOW:
            edge_t = _src_template(face, 1, mx, ng)
            src_t = np.broadcast_to(edge_t[:, 0:1, :], dst_t.shape)
        else:  # REFLECT
            src_t = _src_template(face, ng, mx, ng)
        neg_field = IMX if face < 2 else IMY
        for rank, m in shard_rows(dst):
            rows = dst[m]
            d = _rows(rows, dst_t, S)
            s = _rows(rows, src_t, S)
            if bc == BoundaryCondition.REFLECT:
                fields = np.arange(NUM_FIELDS) != neg_field
                copy_d[rank].append(d[:, fields].ravel())
                copy_s[rank].append(s[:, fields].ravel())
                neg_d[rank].append(d[:, ~fields].ravel())
                neg_s[rank].append(s[:, ~fields].ravel())
            else:
                copy_d[rank].append(d.ravel())
                copy_s[rank].append(s.ravel())
            local_b[rank] += len(rows) * strip_bytes  # walls are always local

    for face, dst, src in plan.same:
        dst_t = _dst_template(face, mx, ng)
        src_t = _src_template(OPPOSITE_FACE[face], ng, mx, ng)
        for rank, m in shard_rows(dst):
            copy_d[rank].append(_rows(dst[m], dst_t, S).ravel())
            copy_s[rank].append(_rows(src[m], src_t, S).ravel())
            remote = int(np.count_nonzero(a[src[m]] != rank))
            local = int(m.sum()) - remote
            local_b[rank] += local * strip_bytes
            halo_gb[rank] += remote * strip_bytes
            halo_sb[rank] += remote * strip_bytes
            halo_n[rank] += remote

    for face, half, dst, src in plan.coarse:
        dst_t = _dst_template(face, mx, ng)
        wide_t = _src_template(OPPOSITE_FACE[face], w2, mx, ng)
        block_t = np.ascontiguousarray(
            wide_t[:, :, half * hmx : (half + 1) * hmx]
        )
        block_bytes = NUM_FIELDS * w2 * hmx * 8
        for rank, m in shard_rows(dst):
            coarse_g[rank].append(_rows(src[m], block_t, S))
            coarse_c[rank].append(_rows(dst[m], dst_t, S))
            remote = int(np.count_nonzero(a[src[m]] != rank))
            local = int(m.sum()) - remote
            local_b[rank] += local * block_bytes
            halo_gb[rank] += remote * block_bytes
            halo_sb[rank] += remote * strip_bytes
            halo_n[rank] += remote

    for face, dst, src_low, src_high in plan.fine:
        dst_t = _dst_template(face, mx, ng)
        wide_t = _src_template(OPPOSITE_FACE[face], 2 * ng, mx, ng)
        piece_bytes = NUM_FIELDS * 2 * ng * mx * 8
        for piece, src in enumerate((src_low, src_high)):
            cols = slice(piece * hmx, (piece + 1) * hmx)
            piece_dst_t = np.ascontiguousarray(dst_t[:, :, cols])
            for rank, m in shard_rows(dst):
                fine_g[rank].append(_rows(src[m], wide_t, S))
                fine_c[rank].append(_rows(dst[m], piece_dst_t, S))
                remote = int(np.count_nonzero(a[src[m]] != rank))
                local = int(m.sum()) - remote
                local_b[rank] += local * piece_bytes
                halo_gb[rank] += remote * piece_bytes
                halo_sb[rank] += remote * (strip_bytes // 2)
                halo_n[rank] += remote

    if len(stack) * S > np.iinfo(np.int32).max:
        raise ValueError("stack too large for int32 exchange indices")

    def cat(parts: list, shape_tail: tuple) -> np.ndarray:
        # int32 halves the per-install shipping cost to the workers; the
        # guard above keeps the flat element space in range.
        if not parts:
            return np.empty((0, *shape_tail), dtype=np.int32)
        return np.ascontiguousarray(
            np.concatenate(parts, axis=0), dtype=np.int32
        )

    programs = []
    for rank in range(num_shards):
        programs.append(
            ShardProgram(
                rank=rank,
                mx=mx,
                ng=ng,
                copy_dst=cat([p.reshape(-1) for p in copy_d[rank]], ()),
                copy_src=cat([p.reshape(-1) for p in copy_s[rank]], ()),
                neg_dst=cat([p.reshape(-1) for p in neg_d[rank]], ()),
                neg_src=cat([p.reshape(-1) for p in neg_s[rank]], ()),
                coarse_gather=cat(coarse_g[rank], (NUM_FIELDS, w2, hmx)),
                coarse_scatter=cat(coarse_c[rank], (NUM_FIELDS, ng, mx)),
                fine_gather=cat(fine_g[rank], (NUM_FIELDS, 2 * ng, mx)),
                fine_scatter=cat(fine_c[rank], (NUM_FIELDS, ng, hmx)),
                local_bytes=local_b[rank],
                halo_gather_bytes=halo_gb[rank],
                halo_scatter_bytes=halo_sb[rank],
                halo_messages=halo_n[rank],
            )
        )
    return ShardedExchange(plan=plan, assignment=a.copy(), programs=tuple(programs))


def shard_weights(stack: PatchStack) -> np.ndarray:
    """Per-leaf work estimates for the curve partitioner.

    Every patch advances the same ``mx * mx`` interior at the same global
    dt (non-subcycled stepping), so the work per leaf is uniform.
    """
    return np.ones(len(stack), dtype=np.float64)
