"""Patch-based adaptive mesh refinement driver (ForestClaw analogue).

Every leaf quadrant of a :class:`repro.mesh.Forest` carries a ghosted
``mx x mx`` finite-volume patch.  The driver advances all patches with a
global (non-subcycled) CFL time step, exchanges ghost layers across
same-level, coarse–fine, and physical boundaries, and periodically regrids:
tagging patches by an undivided-gradient indicator, refining/coarsening,
re-establishing 2:1 balance, and transferring the solution conservatively.

Public API
----------
- :class:`Patch` — a ghosted block bound to a quadrant.
- :class:`AmrConfig`, :class:`AmrDriver` — simulation configuration/driver.
- :class:`RunStats` — work/memory counters consumed by :mod:`repro.machine`.
- tagging, prolongation/restriction and ghost-exchange primitives.
"""

from repro.amr.patch import Patch, patch_cell_centers
from repro.amr.tagging import gradient_indicator, tag_for_refinement
from repro.amr.transfer import prolong_patch, restrict_patch, restrict_area_average
from repro.amr.ghost import exchange_ghosts
from repro.amr.stats import RunStats, StepRecord
from repro.amr.driver import AmrConfig, AmrDriver

__all__ = [
    "Patch",
    "patch_cell_centers",
    "gradient_indicator",
    "tag_for_refinement",
    "prolong_patch",
    "restrict_patch",
    "restrict_area_average",
    "exchange_ghosts",
    "RunStats",
    "StepRecord",
    "AmrConfig",
    "AmrDriver",
]
