"""Patch-based adaptive mesh refinement driver (ForestClaw analogue).

Every leaf quadrant of a :class:`repro.mesh.Forest` carries a ghosted
``mx x mx`` finite-volume patch.  The driver advances all patches with a
global (non-subcycled) CFL time step, exchanges ghost layers across
same-level, coarse–fine, and physical boundaries, and periodically regrids:
tagging patches by an undivided-gradient indicator, refining/coarsening,
re-establishing 2:1 balance, and transferring the solution conservatively.

Stepping is batched by default (``AmrConfig.batched``): the hierarchy's
state is stacked into one ``(P, 4, n, n)`` array, sweeps and reductions run
once over the stack, and ghost exchange executes a plan precomputed at
regrid time (:mod:`repro.amr.batch`).  The per-patch loop remains available
as the bit-identical reference implementation.

:class:`ParallelAmrDriver` (:mod:`repro.amr.parallel`) shards the batched
stack along the Morton curve across worker processes over shared memory —
still bit-identical; imported lazily here so ``repro.amr`` stays cheap for
serial users.

Public API
----------
- :class:`Patch` — a ghosted block bound to a quadrant.
- :class:`AmrConfig`, :class:`AmrDriver` — simulation configuration/driver.
- :class:`PatchStack`, :class:`ExchangePlan` — stacked storage + compiled
  ghost exchange backing the batched stepping path.
- :class:`RunStats` — work/memory counters consumed by :mod:`repro.machine`.
- tagging, prolongation/restriction and ghost-exchange primitives.
"""

from repro.amr.patch import Patch, patch_cell_centers
from repro.amr.tagging import gradient_indicator, tag_for_refinement
from repro.amr.transfer import prolong_patch, restrict_patch, restrict_area_average
from repro.amr.ghost import exchange_ghosts
from repro.amr.batch import ExchangePlan, PatchStack
from repro.amr.stats import RunStats, StepRecord
from repro.amr.driver import AmrConfig, AmrDriver


def __getattr__(name: str):
    # Lazy: repro.amr.parallel pulls in multiprocessing/shared_memory.
    if name == "ParallelAmrDriver":
        from repro.amr.parallel import ParallelAmrDriver

        return ParallelAmrDriver
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ParallelAmrDriver",
    "Patch",
    "patch_cell_centers",
    "gradient_indicator",
    "tag_for_refinement",
    "prolong_patch",
    "restrict_patch",
    "restrict_area_average",
    "exchange_ghosts",
    "ExchangePlan",
    "PatchStack",
    "RunStats",
    "StepRecord",
    "AmrConfig",
    "AmrDriver",
]
