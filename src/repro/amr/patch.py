"""A ghosted finite-volume patch bound to a forest quadrant.

ForestClaw attaches one ``mx x my`` Clawpack grid to every leaf of the
forest; here ``my == mx`` (square patches on square quadrants).  The patch
owns its conserved-state array including ``ng`` ghost layers and knows its
physical geometry (from the tree's position in the brick and the quadrant's
position in the tree).
"""

from __future__ import annotations

import numpy as np

from repro.mesh.quadrant import Quadrant

#: Number of conserved fields (rho, rho*u, rho*v, E).
NUM_FIELDS = 4


class Patch:
    """State and geometry of one AMR block.

    Parameters
    ----------
    tree : int
        Index of the owning tree in the forest's brick.
    quad : Quadrant
        The leaf quadrant this patch covers.
    mx : int
        Cells per side (the paper's "box size" feature, Table I: 8–32).
    ng : int
        Ghost layers per side (>= 2 for the MUSCL scheme).
    tree_origin : (float, float)
        Physical lower-left corner of the owning tree in brick coordinates.
    """

    __slots__ = ("tree", "quad", "mx", "ng", "q", "x0", "y0", "dx")

    def __init__(
        self,
        tree: int,
        quad: Quadrant,
        mx: int,
        ng: int,
        tree_origin: tuple[float, float],
    ) -> None:
        if mx < 4:
            raise ValueError("mx must be at least 4")
        if ng < 2:
            raise ValueError("ng must be at least 2")
        self.tree = tree
        self.quad = quad
        self.mx = mx
        self.ng = ng
        ox, oy = quad.origin
        self.x0 = tree_origin[0] + ox
        self.y0 = tree_origin[1] + oy
        self.dx = quad.size / mx  # trees are unit squares -> dx == dy
        n = mx + 2 * ng
        self.q = np.zeros((NUM_FIELDS, n, n), dtype=np.float64)

    # -- views -------------------------------------------------------------

    @property
    def interior(self) -> np.ndarray:
        """Writable view of the interior cells, shape (4, mx, mx)."""
        ng = self.ng
        return self.q[:, ng:-ng, ng:-ng]

    @property
    def level(self) -> int:
        return self.quad.level

    @property
    def nbytes(self) -> int:
        """Bytes held by the state array (ghosts included)."""
        return self.q.nbytes

    @property
    def cell_area(self) -> float:
        return self.dx * self.dx

    def cell_centers(self) -> tuple[np.ndarray, np.ndarray]:
        """Interior cell-center coordinate arrays, each shape (mx, mx)."""
        c = (np.arange(self.mx) + 0.5) * self.dx
        x = self.x0 + c
        y = self.y0 + c
        return np.meshgrid(x, y, indexing="ij")

    def fill_from(self, fn) -> None:
        """Initialize the interior by evaluating ``fn(x, y) -> (4, mx, mx)``."""
        x, y = self.cell_centers()
        self.interior[...] = fn(x, y)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Patch(tree={self.tree}, quad={self.quad}, mx={self.mx}, "
            f"origin=({self.x0:.4g}, {self.y0:.4g}), dx={self.dx:.4g})"
        )


def patch_cell_centers(
    quad: Quadrant, mx: int, tree_origin: tuple[float, float] = (0.0, 0.0)
) -> tuple[np.ndarray, np.ndarray]:
    """Cell-center coordinates of a hypothetical patch on ``quad``.

    Convenience for initializing patches that have not been constructed yet
    (e.g. when deciding refinement from the initial condition).
    """
    h = quad.size / mx
    ox, oy = quad.origin
    c = (np.arange(mx) + 0.5) * h
    x = tree_origin[0] + ox + c
    y = tree_origin[1] + oy + c
    return np.meshgrid(x, y, indexing="ij")
