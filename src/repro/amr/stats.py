"""Work and memory counters collected during an AMR run.

These statistics are the interface between the simulator and the machine
model of :mod:`repro.machine`: the machine model converts them into
wall-clock time, node-hours, and MaxRSS — the responses the paper's AL
procedure learns.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class StepRecord:
    """Per-step accounting.

    Attributes
    ----------
    t : float
        Simulation time *after* the step.
    dt : float
        Step size taken.
    num_patches : int
        Patches advanced this step.
    cells_advanced : int
        Interior cells updated (patches * mx^2).
    bytes_allocated : int
        Total bytes of patch state currently held.
    regridded : bool
        Whether a regrid happened just before this step.
    """

    t: float
    dt: float
    num_patches: int
    cells_advanced: int
    bytes_allocated: int
    regridded: bool


@dataclass
class RunStats:
    """Aggregate counters for a complete AMR run."""

    steps: list[StepRecord] = field(default_factory=list)
    num_regrids: int = 0
    num_refinements: int = 0
    num_coarsenings: int = 0

    def record_step(self, rec: StepRecord) -> None:
        self.steps.append(rec)

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    @property
    def total_cells_advanced(self) -> int:
        """Total cell updates — the dominant work term of the run."""
        return sum(s.cells_advanced for s in self.steps)

    @property
    def peak_bytes(self) -> int:
        """Largest instantaneous allocation — drives the MaxRSS response."""
        return max((s.bytes_allocated for s in self.steps), default=0)

    @property
    def peak_patches(self) -> int:
        return max((s.num_patches for s in self.steps), default=0)

    @property
    def final_time(self) -> float:
        return self.steps[-1].t if self.steps else 0.0

    def summary(self) -> dict[str, float]:
        """Flat numeric summary for logging or feature extraction."""
        return {
            "num_steps": float(self.num_steps),
            "total_cells_advanced": float(self.total_cells_advanced),
            "peak_bytes": float(self.peak_bytes),
            "peak_patches": float(self.peak_patches),
            "num_regrids": float(self.num_regrids),
            "num_refinements": float(self.num_refinements),
            "num_coarsenings": float(self.num_coarsenings),
            "final_time": self.final_time,
        }
