"""Refinement tagging criteria.

The paper's simulations use user-defined refinement thresholds whose effect
on runtime is "difficult to predict" — exactly the behaviour AL must learn.
The indicator implemented here is ForestClaw's default style: the maximum
undivided gradient of density over the patch.  A patch is tagged for
refinement when the indicator exceeds ``refine_threshold`` and allowed to
coarsen when it falls below ``coarsen_threshold``.
"""

from __future__ import annotations

import numpy as np

from repro.solver.state import IRHO


def gradient_indicator(q: np.ndarray, field: int = IRHO) -> float:
    """Maximum undivided difference of ``field`` over a patch interior.

    "Undivided" (no 1/dx factor) makes the indicator scale-invariant across
    levels, so one threshold applies to the whole hierarchy.

    Parameters
    ----------
    q : ndarray, shape (4, mx, my)
        Patch interior (no ghosts).

    Returns
    -------
    float
    """
    w = q[field]
    gx = np.abs(np.diff(w, axis=0)).max(initial=0.0)
    gy = np.abs(np.diff(w, axis=1)).max(initial=0.0)
    return float(max(gx, gy))


def tag_for_refinement(
    q: np.ndarray,
    refine_threshold: float,
    coarsen_threshold: float | None = None,
    field: int = IRHO,
) -> int:
    """Classify a patch: +1 refine, 0 keep, -1 may coarsen.

    Parameters
    ----------
    refine_threshold : float
        Tag for refinement when the indicator exceeds this.
    coarsen_threshold : float, optional
        Allow coarsening below this; defaults to ``refine_threshold / 4``.
    """
    if coarsen_threshold is None:
        coarsen_threshold = refine_threshold / 4.0
    if coarsen_threshold > refine_threshold:
        raise ValueError("coarsen_threshold must not exceed refine_threshold")
    g = gradient_indicator(q, field)
    if g > refine_threshold:
        return 1
    if g < coarsen_threshold:
        return -1
    return 0


def tag_stack(
    interior: np.ndarray,
    refine_threshold: float,
    coarsen_threshold: float | None = None,
    field: int = IRHO,
) -> np.ndarray:
    """Vectorized :func:`tag_for_refinement` over a stacked hierarchy.

    Parameters
    ----------
    interior : ndarray, shape (P, 4, mx, my)
        All patch interiors of a :class:`repro.amr.PatchStack`.

    Returns
    -------
    ndarray of int, shape (P,)
        Per-patch tags, identical to calling :func:`tag_for_refinement` on
        each patch (differences and max reductions are exact, so the
        batched indicator is bit-identical to the scalar one).
    """
    if coarsen_threshold is None:
        coarsen_threshold = refine_threshold / 4.0
    if coarsen_threshold > refine_threshold:
        raise ValueError("coarsen_threshold must not exceed refine_threshold")
    w = interior[:, field]
    gx = np.abs(np.diff(w, axis=-2)).max(axis=(-2, -1), initial=0.0)
    gy = np.abs(np.diff(w, axis=-1)).max(axis=(-2, -1), initial=0.0)
    g = np.maximum(gx, gy)
    return np.where(g > refine_threshold, 1, np.where(g < coarsen_threshold, -1, 0))
