"""Parallel AMR: SFC-sharded PatchStack workers over shared memory.

:class:`ParallelAmrDriver` decomposes the hierarchy along the global
Morton curve (``repro.mesh.partition.partition_curve`` over the uniform
per-leaf weights of :func:`repro.amr.shard.shard_weights`) and advances it
with a persistent crew of shard workers
(:class:`repro.core.parallel.ShardWorkerPool`):

- **Shared-memory stack** — the ``(P, 4, n, n)`` :class:`PatchStack` array
  lives in a ``multiprocessing.shared_memory`` segment; workers map it and
  advance their contiguous row slice in place, so no patch state is ever
  pickled per step.  Rebuilds after a regrid ping-pong between two
  segments: the constructor copies every surviving patch out of the old
  segment into the new one, which would corrupt rows if old and new
  storage aliased.
- **Phased stepping** — each step runs exchange / sweep-x / exchange /
  sweep-y as pool-wide phases; the parent broadcasting a phase and
  collecting all replies is the barrier required by the ghost-coherence
  contract (exchange reads only interiors, writes only owned ghosts; see
  DESIGN.md).
- **Global reductions stay parent-side** — workers write per-patch wave
  speeds into a shared scratch segment and the parent folds them with the
  serial :meth:`PatchStack.dt_from_speeds`; regrid decisions, conserved
  totals and physicality checks run on the parent against the same shared
  array.  Every reduction therefore matches the serial batched backend
  bit for bit (pinned by ``tests/amr/test_parallel.py``).
- **Repartition on regrid** — any refine/coarsen/rebalance invalidates the
  stack; the next access rebuilds it, recuts the curve, recompiles the
  shard programs (:func:`repro.amr.shard.build_sharded_exchange`) and
  re-installs the workers.  :meth:`ShardedExchange.covers` guards against
  reusing programs across a changed assignment even when the leaf count
  did not change.
"""

from __future__ import annotations

import os
from collections import deque
from multiprocessing import shared_memory

import numpy as np

from repro import obs
from repro.amr.batch import PatchStack
from repro.amr.driver import AmrConfig, AmrDriver
from repro.amr.shard import ShardedExchange, build_sharded_exchange, shard_weights
from repro.amr.stats import StepRecord
from repro.core.parallel import ShardWorkerPool
from repro.mesh.balance import face_neighbor_leaves
from repro.mesh.partition import partition_curve
from repro.mesh.quadrant import Quadrant, quadrant_children
from repro.solver import kernels
from repro.solver.initial_conditions import ShockBubbleProblem


def _shard_bounds(assignment: np.ndarray, rank: int) -> tuple[int, int]:
    """Row slice [lo, hi) owned by ``rank`` (assignments are contiguous)."""
    lo = int(np.searchsorted(assignment, rank, side="left"))
    hi = int(np.searchsorted(assignment, rank, side="right"))
    return lo, hi


class ParallelAmrDriver(AmrDriver):
    """AmrDriver advanced by SFC-sharded workers over shared memory.

    Parameters
    ----------
    problem, config
        As for :class:`AmrDriver`; ``config.batched`` must be True (the
        stacked storage is what gets shared).
    num_workers : int, optional
        Shard count; defaults to ``REPRO_BENCH_WORKERS`` or 2.
    use_kernels : bool, optional
        Let workers use the compiled C kernels of
        :mod:`repro.solver.kernels` (default when a compiler is
        available); workers fall back to the numpy reference path when the
        build fails, with identical results either way.

    The worker pool spawns in ``__init__`` and persists across regrids;
    call :meth:`close` (or use the driver as a context manager) to release
    the processes and shared segments.
    """

    def __init__(
        self,
        problem: ShockBubbleProblem,
        config: AmrConfig,
        num_workers: int | None = None,
        use_kernels: bool = True,
    ) -> None:
        if not config.batched:
            raise ValueError("ParallelAmrDriver requires config.batched=True")
        if num_workers is None:
            num_workers = int(os.environ.get("REPRO_BENCH_WORKERS", "0")) or 2
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = int(num_workers)
        self.use_kernels = bool(use_kernels) and kernels.available()
        self._pool: ShardWorkerPool | None = None
        self._segments: list[shared_memory.SharedMemory] = []  # ping-pong pair
        self._scratch: shared_memory.SharedMemory | None = None
        self._retired: list[shared_memory.SharedMemory] = []
        self._active = 0  # which ping-pong segment the live stack uses
        self._capacity = 0  # patch slots per segment
        self._sx: np.ndarray | None = None
        self._sy: np.ndarray | None = None
        self._sharded: ShardedExchange | None = None
        self._speeds_fresh = False  # scratch sx/sy match the current state
        self._closed = False
        super().__init__(problem, config)
        self._pool = ShardWorkerPool(self.num_workers)
        self._ensure_installed()

    # ------------------------------------------------------- shared segments

    def _patch_bytes(self) -> int:
        n = self.config.mx + 2 * self.config.ng
        return 4 * n * n * 8

    def _ensure_capacity(self, num_patches: int) -> None:
        """Size the ping-pong segments for ``num_patches`` (with headroom)."""
        if num_patches <= self._capacity:
            return
        cap = num_patches + max(num_patches // 4, 8)
        # Old segments stay open (live patch views alias them) and are
        # released in close(); workers drop their mappings on reinstall.
        self._retired.extend(self._segments)
        if self._scratch is not None:
            self._retired.append(self._scratch)
        self._segments = [
            shared_memory.SharedMemory(create=True, size=cap * self._patch_bytes())
            for _ in range(2)
        ]
        self._scratch = shared_memory.SharedMemory(create=True, size=2 * cap * 8)
        self._sx = np.ndarray((cap,), dtype=np.float64, buffer=self._scratch.buf)
        self._sy = np.ndarray(
            (cap,), dtype=np.float64, buffer=self._scratch.buf, offset=cap * 8
        )
        self._capacity = cap

    # ------------------------------------------------------- stack & install

    def stack(self) -> PatchStack:
        """The shared-memory PatchStack, rebuilt when the hierarchy changed.

        Every rebuild flips to the other ping-pong segment: the stack
        constructor reads each patch's current view (rows of the *old*
        segment) while filling the new storage, and in-place rebuilds
        would overwrite rows that later copies still need to read.
        """
        if self._stack is not None and self._stack.covers(self.patches):
            return self._stack
        if self._closed:
            return super().stack()
        cfg = self.config
        with obs.timed("amr_plan", cat="amr"):
            self._ensure_capacity(len(self.patches))
            self._active ^= 1
            self._stack = PatchStack(
                self.forest,
                self.patches,
                cfg.mx,
                cfg.ng,
                cfg.bcs,
                buffer=self._segments[self._active].buf,
            )
        return self._stack

    def _ensure_installed(self) -> PatchStack:
        """Current stack with shard programs compiled and workers bound."""
        stack = self.stack()
        assignment = partition_curve(shard_weights(stack), self.num_workers)
        if self._sharded is None or not self._sharded.covers(stack, assignment):
            with obs.timed("amr_shard_install", cat="amr"):
                self._sharded = build_sharded_exchange(stack, assignment)
                self._install_pool(stack, assignment)
            self._speeds_fresh = False  # stack rows moved; scratch is stale
        return stack

    def _install_pool(self, stack: PatchStack, assignment: np.ndarray) -> None:
        cfg = self.config
        seg = self._segments[self._active]
        payloads = []
        for rank in range(self.num_workers):
            lo, hi = _shard_bounds(assignment, rank)
            payloads.append(
                {
                    "q_name": seg.name,
                    "q_shape": stack.q.shape,
                    "scratch_name": self._scratch.name,
                    "scratch_cap": self._capacity,
                    "program": self._sharded.programs[rank],
                    "lo": lo,
                    "hi": hi,
                    "dx": np.ascontiguousarray(stack.dx[lo:hi]),
                    "cfg": {
                        "ng": cfg.ng,
                        "riemann": cfg.riemann,
                        "limiter": cfg.limiter,
                        "gamma": cfg.gamma,
                    },
                    "use_kernels": self.use_kernels,
                }
            )
        self._pool.scatter("install", payloads)

    def _phase(self, cmd: str, payload=None) -> None:
        with obs.timed("amr_parallel_stall", cat="amr"):
            self._pool.broadcast(cmd, payload)

    # ----------------------------------------------------------- rebalancing

    def _rebalance(self, from_initial: bool = False) -> None:
        """Incremental (worklist) 2:1 rebalance seeded by the regrid's edits.

        The forest was balanced when the regrid began, so every new 2:1
        violation involves a leaf the regrid just created — the children of
        a refine or a coarsened parent (tracked as ``_balance_seeds`` by the
        base driver).  Checking those leaves in both directions (leaf too
        coarse for a finer neighbor / neighbor too coarse for the leaf) and
        re-enqueueing after every ripple refine reaches exactly the full
        fixpoint closure of the serial scan, because the minimal balanced
        refinement of a forest is unique (``tests/amr/test_parallel.py``
        pins forest equality against the serial driver across regrids).
        """
        if from_initial:
            # Initial hierarchy construction refines from re-evaluated
            # initial data; cost is one-off, keep the reference scan.
            super()._rebalance(from_initial=True)
            return
        queue: deque[tuple[int, Quadrant]] = deque(self._balance_seeds)
        self._balance_seeds.clear()
        while queue:
            key = queue.popleft()
            if key not in self.patches:  # already refined away
                continue
            tree, quad = key
            refined_self = False
            for face in range(4):
                if refined_self:
                    break
                for ntree, leaf in list(
                    face_neighbor_leaves(self.forest, tree, quad, face)
                ):
                    if leaf.level > quad.level + 1:
                        # quad itself is the deficit: a neighbor leaf is
                        # more than one level finer.
                        self._refine_patch(tree, quad, from_initial=False)
                        queue.extend(
                            (tree, c) for c in quadrant_children(quad)
                        )
                        refined_self = True
                        break
                    if (
                        leaf.level < quad.level - 1
                        and (ntree, leaf) in self.patches
                    ):
                        # The neighbor is the deficit relative to quad.
                        self._refine_patch(ntree, leaf, from_initial=False)
                        queue.extend(
                            (ntree, c) for c in quadrant_children(leaf)
                        )
                        # The one-level-deepened neighbor may still be too
                        # coarse; re-verify quad after the ripple.
                        queue.append(key)
        self._balance_seeds.clear()

    # ------------------------------------------------------------- stepping

    def compute_dt(self, dt_max: float = np.inf) -> float:
        """Global CFL step: shard-local speed maxima, serial final fold."""
        if self._closed:
            return super().compute_dt(dt_max)
        cfg = self.config
        with obs.timed("amr_dt", cat="amr"):
            stack = self._ensure_installed()
            if not self._speeds_fresh:
                self._phase("speeds")
                self._speeds_fresh = True
            P = len(stack)
            return stack.dt_from_speeds(
                self._sx[:P], self._sy[:P], cfg.cfl, float(dt_max)
            )

    def step(self, dt: float, regridded: bool = False) -> None:
        """Advance by ``dt``: four pool-wide phases, barriers in between."""
        if self._closed:
            super().step(dt, regridded)
            return
        cfg = self.config
        self._ensure_installed()
        with obs.timed("amr_exchange", cat="amr"):
            self._phase("exchange")
        with obs.timed("amr_sweep", cat="amr"):
            self._phase("sweep", (0, dt))
        with obs.timed("amr_exchange", cat="amr"):
            self._phase("exchange")
        with obs.timed("amr_sweep", cat="amr"):
            # The final sweep also writes next step's wave speeds into the
            # shared scratch, saving compute_dt a dedicated pool phase.
            self._phase("sweep", (1, dt, True))
        self._speeds_fresh = True
        self.t += dt
        cells = len(self.patches) * cfg.mx * cfg.mx
        self.stats.record_step(
            StepRecord(
                t=self.t,
                dt=dt,
                num_patches=len(self.patches),
                cells_advanced=cells,
                bytes_allocated=self.total_bytes(),
                regridded=regridded,
            )
        )

    # ------------------------------------------------------------- teardown

    @property
    def sharded(self) -> ShardedExchange | None:
        """The live shard programs (halo accounting for calibration)."""
        return self._sharded

    def drain_observability(self) -> None:
        """Merge worker-side spans/counters home, one lane per shard."""
        if self._pool is not None:
            self._pool.drain_observability()

    def close(self) -> None:
        """Stop the workers and release every shared segment; idempotent.

        The driver stays usable afterwards — the next :meth:`stack` access
        falls back to private (serial batched) storage.
        """
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            try:
                self._pool.drain_observability()
            except Exception:  # pragma: no cover - workers already gone
                pass
            self._pool.close()
            self._pool = None
        # Detach every live view from the segments before closing them:
        # SharedMemory.close() refuses while exported buffers exist.
        for p in self.patches.values():
            if p.q.base is not None:
                p.q = np.array(p.q, copy=True)
        self._stack = None
        self._sharded = None
        self._sx = self._sy = None
        for seg in (*self._segments, self._scratch, *self._retired):
            if seg is None:
                continue
            try:
                seg.close()
                seg.unlink()
            except Exception:  # pragma: no cover - double-release safety
                pass
        self._segments = []
        self._scratch = None
        self._retired = []

    def __enter__(self) -> "ParallelAmrDriver":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            if not self._closed:
                self.close()
        except Exception:
            pass
