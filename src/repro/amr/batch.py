"""Batched (shape-stacked) execution of an AMR hierarchy.

Every patch of a hierarchy shares one array shape ``(4, mx+2ng, mx+2ng)``,
so the whole hierarchy can live in a single stacked array of shape
``(P, 4, n, n)`` with each :class:`~repro.amr.patch.Patch` holding a
zero-copy view of its slot.  This module provides

- :class:`PatchStack` — builds the stacked storage, rebinds every patch's
  state to a view of it, and exposes whole-hierarchy vectorized reductions
  (``compute_dt``, ``check_physical``, ``conserved_totals``,
  ``total_bytes``); and
- :class:`ExchangePlan` — a precomputed ghost-exchange program: the
  per-face neighbor classification of
  :func:`repro.amr.ghost.exchange_ghosts` (physical boundary, same-level,
  coarse–fine, fine–coarse) is resolved once per regrid into index arrays,
  and executed each step as a handful of batched gather/scatter operations
  instead of ``4 * P`` Python-level neighbor lookups.

Invariants (see DESIGN.md, "Batched AMR patch kernels"):

- **View aliasing** — after ``PatchStack(...)`` construction,
  ``patch.q.base is stack.q`` for every patch; per-patch and stacked code
  paths read and write the same memory.
- **Plan invalidation** — any refine/coarsen (and hence any regrid or
  rebalance) changes the patch set, so the stack and its plan must be
  rebuilt; :meth:`PatchStack.covers` detects staleness structurally
  (a new patch owns its own array, so its ``q.base`` is not the stack).
- **Bit-identity** — every batched operation applies exactly the same
  elementwise IEEE operations (and identically-shaped reductions) as the
  per-patch reference path, so results are bit-for-bit equal; enforced by
  the property tests in ``tests/amr/test_batch.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.amr.ghost import CHILDREN_ON_FACE, OPPOSITE_FACE, tangential_half
from repro.amr.patch import NUM_FIELDS, Patch
from repro.amr.transfer import prolong_patch, restrict_area_average
from repro.mesh.forest import Forest
from repro.mesh.quadrant import Quadrant, quadrant_children, quadrant_parent
from repro.solver.boundary import BoundaryCondition
from repro.solver.state import IMX, IMY, primitive_from_conserved


def take_strips(
    stack: np.ndarray, idx: np.ndarray, face: int, width: int, mx: int, ng: int
) -> np.ndarray:
    """Batched :func:`repro.amr.ghost.take_strip` over stack rows ``idx``.

    Returns the interior cells adjacent to ``face`` of each selected patch,
    normalized to ``(K, 4, width, mx)``: axis 2 offset 0 touches the
    interface and increases *into* the source patch; axis 3 is the
    tangential coordinate.
    """
    lo, hi = ng, ng + mx
    if face == 0:
        return stack[idx, :, lo : lo + width, lo:hi]
    if face == 1:
        return stack[idx, :, hi - width : hi, lo:hi][:, :, ::-1, :]
    if face == 2:
        return np.swapaxes(stack[idx, :, lo:hi, lo : lo + width], 2, 3)
    if face == 3:
        return np.swapaxes(stack[idx, :, lo:hi, hi - width : hi][:, :, :, ::-1], 2, 3)
    raise ValueError(f"face must be 0..3, got {face}")


def write_ghosts(
    stack: np.ndarray,
    idx: np.ndarray,
    face: int,
    strips: np.ndarray,
    mx: int,
    ng: int,
) -> None:
    """Batched :func:`repro.amr.ghost.write_ghost` over stack rows ``idx``.

    Scatters normalized ``(K, 4, ng, mx)`` strips into the ``face`` ghost
    layers of each selected patch (axis 2 offset 0 touches the interface,
    increasing outward).
    """
    lo, hi = ng, ng + mx
    if strips.shape[1:] != (NUM_FIELDS, ng, mx):
        raise ValueError(f"strip shape {strips.shape} does not match ({ng}, {mx})")
    if face == 0:
        stack[idx, :, :ng, lo:hi] = strips[:, :, ::-1, :]
    elif face == 1:
        stack[idx, :, hi:, lo:hi] = strips
    elif face == 2:
        stack[idx, :, lo:hi, :ng] = np.swapaxes(strips, 2, 3)[:, :, :, ::-1]
    elif face == 3:
        stack[idx, :, lo:hi, hi:] = np.swapaxes(strips, 2, 3)
    else:
        raise ValueError(f"face must be 0..3, got {face}")


def stack_wave_speeds(
    interior: np.ndarray, gamma: float
) -> tuple[np.ndarray, np.ndarray]:
    """Per-patch interior maxima of ``|u|+c`` and ``|v|+c``.

    ``interior`` has shape ``(P, 4, mx, mx)``; shard workers call this on
    their row slice of the shared stack, which yields the same per-patch
    values as the whole-stack reduction (elementwise conversions plus
    per-patch maxima are independent across rows).
    """
    # One contiguous gather up front keeps the reduction passes L2-bound.
    prim = primitive_from_conserved(
        np.ascontiguousarray(np.moveaxis(interior, 1, 0)), gamma
    )
    c = np.sqrt(gamma * prim[3] / prim[0])
    sx = (np.abs(prim[1]) + c).max(axis=(-2, -1))
    sy = (np.abs(prim[2]) + c).max(axis=(-2, -1))
    return sx, sy


def _index_pairs(rows: list[tuple[int, ...]]) -> tuple[np.ndarray, ...]:
    """Transpose a list of equal-length index tuples into intp arrays."""
    return tuple(np.asarray(col, dtype=np.intp) for col in zip(*rows))


@dataclass(frozen=True, slots=True)
class ExchangePlan:
    """A compiled ghost-exchange program for one fixed hierarchy.

    Each group batches every (patch, face) pair in the same configuration:

    - ``physical``: ``(face, bc, dst)`` — domain-boundary faces per BC.
    - ``same``: ``(face, dst, src)`` — same-level neighbor copies.
    - ``coarse``: ``(face, half, dst, src)`` — fine patches interpolating
      from a coarser neighbor, grouped by which tangential half of the
      coarse face they touch.
    - ``fine``: ``(face, dst, src_low, src_high)`` — coarse patches
      restricting from their two finer neighbors (tangential order).

    All reads gather interior cells and all writes scatter ghost cells, so
    group execution order is irrelevant.
    """

    mx: int
    ng: int
    physical: tuple[tuple[int, BoundaryCondition, np.ndarray], ...]
    same: tuple[tuple[int, np.ndarray, np.ndarray], ...]
    coarse: tuple[tuple[int, int, np.ndarray, np.ndarray], ...]
    fine: tuple[tuple[int, np.ndarray, np.ndarray, np.ndarray], ...]

    @classmethod
    def build(
        cls,
        forest: Forest,
        patches: dict[tuple[int, Quadrant], Patch],
        index: dict[tuple[int, Quadrant], int],
        mx: int,
        ng: int,
        bcs: tuple,
    ) -> "ExchangePlan":
        """Classify every (patch, face) of the hierarchy exactly once.

        Mirrors the per-step dispatch of
        :func:`repro.amr.ghost.exchange_ghosts`; raises ``KeyError`` if the
        forest is not 2:1 balanced (missing fine neighbor) and
        ``ValueError`` for unsupported physical BCs, so a bad hierarchy
        fails at plan-build time rather than mid-step.
        """
        bc_objs = tuple(
            b if isinstance(b, BoundaryCondition) else BoundaryCondition(b)
            for b in bcs
        )
        unsupported = [b for b in bc_objs if b not in (
            BoundaryCondition.OUTFLOW, BoundaryCondition.REFLECT)]
        if unsupported:
            raise ValueError(
                f"unsupported physical BC {unsupported[0]} (periodic needs a torus brick)"
            )
        physical: dict[tuple[int, BoundaryCondition], list[int]] = {}
        same: dict[int, list[tuple[int, int]]] = {}
        coarse: dict[tuple[int, int], list[tuple[int, int]]] = {}
        fine: dict[int, list[tuple[int, int, int]]] = {}
        for (tree, quad), i in index.items():
            for face in range(4):
                hit = forest.face_neighbor(tree, quad, face)
                if hit is None:
                    physical.setdefault((face, bc_objs[face]), []).append(i)
                    continue
                ntree, nq = hit
                opp = OPPOSITE_FACE[face]
                j = index.get((ntree, nq))
                if j is not None:
                    same.setdefault(face, []).append((i, j))
                    continue
                if nq.level > 0:
                    k = index.get((ntree, quadrant_parent(nq)))
                    if k is not None:
                        half = tangential_half(quad, face)
                        coarse.setdefault((face, half), []).append((i, k))
                        continue
                children = quadrant_children(nq)
                ids = CHILDREN_ON_FACE[opp]
                try:
                    fine.setdefault(face, []).append(
                        (
                            i,
                            index[(ntree, children[ids[0]])],
                            index[(ntree, children[ids[1]])],
                        )
                    )
                except KeyError:
                    raise KeyError(
                        f"forest not 2:1 balanced: missing neighbor leaf of {nq}"
                    ) from None
        return cls(
            mx=mx,
            ng=ng,
            physical=tuple(
                (face, bc, np.asarray(rows, dtype=np.intp))
                for (face, bc), rows in physical.items()
            ),
            same=tuple(
                (face, *_index_pairs(rows)) for face, rows in same.items()
            ),
            coarse=tuple(
                (face, half, *_index_pairs(rows))
                for (face, half), rows in coarse.items()
            ),
            fine=tuple(
                (face, *_index_pairs(rows)) for face, rows in fine.items()
            ),
        )

    def execute(self, stack: np.ndarray) -> None:
        """Fill every ghost strip of ``stack`` per the compiled program."""
        mx, ng = self.mx, self.ng
        for face, bc, dst in self.physical:
            if bc == BoundaryCondition.OUTFLOW:
                edge = take_strips(stack, dst, face, 1, mx, ng)
                strips = np.repeat(edge, ng, axis=2)
            else:  # REFLECT (others rejected at build time)
                strips = take_strips(stack, dst, face, ng, mx, ng)
                strips[:, IMX if face < 2 else IMY] *= -1.0
            write_ghosts(stack, dst, face, strips, mx, ng)
        for face, dst, src in self.same:
            write_ghosts(
                stack,
                dst,
                face,
                take_strips(stack, src, OPPOSITE_FACE[face], ng, mx, ng),
                mx,
                ng,
            )
        hmx = mx // 2
        for face, half, dst, src in self.coarse:
            wide = take_strips(stack, src, OPPOSITE_FACE[face], ng // 2, mx, ng)
            block = np.ascontiguousarray(wide[:, :, :, half * hmx : (half + 1) * hmx])
            write_ghosts(stack, dst, face, prolong_patch(block), mx, ng)
        for face, dst, src_low, src_high in self.fine:
            opp = OPPOSITE_FACE[face]
            pieces = [
                restrict_area_average(
                    np.ascontiguousarray(take_strips(stack, s, opp, 2 * ng, mx, ng))
                )
                for s in (src_low, src_high)
            ]
            write_ghosts(
                stack, dst, face, np.concatenate(pieces, axis=3)[:, :, :, :mx], mx, ng
            )

    @property
    def num_groups(self) -> int:
        """Number of batched gather/scatter groups executed per exchange."""
        return (
            len(self.physical) + len(self.same) + len(self.coarse) + len(self.fine)
        )


class PatchStack:
    """Shape-stacked storage plus compiled exchange plan for one hierarchy.

    Construction copies every patch's state into one ``(P, 4, n, n)`` array
    and rebinds each ``patch.q`` to the corresponding zero-copy view, so
    subsequent per-patch and batched accesses alias the same memory.  The
    stack is only valid until the hierarchy changes; the driver drops it on
    refine/coarsen and :meth:`covers` double-checks structurally.
    """

    __slots__ = ("keys", "index", "q", "mx", "ng", "dx", "plan")

    def __init__(
        self,
        forest: Forest,
        patches: dict[tuple[int, Quadrant], Patch],
        mx: int,
        ng: int,
        bcs: tuple,
        buffer=None,
    ) -> None:
        if not patches:
            raise ValueError("cannot stack an empty hierarchy")
        self.keys = tuple(patches)
        self.index = {key: i for i, key in enumerate(self.keys)}
        n = mx + 2 * ng
        shape = (len(self.keys), NUM_FIELDS, n, n)
        if buffer is None:
            self.q = np.empty(shape, dtype=np.float64)
        else:
            # Shared-memory backing for the sharded workers: wrapping the
            # buffer with np.ndarray (not frombuffer().reshape()) makes this
            # stack object the ``.base`` of every patch view, so covers()'s
            # structural staleness check keeps working across rebuilds into
            # the same segment.
            self.q = np.ndarray(shape, dtype=np.float64, buffer=buffer)
        for i, key in enumerate(self.keys):
            patch = patches[key]
            if patch.q.shape != (NUM_FIELDS, n, n):
                raise ValueError("all patches of a stack must share one shape")
            self.q[i] = patch.q
            patch.q = self.q[i]
        self.mx = mx
        self.ng = ng
        self.dx = np.array([patches[key].dx for key in self.keys])
        self.plan = ExchangePlan.build(forest, patches, self.index, mx, ng, bcs)

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def interior(self) -> np.ndarray:
        """Writable view of all patch interiors, shape (P, 4, mx, mx)."""
        ng = self.ng
        return self.q[:, :, ng:-ng, ng:-ng]

    def covers(self, patches: dict[tuple[int, Quadrant], Patch]) -> bool:
        """True iff every patch of ``patches`` still aliases this stack."""
        if len(patches) != len(self.keys):
            return False
        return all(p.q.base is self.q for p in patches.values())

    # ------------------------------------------------------------ batched ops

    def exchange(self) -> None:
        """Fill all ghost layers via the precomputed exchange plan."""
        self.plan.execute(self.q)

    def wave_speeds(self, gamma: float) -> tuple[np.ndarray, np.ndarray]:
        """Per-patch interior maxima of ``|u|+c`` and ``|v|+c``."""
        return stack_wave_speeds(self.interior, gamma)

    def dt_from_speeds(
        self, sx: np.ndarray, sy: np.ndarray, cfl: float, dt_max: float
    ) -> float:
        """Fold per-patch wave speeds into the global CFL step.

        Split out of :meth:`compute_dt` so the parallel driver can feed in
        worker-computed speeds and still run the identical final reduction.
        """
        smax = np.maximum(sx, sy)
        moving = smax > 0
        dt = float(dt_max)
        if np.any(moving):
            dt = min(dt, float((cfl * self.dx[moving] / smax[moving]).min()))
        return dt

    def compute_dt(self, cfl: float, gamma: float, dt_max: float = np.inf) -> float:
        """Global CFL step over the stack; bit-identical to the patch loop."""
        sx, sy = self.wave_speeds(gamma)
        return self.dt_from_speeds(sx, sy, cfl, float(dt_max))

    def check_physical(self, gamma: float) -> bool:
        """True iff every interior cell of every patch is physical."""
        q = np.moveaxis(self.interior, 1, 0)
        if not np.all(np.isfinite(q)):
            return False
        rho = q[0]
        if np.any(rho <= 0.0):
            return False
        p = (gamma - 1.0) * (q[3] - 0.5 * (q[1] ** 2 + q[2] ** 2) / rho)
        return bool(np.all(p > 0.0))

    def conserved_totals(self) -> tuple[float, float]:
        """(total mass, total energy) integrated over the hierarchy.

        The O(P * mx^2) per-cell sums are vectorized; the final O(P) scalar
        accumulation runs in stack (= patch dict) order so the result is
        bit-identical to the per-patch reference loop.
        """
        area = self.dx * self.dx
        mass_per = self.interior[:, 0].sum(axis=(-2, -1))
        energy_per = self.interior[:, 3].sum(axis=(-2, -1))
        mass = 0.0
        energy = 0.0
        for i in range(len(self.keys)):
            mass += float(mass_per[i]) * area[i]
            energy += float(energy_per[i]) * area[i]
        return float(mass), float(energy)

    def total_bytes(self) -> int:
        """Bytes held by patch state (ghosts included), as the patch loop sums."""
        return int(self.q[0].nbytes) * len(self.keys)
