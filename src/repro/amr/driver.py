"""The AMR simulation driver: regrid / exchange / advance loop.

Mirrors ForestClaw's non-subcycled mode: a single global CFL time step
advances every patch, ghost layers are exchanged between dimensional
sweeps, and the hierarchy is regridded every ``regrid_interval`` steps.
Solution transfer on refinement/coarsening uses the conservative operators
of :mod:`repro.amr.transfer`; the 2:1 constraint is re-established after
every regrid by ripple refinement.

Two stepping backends are provided (``AmrConfig.batched``):

- **batched** (default): the hierarchy's state lives in one shape-stacked
  ``(P, 4, n, n)`` array (:class:`repro.amr.batch.PatchStack`), sweeps run
  once over the whole stack, ghost exchange executes a plan precomputed at
  regrid time, and the CFL / physicality / conservation reductions are
  vectorized.
- **per-patch**: the original patch-by-patch loop, kept as the bit-identical
  reference implementation.

Both backends produce bit-for-bit identical states and statistics; the
phases of either path are timed through :mod:`repro.obs` (``amr_plan``,
``amr_exchange``, ``amr_sweep``, ``amr_dt``, ``amr_regrid``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro import obs
from repro.amr.batch import PatchStack
from repro.amr.ghost import exchange_ghosts
from repro.amr.patch import Patch
from repro.amr.stats import RunStats, StepRecord
from repro.amr.tagging import tag_for_refinement, tag_stack
from repro.amr.transfer import prolong_child, restrict_patch
from repro.mesh.balance import balance_deficits
from repro.mesh.forest import BrickTopology, Forest
from repro.mesh.quadrant import Quadrant, quadrant_children, quadrant_parent
from repro.solver.fv import sweep_x, sweep_y
from repro.solver.initial_conditions import ShockBubbleProblem
from repro.solver.state import GAMMA_AIR, check_physical, max_wave_speed


@dataclass(frozen=True, slots=True)
class AmrConfig:
    """Numerical configuration of an AMR run.

    The three grid-shape fields correspond to features of the paper's input
    space: ``mx`` is the box size and ``max_level`` the maximum refinement
    level (Table I); ``min_level`` sets the coarsest allowed mesh.
    ``batched`` selects the shape-stacked stepping backend (bit-identical to
    the per-patch reference, just faster).
    """

    mx: int = 8
    min_level: int = 1
    max_level: int = 3
    ng: int = 2
    cfl: float = 0.4
    riemann: str = "hllc"
    limiter: str = "mc"
    refine_threshold: float = 0.05
    coarsen_threshold: float | None = None
    regrid_interval: int = 4
    gamma: float = GAMMA_AIR
    bcs: tuple = ("outflow", "outflow", "reflect", "reflect")
    batched: bool = True

    def __post_init__(self) -> None:
        if self.min_level < 0 or self.max_level < self.min_level:
            raise ValueError("need 0 <= min_level <= max_level")
        if self.mx % 2:
            raise ValueError("mx must be even (2:1 transfer operators)")
        if self.ng % 2:
            raise ValueError("ng must be even (coarse-fine ghost exchange)")
        if self.regrid_interval < 1:
            raise ValueError("regrid_interval must be >= 1")


class AmrDriver:
    """Adaptive simulation of a :class:`ShockBubbleProblem` on a brick.

    Parameters
    ----------
    problem : ShockBubbleProblem
        Physical setup; its ``width x height`` must be integral so it maps
        onto a brick of unit-square trees.
    config : AmrConfig
    """

    def __init__(self, problem: ShockBubbleProblem, config: AmrConfig) -> None:
        w, h = problem.width, problem.height
        ni, nj = int(round(w)), int(round(h))
        if abs(w - ni) > 1e-12 or abs(h - nj) > 1e-12:
            raise ValueError("domain extents must be integers (brick of unit trees)")
        self.problem = problem
        self.config = config
        self.forest = Forest(BrickTopology(ni, nj), initial_level=config.min_level)
        self.patches: dict[tuple[int, Quadrant], Patch] = {}
        self.t = 0.0
        self.stats = RunStats()
        self._stack: PatchStack | None = None
        # Leaves created since the last regrid began (children of refines,
        # coarsened parents).  Only such leaves can participate in a new 2:1
        # violation of a previously balanced forest, so they seed the
        # incremental rebalance of the parallel driver; the serial full-scan
        # rebalance ignores them.
        self._balance_seeds: list[tuple[int, Quadrant]] = []
        self._build_initial_hierarchy()

    # ------------------------------------------------------------------ setup

    def _tree_origin(self, tree: int) -> tuple[float, float]:
        ci, cj = self.forest.topology.tree_coords(tree)
        return float(ci), float(cj)

    def _new_patch(self, tree: int, quad: Quadrant) -> Patch:
        return Patch(tree, quad, self.config.mx, self.config.ng, self._tree_origin(tree))

    def _fill_initial(self, patch: Patch) -> None:
        patch.fill_from(self.problem.evaluate)

    def _build_initial_hierarchy(self) -> None:
        """Iteratively refine from the initial condition, re-evaluating it.

        Standard AMR start-up: build the min-level mesh, then repeat
        (tag -> refine -> balance -> re-fill) until max_level can be
        reached, so the initial shock and bubble interface are resolved at
        the finest level from step one.
        """
        cfg = self.config
        self.patches = {
            (t, q): self._new_patch(t, q) for t, q in self.forest.iter_leaves()
        }
        self._invalidate_stack()
        for p in self.patches.values():
            self._fill_initial(p)
        for _ in range(cfg.max_level - cfg.min_level):
            tagged = [
                key
                for key, p in self.patches.items()
                if p.level < cfg.max_level
                and tag_for_refinement(
                    p.interior, cfg.refine_threshold, cfg.coarsen_threshold
                )
                > 0
            ]
            if not tagged:
                break
            for tree, quad in tagged:
                self._refine_patch(tree, quad, from_initial=True)
            self._rebalance(from_initial=True)
        self._normalize_leaf_order()

    def _normalize_leaf_order(self) -> None:
        """Re-key ``self.patches`` into global (tree-major Morton) order.

        p4est stores leaves along the space-filling curve at all times; we
        restore that invariant after every burst of refine/coarsen calls
        (which append new patches at the dict tail).  Keeping dict order ==
        curve order makes the stacked storage's row order a true Morton
        sequence, so ``repro.mesh.partition.partition_curve`` segments of
        stack rows are contiguous curve segments, and every order-sensitive
        scalar accumulation (``conserved_totals``) runs in one canonical
        order for the per-patch, batched, and sharded backends alike.
        """
        self.patches = {
            key: self.patches[key] for key in self.forest.iter_leaves()
        }

    # --------------------------------------------------------- stacked storage

    def _invalidate_stack(self) -> None:
        """Drop the stacked storage and exchange plan (hierarchy changed)."""
        self._stack = None

    def stack(self) -> PatchStack:
        """The current :class:`PatchStack`, (re)built if the hierarchy changed."""
        if self._stack is None or not self._stack.covers(self.patches):
            cfg = self.config
            with obs.timed("amr_plan", cat="amr"):
                self._stack = PatchStack(
                    self.forest, self.patches, cfg.mx, cfg.ng, cfg.bcs
                )
        return self._stack

    # ------------------------------------------------------------- regridding

    def _refine_patch(self, tree: int, quad: Quadrant, from_initial: bool) -> None:
        parent = self.patches.pop((tree, quad))
        self.forest.trees[tree].refine(quad)
        for child in quadrant_children(quad):
            cp = self._new_patch(tree, child)
            if from_initial:
                self._fill_initial(cp)
            else:
                cp.interior[...] = prolong_child(parent.interior, child.child_id)
            self.patches[(tree, child)] = cp
            self._balance_seeds.append((tree, child))
        self.stats.num_refinements += 1
        self._invalidate_stack()

    def _coarsen_family(self, tree: int, quad: Quadrant) -> None:
        """Coarsen the complete family containing leaf ``quad``."""
        parent_quad = quadrant_parent(quad)
        children = quadrant_children(parent_quad)
        self.forest.trees[tree].coarsen(children[0])
        parent = self._new_patch(tree, parent_quad)
        mx = self.config.mx
        h = mx // 2
        offsets = {0: (0, 0), 1: (h, 0), 2: (0, h), 3: (h, h)}
        for child in children:
            cp = self.patches.pop((tree, child))
            ox, oy = offsets[child.child_id]
            parent.interior[:, ox : ox + h, oy : oy + h] = restrict_patch(cp.interior)
        self.patches[(tree, parent_quad)] = parent
        self._balance_seeds.append((tree, parent_quad))
        self.stats.num_coarsenings += 1
        self._invalidate_stack()

    def _rebalance(self, from_initial: bool = False) -> None:
        """Ripple-refine until 2:1 balanced, transferring the solution."""
        while True:
            deficits = balance_deficits(self.forest)
            if not deficits:
                return
            for tree, quad, _ in deficits:
                if (tree, quad) in self.patches:
                    self._refine_patch(tree, quad, from_initial=from_initial)

    def regrid(self) -> None:
        """One full regrid pass: tag, refine, coarsen, rebalance."""
        cfg = self.config
        self._balance_seeds.clear()
        with obs.timed("amr_regrid", cat="amr"):
            if cfg.batched:
                # One vectorized pass over the stacked interiors.  stack.keys
                # preserves the patches-dict iteration order, and the batched
                # indicator is bit-identical to the scalar one, so the regrid
                # decisions below are unchanged.
                stack = self.stack()
                tags = dict(
                    zip(
                        stack.keys,
                        tag_stack(
                            stack.interior, cfg.refine_threshold, cfg.coarsen_threshold
                        ),
                    )
                )
            else:
                tags = {
                    key: tag_for_refinement(
                        p.interior, cfg.refine_threshold, cfg.coarsen_threshold
                    )
                    for key, p in self.patches.items()
                }
            for (tree, quad), tag in tags.items():
                if tag > 0 and quad.level < cfg.max_level and (tree, quad) in self.patches:
                    self._refine_patch(tree, quad, from_initial=False)

            # Coarsen complete families whose members all voted -1 and still exist.
            by_parent: dict[tuple[int, Quadrant], int] = {}
            for (tree, quad), tag in tags.items():
                if quad.level <= cfg.min_level or (tree, quad) not in self.patches:
                    continue
                if tag < 0:
                    pk = (tree, quadrant_parent(quad))
                    by_parent[pk] = by_parent.get(pk, 0) + 1
            for (tree, parent_quad), votes in by_parent.items():
                children = quadrant_children(parent_quad)
                if votes == 4 and all((tree, c) in self.patches for c in children):
                    self._coarsen_family(tree, children[0])

            self._rebalance()
            self._normalize_leaf_order()
        self.stats.num_regrids += 1

    # ---------------------------------------------------------------- stepping

    def _exchange(self) -> None:
        exchange_ghosts(self.forest, self.patches, self.config.bcs)

    def compute_dt(self, dt_max: float = np.inf) -> float:
        """Global CFL step: finest-level constraint dominates."""
        cfg = self.config
        with obs.timed("amr_dt", cat="amr"):
            if cfg.batched:
                return self.stack().compute_dt(cfg.cfl, cfg.gamma, dt_max)
            dt = float(dt_max)
            for p in self.patches.values():
                smax = max_wave_speed(p.interior, cfg.gamma)
                if smax > 0:
                    dt = min(dt, cfg.cfl * p.dx / smax)
            return dt

    def total_bytes(self) -> int:
        if self.config.batched:
            return self.stack().total_bytes()
        return sum(p.nbytes for p in self.patches.values())

    def step(self, dt: float, regridded: bool = False) -> None:
        """Advance every patch by ``dt`` with Godunov-split sweeps."""
        cfg = self.config
        kw = dict(riemann=cfg.riemann, limiter=cfg.limiter, gamma=cfg.gamma)
        if cfg.batched:
            stack = self.stack()
            dt_dx = dt / stack.dx
            with obs.timed("amr_exchange", cat="amr"):
                stack.exchange()
            with obs.timed("amr_sweep", cat="amr"):
                sweep_x(stack.q, dt_dx, cfg.ng, **kw)
            with obs.timed("amr_exchange", cat="amr"):
                stack.exchange()
            with obs.timed("amr_sweep", cat="amr"):
                sweep_y(stack.q, dt_dx, cfg.ng, **kw)
        else:
            with obs.timed("amr_exchange", cat="amr"):
                self._exchange()
            with obs.timed("amr_sweep", cat="amr"):
                for p in self.patches.values():
                    sweep_x(p.q, dt / p.dx, cfg.ng, **kw)
            with obs.timed("amr_exchange", cat="amr"):
                self._exchange()
            with obs.timed("amr_sweep", cat="amr"):
                for p in self.patches.values():
                    sweep_y(p.q, dt / p.dx, cfg.ng, **kw)
        self.t += dt
        cells = len(self.patches) * cfg.mx * cfg.mx
        self.stats.record_step(
            StepRecord(
                t=self.t,
                dt=dt,
                num_patches=len(self.patches),
                cells_advanced=cells,
                bytes_allocated=self.total_bytes(),
                regridded=regridded,
            )
        )

    def _all_physical(self) -> bool:
        cfg = self.config
        if cfg.batched:
            return self.stack().check_physical(cfg.gamma)
        return all(check_physical(p.interior, cfg.gamma) for p in self.patches.values())

    def run(
        self,
        t_end: float,
        max_steps: int = 10_000,
        callback: Callable[["AmrDriver"], None] | None = None,
    ) -> RunStats:
        """Advance to ``t_end``, regridding every ``regrid_interval`` steps.

        Raises
        ------
        RuntimeError
            If the solution becomes unphysical (NaN / negative pressure) or
            ``max_steps`` is exhausted before ``t_end``.
        """
        cfg = self.config
        steps_since_regrid = 0
        with obs.span(
            "amr_run", cat="amr", t_end=t_end, batched=cfg.batched
        ) as run_span:
            for k in range(max_steps):
                if self.t >= t_end - 1e-14:
                    run_span.annotate(steps=k, num_patches=len(self.patches))
                    return self.stats
                with obs.span("amr_step", cat="amr", step=k):
                    regridded = False
                    if steps_since_regrid >= cfg.regrid_interval:
                        self.regrid()
                        steps_since_regrid = 0
                        regridded = True
                    dt = self.compute_dt(dt_max=t_end - self.t)
                    if not np.isfinite(dt) or dt <= 0:
                        raise RuntimeError(f"invalid time step dt={dt} at t={self.t}")
                    self.step(dt, regridded=regridded)
                    steps_since_regrid += 1
                    if callback is not None:
                        callback(self)
                    if not self._all_physical():
                        raise RuntimeError(f"unphysical state at t={self.t}")
        raise RuntimeError(f"max_steps={max_steps} exhausted at t={self.t} < {t_end}")

    # ---------------------------------------------------------------- output

    def sample_uniform(self, nx: int, ny: int, field: int = 0) -> np.ndarray:
        """Sample one field onto a uniform grid (nearest-cell, for plots).

        Vectorized over patches: the leaves partition the domain into exact
        dyadic boxes, so each patch covers a contiguous run of the sorted
        sample coordinates (found by ``searchsorted``, matching
        :meth:`repro.mesh.forest.Forest.locate`'s half-open convention) and
        fills its block of the output with one fancy-indexed gather.
        """
        w, h = self.forest.domain_extent()
        out = np.empty((nx, ny), dtype=np.float64)
        xs = (np.arange(nx) + 0.5) * (w / nx)
        ys = (np.arange(ny) + 0.5) * (h / ny)
        for p in self.patches.values():
            ext = p.quad.size
            i0, i1 = np.searchsorted(xs, (p.x0, p.x0 + ext))
            j0, j1 = np.searchsorted(ys, (p.y0, p.y0 + ext))
            if i0 == i1 or j0 == j1:
                continue
            ci = np.minimum(
                ((xs[i0:i1] - p.x0) / p.dx).astype(np.int64), p.mx - 1
            )
            cj = np.minimum(
                ((ys[j0:j1] - p.y0) / p.dx).astype(np.int64), p.mx - 1
            )
            out[i0:i1, j0:j1] = p.interior[field][np.ix_(ci, cj)]
        return out

    def conserved_totals(self) -> tuple[float, float]:
        """(total mass, total energy) integrated over the hierarchy."""
        if self.config.batched:
            return self.stack().conserved_totals()
        mass = 0.0
        energy = 0.0
        for p in self.patches.values():
            a = p.cell_area
            mass += float(p.interior[0].sum()) * a
            energy += float(p.interior[3].sum()) * a
        return mass, energy
