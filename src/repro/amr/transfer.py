"""Conservative inter-level solution transfer.

Two primitives connect refinement levels:

- **Restriction** (fine -> coarse): area-weighted averaging of each 2x2
  block of fine cells into one coarse cell.  Exactly conservative.
- **Prolongation** (coarse -> fine): piecewise-linear reconstruction with
  minmod-limited slopes, evaluated at the four fine sub-cell centers.
  Conservative because the reconstruction is centered: the four sub-cell
  values average back to the coarse value.
"""

from __future__ import annotations

import numpy as np

from repro.solver.limiters import minmod


def restrict_area_average(fine: np.ndarray) -> np.ndarray:
    """Average 2x2 blocks of the trailing two axes (shape must be even)."""
    *lead, nx, ny = fine.shape
    if nx % 2 or ny % 2:
        raise ValueError("restriction requires even dimensions")
    view = fine.reshape(*lead, nx // 2, 2, ny // 2, 2)
    return view.mean(axis=(-3, -1))


def restrict_patch(fine_interior: np.ndarray) -> np.ndarray:
    """Restrict a fine patch interior ``(4, mx, mx)`` to ``(4, mx/2, mx/2)``.

    The result covers the quadrant of the coarse parent that the fine child
    occupies; the caller places it into the parent array.
    """
    return restrict_area_average(fine_interior)


def _limited_slopes_2d(coarse: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Minmod slopes of ``coarse`` (..., nx, ny) in x and y, zero at borders."""
    sx = np.zeros_like(coarse)
    sy = np.zeros_like(coarse)
    ax = coarse[..., 1:-1, :] - coarse[..., :-2, :]
    bx = coarse[..., 2:, :] - coarse[..., 1:-1, :]
    sx[..., 1:-1, :] = minmod(ax, bx)
    ay = coarse[..., :, 1:-1] - coarse[..., :, :-2]
    by = coarse[..., :, 2:] - coarse[..., :, 1:-1]
    sy[..., :, 1:-1] = minmod(ay, by)
    return sx, sy


def prolong_patch(coarse: np.ndarray) -> np.ndarray:
    """Prolong ``(..., nx, ny)`` to ``(..., 2*nx, 2*ny)`` by limited linear interp.

    Each coarse cell value ``c`` with slopes ``(sx, sy)`` produces the four
    sub-cell values ``c ± sx/4 ± sy/4``, whose mean is exactly ``c`` — the
    transfer conserves every field regardless of the limiter.  Leading axes
    (fields, and optionally a patch batch) pass through unchanged.
    """
    *lead, nx, ny = coarse.shape
    sx, sy = _limited_slopes_2d(coarse)
    fine = np.empty((*lead, 2 * nx, 2 * ny), dtype=coarse.dtype)
    for di, fx in ((0, -0.25), (1, 0.25)):
        for dj, fy in ((0, -0.25), (1, 0.25)):
            fine[..., di::2, dj::2] = coarse + fx * sx + fy * sy
    return fine


def prolong_child(coarse_interior: np.ndarray, child_id: int) -> np.ndarray:
    """Prolong the sub-quadrant of a coarse patch covered by child ``child_id``.

    ``child_id`` follows the Morton convention of
    :attr:`repro.mesh.quadrant.Quadrant.child_id`: bit 0 is x, bit 1 is y.
    The returned array has the same shape as ``coarse_interior``.
    """
    *lead, mx, my = coarse_interior.shape
    if mx % 2 or my % 2:
        raise ValueError("prolongation to a child requires even patch size")
    cx = (child_id & 1) * (mx // 2)
    cy = ((child_id >> 1) & 1) * (my // 2)
    sub = coarse_interior[..., cx : cx + mx // 2, cy : cy + my // 2]
    return prolong_patch(sub)
