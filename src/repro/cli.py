"""Command-line interface: ``python -m repro.cli <command>`` (or ``repro``).

Three subcommands cover the paper's workflow end to end:

- ``dataset`` — generate the 600-job campaign, print Table I, optionally
  save it as CSV or NPZ; ``--fault-*`` flags route every job through the
  fault-injection layer and the resilient (retrying) executor.
- ``run`` — one Active-Learning trajectory on a dataset (generated or
  loaded), with any of the five policies and the paper's knobs; the
  ``--acq-*`` flags make acquisitions fail and ``--on-failure`` picks the
  loop's response.
- ``simulate`` — run one real AMR shock-bubble simulation and report the
  measured work plus the machine model's cost/memory predictions.
- ``trace`` — exercise every instrumented subsystem once with span
  tracing enabled and export a Perfetto-loadable Chrome trace (plus an
  optional metrics JSON): a real AMR job, a fault-retrying resilient
  execution, and a short Active-Learning run with acquisition faults.
- ``serve`` — run the campaign service over a checkpoint store until
  every campaign finishes (or ``--max-slices`` commits): resumable,
  multi-worker, with optional ``--chaos-*`` fault injection.
- ``campaign`` — manage that store: ``submit``, ``list``, ``pause``,
  ``resume``.

``run`` and ``serve`` also accept ``--trace-out``/``--metrics-out`` to
export observability state.
"""

from __future__ import annotations

import argparse
import sys
import warnings

import numpy as np

from repro import obs
from repro.core import ActiveLearner, ALConfig, POLICIES, RGMA, random_partition
from repro.data import load_csv, load_npz, render_table1, run_campaign, save_csv, save_npz
from repro.faults import AcquisitionFaultModel, FaultConfig, RetryPolicy
from repro.registry import policy_registry, surrogate_registry


def _add_dataset_cmd(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("dataset", help="generate the Table I campaign dataset")
    p.add_argument("--seed", type=int, default=42, help="campaign RNG seed")
    p.add_argument("--out", type=str, default=None, help="save to .csv or .npz")
    p.add_argument(
        "--no-compare", action="store_true", help="omit the paper's reference column"
    )
    g = p.add_argument_group("fault injection (all off by default)")
    g.add_argument("--fault-crash-prob", type=float, default=0.0,
                   help="per-attempt crash probability")
    g.add_argument("--fault-timeout", type=float, default=None,
                   help="queue wall-clock limit in seconds")
    g.add_argument("--fault-straggler-prob", type=float, default=0.0,
                   help="slow-node probability")
    g.add_argument("--fault-straggler-slowdown", type=float, default=4.0,
                   help="wall-clock multiplier for stragglers")
    g.add_argument("--fault-oom-limit", type=float, default=None,
                   help="per-process MaxRSS (MB) at which the OOM killer fires")
    g.add_argument("--fault-rss-lost-prob", type=float, default=0.0,
                   help="MaxRSS=0 bug probability for eligible (short) jobs")
    g.add_argument("--fault-rss-threshold", type=float, default=139.0,
                   help="wall-time eligibility threshold for the MaxRSS=0 bug")
    g.add_argument("--max-retries", type=int, default=3,
                   help="resubmissions allowed per job before giving up")
    p.set_defaults(func=cmd_dataset)


def _fault_config(args: argparse.Namespace) -> FaultConfig | None:
    """A FaultConfig from the dataset command's flags; None when all off."""
    cfg = FaultConfig(
        crash_probability=args.fault_crash_prob,
        oom_memory_limit_MB=args.fault_oom_limit,
        timeout_wall_seconds=args.fault_timeout,
        straggler_probability=args.fault_straggler_prob,
        straggler_slowdown=args.fault_straggler_slowdown,
        rss_lost_wall_threshold_s=args.fault_rss_threshold,
        rss_lost_probability=args.fault_rss_lost_prob,
    )
    return cfg if cfg.enabled else None


def cmd_dataset(args: argparse.Namespace) -> int:
    faults = _fault_config(args)
    result = run_campaign(
        np.random.default_rng(args.seed),
        faults=faults,
        retry=RetryPolicy(max_retries=args.max_retries) if faults else None,
    )
    print(render_table1(result.dataset, compare_paper=not args.no_compare))
    print(
        f"\nexcluded combinations: {result.excluded_combinations}  "
        f"simulated core-hours: {result.total_core_hours:.0f}"
    )
    if faults is not None:
        by_kind: dict[str, int] = {}
        for e in result.fault_events:
            by_kind[e.kind.value] = by_kind.get(e.kind.value, 0) + 1
        kinds = "  ".join(f"{k}={n}" for k, n in sorted(by_kind.items())) or "none"
        print(
            f"fault events: {len(result.fault_events)} ({kinds})\n"
            f"usable rows: {result.num_usable}/{len(result.records)}  "
            f"failed: {result.failed_jobs}  censored: {result.censored_jobs}  "
            f"wasted core-hours: {result.wasted_core_hours:.0f}"
        )
    if args.out:
        if args.out.endswith(".csv"):
            save_csv(result.dataset, args.out)
        elif args.out.endswith(".npz"):
            save_npz(result.dataset, args.out)
        else:
            print("error: --out must end in .csv or .npz", file=sys.stderr)
            return 2
        print(f"saved {len(result.dataset)} jobs to {args.out}")
    return 0


# --------------------------------------------- registry-driven selection


def _coerce_option(value: str):
    """``key=value`` suffix values: bool > int > float > str."""
    low = value.lower()
    if low in ("true", "false"):
        return low == "true"
    for cast in (int, float):
        try:
            return cast(value)
        except ValueError:
            pass
    return value


def _parse_selector(spec: str) -> tuple[str, dict]:
    """``name[,key=value,...]`` -> ``(name, options)``.

    The one spelling for selecting *and* parameterizing a registered
    policy or surrogate: ``--surrogate sparse,n_inducing=32`` or
    ``--policy portfolio,base=8``.
    """
    name, _, rest = spec.partition(",")
    opts: dict = {}
    for item in rest.split(",") if rest else ():
        if not item:
            continue
        key, eq, value = item.partition("=")
        if not eq or not key.strip():
            raise argparse.ArgumentTypeError(
                f"bad option {item!r} in {spec!r}: expected key=value"
            )
        opts[key.strip()] = _coerce_option(value.strip())
    return name.strip(), opts


def _deprecated(args: argparse.Namespace, flag: str, attr: str, replacement: str):
    """Fold a legacy per-option flag into the selector options, warning once."""
    value = getattr(args, attr, None)
    if value is not None:
        warnings.warn(
            f"{flag} is deprecated; use {replacement}",
            DeprecationWarning,
            stacklevel=3,
        )
    return value


def _registry_selector(registry, kind: str):
    """Parse-time name validation for ``NAME[,key=value,...]`` selectors.

    Unknown names fail inside argparse (exit 2, usage printed) listing
    the registered keys, exactly like a ``choices=`` constraint would —
    but without forbidding the option suffix.
    """

    def parse(value: str) -> str:
        name, _ = _parse_selector(value)  # raises on malformed key=value
        if name not in registry:
            raise argparse.ArgumentTypeError(
                f"unknown {kind} {name!r} (choose from: "
                f"{', '.join(registry.names())})"
            )
        return value

    return parse


def _add_selection_args(p: argparse.ArgumentParser, default_policy=None) -> None:
    g = p.add_argument_group("selection (registry-resolved)")
    g.add_argument(
        "--policy",
        type=_registry_selector(policy_registry, "policy"),
        default=default_policy,
        metavar="NAME[,key=value,...]",
        help="registered acquisition policy, with option suffixes "
        "(see --list-policies)",
    )
    g.add_argument(
        "--surrogate",
        type=_registry_selector(surrogate_registry, "surrogate"),
        default="dense",
        metavar="NAME[,key=value,...]",
        help="registered GP backend, with option suffixes "
        "(see --list-surrogates)",
    )
    g.add_argument("--list-policies", action="store_true",
                   help="print registered policy names and exit")
    g.add_argument("--list-surrogates", action="store_true",
                   help="print registered surrogate names and exit")
    d = p.add_argument_group("deprecated selection spellings")
    d.add_argument("--policy-file", type=str, default=None,
                   help="(deprecated) use --policy amortized,policy_file=PATH")
    d.add_argument("--policy-epsilon", type=float, default=None,
                   help="(deprecated) use --policy amortized,epsilon=EPS")
    d.add_argument("--n-inducing", type=int, default=None,
                   help="(deprecated) use --surrogate sparse,n_inducing=N")
    d.add_argument("--exact-lml-max-n", type=int, default=None,
                   help="(deprecated) use --surrogate iterative,exact_lml_max_n=N")


def _add_fidelity_args(p: argparse.ArgumentParser) -> None:
    g = p.add_argument_group("batch multi-fidelity portfolios")
    g.add_argument("--fidelities", type=int, default=1,
                   help="fidelity rungs per design point (1 = paper setting)")
    g.add_argument("--batch-size", type=int, default=1,
                   help="(point, fidelity) pairs acquired per round")
    g.add_argument("--round-budget", type=float, default=None,
                   help="predicted node-hours each round's batch may commit")
    g.add_argument("--fidelity-seed", type=int, default=0,
                   help="seed for deterministic low-fidelity pricing")


def _maybe_list(args: argparse.Namespace) -> bool:
    if getattr(args, "list_policies", False):
        for name in policy_registry.names():
            print(name)
        return True
    if getattr(args, "list_surrogates", False):
        for name in surrogate_registry.names():
            print(name)
        return True
    return False


def _selection_config(args: argparse.Namespace, default_policy: str) -> dict:
    """``ALConfig`` fields from the consolidated selection flags.

    Returns the ``policy``/``policy_options``/``surrogate``/
    ``surrogate_options`` (plus fidelity-axis) kwargs; legacy per-option
    flags fold into the option dicts with a ``DeprecationWarning``.
    Explicit ``key=value`` suffixes win over legacy spellings.
    """
    policy_name, policy_opts = _parse_selector(args.policy or default_policy)
    surrogate_name, surrogate_opts = _parse_selector(args.surrogate)
    pf = _deprecated(args, "--policy-file", "policy_file",
                     "--policy amortized,policy_file=PATH")
    if pf is not None:
        policy_opts.setdefault("policy_file", pf)
    eps = _deprecated(args, "--policy-epsilon", "policy_epsilon",
                      "--policy amortized,epsilon=EPS")
    if eps is not None:
        policy_opts.setdefault("epsilon", eps)
    ni = _deprecated(args, "--n-inducing", "n_inducing",
                     "--surrogate sparse,n_inducing=N")
    if ni is not None:
        surrogate_opts.setdefault("n_inducing", ni)
    lml = _deprecated(args, "--exact-lml-max-n", "exact_lml_max_n",
                      "--surrogate iterative,exact_lml_max_n=N")
    if lml is not None:
        surrogate_opts.setdefault("exact_lml_max_n", lml)
    mem_limit = getattr(args, "memory_limit", None)
    if mem_limit:
        policy_opts.setdefault("memory_limit_MB", mem_limit)
    cfg = {
        "policy": policy_name,
        "policy_options": policy_opts,
        "surrogate": surrogate_name,
        "surrogate_options": surrogate_opts,
    }
    if getattr(args, "fidelities", 1) != 1 or getattr(args, "batch_size", 1) != 1 \
            or getattr(args, "round_budget", None) is not None:
        cfg.update(
            num_fidelities=args.fidelities,
            batch_size=args.batch_size,
            round_budget_node_hours=args.round_budget,
            fidelity_seed=args.fidelity_seed,
        )
    return cfg


def _add_run_cmd(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("run", help="run one Active-Learning trajectory")
    _add_selection_args(p)
    _add_fidelity_args(p)
    p.add_argument("--dataset", type=str, default=None, help=".csv/.npz (default: generate)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--n-init", type=int, default=50)
    p.add_argument("--n-test", type=int, default=200)
    p.add_argument("--iterations", type=int, default=100)
    p.add_argument("--refit-interval", type=int, default=1)
    p.add_argument(
        "--memory-limit",
        type=float,
        default=None,
        help="L_mem in MB for rgma (default: the paper's 95%% log rule)",
    )
    p.add_argument(
        "--log2-features",
        type=int,
        nargs="*",
        default=[],
        help="feature columns modeled via log2 (e.g. 0 1 for p and mx)",
    )
    g = p.add_argument_group("acquisition faults (off by default)")
    g.add_argument("--acq-crash-prob", type=float, default=0.0,
                   help="probability an acquisition crashes (responses lost)")
    g.add_argument("--acq-censor-prob", type=float, default=0.0,
                   help="probability an acquisition loses its MaxRSS")
    g.add_argument("--on-failure", choices=["drop", "next_best", "impute"],
                   default="next_best", help="loop response to a failed acquisition")
    t = p.add_argument_group("observability")
    t.add_argument("--trace-out", type=str, default=None,
                   help="enable span tracing; write Chrome-trace JSON here")
    t.add_argument("--metrics-out", type=str, default=None,
                   help="write the metrics registry as JSON here")
    p.set_defaults(func=cmd_run)


def _load_dataset(path: str | None, rng: np.random.Generator):
    if path is None:
        return run_campaign(rng).dataset
    if path.endswith(".csv"):
        return load_csv(path)
    if path.endswith(".npz"):
        return load_npz(path)
    raise ValueError("dataset path must end in .csv or .npz")


def cmd_run(args: argparse.Namespace) -> int:
    if _maybe_list(args):
        return 0
    if args.trace_out:
        obs.enable_tracing()
    rng = np.random.default_rng(args.seed)
    dataset = _load_dataset(args.dataset, rng)
    mf_mode = (
        args.fidelities != 1
        or args.batch_size != 1
        or args.round_budget is not None
    )
    try:
        selection = _selection_config(
            args, default_policy="portfolio" if mf_mode else "rand_goodness"
        )
        cfg = ALConfig(
            max_iterations=args.iterations,
            hyper_refit_interval=args.refit_interval,
            log2_features=tuple(args.log2_features),
            **selection,
        )
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if cfg.policy in ("rgma", "portfolio", "amortized"):
        limit = dict(cfg.policy_options).get("memory_limit_MB") or dataset.memory_limit()
        print(f"L_mem = {limit:.3f} MB")
    partition = random_partition(
        rng, len(dataset), n_init=args.n_init, n_test=args.n_test
    )
    acq_faults = AcquisitionFaultModel(
        crash_probability=args.acq_crash_prob,
        censor_probability=args.acq_censor_prob,
    )
    # The learner resolves the policy from the config
    # (repro.policy.make_policy), so any registered policy works here.
    if mf_mode:
        if acq_faults.enabled:
            print(
                "error: --acq-* faults are supported only for sequential "
                "(F=1, B=1) runs",
                file=sys.stderr,
            )
            return 2
        from repro.core import MultiFidelityActiveLearner
        from repro.data import MultiFidelityDataset

        ds = dataset
        if cfg.num_fidelities > 1:
            ds = MultiFidelityDataset.from_dataset(
                dataset, cfg.resolved_schedule(), seed=cfg.fidelity_seed
            )
        learner = MultiFidelityActiveLearner(
            ds, partition, rng=rng, config=cfg
        )
    else:
        learner = ActiveLearner(
            dataset,
            partition,
            rng=rng,
            acquisition_faults=acq_faults if acq_faults.enabled else None,
            on_failure=args.on_failure,
            config=cfg,
        )
    traj = learner.run()
    print(f"policy            : {traj.policy_name}")
    print(f"surrogate         : {learner.config.surrogate}")
    print(f"iterations        : {len(traj)}  (stop: {traj.stop_reason.value})")
    if mf_mode:
        fids = [r.fidelity for r in traj.records]
        mix = {f: fids.count(f) for f in sorted(set(fids))}
        print(
            f"fidelities        : {learner.config.num_fidelities}  "
            f"(batch {learner.config.batch_size}, mix {mix})"
        )
        print(
            "node-hours committed : "
            f"{learner.ledger.committed_node_hours:.3f}"
        )
    if acq_faults.enabled:
        print(
            f"faults            : {traj.num_failed_acquisitions} crashed, "
            f"{traj.num_censored_acquisitions} censored "
            f"({len(traj.fault_events)} events, policy: {args.on_failure})"
        )
    print(f"initial cost RMSE : {traj.initial_rmse_cost:.4f} node-hours")
    print(f"final cost RMSE   : {traj.final_rmse_cost:.4f} node-hours")
    print(f"final mem RMSE    : {traj.final_rmse_mem:.4f} MB")
    print(f"cumulative cost   : {traj.total_cost:.3f} node-hours")
    print(f"cumulative regret : {traj.total_regret:.3f} node-hours")
    print(f"median selection  : {np.median(traj.costs):.4f} node-hours")
    if args.trace_out:
        obs.export_chrome_trace(args.trace_out, metadata={"al_config": traj.config})
        print(f"trace             : {args.trace_out} (load in ui.perfetto.dev)")
    if args.metrics_out:
        obs.write_metrics_json(args.metrics_out, obs.METRICS)
        print(f"metrics           : {args.metrics_out}")
    return 0


def _add_simulate_cmd(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("simulate", help="run one real AMR shock-bubble job")
    p.add_argument("--p", type=int, default=4, help="nodes")
    p.add_argument("--mx", type=int, default=8, help="patch box size")
    p.add_argument("--maxlevel", type=int, default=3)
    p.add_argument("--r0", type=float, default=0.3, help="bubble size")
    p.add_argument("--rhoin", type=float, default=0.1, help="bubble density")
    p.add_argument("--t-end", type=float, default=0.05, help="simulated end time")
    p.set_defaults(func=cmd_simulate)


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.machine import EDISON, JobConfig, JobRunner, MemoryModel, PerformanceModel

    config = JobConfig(
        p=args.p, mx=args.mx, maxlevel=args.maxlevel, r0=args.r0, rhoin=args.rhoin
    )
    runner = JobRunner()
    work = runner.work_from_simulation(config, t_end=args.t_end)
    perf = PerformanceModel(EDISON, seconds_per_cell=5e-6)
    mem = MemoryModel(EDISON)
    print(f"config            : {config}")
    print(f"patches per level : {dict(work.patches_per_level)}")
    print(f"steps             : {work.num_steps}  regrids: {work.num_regrids}")
    print(f"cell updates      : {work.total_cell_updates:,.0f}")
    print(f"predicted wall    : {perf.wall_time(work, config.p):.2f} s on {config.p} nodes")
    print(f"predicted cost    : {perf.node_hours(work, config.p):.5f} node-hours")
    print(f"predicted MaxRSS  : {mem.max_rss_MB(work, config.p):.3f} MB")
    return 0


def _add_trace_cmd(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "trace",
        help="demo every instrumented subsystem and export a Chrome trace",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--dataset", type=str, default=None,
                   help=".csv/.npz (default: generate)")
    p.add_argument("--iterations", type=int, default=15,
                   help="AL iterations in the traced trajectory")
    p.add_argument("--t-end", type=float, default=0.05,
                   help="simulated end time of the traced AMR job")
    p.add_argument("--trace-out", type=str, default="trace.json",
                   help="Chrome-trace JSON output path")
    p.add_argument("--metrics-out", type=str, default=None,
                   help="write the metrics registry as JSON here")
    p.set_defaults(func=cmd_trace)


def cmd_trace(args: argparse.Namespace) -> int:
    """One traced pass through every instrumented subsystem.

    The exported trace contains, on one timeline: AMR ``amr_run`` /
    ``amr_step`` spans with plan/exchange/sweep/dt/regrid phases (from the
    simulate-mode job), machine ``job_run`` spans, ``resilient_run`` spans
    with fault/retry instants (crash faults are forced on), and an AL
    ``trajectory`` with per-iteration ``al_iteration`` / ``gp_fit`` /
    ``predict`` / ``select`` spans plus acquisition-fault annotations.
    """
    from repro.faults import FaultConfig, ResilientJobRunner
    from repro.machine import JobConfig, JobRunner

    obs.enable_tracing()
    rng = np.random.default_rng(args.seed)
    job = JobConfig(p=4, mx=8, maxlevel=3, r0=0.3, rhoin=0.1)

    # 1. One real AMR solve through the machine model: amr_run/amr_step
    #    span trees nested under a job_run span.
    record = JobRunner(t_end=args.t_end).run(job, rng, job_id=1, mode="simulate")
    print(
        f"simulate job      : wall={record.wall_seconds:.2f} s  "
        f"rss={record.max_rss_MB:.1f} MB"
    )

    # 2. Resilient executions with forced crash faults: retry/backoff
    #    events under resilient_run spans.  Several jobs, so some retries
    #    land in the trace at any seed.
    resilient = ResilientJobRunner(
        runner=JobRunner(),
        faults=FaultConfig(crash_probability=0.6),
        retry=RetryPolicy(max_retries=3, backoff_base_s=1.0),
    )
    attempts = events = 0
    for job_id in range(2, 8):
        rr = resilient.run(job, rng, job_id=job_id)
        attempts += rr.attempts
        events += len(rr.events)
    print(f"resilient jobs    : 6 jobs  attempts={attempts}  fault events={events}")

    # 3. A short AL trajectory with acquisition faults.
    dataset = _load_dataset(args.dataset, rng)
    partition = random_partition(rng, len(dataset), n_init=30, n_test=100)
    learner = ActiveLearner(
        dataset,
        partition,
        policy=POLICIES["rand_goodness"](),
        rng=rng,
        max_iterations=args.iterations,
        acquisition_faults=AcquisitionFaultModel(crash_probability=0.2),
    )
    traj = learner.run()
    print(
        f"AL trajectory     : {len(traj)} iterations  "
        f"{len(traj.fault_events)} acquisition faults"
    )

    obs.export_chrome_trace(args.trace_out, metadata={"al_config": traj.config})
    print(f"trace             : {args.trace_out} (load in ui.perfetto.dev)")
    if args.metrics_out:
        obs.write_metrics_json(args.metrics_out, obs.METRICS)
        print(f"metrics           : {args.metrics_out}")
    print()
    print(obs.report())
    return 0


def _add_chaos_flags(p: argparse.ArgumentParser) -> None:
    g = p.add_argument_group("chaos harness (all off by default)")
    g.add_argument("--chaos-crash-prob", type=float, default=0.0,
                   help="per-slice probability the worker is killed mid-slice")
    g.add_argument("--chaos-straggler-prob", type=float, default=0.0,
                   help="per-slice probability of a slow worker")
    g.add_argument("--chaos-oom-limit", type=float, default=None,
                   help="synthetic slice MaxRSS (MB) at which the OOM killer fires")
    g.add_argument("--chaos-timeout", type=float, default=None,
                   help="synthetic slice wall-clock limit in seconds")
    g.add_argument("--chaos-rss-lost-prob", type=float, default=0.0,
                   help="probability a slice's observability payload is lost")
    g.add_argument("--chaos-seed", type=int, default=0,
                   help="root of the per-campaign chaos RNG tree")
    g.add_argument("--chaos-max-retries", type=int, default=3,
                   help="slice resubmissions allowed before the campaign fails")
    g.add_argument("--chaos-step-wall", type=float, default=30.0,
                   help="synthetic wall-clock seconds per AL step")


def _chaos_config(args: argparse.Namespace):
    from repro.core import ChaosConfig

    faults = FaultConfig(
        crash_probability=args.chaos_crash_prob,
        oom_memory_limit_MB=args.chaos_oom_limit,
        timeout_wall_seconds=args.chaos_timeout,
        straggler_probability=args.chaos_straggler_prob,
        rss_lost_wall_threshold_s=(
            float("inf") if args.chaos_rss_lost_prob > 0 else 0.0
        ),
        rss_lost_probability=args.chaos_rss_lost_prob,
    )
    if not faults.enabled:
        return None
    return ChaosConfig(
        faults=faults,
        retry=RetryPolicy(max_retries=args.chaos_max_retries),
        seed=args.chaos_seed,
        step_wall_seconds=args.chaos_step_wall,
    )


def _service_from_args(args: argparse.Namespace, workers: int = 0):
    """A CampaignService attached to the command's checkpoint store."""
    from repro.core import CampaignService

    rng = np.random.default_rng(args.seed)
    dataset = _load_dataset(args.dataset, rng)
    return CampaignService(
        dataset,
        store=args.store,
        workers=workers,
        steps_per_slice=getattr(args, "steps_per_slice", None) or 8,
        queue_capacity=getattr(args, "queue_capacity", None),
        chaos=_chaos_config(args) if hasattr(args, "chaos_seed") else None,
    )


def _print_campaigns(service) -> None:
    rows = service.campaigns()
    if not rows:
        print("no campaigns")
        return
    print(f"{'campaign':<24} {'status':<8} {'iters':>5} {'committed':>10} "
          f"{'wasted':>8} {'remaining':>10} {'faults':>6}  stop")
    for info in rows:
        rem = ("inf" if info.remaining_node_hours == float("inf")
               else f"{info.remaining_node_hours:.3f}")
        print(f"{info.campaign_id:<24} {info.status:<8} {info.iterations:>5} "
              f"{info.committed_node_hours:>10.3f} {info.wasted_node_hours:>8.3f} "
              f"{rem:>10} {info.faults:>6}  {info.stop_reason or '-'}")


def _add_serve_cmd(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "serve",
        help="run the campaign service over a checkpoint store until done",
    )
    p.add_argument("--store", type=str, required=True,
                   help="checkpoint directory (resumes existing campaigns)")
    p.add_argument("--dataset", type=str, default=None,
                   help=".csv/.npz (default: generate; must match the store)")
    p.add_argument("--seed", type=int, default=42,
                   help="seed for the generated default dataset")
    p.add_argument("--workers", type=int, default=0,
                   help="worker processes (0 = run slices inline)")
    p.add_argument("--steps-per-slice", type=int, default=8)
    p.add_argument("--queue-capacity", type=int, default=None,
                   help="ready-queue bound (backpressure); default unbounded")
    p.add_argument("--max-slices", type=int, default=None,
                   help="stop after this many committed slices (kill switch)")
    _add_chaos_flags(p)
    t = p.add_argument_group("observability")
    t.add_argument("--trace-out", type=str, default=None,
                   help="enable span tracing; write Chrome-trace JSON here")
    t.add_argument("--metrics-out", type=str, default=None,
                   help="write the metrics registry as JSON here")
    p.set_defaults(func=cmd_serve)


def cmd_serve(args: argparse.Namespace) -> int:
    if args.trace_out:
        obs.enable_tracing()
    with _service_from_args(args, workers=args.workers) as service:
        report = service.run(max_slices=args.max_slices)
        print(
            f"slices            : {report.slices_committed} committed, "
            f"{report.slices_discarded} discarded"
        )
        if report.fault_counts:
            kinds = "  ".join(
                f"{k}={n}" for k, n in sorted(report.fault_counts.items())
            )
            print(f"faults            : {kinds}")
        print(f"campaigns         : {report.done} done, {report.failed} failed, "
              f"{len(report.campaigns)} total")
        _print_campaigns(service)
    if args.trace_out:
        obs.export_chrome_trace(args.trace_out)
        print(f"trace             : {args.trace_out} (load in ui.perfetto.dev)")
    if args.metrics_out:
        obs.write_metrics_json(args.metrics_out, obs.METRICS)
        print(f"metrics           : {args.metrics_out}")
    return 0


def _add_campaign_cmd(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("campaign", help="manage campaigns in a checkpoint store")
    action = p.add_subparsers(dest="action", required=True)

    def _common(q: argparse.ArgumentParser) -> None:
        q.add_argument("--store", type=str, required=True,
                       help="checkpoint directory")
        q.add_argument("--dataset", type=str, default=None,
                       help=".csv/.npz (default: generate; must match the store)")
        q.add_argument("--seed", type=int, default=42,
                       help="seed for the generated default dataset")

    s = action.add_parser("submit", help="register a new campaign")
    _common(s)
    s.add_argument("--id", required=True, help="campaign id (checkpoint name)")
    _add_selection_args(s)
    _add_fidelity_args(s)
    s.add_argument("--base-seed", type=int, default=0)
    s.add_argument("--traj-index", type=int, default=0)
    s.add_argument("--n-init", type=int, default=50)
    s.add_argument("--n-test", type=int, default=200)
    s.add_argument("--iterations", type=int, default=100)
    s.add_argument("--budget", type=float, default=None,
                   help="node-hour allocation (default unlimited)")
    s.add_argument("--steps-per-slice", type=int, default=None)
    s.add_argument("--memory-limit", type=float, default=None,
                   help="L_mem in MB for memory-aware policies "
                        "(default: the paper's 95%% rule)")
    s.set_defaults(func=cmd_campaign_submit)

    for name, fn in (
        ("list", cmd_campaign_list),
        ("pause", cmd_campaign_pause),
        ("resume", cmd_campaign_resume),
    ):
        q = action.add_parser(name, help=f"{name} campaigns")
        _common(q)
        if name != "list":
            q.add_argument("--id", required=True, help="campaign id")
        q.set_defaults(func=fn)


def cmd_campaign_submit(args: argparse.Namespace) -> int:
    import functools

    from repro.core import ALConfig, CampaignSpec

    if _maybe_list(args):
        return 0
    mf_mode = (
        args.fidelities != 1
        or args.batch_size != 1
        or args.round_budget is not None
    )
    with _service_from_args(args) as service:
        try:
            selection = _selection_config(
                args, default_policy="portfolio" if mf_mode else "rand_goodness"
            )
            cfg = ALConfig(max_iterations=args.iterations, **selection)
        except (KeyError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        name, opts = cfg.policy, dict(cfg.policy_options)
        policy_cls = policy_registry.get(name)
        if name in ("rgma", "portfolio", "amortized"):
            opts.setdefault("memory_limit_MB", service.dataset.memory_limit())
        if name == "amortized":
            path = opts.pop("policy_file", None)
            if not path:
                print(
                    "error: --policy amortized requires a policy file: "
                    "pass --policy amortized,policy_file=PATH or the "
                    "deprecated --policy-file PATH "
                    "(train one with `python -m repro.policy train`)",
                    file=sys.stderr,
                )
                return 2
            from repro.policy import load_amortized_policy

            factory = functools.partial(
                load_amortized_policy,
                path,
                memory_limit_MB=opts["memory_limit_MB"],
                epsilon=float(opts.get("epsilon", 0.05)),
            )
        else:
            factory = functools.partial(policy_cls, **opts) if opts else policy_cls
        spec = CampaignSpec(
            campaign_id=args.id,
            policy_factory=factory,
            base_seed=args.base_seed,
            traj_index=args.traj_index,
            n_init=args.n_init,
            n_test=args.n_test,
            config=cfg,
            budget_node_hours=(
                args.budget if args.budget is not None else float("inf")
            ),
            steps_per_slice=args.steps_per_slice,
        )
        service.submit(spec)
        print(f"submitted {args.id} ({name}, "
              f"max_iterations={args.iterations})")
    return 0


def cmd_campaign_list(args: argparse.Namespace) -> int:
    with _service_from_args(args) as service:
        _print_campaigns(service)
    return 0


def cmd_campaign_pause(args: argparse.Namespace) -> int:
    with _service_from_args(args) as service:
        service.pause(args.id)
        print(f"paused {args.id}")
    return 0


def cmd_campaign_resume(args: argparse.Namespace) -> int:
    with _service_from_args(args) as service:
        service.resume_campaign(args.id)
        print(f"resumed {args.id}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cost- and memory-aware Active Learning for AMR performance modeling",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    _add_dataset_cmd(sub)
    _add_run_cmd(sub)
    _add_simulate_cmd(sub)
    _add_trace_cmd(sub)
    _add_serve_cmd(sub)
    _add_campaign_cmd(sub)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    raise SystemExit(main())
