"""The zero-refit selection policy: batched scoring, no surrogate anywhere.

:class:`AmortizedPolicy` implements the :class:`repro.core.policies
.SelectionPolicy` protocol but declares ``requires_surrogate = False`` —
the learner sees that and skips GP construction, fitting, and RMSE
tracking entirely (the "zero-refit" mode).  Each ``select`` is:

1. assemble the cached feature matrix (:mod:`repro.policy.features`),
2. one batched matmul through the offline-trained scorer,
3. mask candidates the machine model predicts over the memory limit
   (the RGMA constraint, answered without a GP),
4. one ``rng.choice`` from an ε-frugal mixture of the score softmax and
   a cheapest-predicted-first distribution.

Step 4 consumes **exactly one** draw from the learner RNG — the same
single ``rng.choice(k, p=...)`` RandGoodness and RGMA make — so swapping
the policy never shifts the shared stream the acquisition fault model
draws from: fault handling, checkpoints, and chaos schedules are
untouched.  When no candidate passes the memory mask, ``select`` returns
``None`` without touching the RNG, exactly like RGMA's early termination.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.core.policies import CandidateView, timed_select
from repro.policy.features import FeatureExtractor, PolicyContext
from repro.policy.scorer import MLPScorer
from repro.registry import register_policy

__all__ = ["AmortizedPolicy", "load_amortized_policy"]


@register_policy("amortized")
class AmortizedPolicy:
    """Offline-trained, GP-free candidate selection (the amortized server).

    Parameters
    ----------
    scorer : MLPScorer
        The offline-trained scorer (``python -m repro.policy train``).
    memory_limit_MB : float, optional
        ``L_mem``; candidates whose *machine-model* memory prediction
        meets/exceeds it are masked out before sampling, and the learner
        tracks cumulative regret against it.  ``None`` disables the mask.
    epsilon : float
        ε-frugal guardrail weight: the sampling distribution is
        ``(1-ε)·softmax(scores/T) + ε·frugal`` where ``frugal`` favors
        the cheapest machine-predicted feasible candidates — a hard floor
        on cost-awareness however the learned scores drift.
    temperature : float
        Softmax temperature over the scores.
    """

    name = "amortized"
    #: The learner skips all GP work for policies that clear this flag.
    requires_surrogate = False

    def __init__(
        self,
        scorer: MLPScorer,
        memory_limit_MB: float | None = None,
        epsilon: float = 0.05,
        temperature: float = 1.0,
    ) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        if memory_limit_MB is not None and memory_limit_MB <= 0:
            raise ValueError("memory limit must be positive")
        self.scorer = scorer
        self.memory_limit_MB = (
            float(memory_limit_MB) if memory_limit_MB is not None else None
        )
        self.epsilon = float(epsilon)
        self.temperature = float(temperature)
        self._extractor: FeatureExtractor | None = None

    @property
    def fingerprint(self) -> str:
        """The scorer's content hash — stamped into service checkpoints."""
        return self.scorer.fingerprint

    # ------------------------------------------------------------ learner hooks

    def prepare(self, ctx: PolicyContext) -> None:
        """Build the incremental feature extractor (once per run)."""
        self._extractor = FeatureExtractor(ctx)

    def observe_acquire(self, pos: int, u_new, **kw) -> None:
        self._extractor.observe_acquire(pos, u_new, **kw)

    def observe_drop(self, pos: int, cost: float = 0.0) -> None:
        self._extractor.observe_drop(pos, cost=cost)

    # ---------------------------------------------------------------- selection

    def _distribution(self, scores: np.ndarray, log_cost: np.ndarray) -> np.ndarray:
        """ε-frugal mixture over the feasible candidates."""
        s = scores / self.temperature
        e = np.exp(s - s.max())
        soft = e / e.sum()
        if self.epsilon > 0.0:
            # Frugal component: goodness-style mass on the cheapest
            # machine-predicted candidates (base-10 in log cost, like the
            # paper's goodness distribution with sigma = 0).
            g = np.power(10.0, -(log_cost - log_cost.min()))
            probs = (1.0 - self.epsilon) * soft + self.epsilon * (g / g.sum())
        else:
            probs = soft
        return probs / probs.sum()

    @timed_select
    def select(self, view: CandidateView, rng: np.random.Generator) -> int | None:
        ex = self._extractor
        if ex is None:
            raise RuntimeError(
                "AmortizedPolicy.select before prepare(); the learner calls "
                "prepare() in start() — construct the policy through it"
            )
        if len(view) == 0:
            return None
        if len(view) != ex.m:
            raise RuntimeError(
                f"feature extractor tracks {ex.m} candidates but the view "
                f"has {len(view)} — observe_* hooks out of sync"
            )
        F = ex.features()
        with obs.timed("policy.infer", cat="policy", rows=ex.m):
            scores = self.scorer.scores(F)
            feasible = np.flatnonzero(ex.feasible_mask())
            if feasible.size == 0:
                obs.incr("policy_inferences")
                return None  # early termination: everything looks unsafe
            probs = self._distribution(
                scores[feasible], ex.machine_log_cost[feasible]
            )
        obs.incr("policy_inferences")
        # Exactly one learner-RNG draw, like RandGoodness/RGMA.
        return int(feasible[rng.choice(feasible.size, p=probs)])


def load_amortized_policy(
    path: str,
    memory_limit_MB: float | None = None,
    epsilon: float = 0.05,
    temperature: float = 1.0,
) -> AmortizedPolicy:
    """Load a serialized scorer into a ready policy.

    Module-level so ``functools.partial(load_amortized_policy, path, ...)``
    is a picklable :class:`~repro.core.service.CampaignSpec` policy
    factory; the service fingerprints the loaded policy at submit time and
    refuses to resume checkpoints if the file's content later changes.
    """
    return AmortizedPolicy(
        MLPScorer.load(path),
        memory_limit_MB=memory_limit_MB,
        epsilon=epsilon,
        temperature=temperature,
    )
