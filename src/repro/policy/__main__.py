"""The offline pipeline: ``python -m repro.policy {simulate,train}``.

``simulate`` replays RGMA campaigns through the campaign service and
writes a :class:`~repro.policy.scorer.DecisionLog` (``.npz``);
``train`` fits the numpy MLP scorer to such a log and writes the policy
file that ``repro run --policy amortized --policy-file ...`` and
``repro campaign submit --policy amortized`` serve.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.data import CampaignConfig, run_campaign
from repro.policy.scorer import DecisionLog, train_scorer


def _build_dataset(num_unique: int, num_repeats: int, seed: int):
    cfg = CampaignConfig(num_unique=num_unique, num_repeats=num_repeats)
    return run_campaign(np.random.default_rng(seed), config=cfg).dataset


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.policy.simulate import generate_decisions

    dataset = _build_dataset(args.num_unique, args.num_repeats, args.dataset_seed)
    log = generate_decisions(
        dataset,
        n_campaigns=args.campaigns,
        base_seed=args.base_seed,
        n_init=args.n_init,
        n_test=args.n_test,
        iterations=args.iterations,
        steps_per_slice=args.steps_per_slice,
        memory_limit_MB=args.memory_limit,
    )
    log.save(args.out)
    print(
        f"wrote {args.out}: {len(log)} decisions, "
        f"{log.features.shape[0]} feature rows "
        f"(teacher={log.meta['teacher']}, campaigns={log.meta['campaigns']})"
    )
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    log = DecisionLog.load(args.data)
    scorer, history = train_scorer(
        log,
        hidden=args.hidden,
        epochs=args.epochs,
        lr=args.lr,
        l2=args.l2,
        seed=args.seed,
    )
    scorer.save(args.out)
    print(
        f"wrote {args.out}: fingerprint={scorer.fingerprint} "
        f"loss={history['loss'][-1]:.4f} "
        f"teacher-agreement={history['agreement'][-1]:.3f} "
        f"({len(log)} decisions, hidden={args.hidden}, epochs={args.epochs})"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.policy",
        description="Offline pipeline for the amortized selection policy.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser(
        "simulate", help="replay RGMA campaigns; write a decision log (.npz)"
    )
    p_sim.add_argument("--out", default="decisions.npz", help="output decision log")
    p_sim.add_argument("--campaigns", type=int, default=4)
    p_sim.add_argument("--iterations", type=int, default=40)
    p_sim.add_argument("--n-init", type=int, default=30)
    p_sim.add_argument("--n-test", type=int, default=60)
    p_sim.add_argument("--base-seed", type=int, default=2024)
    p_sim.add_argument("--steps-per-slice", type=int, default=8)
    p_sim.add_argument(
        "--memory-limit",
        type=float,
        default=None,
        help="L_mem in MB (default: the dataset's 95%% log rule)",
    )
    p_sim.add_argument("--num-unique", type=int, default=525)
    p_sim.add_argument("--num-repeats", type=int, default=75)
    p_sim.add_argument("--dataset-seed", type=int, default=42)
    p_sim.set_defaults(func=cmd_simulate)

    p_train = sub.add_parser(
        "train", help="fit the MLP scorer to a decision log; write the policy file"
    )
    p_train.add_argument("--data", default="decisions.npz", help="decision log (.npz)")
    p_train.add_argument("--out", default="policy.npz", help="output policy file")
    p_train.add_argument("--hidden", type=int, default=32)
    p_train.add_argument("--epochs", type=int, default=150)
    p_train.add_argument("--lr", type=float, default=5e-3)
    p_train.add_argument("--l2", type=float, default=1e-4)
    p_train.add_argument("--seed", type=int, default=0)
    p_train.set_defaults(func=cmd_train)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
