"""Amortized (offline-trained, zero-refit) selection policies.

The package splits into:

- :mod:`repro.policy.features` — GP-free incremental feature extraction;
- :mod:`repro.policy.scorer` — the numpy-only MLP scorer + trainer;
- :mod:`repro.policy.amortized` — the :class:`AmortizedPolicy` serving
  implementation of the ``SelectionPolicy`` protocol;
- :mod:`repro.policy.simulate` — the teacher-replay data generator
  (imports the campaign service; import it explicitly, not via this
  package, to keep light consumers light).

``python -m repro.policy {simulate,train}`` is the offline pipeline.
"""

from __future__ import annotations

import os
import warnings

from repro.core.config import ALConfig
from repro.core.policies import POLICIES, RGMA
from repro.data.dataset import Dataset
from repro.policy.amortized import AmortizedPolicy, load_amortized_policy
from repro.policy.features import FEATURE_NAMES, FeatureExtractor, PolicyContext
from repro.policy.scorer import DecisionLog, MLPScorer, train_scorer

__all__ = [
    "AmortizedPolicy",
    "DecisionLog",
    "FEATURE_NAMES",
    "FeatureExtractor",
    "MLPScorer",
    "PolicyContext",
    "load_amortized_policy",
    "make_policy",
    "train_scorer",
]


#: Policy names whose constructor takes a ``memory_limit_MB`` the config
#: may omit — defaulted to the dataset's own limit (Sec. III-B).
_MEMORY_AWARE = ("rgma", "portfolio", "amortized")


def make_policy(cfg: ALConfig, dataset: Dataset):
    """Instantiate the selection policy named by ``cfg.policy``.

    Resolution goes through :data:`repro.registry.policy_registry` —
    any registered policy (built-in or third-party) is constructible
    here, and unknown names raise listing the registered keys.

    ``policy="amortized"`` loads the scorer file named in
    ``policy_options["policy_file"]``; a missing/unset file falls back to
    :class:`~repro.core.policies.RGMA` at the dataset's memory limit with
    a warning — a documented invariant (DESIGN.md): serving must degrade
    to the exact paper policy, never crash, when the learned artifact is
    absent.
    """
    from repro.registry import policy_registry

    name = cfg.policy or "rgma"
    opts = dict(cfg.policy_options)
    policy_cls = policy_registry.get(name)  # unknown -> KeyError with keys
    if name in _MEMORY_AWARE:
        opts.setdefault("memory_limit_MB", dataset.memory_limit())
    if name == "amortized":
        path = opts.pop("policy_file", None)
        if path is None or not os.path.exists(path):
            warnings.warn(
                f"amortized policy file {path!r} not found; "
                "falling back to RGMA",
                RuntimeWarning,
                stacklevel=2,
            )
            return RGMA(memory_limit_MB=opts["memory_limit_MB"])
        return load_amortized_policy(
            path,
            memory_limit_MB=opts["memory_limit_MB"],
            epsilon=float(opts.get("epsilon", 0.05)),
            temperature=float(opts.get("temperature", 1.0)),
        )
    return policy_cls(**opts)
