"""Teacher-replay data generation for the amortized policy.

The training signal is *imitation*: run real RGMA campaigns through the
campaign service (the exact production scheduler — same seed tree, same
slicing, same checkpoint path) with a policy wrapper that records, at
every selection, the amortized feature matrix over the candidate pool and
the index RGMA chose.  The resulting :class:`~repro.policy.scorer
.DecisionLog` is what ``python -m repro.policy train`` consumes.

Provenance is part of the artifact: the log's ``meta`` carries the
teacher name, campaign count/seeds, partition sizes, iteration budget,
and the dataset fingerprint, and the trainer copies it into the scorer's
metadata — so any served policy file can be traced back to the exact
simulation that produced it (the DESIGN.md training-data-provenance
invariant).

This module imports :mod:`repro.core.service`; the ``repro.policy``
package ``__init__`` deliberately does not re-export it, so serving-only
consumers never pay the service import.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.core.config import ALConfig
from repro.core.policies import RGMA, CandidateView
from repro.core.service import (
    CampaignService,
    CampaignSpec,
    dataset_fingerprint,
    loads_campaign,
)
from repro.data.dataset import Dataset
from repro.policy.features import FeatureExtractor, PolicyContext
from repro.policy.scorer import DecisionLog

__all__ = ["RecordingRGMA", "generate_decisions"]


class RecordingRGMA:
    """RGMA that also logs (feature matrix, chosen position) per selection.

    Selection is *delegated* to a real :class:`~repro.core.policies.RGMA`
    — same constraint filter, same goodness draw, same single
    ``rng.choice`` — so a recorded campaign is bit-identical to one run
    under plain RGMA; the wrapper only adds a parallel
    :class:`~repro.policy.features.FeatureExtractor` whose hooks keep the
    recorded features aligned with the pool the teacher saw.  Decisions
    accumulate on the instance, which rides the campaign checkpoint
    pickle, so they survive slicing, kills, and resumes like every other
    piece of loop state.
    """

    name = "rgma"

    def __init__(self, memory_limit_MB: float, base: float = 10.0) -> None:
        self._inner = RGMA(memory_limit_MB=memory_limit_MB, base=base)
        self.decisions: list[tuple[np.ndarray, int]] = []
        self._extractor: FeatureExtractor | None = None

    @property
    def memory_limit_MB(self) -> float:
        return self._inner.memory_limit_MB

    # Hooks the learner feeds any policy that exposes them.
    def prepare(self, ctx: PolicyContext) -> None:
        self._extractor = FeatureExtractor(ctx)

    def observe_acquire(self, pos: int, u_new, **kw) -> None:
        self._extractor.observe_acquire(pos, u_new, **kw)

    def observe_drop(self, pos: int, cost: float = 0.0) -> None:
        self._extractor.observe_drop(pos, cost=cost)

    def select(self, view: CandidateView, rng: np.random.Generator) -> int | None:
        pos = self._inner.select(view, rng)
        if pos is not None and self._extractor is not None:
            self.decisions.append((self._extractor.features(), int(pos)))
        return pos


def generate_decisions(
    dataset: Dataset,
    n_campaigns: int = 4,
    base_seed: int = 2024,
    n_init: int = 30,
    n_test: int = 60,
    iterations: int = 40,
    steps_per_slice: int = 8,
    memory_limit_MB: float | None = None,
) -> DecisionLog:
    """Replay RGMA campaigns through the service; return the decision log.

    Each campaign sits at its own seed-tree position (``base_seed``,
    ``traj_index=i``) — the same tree :func:`~repro.core.parallel
    .run_trajectories` and production campaigns use — so the teacher's
    decisions are drawn from the exact distribution the served policy
    will face.
    """
    if memory_limit_MB is None:
        memory_limit_MB = dataset.memory_limit()
    cfg = ALConfig(max_iterations=iterations)
    svc = CampaignService(dataset, store=None, steps_per_slice=steps_per_slice)
    ids = []
    for i in range(n_campaigns):
        ids.append(
            svc.submit(
                CampaignSpec(
                    campaign_id=f"sim-{i}",
                    policy_factory=functools.partial(
                        RecordingRGMA, memory_limit_MB=memory_limit_MB
                    ),
                    base_seed=base_seed,
                    traj_index=i,
                    n_init=n_init,
                    n_test=n_test,
                    config=cfg,
                )
            )
        )
    svc.run()

    decisions: list[tuple[np.ndarray, int]] = []
    for cid in ids:
        learner = loads_campaign(svc._campaigns[cid].blob, dataset)
        decisions.extend(learner.policy.decisions)
    return DecisionLog.from_decisions(
        decisions,
        meta={
            "teacher": "rgma",
            "campaigns": n_campaigns,
            "base_seed": base_seed,
            "n_init": n_init,
            "n_test": n_test,
            "iterations": iterations,
            "memory_limit_MB": float(memory_limit_MB),
            "dataset_fingerprint": dataset_fingerprint(dataset),
        },
    )
