"""GP-free candidate features for the amortized selection policy.

The amortized policy must score candidates *without* a surrogate refit, so
everything it sees has to be computable from quantities that exist before
any GP does:

- **machine-model predictions** — the analytic work profile of
  :func:`repro.machine.perf_model.estimate_work` priced through
  :class:`~repro.machine.perf_model.PerformanceModel` and
  :class:`~repro.machine.memory_model.MemoryModel` gives a log10
  cost/memory prediction per candidate (the same models that generated the
  dataset's responses, so they are strong zero-cost priors);
- **geometry vs. the training set** — min/mean distance and a local
  density count in the scaled design space stand in for the posterior
  variance the GP policies consume (far-from-training == uncertain);
- **run state** — training-set size, pool fraction, cumulative node-hours
  spent, and running mean/std of the observed log targets (the
  budget-ledger view of the campaign so far).

Incrementality mirrors the candidate cross-covariance cache's contract
(:class:`repro.core.loop.CandidateCovarianceCache`): an acquisition
deletes the selected candidate's *row* from every per-candidate array and
folds the new training point in with one O(m·d) vectorized pass
(:meth:`FeatureExtractor.observe_acquire` — the column-append analog); a
crashed/censored candidate loses its row only
(:meth:`FeatureExtractor.observe_drop`).  Nothing is ever recomputed from
scratch inside the serving loop.

The extractor's state is plain arrays, so a pickled extractor (inside a
campaign checkpoint) resumes bit-identically — the accumulator values ride
along rather than being recomputed in a different summation order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.data.dataset import Dataset
from repro.machine import JobConfig, JobRunner, MemoryModel, PerformanceModel

__all__ = ["FEATURE_NAMES", "FeatureExtractor", "PolicyContext", "machine_log_predictions"]

#: Column layout of :meth:`FeatureExtractor.features`, in order.
FEATURE_NAMES = (
    "machine_log_cost",  # analytic log10 node-hours prediction
    "machine_log_mem",  # analytic log10 MaxRSS prediction
    "mem_margin",  # log10(L_mem) - machine_log_mem (+3 when unconstrained)
    "u_p",  # scaled design coordinates (5)
    "u_mx",
    "u_maxlevel",
    "u_r0",
    "u_rhoin",
    "min_dist",  # geometry vs. the training set
    "mean_dist",
    "near_frac",  # fraction of training points within NEAR_RADIUS
    "log_n_train",  # run state
    "pool_frac",
    "log_cost_spent",  # log10(1 + cumulative node-hours charged)
    "cost_mean",  # running stats of observed log10 targets
    "cost_std",
    "mem_mean",
    "mem_std",
)

#: Scaled-space radius of the local-density count.
NEAR_RADIUS = 0.3

#: ``mem_margin`` stand-in when no memory limit constrains the run: +3
#: decades of headroom, comfortably above any real margin in the dataset.
UNCONSTRAINED_MARGIN = 3.0

#: Column index of ``log_cost_spent`` — the one feature that depends on
#: *charged* (not just learned) cost, so a rebuilt extractor cannot
#: reconstruct it from a context alone (crashed acquisitions charge too).
COST_SPENT_COLUMN = FEATURE_NAMES.index("log_cost_spent")


@dataclass(frozen=True)
class PolicyContext:
    """What :meth:`FeatureExtractor.prepare`-style construction needs.

    Built by :meth:`repro.core.loop.ActiveLearner.start` and handed to any
    policy exposing a ``prepare(ctx)`` hook.

    Attributes
    ----------
    dataset : Dataset
        The offline job table (features + responses).
    scaler : object
        The learner's :class:`~repro.core.preprocessing.DesignTransform`
        (anything with ``transform``).
    pool_indices : ndarray of int
        Dataset indices of the remaining Active candidates, in pool order.
    train_indices : ndarray of int
        Dataset indices currently in the training set (the Initial
        partition at :meth:`~repro.core.loop.ActiveLearner.start` time).
    memory_limit_MB : float or None
        ``L_mem`` when the run is memory-constrained.
    """

    dataset: Dataset
    scaler: object
    pool_indices: np.ndarray
    train_indices: np.ndarray
    memory_limit_MB: float | None = None


def machine_log_predictions(X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Analytic log10 (cost, mem) predictions for raw feature rows.

    Prices each ``(p, mx, maxlevel, r0, rhoin)`` row through the noise-free
    machine models (:func:`~repro.machine.perf_model.estimate_work` →
    node-hours / MaxRSS).  Rows repeat heavily in grid-sampled datasets, so
    results are memoized per unique configuration — pricing 20k rows costs
    at most the 1920 distinct grid points.
    """
    runner = JobRunner()
    perf = PerformanceModel(runner.spec, seconds_per_cell=5.0e-6)
    mem = MemoryModel(runner.spec)
    cache: dict[tuple, tuple[float, float]] = {}
    log_cost = np.empty(X.shape[0])
    log_mem = np.empty(X.shape[0])
    for i, row in enumerate(X):
        key = tuple(row)
        hit = cache.get(key)
        if hit is None:
            cfg = JobConfig(
                p=int(round(row[0])),
                mx=int(round(row[1])),
                maxlevel=int(round(row[2])),
                r0=float(row[3]),
                rhoin=float(row[4]),
            )
            work = runner.work_estimate(cfg)
            hit = (
                float(np.log10(perf.node_hours(work, cfg.p))),
                float(np.log10(mem.max_rss_MB(work, cfg.p))),
            )
            cache[key] = hit
        log_cost[i], log_mem[i] = hit
    return log_cost, log_mem


class FeatureExtractor:
    """Incrementally maintained feature matrix over the candidate pool.

    Construction is the expensive part (one machine-model pass over the
    pool plus one vectorized distance pass against the training set);
    every subsequent :meth:`features` call assembles the cached columns in
    O(m · n_features), and the per-acquisition update is one O(m · d)
    vectorized pass — no surrogate, no refit, nothing quadratic in the
    training-set size.
    """

    def __init__(self, ctx: PolicyContext) -> None:
        ds = ctx.dataset
        pool = np.asarray(ctx.pool_indices, dtype=np.int64)
        train = np.asarray(ctx.train_indices, dtype=np.int64)
        self._U = np.asarray(ctx.scaler.transform(ds.X[pool]), dtype=np.float64)
        self._log_limit = (
            float(np.log10(ctx.memory_limit_MB))
            if ctx.memory_limit_MB is not None
            else None
        )
        self._machine_log_cost, self._machine_log_mem = machine_log_predictions(
            ds.X[pool]
        )

        # Geometry vs. the current training set, vectorized once here and
        # folded forward point-by-point afterwards.
        U_train = np.asarray(ctx.scaler.transform(ds.X[train]), dtype=np.float64)
        diff = self._U[:, None, :] - U_train[None, :, :]
        d = np.sqrt(np.einsum("mnd,mnd->mn", diff, diff))
        self._min_dist = d.min(axis=1)
        self._dist_sum = d.sum(axis=1)
        self._near = (d < NEAR_RADIUS).sum(axis=1).astype(np.float64)
        self._n_train = int(train.shape[0])
        self._pool0 = int(pool.shape[0])

        # Running target statistics, seeded from the (observed) training
        # targets so the very first selection already sees them.
        log_cost = ds.log_cost()[train]
        log_mem = ds.log_mem()[train]
        self._cost_stats = [float(log_cost.sum()), float((log_cost**2).sum()), len(train)]
        self._mem_stats = [float(log_mem.sum()), float((log_mem**2).sum()), len(train)]
        self._cost_spent = 0.0

    # ------------------------------------------------------------- properties

    @property
    def m(self) -> int:
        """Candidates currently in the pool."""
        return int(self._U.shape[0])

    @property
    def machine_log_cost(self) -> np.ndarray:
        return self._machine_log_cost

    @property
    def machine_log_mem(self) -> np.ndarray:
        return self._machine_log_mem

    def feasible_mask(self) -> np.ndarray:
        """Machine-predicted memory under the limit (all-True when none)."""
        if self._log_limit is None:
            return np.ones(self.m, dtype=bool)
        return self._machine_log_mem < self._log_limit

    # --------------------------------------------------------------- features

    @staticmethod
    def _mean_std(stats: list) -> tuple[float, float]:
        s, s2, n = stats
        if n == 0:
            return 0.0, 0.0
        mean = s / n
        return mean, float(np.sqrt(max(0.0, s2 / n - mean * mean)))

    def features(self) -> np.ndarray:
        """The ``(m, len(FEATURE_NAMES))`` feature matrix, freshly assembled.

        Timed into the ``policy.features`` phase (a span when tracing is
        on); bumps the ``policy_feature_rows`` counter by ``m``.
        """
        with obs.timed("policy.features", cat="policy", rows=self.m):
            m = self.m
            F = np.empty((m, len(FEATURE_NAMES)))
            F[:, 0] = self._machine_log_cost
            F[:, 1] = self._machine_log_mem
            if self._log_limit is None:
                F[:, 2] = UNCONSTRAINED_MARGIN
            else:
                F[:, 2] = self._log_limit - self._machine_log_mem
            F[:, 3:8] = self._U
            F[:, 8] = self._min_dist
            n = max(1, self._n_train)
            F[:, 9] = self._dist_sum / n
            F[:, 10] = self._near / n
            F[:, 11] = np.log10(n)
            F[:, 12] = m / max(1, self._pool0)
            F[:, 13] = np.log10(1.0 + self._cost_spent)
            F[:, 14], F[:, 15] = self._mean_std(self._cost_stats)
            F[:, 16], F[:, 17] = self._mean_std(self._mem_stats)
        obs.incr("policy_feature_rows", m)
        return F

    # ---------------------------------------------------------------- updates

    def _delete_row(self, pos: int) -> None:
        self._U = np.delete(self._U, pos, axis=0)
        self._machine_log_cost = np.delete(self._machine_log_cost, pos)
        self._machine_log_mem = np.delete(self._machine_log_mem, pos)
        self._min_dist = np.delete(self._min_dist, pos)
        self._dist_sum = np.delete(self._dist_sum, pos)
        self._near = np.delete(self._near, pos)

    def observe_acquire(
        self,
        pos: int,
        u_new: np.ndarray,
        cost: float,
        target_cost: float,
        target_mem: float,
        learn_mem: bool = True,
    ) -> None:
        """Candidate ``pos`` joined the training set (row-drop + fold-in).

        Mirrors :meth:`CandidateCovarianceCache.acquire`: the selected
        candidate's row leaves every per-candidate array, and the new
        training point updates the distance/density columns of the
        *remaining* rows in one vectorized pass.
        """
        self._delete_row(pos)
        d = np.sqrt(((self._U - np.asarray(u_new)[None, :]) ** 2).sum(axis=1))
        np.minimum(self._min_dist, d, out=self._min_dist)
        self._dist_sum += d
        self._near += d < NEAR_RADIUS
        self._n_train += 1
        self._cost_spent += float(cost)
        self._cost_stats[0] += float(target_cost)
        self._cost_stats[1] += float(target_cost) ** 2
        self._cost_stats[2] += 1
        if learn_mem:
            self._mem_stats[0] += float(target_mem)
            self._mem_stats[1] += float(target_mem) ** 2
            self._mem_stats[2] += 1

    def observe_drop(self, pos: int, cost: float = 0.0) -> None:
        """Candidate ``pos`` left the pool without joining the training set.

        The failure path (crashed acquisition): row-drop only — the
        distance columns still describe the unchanged training set — but
        the charged node-hours still count toward the spent ledger.
        """
        self._delete_row(pos)
        self._cost_spent += float(cost)
