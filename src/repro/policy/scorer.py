"""The offline-trained candidate scorer behind :class:`AmortizedPolicy`.

A deliberately small, numpy-only MLP: candidate features → one hidden tanh
layer → a scalar score per candidate.  Serving is a single batched matmul
over the whole pool, which is the entire point — selection cost becomes
O(m · hidden) with no surrogate refit anywhere.

Training is *listwise*: each recorded decision is (feature matrix of the
candidate pool at that iteration, index the teacher — RGMA — chose), and
the loss is softmax cross-entropy of the chosen candidate against the
whole pool.  That matches serving exactly: the policy samples from the
softmax over its scores, so the trained distribution is the distribution
served.

Serialization is one ``.npz`` (weights + feature normalization + metadata)
with a content :attr:`~MLPScorer.fingerprint` — sha1 over the exact bytes
of every array and the metadata — which the campaign service stamps into
checkpoints and refuses to resume across (a silently retrained policy
would break resume bit-identity).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = ["DecisionLog", "MLPScorer", "train_scorer"]


@dataclass
class DecisionLog:
    """Ragged (features, chosen-candidate) pairs from simulated campaigns.

    ``features`` stacks every decision's candidate matrix; decision ``i``
    owns rows ``offsets[i]:offsets[i+1]`` and its teacher pick is
    ``chosen[i]`` (a position *within that slice*).
    """

    features: np.ndarray
    offsets: np.ndarray
    chosen: np.ndarray
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.features = np.asarray(self.features, dtype=np.float64)
        self.offsets = np.asarray(self.offsets, dtype=np.int64)
        self.chosen = np.asarray(self.chosen, dtype=np.int64)
        if self.offsets.ndim != 1 or self.offsets[0] != 0:
            raise ValueError("offsets must start at 0")
        if self.offsets[-1] != self.features.shape[0]:
            raise ValueError("offsets must end at len(features)")
        if self.chosen.shape != (self.offsets.shape[0] - 1,):
            raise ValueError("one chosen index per decision")

    def __len__(self) -> int:
        return int(self.chosen.shape[0])

    def slices(self):
        """Yield ``(feature_matrix, chosen_position)`` per decision."""
        for i in range(len(self)):
            lo, hi = self.offsets[i], self.offsets[i + 1]
            yield self.features[lo:hi], int(self.chosen[i])

    @classmethod
    def from_decisions(
        cls, decisions: list[tuple[np.ndarray, int]], meta: dict | None = None
    ) -> "DecisionLog":
        if not decisions:
            raise ValueError("no decisions recorded")
        mats = [np.asarray(F, dtype=np.float64) for F, _ in decisions]
        offsets = np.concatenate([[0], np.cumsum([m.shape[0] for m in mats])])
        return cls(
            features=np.vstack(mats),
            offsets=offsets,
            chosen=np.array([pos for _, pos in decisions], dtype=np.int64),
            meta=meta or {},
        )

    def save(self, path: str | Path) -> None:
        np.savez_compressed(
            path,
            features=self.features,
            offsets=self.offsets,
            chosen=self.chosen,
            meta_json=np.frombuffer(
                json.dumps(self.meta, sort_keys=True).encode(), dtype=np.uint8
            ),
        )

    @classmethod
    def load(cls, path: str | Path) -> "DecisionLog":
        with np.load(path) as z:
            meta = json.loads(z["meta_json"].tobytes().decode())
            return cls(
                features=z["features"],
                offsets=z["offsets"],
                chosen=z["chosen"],
                meta=meta,
            )


class MLPScorer:
    """``score(F) = tanh(z W1 + b1) w2 + b2`` with stored normalization.

    Parameters are plain arrays; :meth:`scores` is the only hot-path
    method and is a single fused pass over the pool.
    """

    def __init__(
        self,
        W1: np.ndarray,
        b1: np.ndarray,
        w2: np.ndarray,
        b2: float,
        mean: np.ndarray,
        std: np.ndarray,
        meta: dict | None = None,
    ) -> None:
        self.W1 = np.asarray(W1, dtype=np.float64)
        self.b1 = np.asarray(b1, dtype=np.float64)
        self.w2 = np.asarray(w2, dtype=np.float64)
        self.b2 = float(b2)
        self.mean = np.asarray(mean, dtype=np.float64)
        self.std = np.asarray(std, dtype=np.float64)
        self.meta = dict(meta or {})
        if self.W1.shape != (self.mean.shape[0], self.w2.shape[0]):
            raise ValueError("inconsistent scorer shapes")

    @property
    def n_features(self) -> int:
        return int(self.W1.shape[0])

    @property
    def hidden(self) -> int:
        return int(self.W1.shape[1])

    def scores(self, F: np.ndarray) -> np.ndarray:
        """Batched scores for a pool's feature matrix — one matmul pass."""
        z = (F - self.mean) / self.std
        return np.tanh(z @ self.W1 + self.b1) @ self.w2 + self.b2

    # ------------------------------------------------------------ persistence

    @property
    def fingerprint(self) -> str:
        """Short sha1 over the exact parameter bytes + metadata."""
        h = hashlib.sha1()
        for arr in (self.W1, self.b1, self.w2, self.mean, self.std):
            h.update(np.ascontiguousarray(arr, dtype=np.float64).tobytes())
        h.update(np.float64(self.b2).tobytes())
        h.update(json.dumps(self.meta, sort_keys=True).encode())
        return h.hexdigest()[:16]

    def save(self, path: str | Path) -> None:
        np.savez(
            path,
            W1=self.W1,
            b1=self.b1,
            w2=self.w2,
            b2=np.float64(self.b2),
            mean=self.mean,
            std=self.std,
            meta_json=np.frombuffer(
                json.dumps(self.meta, sort_keys=True).encode(), dtype=np.uint8
            ),
        )

    @classmethod
    def load(cls, path: str | Path) -> "MLPScorer":
        with np.load(path) as z:
            return cls(
                W1=z["W1"],
                b1=z["b1"],
                w2=z["w2"],
                b2=float(z["b2"]),
                mean=z["mean"],
                std=z["std"],
                meta=json.loads(z["meta_json"].tobytes().decode()),
            )


def _softmax(s: np.ndarray) -> np.ndarray:
    e = np.exp(s - s.max())
    return e / e.sum()


def train_scorer(
    log: DecisionLog,
    hidden: int = 32,
    epochs: int = 150,
    lr: float = 5e-3,
    l2: float = 1e-4,
    seed: int = 0,
) -> tuple[MLPScorer, dict]:
    """Fit an :class:`MLPScorer` to a decision log (listwise CE, Adam).

    Deterministic for a given ``(log, hyperparameters, seed)``: seeded
    init, seeded per-epoch shuffle, no other randomness.  Returns the
    scorer plus a small history dict (loss and top-1 teacher-agreement
    per logged epoch).
    """
    rng = np.random.default_rng(seed)
    nf = log.features.shape[1]
    mean = log.features.mean(axis=0)
    std = log.features.std(axis=0)
    std[std < 1e-8] = 1.0

    W1 = rng.standard_normal((nf, hidden)) / np.sqrt(nf)
    b1 = np.zeros(hidden)
    w2 = rng.standard_normal(hidden) / np.sqrt(hidden)
    b2 = 0.0
    params = [W1, b1, w2, np.array([b2])]
    m_t = [np.zeros_like(p) for p in params]
    v_t = [np.zeros_like(p) for p in params]
    beta1, beta2, eps = 0.9, 0.999, 1e-8

    decisions = [( (F - mean) / std, pos) for F, pos in log.slices()]
    order = np.arange(len(decisions))
    history = {"loss": [], "agreement": []}
    step = 0
    for epoch in range(epochs):
        rng.shuffle(order)
        total_loss = 0.0
        agree = 0
        for i in order:
            z, pos = decisions[i]
            pre = z @ params[0] + params[1]
            h = np.tanh(pre)
            s = h @ params[2] + params[3][0]
            p = _softmax(s)
            total_loss -= float(np.log(max(p[pos], 1e-300)))
            agree += int(np.argmax(s) == pos)
            # Listwise CE gradient: dL/ds = softmax - onehot(chosen).
            ds = p
            ds[pos] -= 1.0
            dpre = np.outer(ds, params[2]) * (1.0 - h * h)
            grads = [
                z.T @ dpre + l2 * params[0],
                dpre.sum(axis=0),
                h.T @ ds + l2 * params[2],
                np.array([ds.sum()]),
            ]
            step += 1
            for j, g in enumerate(grads):
                m_t[j] = beta1 * m_t[j] + (1 - beta1) * g
                v_t[j] = beta2 * v_t[j] + (1 - beta2) * g * g
                mhat = m_t[j] / (1 - beta1**step)
                vhat = v_t[j] / (1 - beta2**step)
                params[j] -= lr * mhat / (np.sqrt(vhat) + eps)
        history["loss"].append(total_loss / len(decisions))
        history["agreement"].append(agree / len(decisions))

    scorer = MLPScorer(
        W1=params[0],
        b1=params[1],
        w2=params[2],
        b2=float(params[3][0]),
        mean=mean,
        std=std,
        meta={
            "hidden": hidden,
            "epochs": epochs,
            "lr": lr,
            "l2": l2,
            "seed": seed,
            "decisions": len(log),
            "teacher": log.meta.get("teacher", "rgma"),
            "source": log.meta,
        },
    )
    return scorer, history
