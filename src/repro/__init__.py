"""repro — cost- and memory-aware Active Learning for AMR performance modeling.

A from-scratch reproduction of *"Evaluating Active Learning with Cost and
Memory Awareness"* (Duplyakin, Brown & Calhoun, 2018): Gaussian-process
surrogate models of the cost and memory of Adaptive Mesh Refinement
simulations, driven by sequential experiment selection that balances
exploration against node-hour cost and avoids configurations that would
exceed a memory limit.

Layering (bottom up):

- :mod:`repro.mesh` — forest-of-quadtrees grid management (p4est analogue).
- :mod:`repro.solver` — finite-volume Euler solver (Clawpack analogue).
- :mod:`repro.amr` — patch-based AMR driver (ForestClaw analogue).
- :mod:`repro.machine` — simulated Edison supercomputer + SLURM accounting.
- :mod:`repro.faults` — fault injection (crash/OOM/timeout/straggler/
  MaxRSS-lost) and resilient, retrying execution.
- :mod:`repro.data` — the 1920-point input space and 600-job dataset.
- :mod:`repro.gp` — Gaussian Process Regression with LML-fitted kernels.
- :mod:`repro.core` — the AL loop, the five selection policies, metrics.
- :mod:`repro.analysis` — trajectory aggregation and figure/table output.

Quickstart::

    import numpy as np
    from repro import run_campaign, random_partition, ActiveLearner, RGMA

    rng = np.random.default_rng(0)
    ds = run_campaign(rng).dataset
    part = random_partition(rng, len(ds), n_init=50, n_test=200)
    policy = RGMA(memory_limit_MB=ds.memory_limit())
    trajectory = ActiveLearner(ds, part, policy, rng).run()
    print(trajectory.final_rmse_cost, trajectory.total_regret)
"""

from repro import obs
from repro.core import (
    ALConfig,
    ActiveLearner,
    BatchConfig,
    BatchResult,
    MaxSigma,
    MinPred,
    POLICIES,
    Partition,
    RGMA,
    RandGoodness,
    RandUniform,
    Trajectory,
    TrajectorySpec,
    random_partition,
    run_batch,
    run_trajectories,
)
from repro.data import (
    Dataset,
    ParameterSpace,
    TABLE1_SPACE,
    run_campaign,
)
from repro.faults import (
    AcquisitionFaultModel,
    FailurePolicy,
    FaultConfig,
    FaultEvent,
    FaultKind,
    ResilientJobRunner,
    RetryPolicy,
)
from repro.gp import GPRegressor, default_kernel
from repro.machine import EDISON, JobConfig, JobRunner

__version__ = "1.0.0"

__all__ = [
    "ALConfig",
    "ActiveLearner",
    "BatchConfig",
    "BatchResult",
    "MaxSigma",
    "MinPred",
    "POLICIES",
    "Partition",
    "RGMA",
    "RandGoodness",
    "RandUniform",
    "Trajectory",
    "TrajectorySpec",
    "random_partition",
    "run_batch",
    "run_trajectories",
    "obs",
    "Dataset",
    "ParameterSpace",
    "TABLE1_SPACE",
    "run_campaign",
    "AcquisitionFaultModel",
    "FailurePolicy",
    "FaultConfig",
    "FaultEvent",
    "FaultKind",
    "ResilientJobRunner",
    "RetryPolicy",
    "GPRegressor",
    "default_kernel",
    "EDISON",
    "JobConfig",
    "JobRunner",
    "__version__",
]
