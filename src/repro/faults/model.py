"""The fault model: what can go wrong with a job on the simulated machine.

The paper's dataset was shaped by a real machine failure — SLURM reported
``MaxRSS = 0`` for the authors' least expensive jobs, costing them 1K-612
records — and production campaigns on shared machines see more than that
one mode.  This module defines the full menu:

- ``CRASH`` — the job dies partway through (node failure, library abort).
- ``OOM`` — the per-node footprint exceeds node DRAM and the OOM killer
  fires (Edison: 64 GB/node).
- ``TIMEOUT`` — the job hits the queue's wall-clock limit and is killed.
- ``STRAGGLER`` — a slow node stretches the run; the job *completes* but
  costs more (and may subsequently hit the wall-clock limit).
- ``RSS_LOST`` — the accounting bug: the job completes, MaxRSS comes back
  zero.  A generalization of :class:`repro.machine.accounting.SlurmAccounting`
  with an independently configurable threshold and probability.

:class:`FaultInjector` applies a :class:`FaultConfig` to a truthful
:class:`~repro.machine.accounting.JobRecord` and reports what struck as a
structured :class:`FaultEvent`.  Determinism contract: for a given config
the injector consumes a *fixed* number of RNG draws per inspection
(independent of which faults fire), and a disabled config consumes none —
so campaigns with faults switched off are bit-identical to runs that never
imported this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.machine.accounting import JobRecord


class FaultKind(str, Enum):
    """What struck a job attempt (SLURM-state-like vocabulary)."""

    CRASH = "crash"  # NODE_FAIL / generic FAILED
    OOM = "oom"  # OUT_OF_MEMORY
    TIMEOUT = "timeout"  # TIMEOUT
    STRAGGLER = "straggler"  # completed, but slowed
    RSS_LOST = "rss_lost"  # COMPLETED with MaxRSS=0 (accounting bug)


#: SLURM ``State`` string each fault kind maps to on the *final* record.
EXIT_STATES = {
    FaultKind.CRASH: "NODE_FAIL",
    FaultKind.OOM: "OUT_OF_MEMORY",
    FaultKind.TIMEOUT: "TIMEOUT",
    FaultKind.STRAGGLER: "COMPLETED",
    FaultKind.RSS_LOST: "COMPLETED",
}


@dataclass(frozen=True, slots=True)
class FaultConfig:
    """Per-campaign fault probabilities and limits.

    All faults default off; :meth:`enabled` is False for the default
    instance, and every consumer skips the fault layer entirely (zero RNG
    draws) in that case.

    Attributes
    ----------
    crash_probability : float
        Per-attempt probability of a mid-run crash.
    crash_wall_fraction : float
        Fraction of the would-be wall time elapsed (and charged) when a
        crash strikes.
    oom_memory_limit_MB : float, optional
        Per-process MaxRSS at which the OOM killer fires; None disables.
        Set from :attr:`repro.machine.spec.MachineSpec.mem_per_node_GB`
        divided by ranks-per-node for an Edison-faithful limit, or lower
        to exercise the resubmission path.
    timeout_wall_seconds : float, optional
        Queue wall-clock limit; jobs reaching it are killed (and charged
        the full limit).  None disables.
    straggler_probability : float
        Per-attempt probability of landing on a slow node.
    straggler_slowdown : float
        Wall-clock multiplier a straggler suffers (> 1).
    rss_lost_wall_threshold_s : float
        Jobs shorter than this are eligible for the MaxRSS=0 bug
        (the paper's threshold: 139 s; 0 disables).
    rss_lost_probability : float
        Probability an eligible job loses its MaxRSS.
    """

    crash_probability: float = 0.0
    crash_wall_fraction: float = 0.5
    oom_memory_limit_MB: float | None = None
    timeout_wall_seconds: float | None = None
    straggler_probability: float = 0.0
    straggler_slowdown: float = 4.0
    rss_lost_wall_threshold_s: float = 0.0
    rss_lost_probability: float = 0.0

    def __post_init__(self) -> None:
        for name in ("crash_probability", "straggler_probability", "rss_lost_probability"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if not 0.0 < self.crash_wall_fraction <= 1.0:
            raise ValueError("crash_wall_fraction must be in (0, 1]")
        if self.oom_memory_limit_MB is not None and self.oom_memory_limit_MB <= 0:
            raise ValueError("oom_memory_limit_MB must be positive")
        if self.timeout_wall_seconds is not None and self.timeout_wall_seconds <= 0:
            raise ValueError("timeout_wall_seconds must be positive")
        if self.straggler_slowdown <= 1.0:
            raise ValueError("straggler_slowdown must exceed 1")
        if self.rss_lost_wall_threshold_s < 0:
            raise ValueError("rss_lost_wall_threshold_s must be non-negative")

    @property
    def enabled(self) -> bool:
        """True when at least one fault can fire."""
        return (
            self.crash_probability > 0.0
            or self.oom_memory_limit_MB is not None
            or self.timeout_wall_seconds is not None
            or self.straggler_probability > 0.0
            or (self.rss_lost_probability > 0.0 and self.rss_lost_wall_threshold_s > 0.0)
        )

    @classmethod
    def disabled(cls) -> "FaultConfig":
        """The explicit no-faults config (bit-identical execution)."""
        return cls()

    @classmethod
    def paper_bug_only(cls) -> "FaultConfig":
        """Only the accounting bug the authors actually hit (Sec. V-A)."""
        return cls(rss_lost_wall_threshold_s=139.0, rss_lost_probability=0.55)


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One structured row of the fault stream.

    Emitted by :class:`FaultInjector` (machine-level faults, ``job_id`` is
    the scheduler id and ``attempt`` the resubmission count) and by the AL
    loop (acquisition-level faults, ``job_id`` is the dataset row and
    ``attempt`` the AL iteration).

    Attributes
    ----------
    job_id : int
    attempt : int
        0-based attempt (or AL iteration) the fault struck.
    kind : FaultKind
    lost_wall_seconds : float
        Wall-clock the attempt burned before dying (0 for RSS_LOST —
        the job completed, only the measurement was lost).
    nodes : int
        Allocation width, for charging the waste in node-hours.
    backoff_seconds : float
        Queue delay the retry policy imposed after this fault.
    detail : str
        Free-form context ("resubmitted at p=16", "slowdown x4.0", ...).
    """

    job_id: int
    attempt: int
    kind: FaultKind
    lost_wall_seconds: float = 0.0
    nodes: int = 1
    backoff_seconds: float = 0.0
    detail: str = ""

    @property
    def lost_node_hours(self) -> float:
        """Node-hours the fault wasted (the regret metric's currency)."""
        return self.lost_wall_seconds * self.nodes / 3600.0


@dataclass(frozen=True, slots=True)
class Inspection:
    """Outcome of passing one attempt through the injector.

    ``record`` is the attempt as the accounting stream will see it (wall
    capped at a timeout, RSS zeroed by the bug, ``failed``/``exit_state``
    set for fatal faults).  ``fault`` is None for a clean completion.
    ``fatal`` distinguishes faults that killed the job (retry candidates)
    from degradations the job survived (straggler slowdown, lost RSS).
    """

    record: JobRecord
    fault: FaultKind | None = None
    fatal: bool = False


class FaultInjector:
    """Applies a :class:`FaultConfig` to truthful job measurements.

    Evaluation order mirrors how the real failure modes preempt each
    other: a crash kills the job before memory or the wall clock matter;
    the OOM killer fires before the queue limit can; a straggler only
    matters for a job that survived everything else, and can push it over
    the timeout; the accounting bug strikes only completed jobs.
    """

    def __init__(self, config: FaultConfig) -> None:
        self.config = config

    def inspect(self, record: JobRecord, rng: np.random.Generator) -> Inspection:
        """Decide this attempt's fate; fixed RNG consumption (3 draws)."""
        cfg = self.config
        if not cfg.enabled:
            return Inspection(record=record)
        # Fixed draw count regardless of which fault fires, so one fault's
        # probability never perturbs the stream the next job sees.
        u_crash, u_straggle, u_rss = rng.random(3)

        if u_crash < cfg.crash_probability:
            wasted = record.wall_seconds * cfg.crash_wall_fraction
            return Inspection(
                record=record.evolve(
                    wall_seconds=wasted, failed=True, exit_state="NODE_FAIL"
                ),
                fault=FaultKind.CRASH,
                fatal=True,
            )

        if (
            cfg.oom_memory_limit_MB is not None
            and record.max_rss_MB >= cfg.oom_memory_limit_MB
        ):
            # The kill happens as the footprint peaks, near the end of the
            # regrid that overflowed: charge the full wall.
            return Inspection(
                record=record.evolve(failed=True, exit_state="OUT_OF_MEMORY"),
                fault=FaultKind.OOM,
                fatal=True,
            )

        wall = record.wall_seconds
        straggled = u_straggle < cfg.straggler_probability
        if straggled:
            wall *= cfg.straggler_slowdown

        if cfg.timeout_wall_seconds is not None and wall >= cfg.timeout_wall_seconds:
            return Inspection(
                record=record.evolve(
                    wall_seconds=cfg.timeout_wall_seconds,
                    failed=True,
                    exit_state="TIMEOUT",
                ),
                fault=FaultKind.TIMEOUT,
                fatal=True,
            )

        if straggled:
            record = record.evolve(wall_seconds=wall)

        if (
            record.wall_seconds < cfg.rss_lost_wall_threshold_s
            and u_rss < cfg.rss_lost_probability
        ):
            return Inspection(
                record=record.evolve(max_rss_MB=0.0),
                fault=FaultKind.RSS_LOST,
                fatal=False,
            )

        if straggled:
            return Inspection(record=record, fault=FaultKind.STRAGGLER, fatal=False)
        return Inspection(record=record)
