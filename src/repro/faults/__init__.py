"""Fault injection and resilient execution for the simulated campaign.

The paper's dataset already carries one real machine failure — the
MaxRSS=0 SLURM reporting bug that cost the authors 1K-612 records.  This
subpackage generalizes that into a configurable fault layer and the
machinery to survive it:

- :class:`FaultConfig` / :class:`FaultInjector` — job crash, OOM kill,
  wall-clock timeout, straggler slowdown, and the accounting bug, applied
  to truthful :class:`~repro.machine.accounting.JobRecord` measurements.
- :class:`FaultEvent` — the structured fault stream (what struck, when,
  what it wasted) threaded through campaign results and AL trajectories.
- :class:`RetryPolicy` / :class:`ResilientJobRunner` — per-fault retry
  with capped exponential backoff and resubmission-at-higher-``p`` for
  OOM kills.
- :class:`AcquisitionFaultModel` / :class:`FailurePolicy` — failures at
  the AL acquisition boundary and the loop's response (drop / next-best /
  impute), consumed by :class:`repro.core.loop.ActiveLearner`.

Everything defaults *off*, and disabled fault layers consume zero RNG
draws: fault-free runs are bit-identical to pre-fault-layer behaviour.
"""

from repro.faults.model import (
    EXIT_STATES,
    FaultConfig,
    FaultEvent,
    FaultInjector,
    FaultKind,
    Inspection,
)
from repro.faults.resilient import ResilientJobRunner, ResilientRun, RetryPolicy
from repro.faults.acquisition import (
    AcquisitionFaultModel,
    AcquisitionOutcome,
    FailurePolicy,
)

__all__ = [
    "EXIT_STATES",
    "FaultConfig",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "Inspection",
    "ResilientJobRunner",
    "ResilientRun",
    "RetryPolicy",
    "AcquisitionFaultModel",
    "AcquisitionOutcome",
    "FailurePolicy",
]
