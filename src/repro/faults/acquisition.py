"""Acquisition-level faults: when "run the experiment" goes wrong mid-AL.

The offline AL simulator of Algorithm 1 looks selected samples up in a
precomputed dataset, so in the paper an acquisition can never fail.  A
live campaign is different: the job backing an acquisition can crash, or
complete but lose its MaxRSS to the accounting bug — exactly the failure
the authors absorbed *before* AL by dropping rows.  This module models
both at the acquisition boundary so :class:`~repro.core.loop.ActiveLearner`
can be exercised against them.

Determinism contract: :meth:`AcquisitionFaultModel.strike` consumes a
fixed two RNG draws per acquisition, and a disabled model (both
probabilities zero) is never consulted by the loop — fault-free
trajectories are bit-identical to pre-fault-layer behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np


class FailurePolicy(str, Enum):
    """How the AL loop responds to a failed or censored acquisition."""

    DROP = "drop"  # discard the sample; iteration is consumed
    NEXT_BEST = "next_best"  # re-ask the policy for a replacement now
    IMPUTE = "impute"  # train on the GP posterior mean instead


class AcquisitionOutcome(str, Enum):
    """What one acquisition attempt returned."""

    OK = "ok"
    CRASHED = "crashed"  # no usable responses; cost still spent
    CENSORED = "censored"  # cost observed, MaxRSS lost (RSS=0 bug)


@dataclass(frozen=True, slots=True)
class AcquisitionFaultModel:
    """Per-acquisition failure probabilities for the AL loop.

    Attributes
    ----------
    crash_probability : float
        Probability the selected experiment crashes: neither response is
        observed, but the node-hours are spent (charged to cumulative
        cost, and to regret under a memory limit).
    censor_probability : float
        Probability the experiment completes but loses its MaxRSS —
        the cost response is usable, the memory response is not.
    """

    crash_probability: float = 0.0
    censor_probability: float = 0.0

    def __post_init__(self) -> None:
        for name in ("crash_probability", "censor_probability"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")

    @property
    def enabled(self) -> bool:
        return self.crash_probability > 0.0 or self.censor_probability > 0.0

    def strike(self, rng: np.random.Generator) -> AcquisitionOutcome:
        """Fate of one acquisition; fixed RNG consumption (2 draws)."""
        u_crash, u_censor = rng.random(2)
        if u_crash < self.crash_probability:
            return AcquisitionOutcome.CRASHED
        if u_censor < self.censor_probability:
            return AcquisitionOutcome.CENSORED
        return AcquisitionOutcome.OK
