"""Resilient job execution: retries, backoff, and resubmission policies.

A production campaign does not stop at the first ``NODE_FAIL``: it
resubmits with a capped exponential backoff, and an ``OUT_OF_MEMORY`` kill
is answered by resubmitting wider (more nodes, smaller per-process
footprint) — the standard operational response on machines like Edison
where memory per node is fixed.  :class:`ResilientJobRunner` wraps the
plain :class:`~repro.machine.runner.JobRunner` with exactly that logic and
emits every fault as a structured
:class:`~repro.faults.model.FaultEvent`.

With a disabled :class:`~repro.faults.model.FaultConfig` the wrapper is a
zero-overhead pass-through — one ``JobRunner.run`` call, no extra RNG
draws — so fault-free campaigns stay bit-identical to the plain path.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro import obs
from repro.faults.model import FaultConfig, FaultEvent, FaultInjector, FaultKind
from repro.machine.accounting import JobRecord
from repro.machine.runner import JobConfig, JobRunner


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How the campaign reacts to each fault kind.

    Attributes
    ----------
    max_retries : int
        Resubmissions allowed after the first attempt (0 = fail fast).
    backoff_base_s, backoff_factor, backoff_cap_s : float
        Queue-side delay before attempt ``k`` (k >= 1):
        ``min(cap, base * factor ** (k - 1))`` — capped exponential.
    escalate_p_on_oom : bool
        Resubmit OOM-killed jobs at double the node count (halving the
        per-process footprint) instead of repeating the doomed shape.
    p_max : int
        Ceiling for OOM escalation (the dataset's largest allocation).
    retry_rss_lost : bool
        Re-run jobs whose MaxRSS was lost to the accounting bug.  Off by
        default — the authors discovered the bug in post-processing and
        dropped the rows, which is what the paper's Table III conditions
        assume.
    """

    max_retries: int = 3
    backoff_base_s: float = 30.0
    backoff_factor: float = 2.0
    backoff_cap_s: float = 600.0
    escalate_p_on_oom: bool = True
    p_max: int = 32
    retry_rss_lost: bool = False

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff times must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.p_max < 1:
            raise ValueError("p_max must be positive")

    def backoff_seconds(self, attempt: int) -> float:
        """Delay imposed before resubmission number ``attempt`` (>= 1)."""
        if attempt < 1:
            return 0.0
        return float(
            min(self.backoff_cap_s, self.backoff_base_s * self.backoff_factor ** (attempt - 1))
        )

    def should_retry(self, fault: FaultKind | None, fatal: bool, attempt: int) -> bool:
        """Whether attempt number ``attempt`` (0-based) is resubmitted.

        The shared resubmission rule of every executor that consults this
        policy (:class:`ResilientJobRunner`, the campaign service's slice
        scheduler): fatal faults retry, a kept-but-unusable ``RSS_LOST``
        measurement retries only when :attr:`retry_rss_lost` is set, and
        nothing retries past :attr:`max_retries`.
        """
        if fault is None:
            return False
        retryable = fatal or (fault is FaultKind.RSS_LOST and self.retry_rss_lost)
        return retryable and attempt < self.max_retries


@dataclass(frozen=True)
class ResilientRun:
    """Everything one (possibly multi-attempt) job execution produced.

    Attributes
    ----------
    record : JobRecord
        The final accounting row — the successful attempt, or the last
        failed one (``failed=True``) when retries ran out.
    events : tuple of FaultEvent
        One entry per fault struck, in attempt order.
    attempts : int
        Total submissions (1 = clean first run).
    wasted_node_hours : float
        Node-hours burned by attempts that did not produce the final
        record (the cost a cumulative-regret metric charges).
    queue_wait_seconds : float
        Total backoff delay the retry policy imposed.
    """

    record: JobRecord
    events: tuple[FaultEvent, ...] = ()
    attempts: int = 1
    wasted_node_hours: float = 0.0
    queue_wait_seconds: float = 0.0

    @property
    def succeeded(self) -> bool:
        return not self.record.failed


class ResilientJobRunner:
    """A :class:`JobRunner` that survives the fault model.

    Parameters
    ----------
    runner : JobRunner
        The underlying (truthful) executor.
    faults : FaultConfig
        What can strike each attempt.
    retry : RetryPolicy
        How to respond when something does.
    """

    def __init__(
        self,
        runner: JobRunner | None = None,
        faults: FaultConfig | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.runner = runner if runner is not None else JobRunner()
        self.faults = faults if faults is not None else FaultConfig.disabled()
        self.retry = retry if retry is not None else RetryPolicy()
        self._injector = FaultInjector(self.faults)

    def run(
        self, config: JobConfig, rng: np.random.Generator, job_id: int = 0
    ) -> ResilientRun:
        """Execute ``config``, retrying per policy; never raises on faults."""
        if not self.faults.enabled:
            return ResilientRun(record=self.runner.run(config, rng, job_id=job_id))

        events: list[FaultEvent] = []
        wasted = 0.0
        queue_wait = 0.0
        current = config
        attempt = 0
        with obs.span("resilient_run", cat="faults", job_id=job_id) as run_span:
            while True:
                with obs.span("attempt", cat="faults", attempt=attempt, p=current.p):
                    record = self.runner.run(current, rng, job_id=job_id)
                    outcome = self._injector.inspect(record, rng)
                record = outcome.record
                if outcome.fault is None:
                    run_span.annotate(attempts=attempt + 1, wasted_node_hours=wasted)
                    return ResilientRun(
                        record=record,
                        events=tuple(events),
                        attempts=attempt + 1,
                        wasted_node_hours=wasted,
                        queue_wait_seconds=queue_wait,
                    )

                if not self.retry.should_retry(outcome.fault, outcome.fatal, attempt):
                    # Survivable degradation (straggler, kept RSS_LOST) or
                    # retries exhausted: this attempt is the final record.
                    retryable = outcome.fatal or (
                        outcome.fault is FaultKind.RSS_LOST and self.retry.retry_rss_lost
                    )
                    detail = "gave up" if retryable else "kept"
                    obs.event(
                        "fault",
                        cat="faults",
                        kind=outcome.fault.name,
                        attempt=attempt,
                        detail=detail,
                    )
                    events.append(
                        FaultEvent(
                            job_id=job_id,
                            attempt=attempt,
                            kind=outcome.fault,
                            lost_wall_seconds=record.wall_seconds if outcome.fatal else 0.0,
                            nodes=record.nodes,
                            detail=detail,
                        )
                    )
                    run_span.annotate(attempts=attempt + 1, wasted_node_hours=wasted)
                    return ResilientRun(
                        record=record,
                        events=tuple(events),
                        attempts=attempt + 1,
                        wasted_node_hours=wasted,
                        queue_wait_seconds=queue_wait,
                    )

                # The attempt is discarded and resubmitted: charge its cost
                # (an RSS_LOST re-run also spent real node-hours — the job
                # completed, only its measurement was unusable).
                wasted += record.cost_node_hours
                backoff = self.retry.backoff_seconds(attempt + 1)
                queue_wait += backoff
                detail = "resubmitted"
                if outcome.fault is FaultKind.OOM and self.retry.escalate_p_on_oom:
                    new_p = min(current.p * 2, self.retry.p_max)
                    if new_p > current.p:
                        current = replace(current, p=new_p)
                        detail = f"resubmitted at p={new_p}"
                obs.event(
                    "retry",
                    cat="faults",
                    kind=outcome.fault.name,
                    attempt=attempt,
                    backoff_seconds=backoff,
                    detail=detail,
                )
                events.append(
                    FaultEvent(
                        job_id=job_id,
                        attempt=attempt,
                        kind=outcome.fault,
                        lost_wall_seconds=record.wall_seconds if outcome.fatal else 0.0,
                        nodes=record.nodes,
                        backoff_seconds=backoff,
                        detail=detail,
                    )
                )
                attempt += 1
