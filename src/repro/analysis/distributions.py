"""Violin-plot statistics of selected-sample cost distributions (Fig. 2).

Fig. 2 shows, for each algorithm, the distribution of the *actual* costs of
the samples selected in the first 150 AL iterations of one trajectory: the
violin width profile (relative frequency along the cost axis), the
interquartile range, and the median.  This module computes those summaries
numerically so the benchmark harness can print and compare them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ViolinStats:
    """Numeric content of one violin in Fig. 2.

    Attributes
    ----------
    label : str
        Algorithm name.
    median : float
    q1, q3 : float
        Interquartile range endpoints (the thick vertical line).
    minimum, maximum : float
    grid : ndarray
        Cost-axis sample points of the width profile (log-spaced).
    density : ndarray
        Relative frequency at each grid point (unit peak).
    n : int
        Number of selections summarized.
    """

    label: str
    median: float
    q1: float
    q3: float
    minimum: float
    maximum: float
    grid: np.ndarray
    density: np.ndarray
    n: int

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1


def _log_kde(values: np.ndarray, grid: np.ndarray) -> np.ndarray:
    """Gaussian KDE in log10 space with Silverman bandwidth, unit peak."""
    logs = np.log10(values)
    n = logs.size
    std = logs.std(ddof=1) if n > 1 else 0.0
    if std == 0.0:
        density = np.zeros_like(grid)
        density[np.argmin(np.abs(np.log10(grid) - logs[0]))] = 1.0
        return density
    bw = 1.06 * std * n ** (-0.2)
    lg = np.log10(grid)
    z = (lg[:, None] - logs[None, :]) / bw
    density = np.exp(-0.5 * z * z).sum(axis=1)
    peak = density.max()
    return density / peak if peak > 0 else density


def violin_stats(
    label: str, costs: np.ndarray, grid_points: int = 64
) -> ViolinStats:
    """Summarize one algorithm's selected-cost distribution.

    Parameters
    ----------
    costs : ndarray
        Actual costs of the selected samples (one trajectory's first-N
        selections in the paper's figure).
    """
    costs = np.asarray(costs, dtype=np.float64)
    if costs.size == 0:
        raise ValueError("no costs to summarize")
    if np.any(costs <= 0):
        raise ValueError("costs must be positive")
    q1, med, q3 = np.percentile(costs, [25, 50, 75])
    lo, hi = costs.min(), costs.max()
    grid = np.logspace(np.log10(lo), np.log10(hi), grid_points) if hi > lo else np.array([lo])
    return ViolinStats(
        label=label,
        median=float(med),
        q1=float(q1),
        q3=float(q3),
        minimum=float(lo),
        maximum=float(hi),
        grid=grid,
        density=_log_kde(costs, grid),
        n=int(costs.size),
    )


def cost_distribution_table(stats: list[ViolinStats]) -> str:
    """Plain-text Fig. 2: one row per algorithm with the violin summary."""
    lines = [
        f"{'algorithm':<16} {'n':>4} {'min':>9} {'q1':>9} {'median':>9} "
        f"{'q3':>9} {'max':>9} {'IQR':>9}"
    ]
    lines.append("-" * len(lines[0]))
    for s in stats:
        lines.append(
            f"{s.label:<16} {s.n:>4d} {s.minimum:>9.4f} {s.q1:>9.4f} "
            f"{s.median:>9.4f} {s.q3:>9.4f} {s.maximum:>9.4f} {s.iqr:>9.4f}"
        )
    return "\n".join(lines)
