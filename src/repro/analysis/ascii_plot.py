"""ASCII line plots: render figure series as text charts.

The environment has no plotting stack, so the benchmark harness renders
each figure's series as a character grid — enough to see the *shape* the
paper's plots show (regret flattening, RMSE decay, trade-off frontiers).
"""

from __future__ import annotations

import numpy as np

#: Glyphs cycled across series, in plotting order.
SERIES_GLYPHS = "ox+*#@%&"


def _scale(v: np.ndarray, lo: float, hi: float, n: int) -> np.ndarray:
    """Map values in [lo, hi] to integer cells 0..n-1 (clipped)."""
    if hi <= lo:
        return np.zeros(v.shape, dtype=int)
    t = (v - lo) / (hi - lo)
    return np.clip((t * (n - 1)).round().astype(int), 0, n - 1)


def line_plot(
    series: dict[str, tuple[np.ndarray, np.ndarray]],
    width: int = 64,
    height: int = 16,
    logx: bool = False,
    logy: bool = False,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one or more (x, y) series on a shared character grid.

    Parameters
    ----------
    series : dict
        Label -> (x, y) arrays.  NaNs are dropped per point.
    width, height : int
        Plot area size in characters (axes add a margin).
    logx, logy : bool
        Logarithmic axes; non-positive values are dropped.

    Returns
    -------
    str
        The rendered chart, including a legend line.
    """
    if not series:
        raise ValueError("no series to plot")
    if width < 8 or height < 4:
        raise ValueError("plot area too small")

    cleaned: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for label, (x, y) in series.items():
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.shape != y.shape:
            raise ValueError(f"series {label!r}: x and y must align")
        keep = np.isfinite(x) & np.isfinite(y)
        if logx:
            keep &= x > 0
        if logy:
            keep &= y > 0
        if keep.any():
            xs = np.log10(x[keep]) if logx else x[keep]
            ys = np.log10(y[keep]) if logy else y[keep]
            cleaned[label] = (xs, ys)
    if not cleaned:
        raise ValueError("all points dropped (NaN or non-positive on log axes)")

    all_x = np.concatenate([v[0] for v in cleaned.values()])
    all_y = np.concatenate([v[1] for v in cleaned.values()])
    x_lo, x_hi = float(all_x.min()), float(all_x.max())
    y_lo, y_hi = float(all_y.min()), float(all_y.max())

    grid = [[" "] * width for _ in range(height)]
    for (label, (xs, ys)), glyph in zip(cleaned.items(), SERIES_GLYPHS):
        cols = _scale(xs, x_lo, x_hi, width)
        rows = _scale(ys, y_lo, y_hi, height)
        for c, r in zip(cols, rows):
            grid[height - 1 - r][c] = glyph

    def fmt(v: float, is_log: bool) -> str:
        return f"1e{v:.1f}" if is_log else f"{v:.3g}"

    top = f"{fmt(y_hi, logy):>8} |"
    bot = f"{fmt(y_lo, logy):>8} |"
    lines = []
    for i, row in enumerate(grid):
        prefix = top if i == 0 else (bot if i == height - 1 else " " * 8 + " |")
        lines.append(prefix + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(
        " " * 10
        + f"{fmt(x_lo, logx)}  ...  {x_label}  ...  {fmt(x_hi, logx)}   ({y_label})"
    )
    legend = "  ".join(
        f"{glyph}={label}" for (label, _), glyph in zip(cleaned.items(), SERIES_GLYPHS)
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)


def sparkline(y, width: int = 40) -> str:
    """One-line trend of ``y`` using block glyphs (NaNs become spaces)."""
    ramp = "▁▂▃▄▅▆▇█"
    y = np.asarray(y, dtype=np.float64)
    if y.size == 0:
        return ""
    if y.size > width:
        idx = np.linspace(0, y.size - 1, width).astype(int)
        y = y[idx]
    finite = y[np.isfinite(y)]
    if finite.size == 0:
        return " " * y.size
    lo, hi = float(finite.min()), float(finite.max())
    cells = _scale(np.where(np.isfinite(y), y, lo), lo, hi, len(ramp))
    return "".join(" " if not np.isfinite(v) else ramp[c] for v, c in zip(y, cells))
