"""Cross-trajectory aggregation: median and quantile curves per iteration.

Trajectories from different partitions can have different lengths (RGMA
terminates early); curves are aligned on iteration index and aggregated
over however many trajectories reach each iteration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.trajectory import Trajectory

#: Metrics extractable from a trajectory by name.
METRIC_ATTRS = (
    "rmse_cost",
    "rmse_mem",
    "rmse_cost_weighted",
    "cumulative_cost",
    "cumulative_regret",
    "costs",
    "mems",
)


def stack_metric(trajectories: list[Trajectory], metric: str) -> np.ndarray:
    """(n_traj, max_len) array of ``metric``, NaN-padded past each end."""
    if metric not in METRIC_ATTRS:
        raise ValueError(f"unknown metric {metric!r}; choose from {METRIC_ATTRS}")
    if not trajectories:
        raise ValueError("no trajectories")
    rows = [getattr(t, metric) for t in trajectories]
    width = max(r.size for r in rows)
    out = np.full((len(rows), width), np.nan)
    for i, r in enumerate(rows):
        out[i, : r.size] = r
    return out


def median_curve(trajectories: list[Trajectory], metric: str) -> np.ndarray:
    """Median of ``metric`` at each iteration over surviving trajectories."""
    stacked = stack_metric(trajectories, metric)
    return np.nanmedian(stacked, axis=0)


def quantile_band(
    trajectories: list[Trajectory], metric: str, q_lo: float = 0.25, q_hi: float = 0.75
) -> tuple[np.ndarray, np.ndarray]:
    """(lower, upper) quantile curves of ``metric`` per iteration."""
    if not 0 <= q_lo < q_hi <= 1:
        raise ValueError("need 0 <= q_lo < q_hi <= 1")
    stacked = stack_metric(trajectories, metric)
    return (
        np.nanquantile(stacked, q_lo, axis=0),
        np.nanquantile(stacked, q_hi, axis=0),
    )


@dataclass(frozen=True)
class CurveBundle:
    """Median + IQR band of one metric for one policy."""

    label: str
    metric: str
    median: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    n_trajectories: int

    def at(self, iteration: int) -> tuple[float, float, float]:
        """(median, lower, upper) at an iteration (NaN past all ends)."""
        if iteration >= self.median.size:
            return (float("nan"),) * 3
        return (
            float(self.median[iteration]),
            float(self.lower[iteration]),
            float(self.upper[iteration]),
        )


def aggregate_policy_curves(
    by_policy: dict[str, list[Trajectory]], metric: str
) -> dict[str, CurveBundle]:
    """One :class:`CurveBundle` per policy for the requested metric."""
    out: dict[str, CurveBundle] = {}
    for name, trajs in by_policy.items():
        lo, hi = quantile_band(trajs, metric)
        out[name] = CurveBundle(
            label=name,
            metric=metric,
            median=median_curve(trajs, metric),
            lower=lo,
            upper=hi,
            n_trajectories=len(trajs),
        )
    return out
