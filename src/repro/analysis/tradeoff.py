"""Cost–error trade-off curves: RMSE as a function of cumulative cost.

The paper's central comparison is not "RMSE after k iterations" but "RMSE
per node-hour spent": a cheap-leaning policy may need more iterations yet
reach a given accuracy at a fraction of the cost.  Each trajectory traces a
monotone cumulative-cost axis; curves from different trajectories are
compared by interpolating RMSE onto a common cost grid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.trajectory import Trajectory


@dataclass(frozen=True)
class TradeoffCurve:
    """Median RMSE over trajectories, sampled on a common cost grid."""

    label: str
    cost_grid: np.ndarray
    rmse_median: np.ndarray
    rmse_lower: np.ndarray
    rmse_upper: np.ndarray
    n_trajectories: int


def interpolate_rmse_at_cost(
    traj: Trajectory, cost_grid: np.ndarray, which: str = "cost"
) -> np.ndarray:
    """RMSE of one trajectory evaluated at given cumulative-cost points.

    Uses previous-value (step) interpolation — the model's accuracy at
    budget ``b`` is whatever the last completed retraining achieved.
    Points beyond the trajectory's total spend are NaN; points before the
    first iteration get the first recorded RMSE.
    """
    if which not in ("cost", "mem"):
        raise ValueError("which must be 'cost' or 'mem'")
    cc = traj.cumulative_cost
    rmse = traj.rmse_cost if which == "cost" else traj.rmse_mem
    if cc.size == 0:
        return np.full_like(np.asarray(cost_grid, dtype=np.float64), np.nan)
    grid = np.asarray(cost_grid, dtype=np.float64)
    pos = np.searchsorted(cc, grid, side="right") - 1
    out = np.empty_like(grid)
    for i, p in enumerate(pos):
        if grid[i] > cc[-1]:
            out[i] = np.nan
        elif p < 0:
            out[i] = rmse[0]
        else:
            out[i] = rmse[p]
    return out


def tradeoff_curve(
    label: str,
    trajectories: list[Trajectory],
    cost_grid: np.ndarray | None = None,
    which: str = "cost",
    grid_points: int = 40,
) -> TradeoffCurve:
    """Median (and IQR) RMSE vs cumulative cost for one policy.

    ``cost_grid`` defaults to a log-spaced grid spanning the cheapest
    first-selection to the largest total spend across trajectories.
    """
    if not trajectories:
        raise ValueError("no trajectories")
    if cost_grid is None:
        starts = [t.cumulative_cost[0] for t in trajectories if len(t) > 0]
        ends = [t.total_cost for t in trajectories if len(t) > 0]
        if not starts:
            raise ValueError("all trajectories are empty")
        cost_grid = np.logspace(
            np.log10(max(min(starts), 1e-12)), np.log10(max(ends)), grid_points
        )
    rows = np.vstack(
        [interpolate_rmse_at_cost(t, cost_grid, which) for t in trajectories]
    )
    # Columns where every trajectory has finished spending are all-NaN;
    # they legitimately aggregate to NaN without the numpy warning.
    import warnings

    with warnings.catch_warnings():
        warnings.filterwarnings("ignore", message="All-NaN slice", category=RuntimeWarning)
        median = np.nanmedian(rows, axis=0)
        lower = np.nanquantile(rows, 0.25, axis=0)
        upper = np.nanquantile(rows, 0.75, axis=0)
    return TradeoffCurve(
        label=label,
        cost_grid=np.asarray(cost_grid, dtype=np.float64),
        rmse_median=median,
        rmse_lower=lower,
        rmse_upper=upper,
        n_trajectories=len(trajectories),
    )
