"""Plain-text table and series rendering for the benchmark harness.

The harness regenerates every table and figure of the paper as text: rows
for tables, sampled series for figures.  These helpers keep the formatting
consistent across benchmarks.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    float_fmt: str = "{:.4g}",
    min_width: int = 8,
) -> str:
    """Render rows as a fixed-width text table."""
    def cell(v) -> str:
        if isinstance(v, float) or isinstance(v, np.floating):
            return float_fmt.format(v)
        return str(v)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [
        max(min_width, len(h), *(len(r[j]) for r in str_rows)) if str_rows else max(min_width, len(h))
        for j, h in enumerate(headers)
    ]
    out = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    out.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        out.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(out)


def format_series(
    label: str,
    x: np.ndarray,
    y: np.ndarray,
    x_name: str = "x",
    y_name: str = "y",
    max_points: int = 12,
) -> str:
    """Render one figure series as a downsampled text block."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError("x and y must align")
    if x.size == 0:
        return f"{label}: (empty)"
    if x.size > max_points:
        idx = np.unique(np.linspace(0, x.size - 1, max_points).astype(int))
    else:
        idx = np.arange(x.size)
    pairs = "  ".join(f"({x[i]:.4g}, {y[i]:.4g})" for i in idx)
    return f"{label} [{x_name} -> {y_name}]: {pairs}"
