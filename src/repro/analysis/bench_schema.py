"""Schema checks for the ``BENCH_*.json`` perf artifacts.

The perf benchmarks (``benchmarks/test_perf_*.py``) each emit a small
machine-readable JSON at the repo root for trend tracking; CI uploads
them as artifacts.  A malformed artifact is worse than a missing one —
downstream tooling silently plots nothing — so CI validates every file
with this module before upload::

    python -m repro.analysis.bench_schema BENCH_select.json [more.json ...]

Exit status 0 iff every file parses and satisfies the schema registered
for its ``benchmark`` name; violations are printed one per line.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any

__all__ = ["validate", "check_file", "main"]

_NUM = (int, float)


def _require(data: dict, key: str, types, errors: list[str], ctx: str) -> Any:
    if key not in data:
        errors.append(f"{ctx}: missing key {key!r}")
        return None
    value = data[key]
    if not isinstance(value, types):
        errors.append(
            f"{ctx}: {key!r} must be {types}, got {type(value).__name__}"
        )
        return None
    return value


def _check_checkpoints(
    data: dict, row_keys: tuple[str, ...], errors: list[str]
) -> None:
    rows = _require(data, "checkpoints", list, errors, "top level")
    if rows is None:
        return
    if not rows:
        errors.append("checkpoints: must be non-empty")
    for i, row in enumerate(rows):
        ctx = f"checkpoints[{i}]"
        if not isinstance(row, dict):
            errors.append(f"{ctx}: must be an object")
            continue
        n = _require(row, "n_train", int, errors, ctx)
        if n is not None and n <= 0:
            errors.append(f"{ctx}: n_train must be positive")
        for key in row_keys:
            value = _require(row, key, _NUM, errors, ctx)
            if value is not None and value < 0:
                errors.append(f"{ctx}: {key!r} must be non-negative")


def _select_schema(data: dict, errors: list[str]) -> None:
    _check_checkpoints(
        data, ("dense_sps", "iterative_sps", "sparse_sps", "speedup"), errors
    )
    parity = _require(data, "parity", dict, errors, "top level")
    if parity is not None:
        ident = _require(parity, "identical", bool, errors, "parity")
        if ident is False:
            errors.append("parity: dense/iterative selections diverged")
        rounds = _require(parity, "rounds", int, errors, "parity")
        if rounds is not None and rounds < 1:
            errors.append("parity: rounds must be >= 1")


def _fit_schema(data: dict, errors: list[str]) -> None:
    _check_checkpoints(data, ("direct_ms", "workspace_ms", "speedup"), errors)


def _amr_schema(data: dict, errors: list[str]) -> None:
    for key in ("per_patch", "batched"):
        _require(data, key, dict, errors, "top level")


def _policy_schema(data: dict, errors: list[str]) -> None:
    _check_checkpoints(
        data,
        ("dense_sps", "iterative_sps", "sparse_sps", "amortized_sps", "speedup"),
        errors,
    )
    service = _require(data, "service", dict, errors, "top level")
    if service is not None:
        for key in ("rgma_slices_per_s", "amortized_slices_per_s"):
            value = _require(service, key, _NUM, errors, "service")
            if value is not None and value <= 0:
                errors.append(f"service: {key!r} must be positive")
    regret = _require(data, "regret", dict, errors, "top level")
    if regret is not None:
        for key in ("rgma_final_regret", "amortized_final_regret"):
            value = _require(regret, key, _NUM, errors, "regret")
            if value is not None and value < 0:
                errors.append(f"regret: {key!r} must be non-negative")
        factor = _require(regret, "guardrail_factor", _NUM, errors, "regret")
        if factor is not None and factor <= 0:
            errors.append("regret: guardrail_factor must be positive")
        within = _require(regret, "within_guardrail", bool, errors, "regret")
        if within is False:
            errors.append(
                "regret: amortized final regret exceeded the guardrail"
            )


def _mf_schema(data: dict, errors: list[str]) -> None:
    regret = _require(data, "regret", dict, errors, "top level")
    if regret is not None:
        for key in ("rgma_final_regret", "mf_final_regret"):
            value = _require(regret, key, _NUM, errors, "regret")
            if value is not None and value < 0:
                errors.append(f"regret: {key!r} must be non-negative")
        for key in ("rgma_node_hours", "mf_node_hours"):
            value = _require(regret, key, _NUM, errors, "regret")
            if value is not None and value <= 0:
                errors.append(f"regret: {key!r} must be positive")
        factor = _require(regret, "node_hour_factor", _NUM, errors, "regret")
        if factor is not None and factor <= 0:
            errors.append("regret: node_hour_factor must be positive")
        within = _require(regret, "within_target", bool, errors, "regret")
        if within is False:
            errors.append(
                "regret: multi-fidelity portfolio missed the node-hour target"
            )
    parity = _require(data, "parity", dict, errors, "top level")
    if parity is not None:
        ident = _require(parity, "identical", bool, errors, "parity")
        if ident is False:
            errors.append(
                "parity: B=1/F=1 portfolio diverged from sequential RGMA"
            )
        rounds = _require(parity, "rounds", int, errors, "parity")
        if rounds is not None and rounds < 1:
            errors.append("parity: rounds must be >= 1")


#: benchmark name -> extra validation beyond the common envelope.
SCHEMAS = {
    "gp_select_throughput": _select_schema,
    "gp_fit_workspace": _fit_schema,
    "amr_batched_stepping": _amr_schema,
    "policy_amortized_serving": _policy_schema,
    "mf_portfolio_regret": _mf_schema,
}


def validate(data: Any) -> list[str]:
    """All schema violations in ``data`` (empty list == valid)."""
    errors: list[str] = []
    if not isinstance(data, dict):
        return ["top level: must be a JSON object"]
    name = _require(data, "benchmark", str, errors, "top level")
    _require(data, "config", dict, errors, "top level")
    speedup = _require(data, "speedup", _NUM, errors, "top level")
    if speedup is not None and speedup <= 0:
        errors.append("top level: speedup must be positive")
    # Disclosure: throughput numbers are meaningless without knowing the
    # machine; every emitter stamps the core count it measured on.
    cores = _require(data, "host_cores", int, errors, "top level")
    if cores is not None and cores < 1:
        errors.append("top level: host_cores must be >= 1")
    extra = SCHEMAS.get(name or "")
    if extra is None:
        errors.append(f"top level: unknown benchmark name {name!r}")
    else:
        extra(data, errors)
    return errors


def check_file(path: str | Path) -> list[str]:
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except FileNotFoundError:
        return [f"{path}: file not found"]
    except json.JSONDecodeError as exc:
        return [f"{path}: invalid JSON ({exc})"]
    return [f"{path}: {err}" for err in validate(data)]


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if not args:
        print("usage: python -m repro.analysis.bench_schema FILE.json ...")
        return 2
    failed = False
    for arg in args:
        errors = check_file(arg)
        if errors:
            failed = True
            for err in errors:
                print(err, file=sys.stderr)
        else:
            print(f"{arg}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
