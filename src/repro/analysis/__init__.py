"""Aggregation and presentation of AL trajectories (the paper's figures).

- :mod:`distributions` — violin-plot statistics of selected-sample costs
  (Fig. 2: medians, IQRs, relative-frequency profiles).
- :mod:`aggregate` — cross-trajectory statistics: median/quantile curves of
  RMSE, cumulative cost, and cumulative regret per iteration.
- :mod:`tradeoff` — RMSE vs cumulative-cost trade-off curves (Fig. 3).
- :mod:`tables` — plain-text rendering used by the benchmark harness.
"""

from repro.analysis.distributions import ViolinStats, violin_stats, cost_distribution_table
from repro.analysis.aggregate import (
    CurveBundle,
    stack_metric,
    median_curve,
    quantile_band,
    aggregate_policy_curves,
)
from repro.analysis.tradeoff import TradeoffCurve, tradeoff_curve, interpolate_rmse_at_cost
from repro.analysis.tables import format_table, format_series
from repro.analysis.ascii_plot import line_plot, sparkline

__all__ = [
    "line_plot",
    "sparkline",
    "ViolinStats",
    "violin_stats",
    "cost_distribution_table",
    "CurveBundle",
    "stack_metric",
    "median_curve",
    "quantile_band",
    "aggregate_policy_curves",
    "TradeoffCurve",
    "tradeoff_curve",
    "interpolate_rmse_at_cost",
    "format_table",
    "format_series",
]
