"""Deprecated compatibility shim over :mod:`repro.obs` — use that instead.

``repro.perf`` was the original per-phase timing registry for the AL and
AMR hot loops.  The observability layer (:mod:`repro.obs`) subsumed it:
the same phase/counter tables now live in the always-on metrics registry
:data:`repro.obs.METRICS` (plus gauges, per-phase duration histograms,
and opt-in span tracing on top of the same instrumentation points).

This module keeps every pre-existing name working against that registry —
``timer`` / ``add`` / ``incr`` / ``snapshot`` / ``counters`` / ``reset`` /
``report``, the ``PerfRegistry`` class (now an alias of
:class:`repro.obs.MetricsRegistry`), ``PhaseStat``, and the canonical
``PHASES`` / ``COUNTERS`` tuples — so existing call sites and tests are
untouched.  A single :class:`DeprecationWarning` fires on first import;
new code should write::

    from repro import obs

    with obs.timed("predict", cat="gp"):
        mu, sd = gpr.predict(X, return_std=True)

    print(obs.report())
"""

from __future__ import annotations

import warnings

from repro.obs.metrics import MetricsRegistry as PerfRegistry
from repro.obs.metrics import PhaseStat
from repro.obs.recorder import METRICS as REGISTRY

warnings.warn(
    "repro.perf is deprecated; use repro.obs (the unified observability "
    "layer: same metrics registry plus span tracing)",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = [
    "COUNTERS",
    "PHASES",
    "PerfRegistry",
    "PhaseStat",
    "REGISTRY",
    "add",
    "counters",
    "incr",
    "report",
    "reset",
    "snapshot",
    "timer",
]

#: Canonical phase names used by the built-in instrumentation.
PHASES = (
    "fit",
    "refactor",
    "rank1_update",
    "predict",
    "select",
    "amr_plan",
    "amr_exchange",
    "amr_sweep",
    "amr_dt",
    "amr_regrid",
)

#: Canonical event-counter names (no wall time attached): the GP layer
#: counts LML objective/gradient evaluations and how each fit obtained its
#: kernel workspace (``ws_hit`` — already covering the training set,
#: ``ws_extend`` — appended rows only, ``ws_rebuild`` — from scratch), so
#: hyperparameter-refit cost regressions show up as counter shifts rather
#: than having to be inferred from wall time.
COUNTERS = (
    "lml_eval",
    "lml_grad",
    "ws_hit",
    "ws_extend",
    "ws_rebuild",
)


def timer(phase: str):
    """``with perf.timer("fit"): ...`` against the global obs registry."""
    return REGISTRY.timer(phase)


def add(phase: str, seconds: float, calls: int = 1) -> None:
    REGISTRY.add(phase, seconds, calls)


def incr(counter: str, n: int = 1) -> None:
    """``perf.incr("lml_eval")`` against the global obs registry."""
    REGISTRY.incr(counter, n)


def snapshot() -> dict[str, PhaseStat]:
    return REGISTRY.snapshot()


def counters() -> dict[str, int]:
    return REGISTRY.counters()


def reset() -> None:
    REGISTRY.reset()


def report() -> str:
    return REGISTRY.report()
