"""Removed compatibility shim — use :mod:`repro.obs` instead.

``repro.perf`` was the original per-phase timing registry for the AL and
AMR hot loops; :mod:`repro.obs` subsumed it (the same phase/counter
tables live in the always-on :data:`repro.obs.METRICS` registry, plus
gauges, per-phase duration histograms, and opt-in span tracing).  The
shim carried the legacy names (``timer``/``incr``/``PerfRegistry``/...)
for several releases; every in-repo importer has been migrated, so the
module is now empty and importing it only warns.  Write instead::

    from repro import obs

    with obs.timed("predict", cat="gp"):
        mu, sd = gpr.predict(X, return_std=True)

    print(obs.report())
"""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.perf is deprecated and its legacy names have been removed; "
    "use repro.obs (obs.METRICS is the registry, obs.timed/incr/report "
    "the API)",
    DeprecationWarning,
    stacklevel=2,
)

__all__: list[str] = []
