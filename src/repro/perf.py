"""Lightweight per-phase timing registry for the AL and AMR hot loops.

The AL loop and the GP layer report how long they spend in each phase —
``fit`` (LML optimization), ``refactor`` (from-scratch re-factorization),
``rank1_update`` (incremental Cholesky extension), ``predict`` and
``select`` — and the AMR driver reports its stepping phases —
``amr_plan`` (stack + exchange-plan build), ``amr_exchange``,
``amr_sweep``, ``amr_dt`` and ``amr_regrid`` — so that optimizations of
the hot loops are measurable rather than anecdotal.  The registry is
deliberately tiny: a dict of ``phase -> (calls, seconds)`` guarded by a
lock, fed by a context-manager timer whose overhead is two
``perf_counter()`` calls.

Every process owns its own registry (worker processes spawned by
:mod:`repro.core.parallel` start fresh); aggregate across processes by
shipping :meth:`PerfRegistry.snapshot` dicts back to the parent if needed.

Typical use::

    from repro import perf

    with perf.timer("predict"):
        mu, sd = gpr.predict(X, return_std=True)

    print(perf.report())
    perf.reset()
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

#: Canonical phase names used by the built-in instrumentation.
PHASES = (
    "fit",
    "refactor",
    "rank1_update",
    "predict",
    "select",
    "amr_plan",
    "amr_exchange",
    "amr_sweep",
    "amr_dt",
    "amr_regrid",
)

#: Canonical event-counter names (no wall time attached): the GP layer
#: counts LML objective/gradient evaluations and how each fit obtained its
#: kernel workspace (``ws_hit`` — already covering the training set,
#: ``ws_extend`` — appended rows only, ``ws_rebuild`` — from scratch), so
#: hyperparameter-refit cost regressions show up as counter shifts rather
#: than having to be inferred from wall time.
COUNTERS = (
    "lml_eval",
    "lml_grad",
    "ws_hit",
    "ws_extend",
    "ws_rebuild",
)


@dataclass(frozen=True)
class PhaseStat:
    """Accumulated timing for one phase."""

    calls: int
    seconds: float

    @property
    def mean_ms(self) -> float:
        return 1e3 * self.seconds / self.calls if self.calls else 0.0


class PerfRegistry:
    """Thread-safe accumulator of per-phase call counts and wall time."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._calls: dict[str, int] = {}
        self._seconds: dict[str, float] = {}
        self._counts: dict[str, int] = {}

    def add(self, phase: str, seconds: float, calls: int = 1) -> None:
        """Record ``calls`` invocations of ``phase`` totalling ``seconds``."""
        with self._lock:
            self._calls[phase] = self._calls.get(phase, 0) + calls
            self._seconds[phase] = self._seconds.get(phase, 0.0) + seconds

    def incr(self, counter: str, n: int = 1) -> None:
        """Bump an event counter (see :data:`COUNTERS`) by ``n``."""
        with self._lock:
            self._counts[counter] = self._counts.get(counter, 0) + n

    @contextmanager
    def timer(self, phase: str):
        """Time a ``with`` block and credit it to ``phase``."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add(phase, time.perf_counter() - t0)

    def snapshot(self) -> dict[str, PhaseStat]:
        """Immutable copy of the current counters."""
        with self._lock:
            return {
                p: PhaseStat(self._calls[p], self._seconds[p])
                for p in sorted(self._calls)
            }

    def counters(self) -> dict[str, int]:
        """Immutable copy of the event counters."""
        with self._lock:
            return dict(sorted(self._counts.items()))

    def reset(self) -> None:
        with self._lock:
            self._calls.clear()
            self._seconds.clear()
            self._counts.clear()

    def report(self) -> str:
        """Render timers and event counters as aligned text tables."""
        snap = self.snapshot()
        counts = self.counters()
        if not snap and not counts:
            return "(no phases recorded)"
        lines = []
        if snap:
            width = max(len(p) for p in snap)
            lines.append(
                f"{'phase':<{width}}  {'calls':>7}  {'total_s':>9}  {'mean_ms':>8}"
            )
            for phase, stat in snap.items():
                lines.append(
                    f"{phase:<{width}}  {stat.calls:>7d}  {stat.seconds:>9.4f}  "
                    f"{stat.mean_ms:>8.3f}"
                )
        if counts:
            if lines:
                lines.append("")
            width = max(len(c) for c in counts)
            lines.append(f"{'counter':<{width}}  {'events':>8}")
            for counter, n in counts.items():
                lines.append(f"{counter:<{width}}  {n:>8d}")
        return "\n".join(lines)


#: Process-global default registry used by the built-in instrumentation.
REGISTRY = PerfRegistry()


def timer(phase: str):
    """``with perf.timer("fit"): ...`` against the default registry."""
    return REGISTRY.timer(phase)


def add(phase: str, seconds: float, calls: int = 1) -> None:
    REGISTRY.add(phase, seconds, calls)


def incr(counter: str, n: int = 1) -> None:
    """``perf.incr("lml_eval")`` against the default registry."""
    REGISTRY.incr(counter, n)


def snapshot() -> dict[str, PhaseStat]:
    return REGISTRY.snapshot()


def counters() -> dict[str, int]:
    return REGISTRY.counters()


def reset() -> None:
    REGISTRY.reset()


def report() -> str:
    return REGISTRY.report()
