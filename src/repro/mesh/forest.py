"""A forest of quadtrees laid out as a brick of unit squares.

ForestClaw's computational domain is a *brick*: an ``ni x nj`` array of
unit-square trees, each an independently adaptive :class:`Quadtree`.  The
forest provides global leaf enumeration (tree-major, Morton within trees,
matching p4est's global ordering), point location in brick coordinates, and
cross-tree neighbor lookups needed by the 2:1 balance pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from repro.mesh.quadrant import FACE_OFFSETS, Quadrant
from repro.mesh.quadtree import Quadtree


@dataclass(frozen=True, slots=True)
class BrickTopology:
    """Connectivity of an ``ni x nj`` brick of trees.

    Trees are numbered row-major: tree ``t`` sits at column ``t % ni`` and
    row ``t // ni``.  Physical (domain) boundaries have no neighbor.
    """

    ni: int
    nj: int

    def __post_init__(self) -> None:
        if self.ni < 1 or self.nj < 1:
            raise ValueError("brick dimensions must be positive")

    @property
    def num_trees(self) -> int:
        return self.ni * self.nj

    def tree_coords(self, tree: int) -> tuple[int, int]:
        """(column, row) of ``tree`` in the brick."""
        if not 0 <= tree < self.num_trees:
            raise ValueError(f"tree {tree} outside brick")
        return tree % self.ni, tree // self.ni

    def tree_at(self, ci: int, cj: int) -> int:
        """Tree id at brick column ``ci``, row ``cj``."""
        if not (0 <= ci < self.ni and 0 <= cj < self.nj):
            raise ValueError("brick coordinates out of range")
        return cj * self.ni + ci

    def face_neighbor_tree(self, tree: int, face: int) -> int | None:
        """Tree across ``face`` of ``tree``; ``None`` at the domain boundary."""
        ci, cj = self.tree_coords(tree)
        dx, dy = FACE_OFFSETS[face]
        ni_, nj_ = ci + dx, cj + dy
        if not (0 <= ni_ < self.ni and 0 <= nj_ < self.nj):
            return None
        return self.tree_at(ni_, nj_)


class Forest:
    """A brick of independently adaptive quadtrees.

    Parameters
    ----------
    topology : BrickTopology
        Brick layout.
    initial_level : int, optional
        Uniform refinement level every tree starts at (default 0).
    """

    def __init__(self, topology: BrickTopology, initial_level: int = 0) -> None:
        self.topology = topology
        self.trees: list[Quadtree] = [
            Quadtree.uniform(initial_level) for _ in range(topology.num_trees)
        ]

    # -- global enumeration ----------------------------------------------------

    def __len__(self) -> int:
        return sum(len(t) for t in self.trees)

    def iter_leaves(self) -> Iterator[tuple[int, Quadrant]]:
        """Yield ``(tree_id, quadrant)`` in global (tree-major Morton) order."""
        for t, tree in enumerate(self.trees):
            for q in tree.leaves:
                yield t, q

    def leaf_list(self) -> list[tuple[int, Quadrant]]:
        """Global leaf order as a list."""
        return list(self.iter_leaves())

    @property
    def max_level(self) -> int:
        return max(t.max_level for t in self.trees)

    def level_histogram(self) -> dict[int, int]:
        """Leaf count per level across all trees."""
        hist: dict[int, int] = {}
        for tree in self.trees:
            for lv, n in tree.level_histogram().items():
                hist[lv] = hist.get(lv, 0) + n
        return hist

    # -- geometry ----------------------------------------------------------------

    def domain_extent(self) -> tuple[float, float]:
        """Physical width and height of the brick (one unit per tree)."""
        return float(self.topology.ni), float(self.topology.nj)

    def locate(self, x: float, y: float) -> tuple[int, Quadrant]:
        """Leaf containing physical point ``(x, y)`` in brick coordinates."""
        w, h = self.domain_extent()
        if not (0.0 <= x <= w and 0.0 <= y <= h):
            raise ValueError(f"point ({x}, {y}) outside brick")
        ci = min(int(x), self.topology.ni - 1)
        cj = min(int(y), self.topology.nj - 1)
        tree = self.topology.tree_at(ci, cj)
        return tree, self.trees[tree].locate(x - ci, y - cj)

    def leaf_origin(self, tree: int, q: Quadrant) -> tuple[float, float]:
        """Lower-left corner of a leaf in brick coordinates."""
        ci, cj = self.topology.tree_coords(tree)
        ox, oy = q.origin
        return ci + ox, cj + oy

    # -- neighbor queries ------------------------------------------------------------

    def face_neighbor(
        self, tree: int, q: Quadrant, face: int
    ) -> tuple[int, Quadrant] | None:
        """Same-level quadrant across ``face``, possibly in a neighboring tree.

        Returns ``(tree_id, quadrant)`` or ``None`` at the physical boundary.
        The returned quadrant is the *abstract* same-level neighbor; it may
        or may not be a leaf of its tree.
        """
        n = 1 << q.level
        dx, dy = FACE_OFFSETS[face]
        nx, ny = q.x + dx, q.y + dy
        if 0 <= nx < n and 0 <= ny < n:
            return tree, Quadrant(q.level, nx, ny)
        ntree = self.topology.face_neighbor_tree(tree, face)
        if ntree is None:
            return None
        # Wrap the coordinate into the neighboring tree.
        return ntree, Quadrant(q.level, nx % n, ny % n)

    def refine_where(
        self, predicate: Callable[[int, Quadrant], bool], max_level: int
    ) -> int:
        """Refine leaves (one pass) where ``predicate(tree, quad)`` holds."""
        total = 0
        for t, tree in enumerate(self.trees):
            total += tree.refine_where(lambda q, t=t: predicate(t, q), max_level)
        return total

    def coarsen_where(
        self, predicate: Callable[[int, Quadrant], bool], min_level: int = 0
    ) -> int:
        """Coarsen complete families where ``predicate`` holds on all members."""
        total = 0
        for t, tree in enumerate(self.trees):
            total += tree.coarsen_where(lambda q, t=t: predicate(t, q), min_level)
        return total
