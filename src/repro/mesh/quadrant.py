"""Quadrant arithmetic: the atomic cell identifier of a quadtree.

A :class:`Quadrant` is an immutable ``(level, x, y)`` triple where ``x`` and
``y`` are coordinates on the ``2**level`` lattice of its tree.  All the
family relations p4est needs — children, parent, siblings, face neighbors,
ancestry — are pure integer arithmetic and implemented here without any
reference to the tree containing the quadrant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

#: Deepest refinement level supported (coordinates fit in COORD_BITS bits).
MAX_LEVEL = 29

#: Face index convention: 0=-x, 1=+x, 2=-y, 3=+y (matches p4est).
FACE_OFFSETS = ((-1, 0), (1, 0), (0, -1), (0, 1))


@dataclass(frozen=True, slots=True)
class Quadrant:
    """An immutable quadtree cell at ``level`` with own-level coords ``x, y``.

    Attributes
    ----------
    level : int
        Refinement level; the root quadrant has level 0.
    x, y : int
        Integer coordinates, ``0 <= x, y < 2**level``.
    """

    level: int
    x: int
    y: int

    def __post_init__(self) -> None:
        if not 0 <= self.level <= MAX_LEVEL:
            raise ValueError(f"level {self.level} outside [0, {MAX_LEVEL}]")
        n = 1 << self.level
        if not (0 <= self.x < n and 0 <= self.y < n):
            raise ValueError(
                f"coords ({self.x}, {self.y}) outside lattice of level {self.level}"
            )

    @property
    def size(self) -> float:
        """Edge length of the quadrant in the unit square."""
        return 1.0 / (1 << self.level)

    @property
    def origin(self) -> tuple[float, float]:
        """Lower-left corner of the quadrant in the unit square."""
        h = self.size
        return (self.x * h, self.y * h)

    @property
    def center(self) -> tuple[float, float]:
        """Center of the quadrant in the unit square."""
        h = self.size
        return ((self.x + 0.5) * h, (self.y + 0.5) * h)

    @property
    def child_id(self) -> int:
        """Position among siblings: ``(y & 1) << 1 | (x & 1)``; 0 for root."""
        if self.level == 0:
            return 0
        return ((self.y & 1) << 1) | (self.x & 1)


def root_quadrant() -> Quadrant:
    """The level-0 quadrant covering the whole tree."""
    return Quadrant(0, 0, 0)


def quadrant_children(q: Quadrant) -> tuple[Quadrant, ...]:
    """The four children of ``q`` in Morton (z) order."""
    if q.level >= MAX_LEVEL:
        raise ValueError("cannot refine past MAX_LEVEL")
    lv, cx, cy = q.level + 1, q.x << 1, q.y << 1
    return (
        Quadrant(lv, cx, cy),
        Quadrant(lv, cx + 1, cy),
        Quadrant(lv, cx, cy + 1),
        Quadrant(lv, cx + 1, cy + 1),
    )


def quadrant_parent(q: Quadrant) -> Quadrant:
    """The parent of ``q``; raises for the root."""
    if q.level == 0:
        raise ValueError("root quadrant has no parent")
    return Quadrant(q.level - 1, q.x >> 1, q.y >> 1)


def quadrant_siblings(q: Quadrant) -> tuple[Quadrant, ...]:
    """All four quadrants sharing ``q``'s parent, including ``q`` itself."""
    return quadrant_children(quadrant_parent(q))


def quadrant_neighbor(q: Quadrant, face: int) -> Quadrant | None:
    """Same-level neighbor across ``face``; ``None`` outside the tree.

    Faces follow the p4est convention 0=-x, 1=+x, 2=-y, 3=+y.
    """
    dx, dy = FACE_OFFSETS[face]
    nx, ny = q.x + dx, q.y + dy
    n = 1 << q.level
    if not (0 <= nx < n and 0 <= ny < n):
        return None
    return Quadrant(q.level, nx, ny)


def is_ancestor(a: Quadrant, b: Quadrant) -> bool:
    """True iff ``a`` strictly contains ``b`` (``a`` is a proper ancestor)."""
    if a.level >= b.level:
        return False
    shift = b.level - a.level
    return (b.x >> shift) == a.x and (b.y >> shift) == a.y


def quadrants_overlap(a: Quadrant, b: Quadrant) -> bool:
    """True iff the closed areas of ``a`` and ``b`` intersect non-trivially.

    For lattice quadrants this is equivalent to equality or ancestry in
    either direction.
    """
    return a == b or is_ancestor(a, b) or is_ancestor(b, a)


def descendants_at_level(q: Quadrant, level: int) -> Iterator[Quadrant]:
    """Yield all descendants of ``q`` at exactly ``level`` in Morton order."""
    if level < q.level:
        raise ValueError("target level above quadrant level")
    if level == q.level:
        yield q
        return
    for child in quadrant_children(q):
        yield from descendants_at_level(child, level)
