"""Space-filling-curve partitioning of forest leaves across ranks.

p4est partitions a forest by cutting the global Morton curve into ``P``
contiguous segments of (approximately) equal total weight.  Contiguity on
the curve keeps each rank's subdomain spatially compact, which bounds the
ghost-exchange surface.  The same scheme is used here to assign patches to
the simulated MPI ranks of :mod:`repro.machine`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def partition_curve(weights, num_parts: int) -> np.ndarray:
    """Assign each curve position to a part, balancing cumulative weight.

    Implements the p4est rule: leaf ``i`` goes to the part ``floor(P * W_i /
    W_total)`` where ``W_i`` is the cumulative weight *preceding* plus half
    of leaf ``i``'s own weight.  Guarantees contiguous, monotone assignment
    and that every part index is within range; parts may be empty when there
    are more parts than leaves.

    Parameters
    ----------
    weights : array_like of float
        Per-leaf work estimates in global curve order; must be positive.
    num_parts : int
        Number of ranks.

    Returns
    -------
    ndarray of int
        ``assignment[i]`` is the rank owning leaf ``i``.
    """
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 1:
        raise ValueError("weights must be 1-D")
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    if w.size == 0:
        return np.empty(0, dtype=np.int64)
    if np.any(w <= 0):
        raise ValueError("weights must be positive")
    total = w.sum()
    midpoints = np.cumsum(w) - 0.5 * w
    assignment = np.floor(num_parts * midpoints / total).astype(np.int64)
    return np.clip(assignment, 0, num_parts - 1)


@dataclass(frozen=True, slots=True)
class PartitionStats:
    """Load-balance summary of a partition.

    Attributes
    ----------
    num_parts : int
        Number of ranks (including empty ones).
    loads : tuple of float
        Total weight per rank.
    counts : tuple of int
        Leaf count per rank.
    imbalance : float
        ``max(load) / mean(load) - 1``; 0 means perfect balance.
    """

    num_parts: int
    loads: tuple[float, ...]
    counts: tuple[int, ...]
    imbalance: float


def partition_stats(weights, assignment, num_parts: int) -> PartitionStats:
    """Summarize the balance of ``assignment`` over ``weights``."""
    w = np.asarray(weights, dtype=np.float64)
    a = np.asarray(assignment, dtype=np.int64)
    if w.shape != a.shape:
        raise ValueError("weights and assignment must align")
    loads = np.bincount(a, weights=w, minlength=num_parts).astype(np.float64)
    counts = np.bincount(a, minlength=num_parts).astype(np.int64)
    mean = loads.mean() if num_parts else 0.0
    imbalance = float(loads.max() / mean - 1.0) if mean > 0 else 0.0
    return PartitionStats(
        num_parts=num_parts,
        loads=tuple(float(x) for x in loads),
        counts=tuple(int(x) for x in counts),
        imbalance=imbalance,
    )
