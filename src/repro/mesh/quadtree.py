"""A single adaptive quadtree storing its leaves in Morton order.

The tree is *linear*: only leaves are stored, as a sorted list of
:class:`~repro.mesh.quadrant.Quadrant`.  Refinement replaces a leaf by its
four children; coarsening replaces a complete sibling family by its parent.
Both operations preserve the Morton order without re-sorting, because a
quadrant's children are contiguous in the curve.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Iterable, Sequence

from repro.mesh.morton import morton_key
from repro.mesh.quadrant import (
    MAX_LEVEL,
    Quadrant,
    is_ancestor,
    quadrant_children,
    quadrant_parent,
    root_quadrant,
)


def _key(q: Quadrant) -> int:
    return morton_key(q.level, q.x, q.y, MAX_LEVEL)


class Quadtree:
    """Linear quadtree over the unit square.

    Parameters
    ----------
    leaves : iterable of Quadrant, optional
        Initial leaves; must tile the unit square exactly.  Defaults to the
        single root quadrant.

    Notes
    -----
    The leaf list is kept sorted by Morton key at all times, which makes
    point location and ancestry queries ``O(log n)``.
    """

    def __init__(self, leaves: Iterable[Quadrant] | None = None) -> None:
        if leaves is None:
            self._leaves: list[Quadrant] = [root_quadrant()]
        else:
            self._leaves = sorted(leaves, key=_key)
            self._check_tiling()
        self._keys = [_key(q) for q in self._leaves]

    # -- construction helpers -------------------------------------------------

    @classmethod
    def uniform(cls, level: int) -> "Quadtree":
        """A tree uniformly refined to ``level`` (``4**level`` leaves)."""
        n = 1 << level
        leaves = [Quadrant(level, x, y) for y in range(n) for x in range(n)]
        return cls(leaves)

    def _check_tiling(self) -> None:
        total = sum(4.0 ** (-q.level) for q in self._leaves)
        if abs(total - 1.0) > 1e-12:
            raise ValueError(f"leaves do not tile the unit square (area={total})")
        for a, b in zip(self._leaves, self._leaves[1:]):
            if a == b or is_ancestor(a, b) or is_ancestor(b, a):
                raise ValueError(f"overlapping leaves {a} and {b}")

    # -- basic queries ---------------------------------------------------------

    @property
    def leaves(self) -> Sequence[Quadrant]:
        """Leaves in Morton order (read-only view)."""
        return tuple(self._leaves)

    def __len__(self) -> int:
        return len(self._leaves)

    def __contains__(self, q: Quadrant) -> bool:
        i = bisect_left(self._keys, _key(q))
        return i < len(self._keys) and self._leaves[i] == q

    @property
    def max_level(self) -> int:
        """Deepest refinement level present among the leaves."""
        return max(q.level for q in self._leaves)

    @property
    def min_level(self) -> int:
        """Shallowest refinement level present among the leaves."""
        return min(q.level for q in self._leaves)

    def descendants(self, q: Quadrant) -> Sequence[Quadrant]:
        """Leaves equal to or descending from ``q``, in Morton order.

        Descendants occupy a contiguous Morton-key range, so this is two
        bisections and a slice — O(log n + k) instead of scanning all
        leaves.  An ancestor *leaf* covering ``q`` shares the key prefix of
        ``q``'s first descendant and may appear in the slice; callers that
        need strict descendants filter with
        :func:`~repro.mesh.quadrant.is_ancestor`.
        """
        code = _key(q) // (MAX_LEVEL + 1)
        k0 = code * (MAX_LEVEL + 1)
        k1 = (code + 4 ** (MAX_LEVEL - q.level)) * (MAX_LEVEL + 1)
        i0 = bisect_left(self._keys, k0)
        i1 = bisect_left(self._keys, k1)
        return tuple(self._leaves[i0:i1])

    def index_of(self, q: Quadrant) -> int:
        """Position of leaf ``q`` in Morton order; raises if absent."""
        i = bisect_left(self._keys, _key(q))
        if i >= len(self._keys) or self._leaves[i] != q:
            raise KeyError(f"{q} is not a leaf")
        return i

    def locate(self, x: float, y: float) -> Quadrant:
        """The leaf containing the point ``(x, y)`` of the unit square.

        Points on internal edges resolve to the leaf whose half-open box
        ``[x0, x0+h) x [y0, y0+h)`` contains them; the far boundary of the
        unit square maps to the last cell in each direction.
        """
        if not (0.0 <= x <= 1.0 and 0.0 <= y <= 1.0):
            raise ValueError(f"point ({x}, {y}) outside unit square")
        # Walk down from the root guided by the point.
        q = root_quadrant()
        while q not in self:
            h = q.size / 2.0
            ox, oy = q.origin
            cx = 1 if (x >= ox + h and q.x * 2 + 1 < (1 << (q.level + 1))) else 0
            cy = 1 if (y >= oy + h) else 0
            # Clamp the far boundary into the last child.
            if x >= ox + q.size:
                cx = 1
            if y >= oy + q.size:
                cy = 1
            q = quadrant_children(q)[(cy << 1) | cx]
            if q.level > MAX_LEVEL:  # pragma: no cover - defensive
                raise RuntimeError("descended past MAX_LEVEL without a leaf")
        return q

    # -- mutation ----------------------------------------------------------------

    def refine(self, q: Quadrant) -> tuple[Quadrant, ...]:
        """Replace leaf ``q`` by its four children; returns the children."""
        i = self.index_of(q)
        children = quadrant_children(q)
        self._leaves[i : i + 1] = list(children)
        self._keys[i : i + 1] = [_key(c) for c in children]
        return children

    def coarsen(self, q: Quadrant) -> Quadrant:
        """Replace the complete sibling family of ``q`` by its parent.

        All four siblings must currently be leaves.  Returns the parent.
        """
        parent = quadrant_parent(q)
        family = quadrant_children(parent)
        try:
            i = self.index_of(family[0])
        except KeyError:
            raise ValueError(f"siblings of {q} are not all leaves") from None
        if tuple(self._leaves[i : i + 4]) != family:
            raise ValueError(f"siblings of {q} are not all leaves")
        self._leaves[i : i + 4] = [parent]
        self._keys[i : i + 4] = [_key(parent)]
        return parent

    def refine_where(
        self, predicate: Callable[[Quadrant], bool], max_level: int
    ) -> int:
        """Refine every leaf for which ``predicate`` holds, up to ``max_level``.

        A single pass: newly created children are *not* re-examined.  Returns
        the number of leaves refined.
        """
        count = 0
        for q in [q for q in self._leaves if q.level < max_level and predicate(q)]:
            self.refine(q)
            count += 1
        return count

    def coarsen_where(
        self, predicate: Callable[[Quadrant], bool], min_level: int = 0
    ) -> int:
        """Coarsen every complete family whose members all satisfy ``predicate``.

        Returns the number of families coarsened.
        """
        count = 0
        i = 0
        while i + 3 < len(self._leaves):
            q = self._leaves[i]
            if q.level > min_level and q.child_id == 0:
                family = quadrant_children(quadrant_parent(q))
                window = tuple(self._leaves[i : i + 4])
                if window == family and all(predicate(s) for s in window):
                    self.coarsen(q)
                    count += 1
                    continue  # re-check at same index (parent may coarsen again)
            i += 1
        return count

    # -- aggregate statistics ------------------------------------------------------

    def level_histogram(self) -> dict[int, int]:
        """Mapping level -> number of leaves at that level."""
        hist: dict[int, int] = {}
        for q in self._leaves:
            hist[q.level] = hist.get(q.level, 0) + 1
        return hist

    def covered_area(self) -> float:
        """Total area of all leaves (always 1.0 for a valid tree)."""
        return sum(4.0 ** (-q.level) for q in self._leaves)
