"""Forest-of-quadtrees grid management (a pure-NumPy analogue of p4est).

ForestClaw, the AMR package evaluated in the paper, delegates its grid
management to p4est: quadrants are identified by integer coordinates plus a
refinement level, ordered along a Morton (Z-order) space-filling curve,
refined/coarsened under a 2:1 balance constraint, and partitioned across
ranks by splitting the curve into equal-work segments.  This subpackage
implements that machinery for 2-D forests.

Public API
----------
- :func:`morton_encode` / :func:`morton_decode` — Z-order curve bijection.
- :class:`Quadrant` — immutable (level, x, y) cell identifier.
- :class:`Quadtree` — a single refinement tree with refine/coarsen.
- :class:`Forest` — a brick of quadtrees with 2:1 balance and partitioning.
- :func:`balance_forest` — enforce the 2:1 constraint.
- :func:`partition_curve` — split leaves across ranks by weighted curve cuts.
"""

from repro.mesh.morton import (
    interleave2,
    deinterleave2,
    morton_encode,
    morton_decode,
    morton_key,
)
from repro.mesh.quadrant import (
    MAX_LEVEL,
    Quadrant,
    root_quadrant,
    quadrant_children,
    quadrant_parent,
    quadrant_neighbor,
    quadrants_overlap,
    is_ancestor,
)
from repro.mesh.quadtree import Quadtree
from repro.mesh.forest import Forest, BrickTopology
from repro.mesh.balance import balance_forest, is_balanced, balance_deficits
from repro.mesh.partition import partition_curve, partition_stats, PartitionStats

__all__ = [
    "interleave2",
    "deinterleave2",
    "morton_encode",
    "morton_decode",
    "morton_key",
    "MAX_LEVEL",
    "Quadrant",
    "root_quadrant",
    "quadrant_children",
    "quadrant_parent",
    "quadrant_neighbor",
    "quadrants_overlap",
    "is_ancestor",
    "Quadtree",
    "Forest",
    "BrickTopology",
    "balance_forest",
    "is_balanced",
    "balance_deficits",
    "partition_curve",
    "partition_stats",
    "PartitionStats",
]
