"""Morton (Z-order) space-filling curve for 2-D quadrant coordinates.

p4est orders the leaves of each refinement tree along a Morton curve: the
curve index of a quadrant is obtained by interleaving the bits of its
integer coordinates.  The curve gives a total order on leaves that keeps
spatially-close quadrants close in memory, which is what makes curve-based
partitioning (see :mod:`repro.mesh.partition`) produce compact subdomains.

All functions are vectorized over NumPy integer arrays and accept Python
ints as a degenerate case.  Coordinates use the p4est convention: a quadrant
at refinement ``level`` has coordinates that are multiples of
``2**(MAX_LEVEL - level)`` on the implicit ``2**MAX_LEVEL`` lattice.
"""

from __future__ import annotations

import numpy as np

#: Number of coordinate bits supported by the interleaving routines.
COORD_BITS = 30

# Magic-number bit masks for the classic parallel-prefix interleave.  Each
# step spreads the bits of a 30-bit integer so that a zero bit sits between
# every pair of payload bits.
_MASKS_SPREAD = (
    (0x00000000FFFFFFFF, 32),
    (0x0000FFFF0000FFFF, 16),
    (0x00FF00FF00FF00FF, 8),
    (0x0F0F0F0F0F0F0F0F, 4),
    (0x3333333333333333, 2),
    (0x5555555555555555, 1),
)


def _spread_bits(v: np.ndarray) -> np.ndarray:
    """Insert a zero bit between each bit of ``v`` (uint64, vectorized)."""
    v = v.astype(np.uint64)
    for mask, shift in _MASKS_SPREAD:
        v = (v | (v << np.uint64(shift))) & np.uint64(mask)
    return v


#: Mask of the low 64 bits — the scalar fast paths emulate uint64 wraparound
#: with plain Python ints so they stay bit-compatible with the array paths.
_U64 = (1 << 64) - 1


def _spread_bits_int(v: int) -> int:
    """Scalar :func:`_spread_bits` on plain Python ints (no array overhead)."""
    for mask, shift in _MASKS_SPREAD:
        v = (v | (v << shift)) & mask
    return v


def _compact_bits_int(v: int) -> int:
    """Scalar :func:`_compact_bits` on plain Python ints."""
    v &= 0x5555555555555555
    for mask, shift in _MASKS_COMPACT_INT:
        v = (v | (v >> shift)) & mask
    return (v | (v >> 32)) & 0x00000000FFFFFFFF


# The inverse (mask, shift) sequence for _compact_bits: each gather step
# undoes one spread step, landing the bits under the mask of the *previous*
# spread step.  Precomputed (as uint64) so the hot path never searches the
# spread table.
_MASKS_COMPACT = tuple(
    (np.uint64(_MASKS_SPREAD[i - 1][0]), np.uint64(_MASKS_SPREAD[i][1]))
    for i in range(len(_MASKS_SPREAD) - 1, 0, -1)
)

#: Same sequence as plain Python ints, for the scalar fast path.
_MASKS_COMPACT_INT = tuple(
    (_MASKS_SPREAD[i - 1][0], _MASKS_SPREAD[i][1])
    for i in range(len(_MASKS_SPREAD) - 1, 0, -1)
)


def _compact_bits(v: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_spread_bits`: gather every other bit of ``v``."""
    v = v.astype(np.uint64) & np.uint64(0x5555555555555555)
    for mask, shift in _MASKS_COMPACT:
        v = (v | (v >> shift)) & mask
    # Final gather down to 32 contiguous bits.
    v = (v | (v >> np.uint64(32))) & np.uint64(0x00000000FFFFFFFF)
    return v


def interleave2(x, y):
    """Interleave the bits of ``x`` and ``y`` into a single Morton index.

    Bit ``i`` of ``x`` lands at bit ``2*i`` of the result and bit ``i`` of
    ``y`` at bit ``2*i + 1``, matching p4est's (x fastest) convention.

    Parameters
    ----------
    x, y : int or ndarray of int
        Non-negative coordinates below ``2**COORD_BITS``.

    Returns
    -------
    int or ndarray of uint64
    """
    if np.isscalar(x) and np.isscalar(y):
        xi, yi = int(x), int(y)
        if xi < 0 or yi < 0 or (xi >> COORD_BITS) or (yi >> COORD_BITS):
            raise ValueError(f"coordinates must be < 2**{COORD_BITS}")
        return _spread_bits_int(xi) | (_spread_bits_int(yi) << 1)
    xa = np.asarray(x, dtype=np.uint64)
    ya = np.asarray(y, dtype=np.uint64)
    if np.any(xa >> np.uint64(COORD_BITS)) or np.any(ya >> np.uint64(COORD_BITS)):
        raise ValueError(f"coordinates must be < 2**{COORD_BITS}")
    return _spread_bits(xa) | (_spread_bits(ya) << np.uint64(1))


def deinterleave2(code):
    """Split a Morton index back into its two coordinates.

    Inverse of :func:`interleave2`.

    Returns
    -------
    (x, y) : pair of int or ndarray of uint64
    """
    if np.isscalar(code):
        c = int(code) & _U64
        return _compact_bits_int(c), _compact_bits_int(c >> 1)
    c = np.asarray(code, dtype=np.uint64)
    return _compact_bits(c), _compact_bits(c >> np.uint64(1))


def morton_encode(level, x, y, max_level: int):
    """Morton key for quadrants given at their own-level coordinates.

    The key is computed on the finest (``max_level``) lattice so that keys of
    quadrants at different levels are comparable: a parent's key equals the
    key of its first (lower-left) descendant.  Ties between a parent and its
    first child are broken by level in :func:`morton_key`.

    Parameters
    ----------
    level : int or ndarray
        Refinement level(s), ``0 <= level <= max_level``.
    x, y : int or ndarray
        Coordinates on the ``2**level`` lattice (i.e. ``0 <= x < 2**level``).
    max_level : int
        Finest level of the lattice the keys are comparable on.

    Returns
    -------
    int or ndarray of uint64
    """
    if np.isscalar(level) and np.isscalar(x) and np.isscalar(y):
        lv, xi, yi = int(level), int(x), int(y)
        if lv < 0 or lv > max_level:
            raise ValueError("level out of range")
        if not (0 <= xi < (1 << lv)) or not (0 <= yi < (1 << lv)):
            raise ValueError("coordinates out of range for level")
        shift = max_level - lv
        return interleave2(xi << shift, yi << shift)
    lv = np.asarray(level, dtype=np.int64)
    xa = np.asarray(x, dtype=np.uint64)
    ya = np.asarray(y, dtype=np.uint64)
    if np.any(lv < 0) or np.any(lv > max_level):
        raise ValueError("level out of range")
    if np.any(xa >= (np.uint64(1) << lv.astype(np.uint64))) or np.any(
        ya >= (np.uint64(1) << lv.astype(np.uint64))
    ):
        raise ValueError("coordinates out of range for level")
    shift = (np.int64(max_level) - lv).astype(np.uint64)
    return np.asarray(interleave2(xa << shift, ya << shift), dtype=np.uint64)


def morton_decode(code, level, max_level: int):
    """Recover own-level coordinates from a Morton key.

    Inverse of :func:`morton_encode` for a known ``level``.
    """
    x, y = deinterleave2(code)
    if np.isscalar(code):
        shift = max_level - int(level)
        return x >> shift, y >> shift
    shift = np.uint64(max_level) - np.asarray(level, dtype=np.uint64)
    x = np.asarray(x, dtype=np.uint64) >> shift
    y = np.asarray(y, dtype=np.uint64) >> shift
    return x, y


def morton_key(level, x, y, max_level: int):
    """Total-order key: Morton index on the finest lattice, then level.

    The pair ``(morton_encode(...), level)`` sorts a mixed-level set of
    quadrants into the p4est leaf order: descendants follow their ancestor,
    and an ancestor precedes all of its descendants.

    Returns
    -------
    ndarray of uint64
        A single composite key ``code * (max_level + 1) + level`` usable with
        ``np.argsort``; scalar int when all inputs are scalars.
    """
    code = morton_encode(level, x, y, max_level)
    if np.isscalar(code):
        # Emulate uint64 wraparound so scalar keys match the array path.
        return (code * (max_level + 1) + int(level)) & _U64
    lv = np.asarray(level, dtype=np.uint64)
    return np.asarray(code, dtype=np.uint64) * np.uint64(max_level + 1) + lv
