"""2:1 balance enforcement across a forest.

Block-structured AMR requires that face-adjacent leaves differ by at most
one refinement level ("2:1 balance"): ghost-cell interpolation stencils and
flux corrections are only defined for that case.  p4est enforces the
constraint by *ripple refinement* — refining any leaf more than one level
coarser than a face neighbor, repeating until a fixed point.

The implementation here works on a :class:`~repro.mesh.forest.Forest` and
handles cross-tree adjacency through the brick topology.
"""

from __future__ import annotations

from repro.mesh.forest import Forest
from repro.mesh.quadrant import Quadrant, is_ancestor


def face_neighbor_leaves(forest: Forest, tree: int, q: Quadrant, face: int):
    """Yield ``(tree, leaf)`` for every leaf touching ``q`` across ``face``.

    Yields nothing at physical boundaries.  This is the adjacency relation
    the 2:1 balance constraint quantifies over; the incremental rebalance
    of :class:`repro.amr.parallel.ParallelAmrDriver` uses the identities
    (not just the levels) to refine a too-coarse neighbor directly.
    """
    hit = forest.face_neighbor(tree, q, face)
    if hit is None:
        return
    ntree, nq = hit
    neigh_tree = forest.trees[ntree]
    # The abstract same-level neighbor nq either is a leaf, is covered by a
    # coarser leaf (an ancestor), or is refined into finer leaves.
    if nq in neigh_tree:
        yield ntree, nq
        return
    # Coarser: walk up until we find a leaf ancestor.
    anc = nq
    while anc.level > 0:
        anc = Quadrant(anc.level - 1, anc.x >> 1, anc.y >> 1)
        if anc in neigh_tree:
            yield ntree, anc
            return
    # Finer: leaves descending from nq are a Morton-contiguous block.
    for leaf in neigh_tree.descendants(nq):
        if is_ancestor(nq, leaf):
            yield ntree, leaf


def _neighbor_leaf_levels(forest: Forest, tree: int, q: Quadrant, face: int):
    """Levels of all leaves touching ``q`` across ``face``."""
    for _ntree, leaf in face_neighbor_leaves(forest, tree, q, face):
        yield leaf.level


def balance_deficits(forest: Forest) -> list[tuple[int, Quadrant, int]]:
    """All 2:1 violations: ``(tree, leaf, worst_neighbor_level)`` triples.

    A leaf is in deficit when some face-adjacent leaf is more than one level
    finer than it.
    """
    out: list[tuple[int, Quadrant, int]] = []
    for t, q in forest.iter_leaves():
        worst = q.level
        for face in range(4):
            for lv in _neighbor_leaf_levels(forest, t, q, face):
                worst = max(worst, lv)
        if worst > q.level + 1:
            out.append((t, q, worst))
    return out


def is_balanced(forest: Forest) -> bool:
    """True iff no face-adjacent pair of leaves differs by more than 1 level."""
    return not balance_deficits(forest)


def balance_forest(forest: Forest, max_rounds: int = 64) -> int:
    """Ripple-refine ``forest`` until it is 2:1 balanced (in place).

    Returns the total number of refinements performed.  ``max_rounds``
    bounds the fixed-point iteration; each round can only deepen leaves, and
    the maximum level present never increases, so convergence is guaranteed
    well within the default bound.
    """
    total = 0
    for _ in range(max_rounds):
        deficits = balance_deficits(forest)
        if not deficits:
            return total
        for t, q, _worst in deficits:
            # The leaf may already have been refined by an earlier deficit in
            # this round (e.g. it appeared twice via two faces).
            if q in forest.trees[t]:
                forest.trees[t].refine(q)
                total += 1
    raise RuntimeError("2:1 balance did not converge")  # pragma: no cover
