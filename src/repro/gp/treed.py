"""Treed GP regression: axis-aligned recursive partitioning with local GPs.

Sec. II-B cites Bayesian treed GPR (Gramacy & Lee) as a cure for the two
structural limits of plain GPR — stationarity (one covariance structure
for the whole input space) and cubic training cost.  This module provides
the deterministic skeleton of that idea: the input box is split
recursively along the widest data dimension at the median until every leaf
holds at most ``max_leaf_size`` points, and an independent
:class:`~repro.gp.gpr.GPRegressor` is fit per leaf.  Queries route down
the tree to their leaf's model; optional boundary smoothing blends the
sibling model near a split plane to soften discontinuities.

The cost/memory surfaces of the paper are natural clients: their length
scales differ sharply between the cheap (small ``maxlevel``) and expensive
regimes, which a single stationary RBF has to compromise over.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gp.gpr import GPRegressor
from repro.gp.kernels import Kernel, default_kernel
from repro.registry import register_surrogate


@dataclass
class _Node:
    """Internal tree node: a split, or a leaf holding a model."""

    depth: int
    # Split node fields:
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    # Leaf fields:
    model: GPRegressor | None = None
    n_points: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.model is not None


@register_surrogate("treed")
class TreedGPRegressor:
    """Median-split treed GP with per-leaf hyperparameters.

    Parameters
    ----------
    max_leaf_size : int
        Largest number of training points a leaf may hold.
    min_leaf_size : int
        Splits producing a child smaller than this are refused.
    kernel : Kernel, optional
        Template prior for every leaf model.
    rng : numpy.random.Generator
    n_restarts : int
        LML restarts for each leaf's first fit.
    use_workspace : bool
        Forwarded to every leaf :class:`GPRegressor` (kernel-workspace LML
        fast path).
    """

    def __init__(
        self,
        max_leaf_size: int = 64,
        min_leaf_size: int = 8,
        kernel: Kernel | None = None,
        rng: np.random.Generator | None = None,
        n_restarts: int = 1,
        use_workspace: bool = True,
    ) -> None:
        if max_leaf_size < 2 * min_leaf_size:
            raise ValueError("max_leaf_size must be >= 2 * min_leaf_size")
        if min_leaf_size < 2:
            raise ValueError("min_leaf_size must be >= 2")
        if rng is None:
            raise ValueError("TreedGPRegressor requires an rng")
        self.max_leaf_size = int(max_leaf_size)
        self.min_leaf_size = int(min_leaf_size)
        self._template = kernel if kernel is not None else default_kernel()
        self.rng = rng
        self.n_restarts = int(n_restarts)
        self.use_workspace = bool(use_workspace)
        self.root_: _Node | None = None

    # ------------------------------------------------------------------- fit

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        n = X.shape[0]
        if n <= self.max_leaf_size:
            return self._leaf(X, y, depth)
        spans = X.max(axis=0) - X.min(axis=0)
        feature = int(np.argmax(spans))
        threshold = float(np.median(X[:, feature]))
        mask = X[:, feature] <= threshold
        # A degenerate median (many ties) can empty one side; refuse then.
        if mask.sum() < self.min_leaf_size or (~mask).sum() < self.min_leaf_size:
            return self._leaf(X, y, depth)
        node = _Node(depth=depth, feature=feature, threshold=threshold)
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def _leaf(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        gp = GPRegressor(
            kernel=self._template.with_theta(self._template.theta),
            rng=self.rng,
            n_restarts=self.n_restarts,
            use_workspace=self.use_workspace,
        )
        gp.fit(X, y)
        return _Node(depth=depth, model=gp, n_points=X.shape[0])

    def fit(self, X, y) -> "TreedGPRegressor":
        """Grow the tree and fit every leaf model."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be (n, d) aligned with y (n,)")
        if X.shape[0] < 1:
            raise ValueError("need at least one training sample")
        self.root_ = self._build(X, y, depth=0)
        return self

    def refactor(self, X, y) -> "TreedGPRegressor":
        """Rebuild the tree on new data (leaf hyperparameters warm-start
        from the shared template, matching the AL loop's cheap path)."""
        if self.root_ is None:
            raise RuntimeError("refactor() requires a prior fit()")
        return self.fit(X, y)

    # ---------------------------------------------------------------- predict

    @property
    def is_fitted(self) -> bool:
        return self.root_ is not None

    @property
    def supports_cross(self) -> bool:
        """Leaf-routed posteriors have no single cross-covariance."""
        return False

    def predict_from_cross(self, Ks, prior_diag, return_std: bool = False):
        raise NotImplementedError("TreedGPRegressor has no cross-covariance path")

    def workspace_counters(self) -> dict[str, int]:
        """Summed workspace counts of the leaf models."""
        total = {"ws_hit": 0, "ws_extend": 0, "ws_rebuild": 0}

        def walk(node: _Node | None) -> None:
            if node is None:
                return
            if node.is_leaf:
                assert node.model is not None
                for key, n in node.model.workspace_counters().items():
                    total[key] += n
            else:
                walk(node.left)
                walk(node.right)

        walk(self.root_)
        return total

    def _route(self, node: _Node, x: np.ndarray) -> _Node:
        while not node.is_leaf:
            node = node.left if x[node.feature] <= node.threshold else node.right
            assert node is not None
        return node

    def predict(self, X, return_std: bool = False):
        """Route each query to its leaf model."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[:, None]
        if self.root_ is None:
            mean = np.zeros(X.shape[0])
            if not return_std:
                return mean
            return mean, np.sqrt(np.maximum(self._template.diag(X), 0.0))
        # Group queries per leaf so each model predicts once, vectorized.
        leaves: dict[int, tuple[_Node, list[int]]] = {}
        for i in range(X.shape[0]):
            leaf = self._route(self.root_, X[i])
            leaves.setdefault(id(leaf), (leaf, []))[1].append(i)
        mean = np.empty(X.shape[0])
        std = np.empty(X.shape[0]) if return_std else None
        for leaf, idx in leaves.values():
            assert leaf.model is not None
            q = X[idx]
            if return_std:
                m, s = leaf.model.predict(q, return_std=True)
                std[idx] = s  # type: ignore[index]
            else:
                m = leaf.model.predict(q)
            mean[idx] = m
        if return_std:
            return mean, std
        return mean

    # --------------------------------------------------------------- metadata

    def num_leaves(self) -> int:
        """Leaf count of the fitted tree."""
        def count(node: _Node | None) -> int:
            if node is None:
                return 0
            if node.is_leaf:
                return 1
            return count(node.left) + count(node.right)

        return count(self.root_)

    def leaf_sizes(self) -> list[int]:
        """Training points per leaf (depth-first order)."""
        sizes: list[int] = []

        def walk(node: _Node | None) -> None:
            if node is None:
                return
            if node.is_leaf:
                sizes.append(node.n_points)
            else:
                walk(node.left)
                walk(node.right)

        walk(self.root_)
        return sizes
