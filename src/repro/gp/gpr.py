"""Gaussian Process regressor: exact inference with LML-fitted kernels.

Implements Eqs. (2)–(9) of the paper via Algorithm 2.1 of Rasmussen &
Williams: a Cholesky factorization of the training covariance gives the
predictive mean and variance, and the log marginal likelihood (with its
analytic gradient in log-hyperparameter space) is maximized by L-BFGS-B
with optional random restarts.

The AL loop refits the model after every acquired sample; following the
paper ("use old model's parameters as a starting point in hyperparameter
fitting"), :meth:`GPRegressor.fit` warm-starts from the current kernel.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import cho_solve, cholesky, solve_triangular
from scipy.optimize import minimize

from repro.gp.kernels import Kernel, default_kernel

#: Jitter ladder tried when the covariance is numerically indefinite.
_JITTERS = (0.0, 1e-10, 1e-8, 1e-6, 1e-4)


class GPRegressor:
    """Exact GP regression with marginal-likelihood hyperparameter fitting.

    Parameters
    ----------
    kernel : Kernel, optional
        Prior covariance; defaults to :func:`repro.gp.kernels.default_kernel`.
    normalize_y : bool
        Center the targets before fitting (restored on prediction).  The
        paper's log10 responses have non-zero means, so this is on by
        default.
    n_restarts : int
        Extra random restarts of the LML optimization on the *first* fit.
        Subsequent fits warm-start from the incumbent hyperparameters and
        use a single optimization run unless ``restart_every_fit`` is set.
    restart_every_fit : bool
        Re-randomize on every fit (slower, used in validation tests).
    rng : numpy.random.Generator, optional
        Source for restart draws; required when ``n_restarts > 0``.

    Attributes
    ----------
    kernel_ : Kernel
        Fitted kernel (after :meth:`fit`).
    X_train_, y_train_ : ndarray
        Stored training data.
    """

    def __init__(
        self,
        kernel: Kernel | None = None,
        normalize_y: bool = True,
        n_restarts: int = 2,
        restart_every_fit: bool = False,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.kernel = kernel if kernel is not None else default_kernel()
        self.normalize_y = normalize_y
        self.n_restarts = int(n_restarts)
        self.restart_every_fit = restart_every_fit
        self.rng = rng
        if self.n_restarts > 0 and rng is None:
            raise ValueError("n_restarts > 0 requires an rng")
        self.kernel_: Kernel | None = None
        self.X_train_: np.ndarray | None = None
        self.y_train_: np.ndarray | None = None
        self._y_mean = 0.0
        self._L: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._fit_count = 0

    # ------------------------------------------------------------------ LML

    def log_marginal_likelihood(
        self, theta: np.ndarray, eval_gradient: bool = False
    ) -> float | tuple[float, np.ndarray]:
        """Eq. (8) (and its theta-gradient) at the stored training data."""
        if self.X_train_ is None:
            raise RuntimeError("call fit() first (or use _lml_for_data)")
        return self._lml(theta, self.X_train_, self._centered_y(), eval_gradient)

    def _centered_y(self) -> np.ndarray:
        assert self.y_train_ is not None
        return self.y_train_ - self._y_mean

    def _lml(
        self,
        theta: np.ndarray,
        X: np.ndarray,
        y: np.ndarray,
        eval_gradient: bool,
    ):
        kernel = self.kernel.with_theta(theta)
        if eval_gradient:
            K, K_grad = kernel(X, eval_gradient=True)
        else:
            K = kernel(X)
        L = self._chol(K)
        if L is None:
            if eval_gradient:
                return -np.inf, np.zeros_like(theta)
            return -np.inf
        alpha = cho_solve((L, True), y, check_finite=False)
        n = y.shape[0]
        lml = (
            -0.5 * float(y @ alpha)
            - float(np.log(np.diag(L)).sum())
            - 0.5 * n * np.log(2.0 * np.pi)
        )
        if not eval_gradient:
            return lml
        # d lml / d theta_j = 0.5 tr((alpha alpha^T - K^-1) dK/dtheta_j)
        Kinv = cho_solve((L, True), np.eye(n), check_finite=False)
        inner = np.outer(alpha, alpha) - Kinv
        grad = 0.5 * np.einsum("ij,ijk->k", inner, K_grad)
        return lml, grad

    @staticmethod
    def _chol(K: np.ndarray) -> np.ndarray | None:
        """Cholesky with a jitter ladder; None if hopeless."""
        n = K.shape[0]
        for jitter in _JITTERS:
            try:
                return cholesky(
                    K + jitter * np.eye(n), lower=True, check_finite=False
                )
            except np.linalg.LinAlgError:
                continue
            except Exception:
                continue
        return None

    # ------------------------------------------------------------------ fit

    def fit(self, X, y) -> "GPRegressor":
        """Fit hyperparameters by LML maximization and precompute factors."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be (n, d) aligned with y (n,)")
        if X.shape[0] < 1:
            raise ValueError("need at least one training sample")
        self.X_train_ = X
        self.y_train_ = y
        self._y_mean = float(y.mean()) if self.normalize_y else 0.0
        yc = self._centered_y()

        start = self.kernel_ if self.kernel_ is not None else self.kernel
        bounds = start.bounds

        if start.n_theta == 0 or X.shape[0] == 1:
            # Nothing to optimize (or degenerate data): keep the prior.
            self.kernel_ = start
        else:
            best_theta, best_lml = self._optimize(start.theta, X, yc, bounds)
            restarts = (
                self.n_restarts
                if (self._fit_count == 0 or self.restart_every_fit)
                else 0
            )
            for _ in range(restarts):
                assert self.rng is not None
                theta0 = self.rng.uniform(bounds[:, 0], bounds[:, 1])
                theta, lml = self._optimize(theta0, X, yc, bounds)
                if lml > best_lml:
                    best_theta, best_lml = theta, lml
            self.kernel_ = start.with_theta(best_theta)

        K = self.kernel_(X)
        L = self._chol(K)
        if L is None:
            raise np.linalg.LinAlgError("covariance not positive definite")
        self._L = L
        self._alpha = cho_solve((L, True), yc, check_finite=False)
        self._fit_count += 1
        return self

    def refactor(self, X, y) -> "GPRegressor":
        """Replace the training data *without* re-optimizing hyperparameters.

        Re-factorizes the covariance at the incumbent ``kernel_`` for the
        new data.  Used by the AL loop when hyperparameter refits are
        thinned out (``hyper_refit_interval > 1``).  Requires a prior
        :meth:`fit`.
        """
        if self.kernel_ is None:
            raise RuntimeError("refactor() requires a prior fit()")
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be (n, d) aligned with y (n,)")
        self.X_train_ = X
        self.y_train_ = y
        self._y_mean = float(y.mean()) if self.normalize_y else 0.0
        K = self.kernel_(X)
        L = self._chol(K)
        if L is None:
            raise np.linalg.LinAlgError("covariance not positive definite")
        self._L = L
        self._alpha = cho_solve((L, True), self._centered_y(), check_finite=False)
        self._fit_count += 1
        return self

    def _optimize(self, theta0, X, yc, bounds) -> tuple[np.ndarray, float]:
        def objective(theta):
            lml, grad = self._lml(theta, X, yc, eval_gradient=True)
            return -lml, -grad

        theta0 = np.clip(theta0, bounds[:, 0], bounds[:, 1])
        res = minimize(
            objective,
            theta0,
            method="L-BFGS-B",
            jac=True,
            bounds=bounds,
        )
        return res.x, -float(res.fun)

    # ---------------------------------------------------------------- predict

    def predict(self, X, return_std: bool = False):
        """Predictive mean (and std) of Eq. (2)–(3) at query points ``X``.

        Before :meth:`fit`, returns the prior (zero mean, prior std).
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[:, None]
        if self.X_train_ is None or self._L is None:
            prior = self.kernel_ if self.kernel_ is not None else self.kernel
            mean = np.zeros(X.shape[0])
            if not return_std:
                return mean
            return mean, np.sqrt(np.maximum(prior.diag(X), 0.0))
        kernel = self.kernel_
        assert kernel is not None and self._alpha is not None
        Ks = kernel(X, self.X_train_)  # (m, n), no noise (cross-covariance)
        mean = Ks @ self._alpha + self._y_mean
        if not return_std:
            return mean
        V = solve_triangular(self._L, Ks.T, lower=True, check_finite=False)
        var = kernel.diag(X) - np.einsum("ij,ij->j", V, V)
        return mean, np.sqrt(np.maximum(var, 0.0))

    # ------------------------------------------------------------- utilities

    @property
    def is_fitted(self) -> bool:
        return self._L is not None

    def sample_y(self, X, rng: np.random.Generator, n_samples: int = 1) -> np.ndarray:
        """Draw functions from the posterior (or prior) at ``X``.

        Returns an array of shape (n_samples, len(X)).
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[:, None]
        kernel = self.kernel_ if self.kernel_ is not None else self.kernel
        if self.X_train_ is None or self._L is None:
            mean = np.zeros(X.shape[0])
            cov = kernel(X)
        else:
            Ks = kernel(X, self.X_train_)
            mean = Ks @ self._alpha + self._y_mean
            V = solve_triangular(self._L, Ks.T, lower=True, check_finite=False)
            cov = kernel(X) - V.T @ V
        L = self._chol(cov)
        if L is None:
            raise np.linalg.LinAlgError("posterior covariance not PSD")
        z = rng.standard_normal((n_samples, X.shape[0]))
        return mean[None, :] + z @ L.T
