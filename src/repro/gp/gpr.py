"""Gaussian Process regressor: exact inference with LML-fitted kernels.

Implements Eqs. (2)–(9) of the paper via Algorithm 2.1 of Rasmussen &
Williams: a Cholesky factorization of the training covariance gives the
predictive mean and variance, and the log marginal likelihood (with its
analytic gradient in log-hyperparameter space) is maximized by L-BFGS-B
with optional random restarts.

The AL loop refits the model after every acquired sample; following the
paper ("use old model's parameters as a starting point in hyperparameter
fitting"), :meth:`GPRegressor.fit` warm-starts from the current kernel.

When hyperparameter refits are thinned out (``hyper_refit_interval > 1``
in the AL loop), :meth:`GPRegressor.refactor` detects that the new
training set is the old one plus appended rows and *extends* the stored
Cholesky factor in O(n^2) (a rank-``m`` block update) instead of
refactorizing from scratch in O(n^3).  The fast path applies only when
the hyperparameters are frozen and the stored factorization needed no
jitter; otherwise it falls back to the exact full factorization.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg
from scipy.linalg import cho_solve, cholesky, solve_triangular
from scipy.linalg.blas import dger
from scipy.linalg.lapack import dpotrf, dpotri, dpotrs
from scipy.optimize import minimize

from repro import obs
from repro.gp.kernels import Kernel, KernelWorkspace, default_kernel
from repro.registry import register_surrogate

#: Jitter ladder tried when the covariance is numerically indefinite.
_JITTERS = (0.0, 1e-10, 1e-8, 1e-6, 1e-4)

#: Factorization failures we recover from; anything else is a real bug.
_CHOL_ERRORS = (np.linalg.LinAlgError, scipy.linalg.LinAlgError)


@register_surrogate("dense")
class GPRegressor:
    """Exact GP regression with marginal-likelihood hyperparameter fitting.

    Parameters
    ----------
    kernel : Kernel, optional
        Prior covariance; defaults to :func:`repro.gp.kernels.default_kernel`.
    normalize_y : bool
        Center the targets before fitting (restored on prediction).  The
        paper's log10 responses have non-zero means, so this is on by
        default.
    n_restarts : int
        Extra random restarts of the LML optimization on the *first* fit.
        Subsequent fits warm-start from the incumbent hyperparameters and
        use a single optimization run unless ``restart_every_fit`` is set.
    restart_every_fit : bool
        Re-randomize on every fit (slower, used in validation tests).
    rng : numpy.random.Generator, optional
        Source for restart draws; required when ``n_restarts > 0``.
    incremental : bool
        Allow :meth:`refactor` to extend the stored Cholesky factor in
        O(n^2) when the new training set appends rows to the old one.
        Disable to force from-scratch factorization (equivalence tests).
    use_workspace : bool
        Evaluate the LML objective through a :class:`KernelWorkspace`
        (cached theta-independent kernel structure, fused symmetry-aware
        gradient traces via LAPACK ``dpotri`` instead of a dense
        ``cho_solve``-built inverse and an ``(n, n, k)`` gradient stack).
        The workspace is kept across fits and *extended* when the AL loop
        appends acquisitions.  Exact to floating-point roundoff; disable
        to force the direct reference path (parity tests).
    max_memory_MB : float, optional
        Budget for the O(n²) factorization/workspace capacity buffers
        (:func:`repro.machine.memory_model.gp_capacity_MB`).  When a fit
        or refactor would exceed it, :class:`MemoryError` is raised *before*
        allocating, naming the estimate — instead of silently growing the
        resident set.  ``None`` (default) disables the guard.

    Attributes
    ----------
    kernel_ : Kernel
        Fitted kernel (after :meth:`fit`).
    X_train_, y_train_ : ndarray
        Stored training data.
    last_factor_mode_ : str
        How the current ``(L, alpha)`` pair was produced: ``"fit"``,
        ``"full"`` (from-scratch :meth:`refactor`) or ``"rank1"``
        (incremental extension).
    """

    def __init__(
        self,
        kernel: Kernel | None = None,
        normalize_y: bool = True,
        n_restarts: int = 2,
        restart_every_fit: bool = False,
        rng: np.random.Generator | None = None,
        incremental: bool = True,
        use_workspace: bool = True,
        max_memory_MB: float | None = None,
    ) -> None:
        self.kernel = kernel if kernel is not None else default_kernel()
        self.normalize_y = normalize_y
        self.n_restarts = int(n_restarts)
        self.restart_every_fit = restart_every_fit
        self.rng = rng
        self.incremental = bool(incremental)
        self.use_workspace = bool(use_workspace)
        if max_memory_MB is not None and max_memory_MB <= 0:
            raise ValueError("max_memory_MB must be positive (or None)")
        self.max_memory_MB = max_memory_MB
        self._ws: KernelWorkspace | None = None
        #: Flat capacity buffers viewed as contiguous (n, n) scratch for the
        #: fused gradient and the in-place LAPACK factorization; sized with
        #: headroom so the AL loop's one-sample growth reshapes instead of
        #: reallocating per fit.
        self._grad_flat: np.ndarray | None = None
        self._chol_flat: np.ndarray | None = None
        #: Best (lml, theta, L, alpha, jitter) seen during the current
        #: fit's LML evaluations; lets :meth:`_factorize` reuse the
        #: optimizer's own factorization instead of rebuilding it.
        self._eval_stash: tuple | None = None
        self._stash_armed = False
        #: Per-model workspace-acquisition counts (the global obs counters
        #: aggregate across models; these answer "how did *this* model's
        #: fits get their workspace" — the Surrogate protocol surface).
        self._ws_counters = {"ws_hit": 0, "ws_extend": 0, "ws_rebuild": 0}
        if self.n_restarts > 0 and rng is None:
            raise ValueError("n_restarts > 0 requires an rng")
        self.kernel_: Kernel | None = None
        self.X_train_: np.ndarray | None = None
        self.y_train_: np.ndarray | None = None
        self._y_mean = 0.0
        self._L: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._fit_count = 0
        #: Jitter the stored factorization needed (0.0 = exact kernel matrix).
        self._factor_jitter = 0.0
        #: Capacity buffer holding ``_L`` in its leading block, so repeated
        #: appends extend in place instead of copying the whole factor.
        self._L_buf: np.ndarray | None = None
        self.last_factor_mode_ = ""

    # ------------------------------------------------------------------ LML

    def log_marginal_likelihood(
        self, theta: np.ndarray, eval_gradient: bool = False
    ) -> float | tuple[float, np.ndarray]:
        """Eq. (8) (and its theta-gradient) at the stored training data."""
        if self.X_train_ is None:
            raise RuntimeError("call fit() first (or use _lml_for_data)")
        ws = self._ws
        if not self.use_workspace or ws is None or ws.n != self.X_train_.shape[0]:
            ws = None
        return self._lml(
            theta, self.X_train_, self._centered_y(), eval_gradient, ws=ws
        )

    def _centered_y(self) -> np.ndarray:
        assert self.y_train_ is not None
        return self.y_train_ - self._y_mean

    def _lml(
        self,
        theta: np.ndarray,
        X: np.ndarray,
        y: np.ndarray,
        eval_gradient: bool,
        ws: KernelWorkspace | None = None,
    ):
        obs.incr("lml_eval")
        if eval_gradient:
            obs.incr("lml_grad")
        with obs.span("lml_eval", cat="gp", n=y.shape[0], grad=bool(eval_gradient)):
            if ws is not None and ws.n == X.shape[0]:
                return self._lml_ws(theta, ws, y, eval_gradient)
            kernel = self.kernel.with_theta(theta)
            if eval_gradient:
                K, K_grad = kernel(X, eval_gradient=True)
            else:
                K = kernel(X)
            L = self._chol(K)
            if L is None:
                if eval_gradient:
                    return -np.inf, np.zeros_like(theta)
                return -np.inf
            alpha = cho_solve((L, True), y, check_finite=False)
            n = y.shape[0]
            lml = (
                -0.5 * float(y @ alpha)
                - float(np.log(np.diag(L)).sum())
                - 0.5 * n * np.log(2.0 * np.pi)
            )
            if not eval_gradient:
                return lml
            # d lml / d theta_j = 0.5 tr((alpha alpha^T - K^-1) dK/dtheta_j)
            Kinv = cho_solve((L, True), np.eye(n), check_finite=False)
            inner = np.outer(alpha, alpha) - Kinv
            grad = 0.5 * np.einsum("ij,ijk->k", inner, K_grad)
            return lml, grad

    def _lml_ws(
        self,
        theta: np.ndarray,
        ws: KernelWorkspace,
        y: np.ndarray,
        eval_gradient: bool,
    ):
        """Workspace fast path for :meth:`_lml` — same math, fused.

        The kernel matrix comes out of the workspace's preallocated
        buffers (no pairwise-distance rebuild), ``K^{-1}`` comes from
        LAPACK ``dpotri`` on the already-computed Cholesky factor (n³/3
        flops on one triangle instead of the ~2n³ dense ``cho_solve``
        against the identity), and the gradient trace is evaluated
        per-component by :meth:`KernelWorkspace.grad_dot` without the
        ``(n, n, n_theta)`` stack.
        """
        n = y.shape[0]
        # Factorize onto a persistent buffer with raw LAPACK: the kernel
        # tree writes K straight into the buffer (no copy for the common
        # structures) and dpotrf on the transposed (Fortran-contiguous)
        # view overwrites it in place -- no scipy wrapper allocations.  Lw
        # ends up holding the lower factor, zeros above.  Jitter retries
        # re-evaluate the workspace value (rare: the ladder's first rung
        # succeeds whenever the kernel carries a noise term).
        flat = self._chol_flat
        if flat is None or flat.size < n * n:
            cap = max(int(1.5 * n) + 8, 64)
            flat = np.empty(cap * cap)
            self._chol_flat = flat
        Lw = flat[: n * n].reshape(n, n)
        L = None
        for jitter in _JITTERS:
            ws.kernel_matrix(theta, out=Lw)
            if jitter:
                np.einsum("ii->i", Lw)[...] += jitter
            _, info = dpotrf(Lw.T, lower=0, clean=1, overwrite_a=1)
            if info == 0:
                L = Lw
                break
            if info < 0:  # pragma: no cover - malformed input, not indefinite
                raise ValueError(f"dpotrf: illegal argument {-info}")
        if L is None:
            if eval_gradient:
                return -np.inf, np.zeros_like(theta)
            return -np.inf
        alpha, info = dpotrs(L.T, y, lower=0)
        if info != 0:  # pragma: no cover - factor is valid by construction
            raise ValueError(f"dpotrs: illegal argument {-info}")
        lml = (
            -0.5 * float(y @ alpha)
            - float(np.log(np.einsum("ii->i", L)).sum())
            - 0.5 * n * np.log(2.0 * np.pi)
        )
        if self._stash_armed and (
            self._eval_stash is None or lml > self._eval_stash[0]
        ):
            # Keep the factorization of the best theta seen so far; if the
            # optimizer settles on it, _factorize() reuses it for free.
            # Copied before dpotri destroys L below.
            self._eval_stash = (lml, theta.copy(), L.copy(), alpha, jitter)
        if not eval_gradient:
            return lml
        flat = self._grad_flat
        if flat is None or flat.size < n * n:
            cap = max(int(1.5 * n) + 8, 64)
            flat = np.empty(cap * cap)
            self._grad_flat = flat
        inner = flat[: n * n].reshape(n, n)
        # In-place inverse from the factor: ``dpotri`` on the transposed
        # view overwrites L's memory (n^3/2 flops on one triangle, no
        # wrapper copy) instead of the ~2n^3 dense ``cho_solve`` against
        # the identity.  ``tri`` ends up holding the lower triangle of
        # K^{-1} with zeros above, C-contiguous.
        _, info = dpotri(L.T, lower=0, overwrite_c=1)
        tri = L
        if info != 0:  # pragma: no cover - dpotri cannot fail on a chol factor
            L2 = self._chol(ws.kernel_matrix(theta))
            Kinv = cho_solve((L2, True), np.eye(n), check_finite=False)
            np.multiply(alpha[:, None], alpha[None, :], out=inner)
            inner -= Kinv
        else:
            # grad_dot only consumes the symmetric part and the diagonal of
            # ``inner`` (symmetric-weight sums, total sums, traces), so pass
            # A = alpha alpha^T - 2*tri + diag(tri) whose symmetrization is
            # alpha alpha^T - K^{-1} -- no mirror pass, no second buffer.
            # BLAS dger folds the rank-1 alpha alpha^T into the scaled
            # triangle in one read-modify-write pass (inner.T is the
            # Fortran-ordered view dger updates in place; x == y makes the
            # transpose immaterial).
            np.multiply(tri, -2.0, out=inner)
            inner = dger(1.0, alpha, alpha, a=inner.T, overwrite_a=1).T
            np.einsum("ii->i", inner)[...] += np.einsum("ii->i", tri)
        grad = 0.5 * ws.grad_dot(inner, theta)
        return lml, grad

    @staticmethod
    def _chol_jitter(K: np.ndarray) -> tuple[np.ndarray, float] | None:
        """Cholesky with a jitter ladder; None if hopeless.

        Returns the factor *and* the jitter it needed — the incremental
        update path is only exact when the stored factorization used no
        jitter.  Only genuine indefiniteness (``LinAlgError``) climbs the
        ladder; shape errors or NaNs from a broken theta propagate.
        """
        n = K.shape[0]
        for jitter in _JITTERS:
            Kj = K if jitter == 0.0 else K + jitter * np.eye(n)
            try:
                L = cholesky(Kj, lower=True, check_finite=False)
                return L, jitter
            except _CHOL_ERRORS:
                continue
        return None

    @staticmethod
    def _chol(K: np.ndarray) -> np.ndarray | None:
        """Cholesky factor alone (see :meth:`_chol_jitter`)."""
        out = GPRegressor._chol_jitter(K)
        return None if out is None else out[0]

    # ------------------------------------------------------------------ fit

    def fit(self, X, y) -> "GPRegressor":
        """Fit hyperparameters by LML maximization and precompute factors."""
        with obs.timed("fit", cat="gp", n=len(X)):
            return self._fit(X, y)

    def _fit(self, X, y) -> "GPRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be (n, d) aligned with y (n,)")
        if X.shape[0] < 1:
            raise ValueError("need at least one training sample")
        self._check_memory_budget(X.shape[0])
        self.X_train_ = X
        self.y_train_ = y
        self._y_mean = float(y.mean()) if self.normalize_y else 0.0
        yc = self._centered_y()

        start = self.kernel_ if self.kernel_ is not None else self.kernel
        bounds = start.bounds

        if start.n_theta == 0 or X.shape[0] == 1:
            # Nothing to optimize (or degenerate data): keep the prior.
            self.kernel_ = start
            self._eval_stash = None
        else:
            ws = self._ensure_workspace(start, X)
            self._eval_stash = None
            self._stash_armed = ws is not None
            best_theta, best_lml = self._optimize(start.theta, X, yc, bounds, ws)
            restarts = (
                self.n_restarts
                if (self._fit_count == 0 or self.restart_every_fit)
                else 0
            )
            for _ in range(restarts):
                assert self.rng is not None
                theta0 = self.rng.uniform(bounds[:, 0], bounds[:, 1])
                theta, lml = self._optimize(theta0, X, yc, bounds, ws)
                if lml > best_lml:
                    best_theta, best_lml = theta, lml
            self._stash_armed = False
            self.kernel_ = start.with_theta(best_theta)
            # Validate the stash against the optimizer's raw theta: the
            # kernel_ roundtrip through exp/log may perturb the last ulp,
            # but the stashed factorization is for exactly this optimum.
            if self._eval_stash is not None and not np.array_equal(
                self._eval_stash[1], best_theta
            ):
                self._eval_stash = None

        self._factorize(X, yc)
        self._eval_stash = None
        self.last_factor_mode_ = "fit"
        self._fit_count += 1
        return self

    def _check_memory_budget(self, n: int) -> None:
        """Refuse (with the estimate) rather than exceed ``max_memory_MB``.

        Raised *before* any allocation so a guarded model never has a
        chance to OOM the process; subclasses with a cheaper large-n mode
        (``IterativeGPRegressor``) override this to reroute instead.
        """
        if self.max_memory_MB is None:
            return
        from repro.machine.memory_model import gp_capacity_MB

        need = gp_capacity_MB(n)
        if need > self.max_memory_MB:
            raise MemoryError(
                f"dense GP factorization at n={n} needs ~{need:.0f} MB of "
                f"O(n^2) capacity buffers, over the configured "
                f"max_memory_MB={self.max_memory_MB:g}. Raise the budget, "
                f"shrink the training set, or switch to "
                f"repro.gp.iterative.IterativeGPRegressor, which streams "
                f"matvecs above its dense threshold."
            )

    def _stashed_factors(self, n: int):
        """The optimizer's own ``(L, alpha, jitter)`` for ``kernel_``, or None.

        Valid only when the best LML evaluation of the fit that just ran
        used exactly the theta the optimizer settled on (the common case:
        L-BFGS-B returns its best evaluated point) and matches the current
        training-set size; otherwise :meth:`_factorize` rebuilds directly.
        """
        stash = self._eval_stash
        if stash is None or self.kernel_ is None:
            return None
        _, _, L, alpha, jitter = stash
        if L.shape[0] != n:
            return None
        return L, alpha, jitter

    def _factorize(self, X: np.ndarray, yc: np.ndarray) -> None:
        """From-scratch factorization of the covariance at ``kernel_``."""
        assert self.kernel_ is not None
        stashed = self._stashed_factors(X.shape[0])
        if stashed is not None:
            self._L, self._alpha, self._factor_jitter = stashed
            self._L_buf = self._L
            self._eval_stash = None
            return
        K = self.kernel_(X)
        out = self._chol_jitter(K)
        if out is None:
            raise np.linalg.LinAlgError("covariance not positive definite")
        self._L, self._factor_jitter = out
        self._L_buf = self._L  # capacity == size until the first extension
        self._alpha = cho_solve((self._L, True), yc, check_finite=False)

    def refactor(self, X, y) -> "GPRegressor":
        """Replace the training data *without* re-optimizing hyperparameters.

        Used by the AL loop when hyperparameter refits are thinned out
        (``hyper_refit_interval > 1``).  Requires a prior :meth:`fit`.

        When ``incremental`` is enabled and the new training set is the old
        one with rows appended, the stored Cholesky factor is *extended* by
        a rank-``m`` block update in O(n^2) instead of being rebuilt in
        O(n^3).  The fast path is skipped — falling back to the exact full
        factorization — whenever the stored factor needed jitter, the
        prefix rows changed, or the Schur complement of the appended block
        is not positive definite.
        """
        if self.kernel_ is None:
            raise RuntimeError("refactor() requires a prior fit()")
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be (n, d) aligned with y (n,)")
        self._check_memory_budget(X.shape[0])
        if self._can_extend(X):
            with obs.timed("rank1_update", cat="gp", n=len(X)):
                if self._extend_factorization(X, y):
                    return self
        with obs.timed("refactor", cat="gp", n=len(X)):
            self.X_train_ = X
            self.y_train_ = y
            self._y_mean = float(y.mean()) if self.normalize_y else 0.0
            self._factorize(X, self._centered_y())
            self.last_factor_mode_ = "full"
            self._fit_count += 1
        return self

    def _can_extend(self, X: np.ndarray) -> bool:
        """Fast-path guard: appended-rows refactor with an exact factor."""
        old = self.X_train_
        return (
            self.incremental
            and self._L is not None
            and old is not None
            and self._factor_jitter == 0.0
            and X.shape[0] > old.shape[0]
            and X.shape[1] == old.shape[1]
            and np.array_equal(X[: old.shape[0]], old)
        )

    def _extend_factorization(self, X: np.ndarray, y: np.ndarray) -> bool:
        """Extend ``(L, alpha)`` by the appended rows of ``X`` in O(n^2).

        With ``K_new = [[K11, K12], [K12^T, K22]]`` and ``K11 = L L^T``
        already factorized, the extended factor is
        ``[[L, 0], [B^T, L22]]`` where ``B = L^{-1} K12`` and
        ``L22 = chol(K22 - B^T B)``.  Returns False (leaving state
        untouched) if the Schur complement is not positive definite, in
        which case the caller re-factorizes from scratch.
        """
        assert self.kernel_ is not None and self._L is not None
        assert self.X_train_ is not None
        n_old = self.X_train_.shape[0]
        X_new = X[n_old:]
        K12 = self.kernel_(self.X_train_, X_new)  # cross-cov, noise-free
        K22 = self.kernel_(X_new)  # includes the noise diagonal
        B = solve_triangular(self._L, K12, lower=True, check_finite=False)
        S = K22 - B.T @ B
        try:
            L22 = cholesky(S, lower=True, check_finite=False)
        except _CHOL_ERRORS:
            return False
        n_new = X.shape[0]
        buf = self._L_buf
        if (
            buf is None
            or buf.shape[0] < n_new
            or not (self._L is buf or self._L.base is buf)
        ):
            # (Re)allocate with headroom: one O(n^2) copy buys capacity for
            # ~n/2 in-place appends, keeping the amortized memory traffic
            # of the AL loop's one-sample acquisitions at O(n) each.
            cap = max(int(1.5 * n_new) + 8, 64)
            buf = np.zeros((cap, cap))
            buf[:n_old, :n_old] = self._L
            self._L_buf = buf
        buf[n_old:n_new, :n_old] = B.T
        buf[n_old:n_new, n_old:n_new] = L22
        L_ext = buf[:n_new, :n_new]
        self.X_train_ = X
        self.y_train_ = y
        self._y_mean = float(y.mean()) if self.normalize_y else 0.0
        self._L = L_ext
        # alpha depends on *all* centered targets (the mean shifted), but
        # with L in hand it is a pair of triangular solves: O(n^2).
        self._alpha = cho_solve((L_ext, True), self._centered_y(), check_finite=False)
        self.last_factor_mode_ = "rank1"
        self._fit_count += 1
        return True

    def _ensure_workspace(self, kernel: Kernel, X: np.ndarray):
        """The (possibly extended) workspace for ``X``, or None.

        Reuses the stored workspace when its kernel structure still
        matches — extending it in place when ``X`` appends rows to the
        previous training set, the AL loop's steady state.  Unsupported
        kernel structures disable the fast path for this model.
        """
        if not self.use_workspace:
            return None
        if self._ws is not None and self._ws.matches(kernel):
            mode = f"ws_{self._ws.update(X)}"
            obs.incr(mode)
            self._ws_counters[mode] += 1
            return self._ws
        try:
            self._ws = kernel.prepare(X)
        except NotImplementedError:
            self.use_workspace = False
            return None
        obs.incr("ws_rebuild")
        self._ws_counters["ws_rebuild"] += 1
        return self._ws

    def _optimize(self, theta0, X, yc, bounds, ws=None) -> tuple[np.ndarray, float]:
        def objective(theta):
            lml, grad = self._lml(theta, X, yc, eval_gradient=True, ws=ws)
            return -lml, -grad

        theta0 = np.clip(theta0, bounds[:, 0], bounds[:, 1])
        res = minimize(
            objective,
            theta0,
            method="L-BFGS-B",
            jac=True,
            bounds=bounds,
        )
        return res.x, -float(res.fun)

    # ---------------------------------------------------------------- predict

    def predict(self, X, return_std: bool = False):
        """Predictive mean (and std) of Eq. (2)–(3) at query points ``X``.

        Before :meth:`fit`, returns the prior (zero mean, prior std).
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[:, None]
        if self.X_train_ is None or self._L is None:
            prior = self.kernel_ if self.kernel_ is not None else self.kernel
            mean = np.zeros(X.shape[0])
            if not return_std:
                return mean
            return mean, np.sqrt(np.maximum(prior.diag(X), 0.0))
        kernel = self.kernel_
        assert kernel is not None and self._alpha is not None
        with obs.timed("predict", cat="gp"):
            Ks = kernel(X, self.X_train_)  # (m, n), no noise (cross-covariance)
            mean = Ks @ self._alpha + self._y_mean
            if not return_std:
                return mean
            V = solve_triangular(self._L, Ks.T, lower=True, check_finite=False)
            var = kernel.diag(X) - np.einsum("ij,ij->j", V, V)
            return mean, np.sqrt(np.maximum(var, 0.0))

    def predict_from_cross(
        self, Ks: np.ndarray, prior_diag: np.ndarray, return_std: bool = False
    ):
        """Predict from a *precomputed* cross-covariance against the train set.

        ``Ks`` must equal ``kernel_(X_query, X_train_)`` (shape ``(m, n)``)
        and ``prior_diag`` must equal ``kernel_.diag(X_query)``.  The AL
        loop maintains both incrementally across iterations
        (:class:`repro.core.loop.CandidateCovarianceCache`) so each
        iteration skips the O(m·n) kernel rebuild.
        """
        if self._L is None or self._alpha is None:
            raise RuntimeError("predict_from_cross() requires a factorized model")
        Ks = np.asarray(Ks, dtype=np.float64)
        if Ks.ndim != 2 or Ks.shape[1] != self._alpha.shape[0]:
            raise ValueError("Ks must be (m, n_train)")
        with obs.timed("predict", cat="gp"):
            mean = Ks @ self._alpha + self._y_mean
            if not return_std:
                return mean
            V = solve_triangular(self._L, Ks.T, lower=True, check_finite=False)
            var = np.asarray(prior_diag, dtype=np.float64) - np.einsum(
                "ij,ij->j", V, V
            )
            return mean, np.sqrt(np.maximum(var, 0.0))

    # ------------------------------------------------------------- utilities

    @property
    def is_fitted(self) -> bool:
        return self._L is not None

    @property
    def supports_cross(self) -> bool:
        """Exact-GP surface: :meth:`predict_from_cross` is available."""
        return True

    def workspace_counters(self) -> dict[str, int]:
        """How this model's fits obtained their kernel workspace.

        ``{"ws_hit", "ws_extend", "ws_rebuild"}`` counts (the
        :data:`repro.obs.METRICS` workspace counters); all zero when ``use_workspace`` is
        off or no fit has run.  Part of the
        :class:`repro.gp.surrogate.Surrogate` protocol.
        """
        return dict(self._ws_counters)

    def sample_y(self, X, rng: np.random.Generator, n_samples: int = 1) -> np.ndarray:
        """Draw functions from the posterior (or prior) at ``X``.

        Returns an array of shape (n_samples, len(X)).
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[:, None]
        kernel = self.kernel_ if self.kernel_ is not None else self.kernel
        if self.X_train_ is None or self._L is None:
            mean = np.zeros(X.shape[0])
            cov = kernel(X)
        else:
            Ks = kernel(X, self.X_train_)
            mean = Ks @ self._alpha + self._y_mean
            V = solve_triangular(self._L, Ks.T, lower=True, check_finite=False)
            cov = kernel(X) - V.T @ V
        L = self._chol(cov)
        if L is None:
            raise np.linalg.LinAlgError("posterior covariance not PSD")
        z = rng.standard_normal((n_samples, X.shape[0]))
        return mean[None, :] + z @ L.T
