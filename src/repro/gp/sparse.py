"""Sparse GP approximation with inducing points (DTC / projected process).

Sec. II-B of the paper singles out Sparse Pseudo-input GPs and Sparse
Spectrum GPs as optimizations that "drastically reduce computational
complexity of the modeling" and notes they are "compatible with the cost-
and memory-aware AL described here" — enabling AL over *massive*
experimental datasets.  This module provides that capability with the
Deterministic Training Conditional (DTC) approximation:

- ``m`` inducing inputs are placed at k-means centroids of the data;
- hyperparameters are fit exactly on a subset of the data
  (subset-of-data), then frozen for the sparse predictor;
- training cost drops from ``O(n^3)`` to ``O(n m^2)`` and prediction to
  ``O(m^2)`` per point.

The predictive equations (Quinonero-Candela & Rasmussen, 2005):

    A      = sigma_n^2 K_mm + K_mn K_nm
    mu(*)  = K_*m A^{-1} K_mn y
    var(*) = k_** - Q_** + sigma_n^2 K_*m A^{-1} K_m*

with ``Q_** = K_*m K_mm^{-1} K_m*``.

Because every training-set-size-n object above is a *sum over training
points* (``K_mn K_nm = sum_i k_m(x_i) k_m(x_i)^T``, ``K_mn y = sum_i
k_m(x_i) y_i``), the AL loop's one-acquisition growth is a rank-``m_new``
update: :meth:`SparseGPRegressor.refactor` detects appended rows, folds
their ``(m, m_new)`` cross block into the running ``A`` / ``K_mn y``
accumulators (raw, so target re-centering stays exact), and re-factorizes
only the m x m system — O(n) per acquisition instead of O(n m^2), with
the inducing set frozen.  Non-append refactors fall back to a full
re-cluster + rebuild.

The predictive state also exposes the *cross-covariance* surface of the
``Surrogate`` protocol: all predictions depend on the query points only
through ``K_*m`` against the **inducing set**, so
``cross_points_ = inducing_`` and batch acquisition over a large
candidate pool is one (M, m) @ (m,) BLAS pass through
:meth:`predict_from_cross` — no per-candidate solves.  Since inducing
points do not move when a candidate is acquired (append path), cached
candidate rows stay valid across AL iterations
(``cross_appends_on_acquire = False``); re-clustering bumps
``cross_version_`` so caches rebuild exactly when the basis moved.

The class mirrors :class:`~repro.gp.gpr.GPRegressor`'s surface so the AL
loop accepts it through ``model_factory`` or ``ALConfig.surrogate``.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import cho_solve, cholesky, solve_triangular

from repro import obs
from repro.gp.gpr import GPRegressor
from repro.gp.kernels import Kernel, default_kernel
from repro.gp.local import kmeans
from repro.registry import register_surrogate

_JITTER = 1e-8


@register_surrogate("sparse")
class SparseGPRegressor:
    """DTC sparse GP with k-means inducing points.

    Parameters
    ----------
    n_inducing : int
        Number of inducing inputs ``m`` (clamped to the training size).
    kernel : Kernel, optional
        Prior covariance *including* a noise (White) component; defaults
        to the paper's amplitude * RBF + noise.
    rng : numpy.random.Generator
        Drives inducing-point clustering and the hyperparameter subset.
    sod_factor : int
        The hyperparameter fit uses ``min(n, sod_factor * m)`` random
        training points in an exact GP.
    normalize_y : bool
        Center targets before fitting (restored at prediction).
    use_workspace : bool
        Forwarded to the inner exact :class:`GPRegressor` doing the
        subset-of-data hyperparameter fit (kernel-workspace LML fast path).
    incremental : bool
        Allow :meth:`refactor` to fold appended rows into the running
        ``A`` / ``K_mn y`` accumulators (O(n) per acquisition, inducing
        set frozen) instead of re-clustering and rebuilding.  Disable to
        force the from-scratch path (equivalence tests).
    """

    #: Cached candidate cross rows survive acquisitions: the inducing set
    #: does not absorb acquired points on the append path (Surrogate
    #: cross-surface contract, see repro.gp.surrogate.cross_appends).
    cross_appends_on_acquire = False

    def __init__(
        self,
        n_inducing: int = 50,
        kernel: Kernel | None = None,
        rng: np.random.Generator | None = None,
        sod_factor: int = 3,
        normalize_y: bool = True,
        use_workspace: bool = True,
        incremental: bool = True,
    ) -> None:
        if n_inducing < 1:
            raise ValueError("n_inducing must be >= 1")
        if sod_factor < 1:
            raise ValueError("sod_factor must be >= 1")
        if rng is None:
            raise ValueError("SparseGPRegressor requires an rng")
        self.n_inducing = int(n_inducing)
        self.kernel = kernel if kernel is not None else default_kernel()
        self.rng = rng
        self.sod_factor = int(sod_factor)
        self.normalize_y = normalize_y
        self.use_workspace = bool(use_workspace)
        self.incremental = bool(incremental)

        self.kernel_: Kernel | None = None
        self.inducing_: np.ndarray | None = None
        self.X_train_: np.ndarray | None = None
        self.y_train_: np.ndarray | None = None
        self._y_mean = 0.0
        self._noise = 1e-2
        self._L_A: np.ndarray | None = None  # chol of A (+ jitter)
        self._L_mm: np.ndarray | None = None  # chol of K_mm
        self._beta: np.ndarray | None = None  # A^{-1} K_mn yc
        #: Raw training-sum state making appends exact under re-centering:
        #: A itself, K_mn @ y (uncentered), K_mn @ 1, and sum(y).
        self._A: np.ndarray | None = None
        self._Kmn_y_raw: np.ndarray | None = None
        self._Kmn_1: np.ndarray | None = None
        self._y_sum = 0.0
        #: Basis epoch: bumped whenever the inducing set moves, so cached
        #: cross rows against it are invalidated exactly then.
        self.cross_version_ = 0
        #: Workspace counts accumulated across *all* subset-of-data fits
        #: (each fit uses a fresh inner GPRegressor), plus sparse-path
        #: counters — the Surrogate workspace_counters surface.
        self._ws_counters = {"ws_hit": 0, "ws_extend": 0, "ws_rebuild": 0}
        self._sparse_counters = {"sparse_appends": 0, "sparse_reclusters": 0}
        self.last_factor_mode_ = ""

    # ------------------------------------------------------------------ fit

    def _estimate_noise(self, Z: np.ndarray) -> float:
        """Noise variance = (diag incl. noise) - (noise-free diag)."""
        assert self.kernel_ is not None
        z0 = Z[:1]
        with_noise = float(self.kernel_.diag(z0)[0])
        without = float(self.kernel_(z0, z0)[0, 0])
        return max(with_noise - without, 1e-10)

    def fit(self, X, y) -> "SparseGPRegressor":
        """Fit hyperparameters on a subset, then build the DTC factors."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be (n, d) aligned with y (n,)")
        n = X.shape[0]
        with obs.timed("fit", cat="gp", n=n):
            # 1. Subset-of-data hyperparameter fit (exact GP on a sample).
            m = min(self.n_inducing, n)
            n_sod = min(n, self.sod_factor * m)
            sod = self.rng.choice(n, size=n_sod, replace=False)
            exact = GPRegressor(
                kernel=self.kernel.with_theta(
                    self.kernel_.theta
                    if self.kernel_ is not None
                    else self.kernel.theta
                ),
                rng=self.rng,
                n_restarts=1 if self.kernel_ is None else 0,
                use_workspace=self.use_workspace,
            )
            exact.fit(X[sod], y[sod])
            for key, val in exact.workspace_counters().items():
                self._ws_counters[key] = self._ws_counters.get(key, 0) + val
            self.kernel_ = exact.kernel_
            # 2. Inducing points at k-means centroids.
            self._recluster(X)
            self._factorize(X, y)
        self.last_factor_mode_ = "fit"
        return self

    def refactor(self, X, y) -> "SparseGPRegressor":
        """New data, frozen hyperparameters.

        Appended rows (the AL loop's acquisitions) are *folded into* the
        running sufficient statistics with the inducing set frozen —
        O(n m) for the new cross block plus an O(m^3) re-factorization of
        the m x m system.  Anything else re-clusters and rebuilds.
        """
        if self.kernel_ is None:
            raise RuntimeError("refactor() requires a prior fit()")
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be (n, d) aligned with y (n,)")
        if self._can_append(X):
            with obs.timed("rank1_update", cat="gp", n=len(X)):
                self._append(X, y)
            self.last_factor_mode_ = "rank1"
            return self
        with obs.timed("refactor", cat="gp", n=len(X)):
            self._recluster(X)
            self._factorize(X, y)
        self.last_factor_mode_ = "full"
        return self

    def _recluster(self, X: np.ndarray) -> None:
        """Re-place the inducing set; invalidates cached cross rows."""
        k = min(self.n_inducing, X.shape[0])
        self.inducing_, _ = kmeans(X, k, self.rng)
        self.cross_version_ += 1
        self._sparse_counters["sparse_reclusters"] += 1
        obs.incr("sparse_recluster")

    def _can_append(self, X: np.ndarray) -> bool:
        old = self.X_train_
        return (
            self.incremental
            and self._A is not None
            and old is not None
            and X.shape[0] > old.shape[0]
            and X.shape[1] == old.shape[1]
            and np.array_equal(X[: old.shape[0]], old)
        )

    def _append(self, X: np.ndarray, y: np.ndarray) -> None:
        """Fold appended rows into ``A`` and the raw target statistics."""
        assert self.kernel_ is not None and self.inducing_ is not None
        assert self._A is not None
        assert self._Kmn_y_raw is not None and self._Kmn_1 is not None
        n_old = self.X_train_.shape[0]
        X_new, y_new = X[n_old:], y[n_old:]
        kmn_new = self.kernel_(self.inducing_, X_new)  # (m, m_new), noise-free
        self._A += kmn_new @ kmn_new.T
        self._Kmn_y_raw += kmn_new @ y_new
        self._Kmn_1 += kmn_new.sum(axis=1)
        self._y_sum += float(y_new.sum())
        self.X_train_ = X
        self.y_train_ = y
        self._refresh_solution()
        self._sparse_counters["sparse_appends"] += 1
        obs.incr("sparse_append")

    def _factorize(self, X: np.ndarray, y: np.ndarray) -> None:
        """From-scratch DTC factors + raw accumulators at the current basis."""
        assert self.kernel_ is not None and self.inducing_ is not None
        Z = self.inducing_
        self._noise = self._estimate_noise(Z)
        Kmm = self.kernel_(Z, Z) + _JITTER * np.eye(Z.shape[0])
        Kmn = self.kernel_(Z, X)  # cross-covariance: noise-free
        self._L_mm = cholesky(Kmm, lower=True, check_finite=False)
        self._A = self._noise * Kmm + Kmn @ Kmn.T
        self._Kmn_y_raw = Kmn @ y
        self._Kmn_1 = Kmn.sum(axis=1)
        self._y_sum = float(y.sum())
        self.X_train_ = X
        self.y_train_ = y
        self._refresh_solution()

    def _refresh_solution(self) -> None:
        """Re-factorize the m x m system from the current accumulators.

        The centered projection ``K_mn (y - y_mean)`` is recovered from the
        raw sums — exactly, even though every append shifts the mean.
        """
        assert self._A is not None and self.X_train_ is not None
        n = self.X_train_.shape[0]
        self._y_mean = self._y_sum / n if self.normalize_y else 0.0
        self._L_A = cholesky(
            self._A + _JITTER * np.eye(self._A.shape[0]),
            lower=True,
            check_finite=False,
        )
        rhs = self._Kmn_y_raw - self._y_mean * self._Kmn_1
        self._beta = cho_solve((self._L_A, True), rhs, check_finite=False)

    # ---------------------------------------------------------------- predict

    @property
    def is_fitted(self) -> bool:
        return self._beta is not None

    @property
    def supports_cross(self) -> bool:
        """Cross surface against the *inducing* set (see cross_points_)."""
        return True

    @property
    def cross_points_(self) -> np.ndarray | None:
        """Predictions read query points only through ``K_*m`` vs these."""
        return self.inducing_

    def workspace_counters(self) -> dict[str, int]:
        """Accumulated workspace counts of every subset-of-data fit.

        Superset of the :class:`GPRegressor` surface: the ``ws_*`` keys
        summed over all inner SOD fits, plus ``sparse_appends`` /
        ``sparse_reclusters`` (how refactors maintained the DTC factors).
        """
        out = dict(self._ws_counters)
        out.update(self._sparse_counters)
        return out

    def predict_from_cross(self, Ks, prior_diag, return_std: bool = False):
        """Predict from precomputed ``K_*m`` against the inducing set.

        ``Ks`` must equal ``kernel_(X_query, inducing_)`` (shape
        ``(M, m)``) and ``prior_diag`` must equal
        ``kernel_.diag(X_query)`` — the same contract as the exact GP's
        cross path, with the inducing set as the basis.  One BLAS-3 pass
        scores the whole candidate pool: O(M m) mean + O(M m^2) variance.
        """
        if self._beta is None:
            raise RuntimeError("predict_from_cross() requires a fitted model")
        Ks = np.asarray(Ks, dtype=np.float64)
        if Ks.ndim != 2 or Ks.shape[1] != self._beta.shape[0]:
            raise ValueError("Ks must be (m_query, n_inducing)")
        with obs.timed("predict", cat="gp"):
            mean = Ks @ self._beta + self._y_mean
            if not return_std:
                return mean
            # Noise-free prior diag: prior_diag includes the white term.
            k_diag = np.asarray(prior_diag, dtype=np.float64) - self._noise
            v_mm = solve_triangular(
                self._L_mm, Ks.T, lower=True, check_finite=False
            )
            q_diag = np.einsum("ij,ij->j", v_mm, v_mm)
            v_a = solve_triangular(
                self._L_A, Ks.T, lower=True, check_finite=False
            )
            corr = self._noise * np.einsum("ij,ij->j", v_a, v_a)
            var = k_diag - q_diag + corr
            return mean, np.sqrt(np.maximum(var, 0.0))

    def predict(self, X, return_std: bool = False):
        """DTC predictive mean (and std) at query points."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[:, None]
        if self._beta is None:
            kernel = self.kernel_ if self.kernel_ is not None else self.kernel
            mean = np.zeros(X.shape[0])
            if not return_std:
                return mean
            return mean, np.sqrt(np.maximum(kernel.diag(X), 0.0))
        assert self.kernel_ is not None and self.inducing_ is not None
        Ksm = self.kernel_(X, self.inducing_)
        return self.predict_from_cross(
            Ksm, self.kernel_.diag(X), return_std=return_std
        )

    @property
    def num_inducing(self) -> int:
        """Inducing points currently in use."""
        return 0 if self.inducing_ is None else int(self.inducing_.shape[0])
