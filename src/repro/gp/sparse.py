"""Sparse GP approximation with inducing points (DTC / projected process).

Sec. II-B of the paper singles out Sparse Pseudo-input GPs and Sparse
Spectrum GPs as optimizations that "drastically reduce computational
complexity of the modeling" and notes they are "compatible with the cost-
and memory-aware AL described here" — enabling AL over *massive*
experimental datasets.  This module provides that capability with the
Deterministic Training Conditional (DTC) approximation:

- ``m`` inducing inputs are placed at k-means centroids of the data;
- hyperparameters are fit exactly on a subset of the data
  (subset-of-data), then frozen for the sparse predictor;
- training cost drops from ``O(n^3)`` to ``O(n m^2)`` and prediction to
  ``O(m^2)`` per point.

The predictive equations (Quinonero-Candela & Rasmussen, 2005):

    A      = sigma_n^2 K_mm + K_mn K_nm
    mu(*)  = K_*m A^{-1} K_mn y
    var(*) = k_** - Q_** + sigma_n^2 K_*m A^{-1} K_m*

with ``Q_** = K_*m K_mm^{-1} K_m*``.

The class mirrors :class:`~repro.gp.gpr.GPRegressor`'s surface so the AL
loop accepts it through ``model_factory``.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import cho_solve, cholesky, solve_triangular

from repro.gp.gpr import GPRegressor
from repro.gp.kernels import Kernel, default_kernel
from repro.gp.local import kmeans

_JITTER = 1e-8


class SparseGPRegressor:
    """DTC sparse GP with k-means inducing points.

    Parameters
    ----------
    n_inducing : int
        Number of inducing inputs ``m`` (clamped to the training size).
    kernel : Kernel, optional
        Prior covariance *including* a noise (White) component; defaults
        to the paper's amplitude * RBF + noise.
    rng : numpy.random.Generator
        Drives inducing-point clustering and the hyperparameter subset.
    sod_factor : int
        The hyperparameter fit uses ``min(n, sod_factor * m)`` random
        training points in an exact GP.
    normalize_y : bool
        Center targets before fitting (restored at prediction).
    use_workspace : bool
        Forwarded to the inner exact :class:`GPRegressor` doing the
        subset-of-data hyperparameter fit (kernel-workspace LML fast path).
    """

    def __init__(
        self,
        n_inducing: int = 50,
        kernel: Kernel | None = None,
        rng: np.random.Generator | None = None,
        sod_factor: int = 3,
        normalize_y: bool = True,
        use_workspace: bool = True,
    ) -> None:
        if n_inducing < 1:
            raise ValueError("n_inducing must be >= 1")
        if sod_factor < 1:
            raise ValueError("sod_factor must be >= 1")
        if rng is None:
            raise ValueError("SparseGPRegressor requires an rng")
        self.n_inducing = int(n_inducing)
        self.kernel = kernel if kernel is not None else default_kernel()
        self.rng = rng
        self.sod_factor = int(sod_factor)
        self.normalize_y = normalize_y
        self.use_workspace = bool(use_workspace)

        self.kernel_: Kernel | None = None
        self.inducing_: np.ndarray | None = None
        self._sod_exact: GPRegressor | None = None
        self._y_mean = 0.0
        self._noise = 1e-2
        self._L_A: np.ndarray | None = None  # chol of A
        self._L_mm: np.ndarray | None = None  # chol of K_mm
        self._beta: np.ndarray | None = None  # A^{-1} K_mn y

    # ------------------------------------------------------------------ fit

    def _estimate_noise(self, Z: np.ndarray) -> float:
        """Noise variance = (diag incl. noise) - (noise-free diag)."""
        assert self.kernel_ is not None
        z0 = Z[:1]
        with_noise = float(self.kernel_.diag(z0)[0])
        without = float(self.kernel_(z0, z0)[0, 0])
        return max(with_noise - without, 1e-10)

    def fit(self, X, y) -> "SparseGPRegressor":
        """Fit hyperparameters on a subset, then build the DTC factors."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be (n, d) aligned with y (n,)")
        n = X.shape[0]
        # 1. Subset-of-data hyperparameter fit (exact GP on a sample).
        m = min(self.n_inducing, n)
        n_sod = min(n, self.sod_factor * m)
        sod = self.rng.choice(n, size=n_sod, replace=False)
        exact = GPRegressor(
            kernel=self.kernel.with_theta(
                self.kernel_.theta if self.kernel_ is not None else self.kernel.theta
            ),
            rng=self.rng,
            n_restarts=1 if self.kernel_ is None else 0,
            use_workspace=self.use_workspace,
        )
        exact.fit(X[sod], y[sod])
        self._sod_exact = exact
        self.kernel_ = exact.kernel_
        # 2. Inducing points at k-means centroids.
        k = min(m, n)
        self.inducing_, _ = kmeans(X, k, self.rng)
        self._factorize(X, y)
        return self

    def refactor(self, X, y) -> "SparseGPRegressor":
        """New data, frozen hyperparameters; inducing points re-clustered."""
        if self.kernel_ is None:
            raise RuntimeError("refactor() requires a prior fit()")
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        k = min(self.n_inducing, X.shape[0])
        self.inducing_, _ = kmeans(X, k, self.rng)
        self._factorize(X, y)
        return self

    def _factorize(self, X: np.ndarray, y: np.ndarray) -> None:
        assert self.kernel_ is not None and self.inducing_ is not None
        Z = self.inducing_
        self._y_mean = float(y.mean()) if self.normalize_y else 0.0
        yc = y - self._y_mean
        self._noise = self._estimate_noise(Z)

        Kmm = self.kernel_(Z, Z) + _JITTER * np.eye(Z.shape[0])
        Kmn = self.kernel_(Z, X)  # cross-covariance: noise-free
        A = self._noise * Kmm + Kmn @ Kmn.T
        self._L_mm = cholesky(Kmm, lower=True, check_finite=False)
        self._L_A = cholesky(
            A + _JITTER * np.eye(A.shape[0]), lower=True, check_finite=False
        )
        self._beta = cho_solve((self._L_A, True), Kmn @ yc, check_finite=False)

    # ---------------------------------------------------------------- predict

    @property
    def is_fitted(self) -> bool:
        return self._beta is not None

    @property
    def supports_cross(self) -> bool:
        """DTC has no exact cross-covariance surface."""
        return False

    def predict_from_cross(self, Ks, prior_diag, return_std: bool = False):
        raise NotImplementedError("SparseGPRegressor has no cross-covariance path")

    def workspace_counters(self) -> dict[str, int]:
        """Workspace counts of the subset-of-data hyperparameter fit."""
        if self._sod_exact is None:
            return {"ws_hit": 0, "ws_extend": 0, "ws_rebuild": 0}
        return self._sod_exact.workspace_counters()

    def predict(self, X, return_std: bool = False):
        """DTC predictive mean (and std) at query points."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[:, None]
        if self._beta is None:
            kernel = self.kernel_ if self.kernel_ is not None else self.kernel
            mean = np.zeros(X.shape[0])
            if not return_std:
                return mean
            return mean, np.sqrt(np.maximum(kernel.diag(X), 0.0))
        assert self.kernel_ is not None and self.inducing_ is not None
        Ksm = self.kernel_(X, self.inducing_)
        mean = Ksm @ self._beta + self._y_mean
        if not return_std:
            return mean
        # Noise-free prior diag: kernel.diag includes the white term.
        k_diag = self.kernel_.diag(X) - self._noise
        v_mm = solve_triangular(self._L_mm, Ksm.T, lower=True, check_finite=False)
        q_diag = np.einsum("ij,ij->j", v_mm, v_mm)
        v_a = solve_triangular(self._L_A, Ksm.T, lower=True, check_finite=False)
        corr = self._noise * np.einsum("ij,ij->j", v_a, v_a)
        var = k_diag - q_diag + corr
        return mean, np.sqrt(np.maximum(var, 0.0))

    @property
    def num_inducing(self) -> int:
        """Inducing points currently in use."""
        return 0 if self.inducing_ is None else int(self.inducing_.shape[0])
