"""Sparse Spectrum GP: trigonometric random features for the RBF kernel.

The second scalable approximation Sec. II-B cites (Lazaro-Gredilla et al.,
2010) "exploit[s] sparsity in ... the kernel's spectral space": by
Bochner's theorem the RBF kernel is the Fourier transform of a Gaussian
spectral density, so sampling ``m`` frequencies ``w_r ~ N(0, 1/l^2 I)``
yields the feature map

    phi(x) = sqrt(sigma_f^2 / m) * [cos(w_r.x), sin(w_r.x)]_{r=1..m}

whose linear Bayesian regression has ``E[phi(x).phi(y)] = k_RBF(x, y)``.
Training is ``O(n m^2)`` and prediction ``O(m)`` / ``O(m^2)`` for the
mean / variance — independent of ``n``.

Hyperparameters ``(l, sigma_f^2, sigma_n^2)`` are fit exactly on a data
subset (as in :mod:`repro.gp.sparse`), then the frequencies are drawn from
the fitted spectral density.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import cho_solve, cholesky, solve_triangular

from repro.gp.gpr import GPRegressor
from repro.gp.kernels import (
    ConstantKernel,
    Kernel,
    Product,
    RBF,
    Sum,
    WhiteKernel,
    default_kernel,
)

_JITTER = 1e-10


def _extract_rbf_params(kernel: Kernel) -> tuple[float, float, float]:
    """(length_scale, amplitude, noise) from an amplitude*RBF+noise kernel."""
    if not isinstance(kernel, Sum):
        raise ValueError("spectral GP expects kernel of form Constant*RBF + White")
    prod, white = kernel.k1, kernel.k2
    if isinstance(prod, WhiteKernel):
        prod, white = white, prod
    if not isinstance(white, WhiteKernel) or not isinstance(prod, Product):
        raise ValueError("spectral GP expects kernel of form Constant*RBF + White")
    const, rbf = prod.k1, prod.k2
    if isinstance(const, RBF):
        const, rbf = rbf, const
    if not isinstance(const, ConstantKernel) or not isinstance(rbf, RBF):
        raise ValueError("spectral GP expects kernel of form Constant*RBF + White")
    if rbf.anisotropic:
        raise ValueError("spectral GP supports isotropic RBF only")
    return float(rbf.length_scale[0]), float(const.constant), float(white.noise_level)


class SpectralGPRegressor:
    """Sparse-spectrum (random Fourier feature) GP regression.

    Parameters
    ----------
    n_frequencies : int
        Spectral points ``m``; the feature dimension is ``2 m``.
    kernel : Kernel, optional
        Must have the ``Constant * RBF + White`` structure of
        :func:`repro.gp.kernels.default_kernel`.
    rng : numpy.random.Generator
        Draws the spectral frequencies and the hyperparameter subset.
    sod_factor : int
        Hyperparameter fit uses ``min(n, sod_factor * m)`` points exactly.
    normalize_y : bool
        Center targets before fitting.
    """

    def __init__(
        self,
        n_frequencies: int = 64,
        kernel: Kernel | None = None,
        rng: np.random.Generator | None = None,
        sod_factor: int = 3,
        normalize_y: bool = True,
    ) -> None:
        if n_frequencies < 1:
            raise ValueError("n_frequencies must be >= 1")
        if rng is None:
            raise ValueError("SpectralGPRegressor requires an rng")
        self.n_frequencies = int(n_frequencies)
        self.kernel = kernel if kernel is not None else default_kernel()
        _extract_rbf_params(self.kernel)  # validate structure early
        self.rng = rng
        self.sod_factor = int(sod_factor)
        self.normalize_y = normalize_y

        self.kernel_: Kernel | None = None
        self._W: np.ndarray | None = None  # (m, d) frequencies
        self._amp2 = 1.0
        self._noise = 1e-2
        self._y_mean = 0.0
        self._L: np.ndarray | None = None  # chol of (Phi^T Phi + noise I)
        self._w_mean: np.ndarray | None = None  # posterior weight mean

    # --------------------------------------------------------------- features

    def _features(self, X: np.ndarray) -> np.ndarray:
        """phi(X) of shape (n, 2m), scaled so phi.phi^T approximates k."""
        assert self._W is not None
        proj = X @ self._W.T  # (n, m)
        scale = np.sqrt(self._amp2 / self.n_frequencies)
        return scale * np.hstack([np.cos(proj), np.sin(proj)])

    # ------------------------------------------------------------------- fit

    def fit(self, X, y) -> "SpectralGPRegressor":
        """Subset hyperparameter fit, frequency draw, then linear solve."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be (n, d) aligned with y (n,)")
        n, d = X.shape
        n_sod = min(n, self.sod_factor * self.n_frequencies)
        sod = self.rng.choice(n, size=n_sod, replace=False)
        exact = GPRegressor(
            kernel=self.kernel.with_theta(
                self.kernel_.theta if self.kernel_ is not None else self.kernel.theta
            ),
            rng=self.rng,
            n_restarts=1 if self.kernel_ is None else 0,
        )
        exact.fit(X[sod], y[sod])
        self.kernel_ = exact.kernel_
        ls, self._amp2, self._noise = _extract_rbf_params(self.kernel_)
        # Frequencies from the RBF spectral density N(0, l^{-2} I).
        self._W = self.rng.normal(0.0, 1.0 / ls, size=(self.n_frequencies, d))
        self._solve(X, y)
        return self

    def refactor(self, X, y) -> "SpectralGPRegressor":
        """New data, frozen hyperparameters and frequencies."""
        if self._W is None:
            raise RuntimeError("refactor() requires a prior fit()")
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        self._solve(X, y)
        return self

    def _solve(self, X: np.ndarray, y: np.ndarray) -> None:
        self._y_mean = float(y.mean()) if self.normalize_y else 0.0
        yc = y - self._y_mean
        Phi = self._features(X)  # (n, 2m)
        A = Phi.T @ Phi + self._noise * np.eye(Phi.shape[1])
        self._L = cholesky(A + _JITTER * np.eye(A.shape[0]), lower=True, check_finite=False)
        self._w_mean = cho_solve((self._L, True), Phi.T @ yc, check_finite=False)

    # ---------------------------------------------------------------- predict

    @property
    def is_fitted(self) -> bool:
        return self._w_mean is not None

    def predict(self, X, return_std: bool = False):
        """Posterior mean (and std) of the trigonometric linear model."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[:, None]
        if self._w_mean is None:
            kernel = self.kernel_ if self.kernel_ is not None else self.kernel
            mean = np.zeros(X.shape[0])
            if not return_std:
                return mean
            return mean, np.sqrt(np.maximum(kernel.diag(X), 0.0))
        Phi = self._features(X)
        mean = Phi @ self._w_mean + self._y_mean
        if not return_std:
            return mean
        v = solve_triangular(self._L, Phi.T, lower=True, check_finite=False)
        var = self._noise * np.einsum("ij,ij->j", v, v)
        return mean, np.sqrt(np.maximum(var, 0.0))
