"""Covariance functions with analytic gradients in log-parameter space.

Every kernel exposes its tunable hyperparameters as ``theta``, the vector
of *natural logarithms* of the positive parameters — the standard trick
that turns positivity constraints into an unconstrained (box-bounded)
optimization and makes LML gradients well-scaled.

Conventions (matching scikit-learn, which the paper used):

- ``k(X)`` (one argument) is the training covariance **including** any
  white-noise diagonal; ``k(X, Y)`` (two arguments) is the cross-covariance
  and excludes noise.
- ``k(X, eval_gradient=True)`` also returns ``dK`` of shape
  ``(n, n, n_theta)`` with derivatives **with respect to theta** (log
  parameters), i.e. ``dK/dtheta_j = dK/dp_j * p_j``.
- ``kernel_a + kernel_b`` and ``kernel_a * kernel_b`` build :class:`Sum`
  and :class:`Product` nodes.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np


def _as2d(X) -> np.ndarray:
    X = np.asarray(X, dtype=np.float64)
    if X.ndim == 1:
        X = X[:, None]
    if X.ndim != 2:
        raise ValueError("inputs must be 2-D (n_samples, n_features)")
    return X


def _sqdist(X: np.ndarray, Y: np.ndarray, length_scale: np.ndarray) -> np.ndarray:
    """Pairwise squared distances of scaled inputs, shape (n, m).

    Vectorized via the ||a||^2 + ||b||^2 - 2 a.b expansion; clipped at zero
    to kill the tiny negatives floating-point cancellation produces.
    """
    Xs = X / length_scale
    Ys = Y / length_scale
    d = (
        np.sum(Xs**2, axis=1)[:, None]
        + np.sum(Ys**2, axis=1)[None, :]
        - 2.0 * (Xs @ Ys.T)
    )
    return np.maximum(d, 0.0)


class Kernel(ABC):
    """Base covariance function."""

    # -- hyperparameter vector ------------------------------------------------

    @property
    @abstractmethod
    def theta(self) -> np.ndarray:
        """Log-parameters as a flat float array (may be empty)."""

    @abstractmethod
    def with_theta(self, theta: np.ndarray) -> "Kernel":
        """A copy of this kernel with the given log-parameters."""

    @property
    @abstractmethod
    def bounds(self) -> np.ndarray:
        """(n_theta, 2) log-space box bounds for the optimizer."""

    @property
    def n_theta(self) -> int:
        return self.theta.shape[0]

    # -- evaluation ------------------------------------------------------------

    @abstractmethod
    def __call__(
        self, X, Y=None, eval_gradient: bool = False
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        """Covariance matrix (and optionally its theta-gradient)."""

    @abstractmethod
    def diag(self, X) -> np.ndarray:
        """Diagonal of ``self(X)`` without building the full matrix."""

    # -- composition ----------------------------------------------------------

    def __add__(self, other: "Kernel") -> "Sum":
        return Sum(self, other)

    def __mul__(self, other: "Kernel") -> "Product":
        return Product(self, other)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        params = ", ".join(f"{v:.4g}" for v in np.exp(self.theta))
        return f"{type(self).__name__}({params})"


class ConstantKernel(Kernel):
    """Constant covariance ``sigma_f^2`` — the amplitude of Eq. (7).

    Usually composed as ``ConstantKernel(a) * RBF(l)``.
    """

    def __init__(self, constant: float = 1.0, bounds: tuple[float, float] = (1e-3, 1e3)):
        if constant <= 0:
            raise ValueError("constant must be positive")
        self.constant = float(constant)
        self._bounds = (float(bounds[0]), float(bounds[1]))

    @property
    def theta(self) -> np.ndarray:
        return np.array([math.log(self.constant)])

    def with_theta(self, theta: np.ndarray) -> "ConstantKernel":
        return ConstantKernel(float(np.exp(theta[0])), self._bounds)

    @property
    def bounds(self) -> np.ndarray:
        return np.log(np.array([self._bounds]))

    def __call__(self, X, Y=None, eval_gradient: bool = False):
        X = _as2d(X)
        m = X.shape[0] if Y is None else _as2d(Y).shape[0]
        K = np.full((X.shape[0], m), self.constant)
        if not eval_gradient:
            return K
        if Y is not None:
            raise ValueError("gradients only defined for K(X, X)")
        return K, K[:, :, None].copy()  # dK/dlog(c) = c = K

    def diag(self, X) -> np.ndarray:
        return np.full(_as2d(X).shape[0], self.constant)


class WhiteKernel(Kernel):
    """Observation noise ``sigma_n^2`` on the training diagonal (Eq. (1))."""

    def __init__(self, noise_level: float = 1e-2, bounds: tuple[float, float] = (1e-8, 1e1)):
        if noise_level <= 0:
            raise ValueError("noise_level must be positive")
        self.noise_level = float(noise_level)
        self._bounds = (float(bounds[0]), float(bounds[1]))

    @property
    def theta(self) -> np.ndarray:
        return np.array([math.log(self.noise_level)])

    def with_theta(self, theta: np.ndarray) -> "WhiteKernel":
        return WhiteKernel(float(np.exp(theta[0])), self._bounds)

    @property
    def bounds(self) -> np.ndarray:
        return np.log(np.array([self._bounds]))

    def __call__(self, X, Y=None, eval_gradient: bool = False):
        X = _as2d(X)
        n = X.shape[0]
        if Y is None:
            K = self.noise_level * np.eye(n)
            if eval_gradient:
                return K, K[:, :, None].copy()
            return K
        if eval_gradient:
            raise ValueError("gradients only defined for K(X, X)")
        return np.zeros((n, _as2d(Y).shape[0]))

    def diag(self, X) -> np.ndarray:
        return np.full(_as2d(X).shape[0], self.noise_level)


class RBF(Kernel):
    """Squared-exponential kernel, Eq. (7): ``exp(-d^2 / (2 l^2))``.

    ``length_scale`` may be a scalar (isotropic, the paper's choice) or a
    vector of per-dimension scales (anisotropic / ARD, the paper's
    future-work extension).
    """

    def __init__(self, length_scale=1.0, bounds: tuple[float, float] = (1e-2, 1e2)):
        ls = np.atleast_1d(np.asarray(length_scale, dtype=np.float64))
        if np.any(ls <= 0):
            raise ValueError("length_scale must be positive")
        self.length_scale = ls
        self._bounds = (float(bounds[0]), float(bounds[1]))

    @property
    def anisotropic(self) -> bool:
        return self.length_scale.shape[0] > 1

    @property
    def theta(self) -> np.ndarray:
        return np.log(self.length_scale)

    def with_theta(self, theta: np.ndarray) -> "RBF":
        return RBF(np.exp(theta), self._bounds)

    @property
    def bounds(self) -> np.ndarray:
        return np.log(np.tile(self._bounds, (self.length_scale.shape[0], 1)))

    def _ls(self, X: np.ndarray) -> np.ndarray:
        if self.anisotropic and self.length_scale.shape[0] != X.shape[1]:
            raise ValueError("anisotropic length_scale does not match n_features")
        return self.length_scale

    def __call__(self, X, Y=None, eval_gradient: bool = False):
        X = _as2d(X)
        ls = self._ls(X)
        Ym = X if Y is None else _as2d(Y)
        d2 = _sqdist(X, Ym, ls)
        if Y is None:
            # Kill the ~1e-16 cancellation residue of the expansion: exact
            # zeros on the diagonal keep sqrt-based gradients clean.
            np.fill_diagonal(d2, 0.0)
        K = np.exp(-0.5 * d2)
        if not eval_gradient:
            return K
        if Y is not None:
            raise ValueError("gradients only defined for K(X, X)")
        if not self.anisotropic:
            # dK/dlog(l) = K * d^2 / l^2 ... with d2 already scaled: K * d2
            return K, (K * d2)[:, :, None]
        # Per-dimension: dK/dlog(l_k) = K * (x_k - y_k)^2 / l_k^2
        grads = np.empty(K.shape + (ls.shape[0],))
        for k in range(ls.shape[0]):
            diff = (X[:, k][:, None] - X[:, k][None, :]) / ls[k]
            grads[:, :, k] = K * diff**2
        return K, grads

    def diag(self, X) -> np.ndarray:
        return np.ones(_as2d(X).shape[0])


class Matern(Kernel):
    """Matérn kernel with smoothness ``nu`` in {0.5, 1.5, 2.5}.

    The family the paper's related work ([6], [8]) argues for; with
    ``nu -> inf`` it converges to the RBF.  Only the three closed-form
    smoothness values are supported (as in scikit-learn's fast paths).
    """

    def __init__(
        self,
        length_scale: float = 1.0,
        nu: float = 1.5,
        bounds: tuple[float, float] = (1e-2, 1e2),
    ):
        if length_scale <= 0:
            raise ValueError("length_scale must be positive")
        if nu not in (0.5, 1.5, 2.5):
            raise ValueError("nu must be one of 0.5, 1.5, 2.5")
        self.length_scale = float(length_scale)
        self.nu = float(nu)
        self._bounds = (float(bounds[0]), float(bounds[1]))

    @property
    def theta(self) -> np.ndarray:
        return np.array([math.log(self.length_scale)])

    def with_theta(self, theta: np.ndarray) -> "Matern":
        return Matern(float(np.exp(theta[0])), self.nu, self._bounds)

    @property
    def bounds(self) -> np.ndarray:
        return np.log(np.array([self._bounds]))

    def __call__(self, X, Y=None, eval_gradient: bool = False):
        X = _as2d(X)
        Ym = X if Y is None else _as2d(Y)
        ls = np.array([self.length_scale])
        d2 = _sqdist(X, Ym, ls)
        if Y is None:
            np.fill_diagonal(d2, 0.0)
        r = np.sqrt(d2)  # scaled distance d/l
        if self.nu == 0.5:
            K = np.exp(-r)
            dK_dlog = K * r
        elif self.nu == 1.5:
            s = math.sqrt(3.0) * r
            K = (1.0 + s) * np.exp(-s)
            dK_dlog = s * s * np.exp(-s)
        else:  # nu == 2.5
            s = math.sqrt(5.0) * r
            K = (1.0 + s + s * s / 3.0) * np.exp(-s)
            dK_dlog = (s * s * (1.0 + s) / 3.0) * np.exp(-s)
        if not eval_gradient:
            return K
        if Y is not None:
            raise ValueError("gradients only defined for K(X, X)")
        return K, dK_dlog[:, :, None]

    def diag(self, X) -> np.ndarray:
        return np.ones(_as2d(X).shape[0])


class _Composite(Kernel):
    """Shared plumbing for binary kernel compositions."""

    def __init__(self, k1: Kernel, k2: Kernel):
        self.k1 = k1
        self.k2 = k2

    @property
    def theta(self) -> np.ndarray:
        return np.concatenate([self.k1.theta, self.k2.theta])

    def with_theta(self, theta: np.ndarray) -> "_Composite":
        n1 = self.k1.n_theta
        return type(self)(self.k1.with_theta(theta[:n1]), self.k2.with_theta(theta[n1:]))

    @property
    def bounds(self) -> np.ndarray:
        b1, b2 = self.k1.bounds, self.k2.bounds
        if b1.size == 0:
            return b2
        if b2.size == 0:
            return b1
        return np.vstack([b1, b2])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        op = "+" if isinstance(self, Sum) else "*"
        return f"({self.k1!r} {op} {self.k2!r})"


class Sum(_Composite):
    """``k1 + k2``."""

    def __call__(self, X, Y=None, eval_gradient: bool = False):
        if not eval_gradient:
            return self.k1(X, Y) + self.k2(X, Y)
        K1, G1 = self.k1(X, Y, eval_gradient=True)
        K2, G2 = self.k2(X, Y, eval_gradient=True)
        return K1 + K2, np.concatenate([G1, G2], axis=2)

    def diag(self, X) -> np.ndarray:
        return self.k1.diag(X) + self.k2.diag(X)


class Product(_Composite):
    """``k1 * k2`` with the product-rule gradient."""

    def __call__(self, X, Y=None, eval_gradient: bool = False):
        if not eval_gradient:
            return self.k1(X, Y) * self.k2(X, Y)
        K1, G1 = self.k1(X, Y, eval_gradient=True)
        K2, G2 = self.k2(X, Y, eval_gradient=True)
        K = K1 * K2
        G = np.concatenate([G1 * K2[:, :, None], G2 * K1[:, :, None]], axis=2)
        return K, G

    def diag(self, X) -> np.ndarray:
        return self.k1.diag(X) * self.k2.diag(X)


def default_kernel(
    length_scale: float = 1.0,
    amplitude: float = 1.0,
    noise_level: float = 1e-2,
    anisotropic_dims: int | None = None,
    matern_nu: float | None = None,
) -> Kernel:
    """The paper's surrogate-model kernel: ``sigma_f^2 * RBF(l) + sigma_n^2``.

    Parameters
    ----------
    anisotropic_dims : int, optional
        If given, use a per-dimension (ARD) length scale of this many dims.
    matern_nu : float, optional
        If given, substitute a Matérn kernel of that smoothness for the RBF
        (the paper's future-work variant).
    """
    if matern_nu is not None:
        if anisotropic_dims is not None:
            raise ValueError("anisotropic Matérn is not implemented")
        stationary: Kernel = Matern(length_scale, nu=matern_nu)
    elif anisotropic_dims is not None:
        stationary = RBF(np.full(anisotropic_dims, float(length_scale)))
    else:
        stationary = RBF(length_scale)
    return ConstantKernel(amplitude) * stationary + WhiteKernel(noise_level)
