"""Covariance functions with analytic gradients in log-parameter space.

Every kernel exposes its tunable hyperparameters as ``theta``, the vector
of *natural logarithms* of the positive parameters — the standard trick
that turns positivity constraints into an unconstrained (box-bounded)
optimization and makes LML gradients well-scaled.

Conventions (matching scikit-learn, which the paper used):

- ``k(X)`` (one argument) is the training covariance **including** any
  white-noise diagonal; ``k(X, Y)`` (two arguments) is the cross-covariance
  and excludes noise.
- ``k(X, eval_gradient=True)`` also returns ``dK`` of shape
  ``(n, n, n_theta)`` with derivatives **with respect to theta** (log
  parameters), i.e. ``dK/dtheta_j = dK/dp_j * p_j``.
- ``kernel_a + kernel_b`` and ``kernel_a * kernel_b`` build :class:`Sum`
  and :class:`Product` nodes.

Hyperparameter fitting evaluates the same kernel at many ``theta`` over a
*fixed* training set (L-BFGS-B line searches, restarts, warm-started AL
refits).  :meth:`Kernel.prepare` builds a :class:`KernelWorkspace` that
caches everything theta-independent — unscaled squared distances for
isotropic RBF/Matérn, the per-dimension ``diff²`` stack for ARD — so each
evaluation is a scale-exp pass over preallocated buffers, and the LML
gradient trace ``tr(inner · ∂K/∂θ_j)`` is computed *fused* per component
(:meth:`KernelWorkspace.grad_dot`) instead of materializing the dense
``(n, n, n_theta)`` stack that ``__call__(eval_gradient=True)`` returns.
The direct ``__call__`` path stays untouched as the reference
implementation; workspace parity against it is pinned at ≤ 1e-10 relative
by ``tests/gp/test_workspace.py``.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np


def _as2d(X) -> np.ndarray:
    X = np.asarray(X, dtype=np.float64)
    if X.ndim == 1:
        X = X[:, None]
    if X.ndim != 2:
        raise ValueError("inputs must be 2-D (n_samples, n_features)")
    return X


def _sqdist(X: np.ndarray, Y: np.ndarray, length_scale: np.ndarray) -> np.ndarray:
    """Pairwise squared distances of scaled inputs, shape (n, m).

    Vectorized via the ||a||^2 + ||b||^2 - 2 a.b expansion; clipped at zero
    to kill the tiny negatives floating-point cancellation produces.
    """
    Xs = X / length_scale
    Ys = Y / length_scale
    d = (
        np.sum(Xs**2, axis=1)[:, None]
        + np.sum(Ys**2, axis=1)[None, :]
        - 2.0 * (Xs @ Ys.T)
    )
    return np.maximum(d, 0.0)


class Kernel(ABC):
    """Base covariance function."""

    # -- hyperparameter vector ------------------------------------------------

    @property
    @abstractmethod
    def theta(self) -> np.ndarray:
        """Log-parameters as a flat float array (may be empty)."""

    @abstractmethod
    def with_theta(self, theta: np.ndarray) -> "Kernel":
        """A copy of this kernel with the given log-parameters."""

    @property
    @abstractmethod
    def bounds(self) -> np.ndarray:
        """(n_theta, 2) log-space box bounds for the optimizer."""

    @property
    def n_theta(self) -> int:
        return self.theta.shape[0]

    # -- evaluation ------------------------------------------------------------

    @abstractmethod
    def __call__(
        self, X, Y=None, eval_gradient: bool = False
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        """Covariance matrix (and optionally its theta-gradient)."""

    @abstractmethod
    def diag(self, X) -> np.ndarray:
        """Diagonal of ``self(X)`` without building the full matrix."""

    # -- workspaces -----------------------------------------------------------

    def prepare(self, X) -> "KernelWorkspace":
        """Cache the theta-independent structure of ``self(X)`` evaluations.

        The returned :class:`KernelWorkspace` evaluates the training
        covariance (and the fused LML-gradient trace) at any ``theta`` of a
        kernel with this *structure* — :meth:`with_theta` copies share one
        workspace.  Raises :class:`NotImplementedError` for kernel types
        without workspace support (callers fall back to ``__call__``).
        """
        return KernelWorkspace(self, X)

    # -- composition ----------------------------------------------------------

    def __add__(self, other: "Kernel") -> "Sum":
        return Sum(self, other)

    def __mul__(self, other: "Kernel") -> "Product":
        return Product(self, other)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        params = ", ".join(f"{v:.4g}" for v in np.exp(self.theta))
        return f"{type(self).__name__}({params})"


class ConstantKernel(Kernel):
    """Constant covariance ``sigma_f^2`` — the amplitude of Eq. (7).

    Usually composed as ``ConstantKernel(a) * RBF(l)``.
    """

    def __init__(self, constant: float = 1.0, bounds: tuple[float, float] = (1e-3, 1e3)):
        if constant <= 0:
            raise ValueError("constant must be positive")
        self.constant = float(constant)
        self._bounds = (float(bounds[0]), float(bounds[1]))

    @property
    def theta(self) -> np.ndarray:
        return np.array([math.log(self.constant)])

    def with_theta(self, theta: np.ndarray) -> "ConstantKernel":
        return ConstantKernel(float(np.exp(theta[0])), self._bounds)

    @property
    def bounds(self) -> np.ndarray:
        return np.log(np.array([self._bounds]))

    def __call__(self, X, Y=None, eval_gradient: bool = False):
        X = _as2d(X)
        m = X.shape[0] if Y is None else _as2d(Y).shape[0]
        K = np.full((X.shape[0], m), self.constant)
        if not eval_gradient:
            return K
        if Y is not None:
            raise ValueError("gradients only defined for K(X, X)")
        return K, K[:, :, None].copy()  # dK/dlog(c) = c = K

    def diag(self, X) -> np.ndarray:
        return np.full(_as2d(X).shape[0], self.constant)


class WhiteKernel(Kernel):
    """Observation noise ``sigma_n^2`` on the training diagonal (Eq. (1))."""

    def __init__(self, noise_level: float = 1e-2, bounds: tuple[float, float] = (1e-8, 1e1)):
        if noise_level <= 0:
            raise ValueError("noise_level must be positive")
        self.noise_level = float(noise_level)
        self._bounds = (float(bounds[0]), float(bounds[1]))

    @property
    def theta(self) -> np.ndarray:
        return np.array([math.log(self.noise_level)])

    def with_theta(self, theta: np.ndarray) -> "WhiteKernel":
        return WhiteKernel(float(np.exp(theta[0])), self._bounds)

    @property
    def bounds(self) -> np.ndarray:
        return np.log(np.array([self._bounds]))

    def __call__(self, X, Y=None, eval_gradient: bool = False):
        X = _as2d(X)
        n = X.shape[0]
        if Y is None:
            K = self.noise_level * np.eye(n)
            if eval_gradient:
                return K, K[:, :, None].copy()
            return K
        if eval_gradient:
            raise ValueError("gradients only defined for K(X, X)")
        return np.zeros((n, _as2d(Y).shape[0]))

    def diag(self, X) -> np.ndarray:
        return np.full(_as2d(X).shape[0], self.noise_level)


class RBF(Kernel):
    """Squared-exponential kernel, Eq. (7): ``exp(-d^2 / (2 l^2))``.

    ``length_scale`` may be a scalar (isotropic, the paper's choice) or a
    vector of per-dimension scales (anisotropic / ARD, the paper's
    future-work extension).
    """

    def __init__(self, length_scale=1.0, bounds: tuple[float, float] = (1e-2, 1e2)):
        ls = np.atleast_1d(np.asarray(length_scale, dtype=np.float64))
        if np.any(ls <= 0):
            raise ValueError("length_scale must be positive")
        self.length_scale = ls
        self._bounds = (float(bounds[0]), float(bounds[1]))

    @property
    def anisotropic(self) -> bool:
        return self.length_scale.shape[0] > 1

    @property
    def theta(self) -> np.ndarray:
        return np.log(self.length_scale)

    def with_theta(self, theta: np.ndarray) -> "RBF":
        return RBF(np.exp(theta), self._bounds)

    @property
    def bounds(self) -> np.ndarray:
        return np.log(np.tile(self._bounds, (self.length_scale.shape[0], 1)))

    def _ls(self, X: np.ndarray) -> np.ndarray:
        if self.anisotropic and self.length_scale.shape[0] != X.shape[1]:
            raise ValueError("anisotropic length_scale does not match n_features")
        return self.length_scale

    def __call__(self, X, Y=None, eval_gradient: bool = False):
        X = _as2d(X)
        ls = self._ls(X)
        Ym = X if Y is None else _as2d(Y)
        d2 = _sqdist(X, Ym, ls)
        if Y is None:
            # Kill the ~1e-16 cancellation residue of the expansion: exact
            # zeros on the diagonal keep sqrt-based gradients clean.
            np.fill_diagonal(d2, 0.0)
        K = np.exp(-0.5 * d2)
        if not eval_gradient:
            return K
        if Y is not None:
            raise ValueError("gradients only defined for K(X, X)")
        if not self.anisotropic:
            # dK/dlog(l) = K * d^2 / l^2 ... with d2 already scaled: K * d2
            return K, (K * d2)[:, :, None]
        # Per-dimension: dK/dlog(l_k) = K * (x_k - y_k)^2 / l_k^2, all
        # dimensions at once over the (n, n, d) scaled-difference stack.
        diff = (X[:, None, :] - X[None, :, :]) / ls
        return K, np.einsum("ij,ijk,ijk->ijk", K, diff, diff)

    def diag(self, X) -> np.ndarray:
        return np.ones(_as2d(X).shape[0])


class Matern(Kernel):
    """Matérn kernel with smoothness ``nu`` in {0.5, 1.5, 2.5}.

    The family the paper's related work ([6], [8]) argues for; with
    ``nu -> inf`` it converges to the RBF.  Only the three closed-form
    smoothness values are supported (as in scikit-learn's fast paths).
    """

    def __init__(
        self,
        length_scale: float = 1.0,
        nu: float = 1.5,
        bounds: tuple[float, float] = (1e-2, 1e2),
    ):
        if length_scale <= 0:
            raise ValueError("length_scale must be positive")
        if nu not in (0.5, 1.5, 2.5):
            raise ValueError("nu must be one of 0.5, 1.5, 2.5")
        self.length_scale = float(length_scale)
        self.nu = float(nu)
        self._bounds = (float(bounds[0]), float(bounds[1]))

    @property
    def theta(self) -> np.ndarray:
        return np.array([math.log(self.length_scale)])

    def with_theta(self, theta: np.ndarray) -> "Matern":
        return Matern(float(np.exp(theta[0])), self.nu, self._bounds)

    @property
    def bounds(self) -> np.ndarray:
        return np.log(np.array([self._bounds]))

    def __call__(self, X, Y=None, eval_gradient: bool = False):
        X = _as2d(X)
        Ym = X if Y is None else _as2d(Y)
        ls = np.array([self.length_scale])
        d2 = _sqdist(X, Ym, ls)
        if Y is None:
            np.fill_diagonal(d2, 0.0)
        r = np.sqrt(d2)  # scaled distance d/l
        if self.nu == 0.5:
            K = np.exp(-r)
            dK_dlog = K * r
        elif self.nu == 1.5:
            s = math.sqrt(3.0) * r
            K = (1.0 + s) * np.exp(-s)
            dK_dlog = s * s * np.exp(-s)
        else:  # nu == 2.5
            s = math.sqrt(5.0) * r
            K = (1.0 + s + s * s / 3.0) * np.exp(-s)
            dK_dlog = (s * s * (1.0 + s) / 3.0) * np.exp(-s)
        if not eval_gradient:
            return K
        if Y is not None:
            raise ValueError("gradients only defined for K(X, X)")
        return K, dK_dlog[:, :, None]

    def diag(self, X) -> np.ndarray:
        return np.ones(_as2d(X).shape[0])


class _Composite(Kernel):
    """Shared plumbing for binary kernel compositions."""

    def __init__(self, k1: Kernel, k2: Kernel):
        self.k1 = k1
        self.k2 = k2

    @property
    def theta(self) -> np.ndarray:
        return np.concatenate([self.k1.theta, self.k2.theta])

    def with_theta(self, theta: np.ndarray) -> "_Composite":
        n1 = self.k1.n_theta
        return type(self)(self.k1.with_theta(theta[:n1]), self.k2.with_theta(theta[n1:]))

    @property
    def bounds(self) -> np.ndarray:
        b1, b2 = self.k1.bounds, self.k2.bounds
        if b1.size == 0:
            return b2
        if b2.size == 0:
            return b1
        return np.vstack([b1, b2])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        op = "+" if isinstance(self, Sum) else "*"
        return f"({self.k1!r} {op} {self.k2!r})"


class Sum(_Composite):
    """``k1 + k2``."""

    def __call__(self, X, Y=None, eval_gradient: bool = False):
        if not eval_gradient:
            return self.k1(X, Y) + self.k2(X, Y)
        K1, G1 = self.k1(X, Y, eval_gradient=True)
        K2, G2 = self.k2(X, Y, eval_gradient=True)
        return K1 + K2, np.concatenate([G1, G2], axis=2)

    def diag(self, X) -> np.ndarray:
        return self.k1.diag(X) + self.k2.diag(X)


class Product(_Composite):
    """``k1 * k2`` with the product-rule gradient."""

    def __call__(self, X, Y=None, eval_gradient: bool = False):
        if not eval_gradient:
            return self.k1(X, Y) * self.k2(X, Y)
        K1, G1 = self.k1(X, Y, eval_gradient=True)
        K2, G2 = self.k2(X, Y, eval_gradient=True)
        K = K1 * K2
        G = np.concatenate([G1 * K2[:, :, None], G2 * K1[:, :, None]], axis=2)
        return K, G

    def diag(self, X) -> np.ndarray:
        return self.k1.diag(X) * self.k2.diag(X)


def default_kernel(
    length_scale: float = 1.0,
    amplitude: float = 1.0,
    noise_level: float = 1e-2,
    anisotropic_dims: int | None = None,
    matern_nu: float | None = None,
) -> Kernel:
    """The paper's surrogate-model kernel: ``sigma_f^2 * RBF(l) + sigma_n^2``.

    Parameters
    ----------
    anisotropic_dims : int, optional
        If given, use a per-dimension (ARD) length scale of this many dims.
    matern_nu : float, optional
        If given, substitute a Matérn kernel of that smoothness for the RBF
        (the paper's future-work variant).
    """
    if matern_nu is not None:
        if anisotropic_dims is not None:
            raise ValueError("anisotropic Matérn is not implemented")
        stationary: Kernel = Matern(length_scale, nu=matern_nu)
    elif anisotropic_dims is not None:
        stationary = RBF(np.full(anisotropic_dims, float(length_scale)))
    else:
        stationary = RBF(length_scale)
    return ConstantKernel(amplitude) * stationary + WhiteKernel(noise_level)


# ---------------------------------------------------------------------------
# Kernel workspaces: theta-independent structure cached per training set
# ---------------------------------------------------------------------------

_ONE = np.ones(1)


def _unscaled_sqdist(X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
    """``_sqdist`` at unit length scale, diagonal exactly zero for Y=None."""
    d2 = _sqdist(X, X if Y is None else Y, _ONE)
    if Y is None:
        np.fill_diagonal(d2, 0.0)
    return d2


def _grow_square(buf: np.ndarray | None, n_keep: int, n_new: int) -> np.ndarray:
    """Capacity buffer for an (n, n) structure matrix.

    Returns ``buf`` unchanged while it has room; otherwise allocates with
    ~1.5x headroom and copies the live ``(n_keep, n_keep)`` block — the
    same amortization contract as ``GPRegressor._L_buf``.
    """
    if buf is not None and buf.shape[-1] >= n_new:
        return buf
    cap = max(int(1.5 * n_new) + 8, 64)
    shape = buf.shape[:-2] + (cap, cap) if buf is not None else (cap, cap)
    new = np.zeros(shape)
    if buf is not None and n_keep:
        new[..., :n_keep, :n_keep] = buf[..., :n_keep, :n_keep]
    return new


class _WsNode(ABC):
    """Cached structure of one kernel-tree node over the training set.

    Contract: :meth:`value` evaluates ``K`` for this subtree at ``theta``
    (the subtree's slice of the full log-parameter vector) into a buffer
    owned by the node, and leaves that buffer intact until the next
    :meth:`value` call; :meth:`grad_dot` must run *after* :meth:`value`
    with the same ``theta`` and returns ``[sum(inner * dK/dtheta_j)]_j``
    without materializing any ``(n, n, n_theta)`` stack.
    """

    n_theta: int = 1
    #: Number of active rows/columns (leading block of the buffers).
    n: int = 0

    @abstractmethod
    def rebuild(self, X: np.ndarray) -> None:
        """Recompute all cached structure for a fresh training set."""

    @abstractmethod
    def append(self, X_old: np.ndarray, X_new: np.ndarray) -> None:
        """Extend the structure by the appended rows ``X_new``."""

    @abstractmethod
    def value(self, theta: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """The (n, n) covariance block of this subtree at ``theta``.

        ``out``, when given, is a caller-owned (n, n) buffer the node *may*
        write its result into (returning ``out``) — the caller is then free
        to destroy it, e.g. by an in-place Cholesky.  Nodes whose
        :meth:`grad_dot` re-reads their own value (the exp-family leaves)
        ignore ``out`` and return their retained buffer instead, so callers
        must check ``result is out`` before assuming in-place delivery.
        """

    @abstractmethod
    def grad_dot(self, inner: np.ndarray, theta: np.ndarray) -> np.ndarray:
        """Fused trace terms ``sum(inner * dK/dtheta_j)`` per component."""

    def _scratch(self, count: int) -> tuple[np.ndarray, ...]:
        """``count`` contiguous (n, n) eval buffers with capacity headroom.

        Backed by flat capacity arrays so the one-acquisition growth of the
        AL loop reshapes views instead of reallocating (and page-faulting)
        per fit; the leading ``n*n`` elements of a flat buffer reshape to a
        C-contiguous square, which the in-place LAPACK calls require.
        """
        n = self.n
        flat = getattr(self, "_eval_flat", None)
        if flat is None or flat[0].size < n * n or len(flat) < count:
            cap = max(int(1.5 * n) + 8, 64)
            flat = tuple(np.empty(cap * cap) for _ in range(count))
            self._eval_flat = flat
        return tuple(b[: n * n].reshape(n, n) for b in flat[:count])


class _ConstantWs(_WsNode):
    """Constant kernel: no spatial structure at all."""

    is_scalar = True

    def rebuild(self, X: np.ndarray) -> None:
        self.n = X.shape[0]

    def append(self, X_old: np.ndarray, X_new: np.ndarray) -> None:
        self.n += X_new.shape[0]

    def scalar(self, theta: np.ndarray) -> float:
        return math.exp(theta[0])

    def value(self, theta: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        K = out if out is not None else self._scratch(1)[0]
        K.fill(self.scalar(theta))
        return K

    def grad_dot(self, inner: np.ndarray, theta: np.ndarray) -> np.ndarray:
        # dK/dlog(c) = c everywhere.
        return np.array([self.scalar(theta) * float(inner.sum())])


class _WhiteWs(_WsNode):
    """White noise: a theta-scaled identity."""

    is_diag = True

    def rebuild(self, X: np.ndarray) -> None:
        self.n = X.shape[0]
        self._K: np.ndarray | None = None

    def append(self, X_old: np.ndarray, X_new: np.ndarray) -> None:
        self.n += X_new.shape[0]
        self._K = None

    def diag_value(self, theta: np.ndarray) -> float:
        return math.exp(theta[0])

    def value(self, theta: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        if out is not None:
            out.fill(0.0)
            np.fill_diagonal(out, self.diag_value(theta))
            return out
        if self._K is None or self._K.shape[0] != self.n:
            self._K = np.zeros((self.n, self.n))
        np.fill_diagonal(self._K, self.diag_value(theta))
        return self._K

    def grad_dot(self, inner: np.ndarray, theta: np.ndarray) -> np.ndarray:
        # dK/dlog(noise) = noise * I -> noise * tr(inner).
        return np.array([self.diag_value(theta) * float(np.trace(inner))])


class _RBFIsoWs(_WsNode):
    """Isotropic RBF: caches the unscaled squared-distance matrix."""

    def rebuild(self, X: np.ndarray) -> None:
        n = X.shape[0]
        self._d2 = _grow_square(None, 0, n)
        self._d2[:n, :n] = _unscaled_sqdist(X)
        self.n = n

    def append(self, X_old: np.ndarray, X_new: np.ndarray) -> None:
        n_old, m = self.n, X_new.shape[0]
        n = n_old + m
        self._d2 = _grow_square(self._d2, n_old, n)
        cross = _unscaled_sqdist(X_new, X_old)
        self._d2[n_old:n, :n_old] = cross
        self._d2[:n_old, n_old:n] = cross.T
        self._d2[n_old:n, n_old:n] = _unscaled_sqdist(X_new)
        self.n = n

    def value(self, theta: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        # out is ignored: grad_dot re-reads the retained exp result.
        (K,) = self._scratch(1)
        inv_l2 = math.exp(-2.0 * theta[0])
        d2 = self._d2[: self.n, : self.n]
        np.multiply(d2, -0.5 * inv_l2, out=K)
        np.exp(K, out=K)
        self._last_K = K
        return K

    def grad_dot(self, inner: np.ndarray, theta: np.ndarray) -> np.ndarray:
        # dK/dlog(l) = K * d2/l^2, traced without forming the product matrix.
        inv_l2 = math.exp(-2.0 * theta[0])
        d2 = self._d2[: self.n, : self.n]
        g = np.einsum("ij,ij,ij->", inner, self._last_K, d2)
        return np.array([inv_l2 * g])


class _RBFArdWs(_WsNode):
    """Anisotropic RBF: caches the per-dimension ``diff²`` stack."""

    def __init__(self, n_dims: int):
        self.n_theta = n_dims

    def rebuild(self, X: np.ndarray) -> None:
        if X.shape[1] != self.n_theta:
            raise ValueError("anisotropic length_scale does not match n_features")
        n = X.shape[0]
        cap = max(int(1.5 * n) + 8, 64)
        self._diff2 = np.zeros((self.n_theta, cap, cap))
        diff = X[:, None, :] - X[None, :, :]
        self._diff2[:, :n, :n] = np.ascontiguousarray((diff * diff).transpose(2, 0, 1))
        self.n = n

    def append(self, X_old: np.ndarray, X_new: np.ndarray) -> None:
        n_old, m = self.n, X_new.shape[0]
        n = n_old + m
        self._diff2 = _grow_square(self._diff2, n_old, n)
        cross = X_new[:, None, :] - X_old[None, :, :]
        cross = (cross * cross).transpose(2, 0, 1)
        self._diff2[:, n_old:n, :n_old] = cross
        self._diff2[:, :n_old, n_old:n] = cross.transpose(0, 2, 1)
        self_block = X_new[:, None, :] - X_new[None, :, :]
        self._diff2[:, n_old:n, n_old:n] = (self_block * self_block).transpose(2, 0, 1)
        self.n = n

    def value(self, theta: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        # out is ignored: grad_dot re-reads the retained exp result.
        K, = self._scratch(1)
        inv_l2 = np.exp(-2.0 * theta)
        d2 = self._diff2[:, : self.n, : self.n]
        np.einsum("k,kij->ij", -0.5 * inv_l2, d2, out=K)
        np.exp(K, out=K)
        self._last_K = K
        return K

    def grad_dot(self, inner: np.ndarray, theta: np.ndarray) -> np.ndarray:
        # dK/dlog(l_k) = K * diff2_k / l_k^2: one einsum over the stack.
        d2 = self._diff2[:, : self.n, : self.n]
        g = np.einsum("ij,ij,kij->k", inner, self._last_K, d2)
        return np.exp(-2.0 * theta) * g


class _MaternWs(_WsNode):
    """Matérn (nu in {0.5, 1.5, 2.5}): caches unscaled distances."""

    def __init__(self, nu: float):
        self.nu = nu

    def rebuild(self, X: np.ndarray) -> None:
        n = X.shape[0]
        self._r = _grow_square(None, 0, n)
        np.sqrt(_unscaled_sqdist(X), out=self._r[:n, :n])
        self.n = n

    def append(self, X_old: np.ndarray, X_new: np.ndarray) -> None:
        n_old, m = self.n, X_new.shape[0]
        n = n_old + m
        self._r = _grow_square(self._r, n_old, n)
        cross = np.sqrt(_unscaled_sqdist(X_new, X_old))
        self._r[n_old:n, :n_old] = cross
        self._r[:n_old, n_old:n] = cross.T
        self._r[n_old:n, n_old:n] = np.sqrt(_unscaled_sqdist(X_new))
        self.n = n

    def value(self, theta: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        # out is ignored: grad_dot re-reads the retained S/E (or K) buffers.
        K, S, E, _ = self._scratch(4)
        r = self._r[: self.n, : self.n]
        inv_l = math.exp(-theta[0])
        if self.nu == 0.5:
            np.multiply(r, -inv_l, out=K)
            np.exp(K, out=K)
            self._last = (K,)
            return K
        scale = math.sqrt(3.0) if self.nu == 1.5 else math.sqrt(5.0)
        np.multiply(r, scale * inv_l, out=S)  # s = sqrt(2 nu) d / l
        np.negative(S, out=E)
        np.exp(E, out=E)  # exp(-s)
        if self.nu == 1.5:
            np.add(S, 1.0, out=K)  # (1 + s)
        else:
            np.multiply(S, S, out=K)
            K /= 3.0
            K += S
            K += 1.0  # (1 + s + s^2/3)
        K *= E
        self._last = (S, E)
        return K

    def grad_dot(self, inner: np.ndarray, theta: np.ndarray) -> np.ndarray:
        if self.nu == 0.5:
            # dK/dlog(l) = K * r/l  (with K = exp(-r/l) still in its buffer).
            (K,) = self._last
            r = self._r[: self.n, : self.n]
            g = math.exp(-theta[0]) * np.einsum("ij,ij,ij->", inner, K, r)
            return np.array([g])
        S, E = self._last
        if self.nu == 1.5:
            # dK/dlog(l) = s^2 exp(-s)
            g = np.einsum("ij,ij,ij,ij->", inner, S, S, E)
        else:
            # dK/dlog(l) = s^2 (1 + s)/3 exp(-s); T is the spare scratch
            # buffer (never the K buffer — parents may still read K).
            T = self._scratch(4)[3]
            np.add(S, 1.0, out=T)
            T *= E
            g = np.einsum("ij,ij,ij,ij->", inner, S, S, T) / 3.0
        return np.array([g])


class _CompositeWs(_WsNode):
    """Shared plumbing for Sum/Product workspace nodes."""

    def __init__(self, a: _WsNode, b: _WsNode):
        self.a = a
        self.b = b
        self.n_theta = a.n_theta + b.n_theta

    def rebuild(self, X: np.ndarray) -> None:
        self.a.rebuild(X)
        self.b.rebuild(X)
        self.n = X.shape[0]

    def append(self, X_old: np.ndarray, X_new: np.ndarray) -> None:
        self.a.append(X_old, X_new)
        self.b.append(X_old, X_new)
        self.n += X_new.shape[0]

    def _split(self, theta: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return theta[: self.a.n_theta], theta[self.a.n_theta :]


class _SumWs(_CompositeWs):
    def value(self, theta: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        K = out if out is not None else self._scratch(1)[0]
        ta, tb = self._split(theta)
        if isinstance(self.b, _WhiteWs):
            # K1 + noise*I without materializing the white matrix; when the
            # child delivered straight into the caller's buffer, the diag
            # bump is the only O(n) work left — no copy at all.
            Ka = self.a.value(ta, out=out)
            if Ka is not K:
                np.copyto(K, Ka)
            K.flat[:: self.n + 1] += self.b.diag_value(tb)
            self.b.n = self.n  # keep the bypassed node's size in sync
        else:
            np.add(self.a.value(ta), self.b.value(tb), out=K)
        return K

    def grad_dot(self, inner: np.ndarray, theta: np.ndarray) -> np.ndarray:
        ta, tb = self._split(theta)
        return np.concatenate(
            [self.a.grad_dot(inner, ta), self.b.grad_dot(inner, tb)]
        )


class _ProductWs(_CompositeWs):
    def value(self, theta: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        # grad_dot only ever re-reads the *children's* retained values
        # (never the product), so the product can go straight into a
        # caller-owned ``out`` that a later Cholesky destroys.
        K = out if out is not None else self._scratch(3)[0]
        ta, tb = self._split(theta)
        if isinstance(self.a, _ConstantWs):
            self._Kb = self.b.value(tb)
            np.multiply(self._Kb, self.a.scalar(ta), out=K)
            self.a.n = self.n
        elif isinstance(self.b, _ConstantWs):
            self._Ka = self.a.value(ta)
            np.multiply(self._Ka, self.b.scalar(tb), out=K)
            self.b.n = self.n
        else:
            self._Ka = self.a.value(ta)
            self._Kb = self.b.value(tb)
            np.multiply(self._Ka, self._Kb, out=K)
        return K

    def grad_dot(self, inner: np.ndarray, theta: np.ndarray) -> np.ndarray:
        # Product rule: tr(inner dK1 K2) = tr((inner*K2) dK1) and vice
        # versa.  Both weighted inners are built before recursing so no
        # child may overwrite a value buffer the other still needs.
        _, t1, t2 = self._scratch(3)
        ta, tb = self._split(theta)
        if isinstance(self.a, _ConstantWs):
            # dK/dlog(c) = K = c * K2; the other factor sees inner*c.
            c = self.a.scalar(ta)
            ga = np.array([c * np.einsum("ij,ij->", inner, self._Kb)])
            np.multiply(inner, c, out=t2)
            return np.concatenate([ga, self.b.grad_dot(t2, tb)])
        if isinstance(self.b, _ConstantWs):
            c = self.b.scalar(tb)
            gb = np.array([c * np.einsum("ij,ij->", inner, self._Ka)])
            np.multiply(inner, c, out=t1)
            return np.concatenate([self.a.grad_dot(t1, ta), gb])
        np.multiply(inner, self._Kb, out=t1)
        np.multiply(inner, self._Ka, out=t2)
        return np.concatenate(
            [self.a.grad_dot(t1, ta), self.b.grad_dot(t2, tb)]
        )


def _build_ws_node(kernel: Kernel) -> _WsNode:
    if isinstance(kernel, Sum):
        return _SumWs(_build_ws_node(kernel.k1), _build_ws_node(kernel.k2))
    if isinstance(kernel, Product):
        return _ProductWs(_build_ws_node(kernel.k1), _build_ws_node(kernel.k2))
    if isinstance(kernel, ConstantKernel):
        return _ConstantWs()
    if isinstance(kernel, WhiteKernel):
        return _WhiteWs()
    if isinstance(kernel, RBF):
        if kernel.anisotropic:
            return _RBFArdWs(kernel.length_scale.shape[0])
        return _RBFIsoWs()
    if isinstance(kernel, Matern):
        return _MaternWs(kernel.nu)
    raise NotImplementedError(
        f"no workspace support for {type(kernel).__name__}"
    )


def workspace_signature(kernel: Kernel) -> str:
    """Structural fingerprint a workspace is keyed on.

    Two kernels with equal signatures share cached structure for the same
    training set — i.e. they differ at most in ``theta``.  ``with_theta``
    always preserves the signature.
    """
    if isinstance(kernel, _Composite):
        op = "+" if isinstance(kernel, Sum) else "*"
        return (
            f"({workspace_signature(kernel.k1)}{op}"
            f"{workspace_signature(kernel.k2)})"
        )
    if isinstance(kernel, ConstantKernel):
        return "const"
    if isinstance(kernel, WhiteKernel):
        return "white"
    if isinstance(kernel, RBF):
        return f"rbf[{kernel.length_scale.shape[0]}]"
    if isinstance(kernel, Matern):
        return f"matern[{kernel.nu}]"
    return f"?{type(kernel).__name__}"


class KernelWorkspace:
    """Theta-independent evaluation state for one kernel structure + X.

    Built by :meth:`Kernel.prepare`.  Holds, per kernel-tree node, the
    cached spatial structure (unscaled squared distances, ARD ``diff²``
    stacks) in capacity buffers, so that

    - :meth:`kernel_matrix` evaluates ``kernel.with_theta(theta)(X)`` as a
      scale-exp pass over preallocated memory, and
    - :meth:`grad_dot` computes the fused LML-gradient traces
      ``[sum(inner * dK/dtheta_j)]_j`` without any ``(n, n, k)`` stack;

    and that :meth:`update` *extends* the structure in O(n·m) per appended
    row instead of rebuilding in O(n² d) when the AL loop grows the
    training set by an acquisition (same capacity-buffer +
    full-rebuild-fallback contract as the incremental Cholesky in
    :class:`repro.gp.gpr.GPRegressor`).

    Exactness: values match the direct ``__call__`` path to floating-point
    roundoff (≤ 1e-10 relative, pinned by ``tests/gp/test_workspace.py``);
    the workspace never becomes silently stale because :meth:`update`
    compares the stored training set against the new one and falls back to
    a full rebuild on any mismatch.
    """

    def __init__(self, kernel: Kernel, X) -> None:
        self.signature = workspace_signature(kernel)
        self._root = _build_ws_node(kernel)  # may raise NotImplementedError
        X = _as2d(X)
        self._X = X.copy()
        self._root.rebuild(self._X)

    # ------------------------------------------------------------- lifecycle

    @property
    def n(self) -> int:
        """Training rows currently covered."""
        return self._root.n

    @property
    def n_theta(self) -> int:
        return self._root.n_theta

    def matches(self, kernel: Kernel) -> bool:
        """Whether ``kernel`` has the structure this workspace was built for."""
        return workspace_signature(kernel) == self.signature

    def update(self, X) -> str:
        """Re-target the workspace at training set ``X``.

        Returns how it got there: ``"hit"`` (already covered), ``"extend"``
        (``X`` appends rows to the stored set; only the new blocks are
        computed) or ``"rebuild"`` (anything else — the fallback is always
        a from-scratch rebuild, never a stale cache).
        """
        X = _as2d(X)
        n_old = self._X.shape[0]
        if X.shape[1] == self._X.shape[1]:
            if X.shape[0] == n_old and np.array_equal(X, self._X):
                return "hit"
            if X.shape[0] > n_old and np.array_equal(X[:n_old], self._X):
                X_new = X[n_old:].copy()
                self._root.append(self._X, X_new)
                self._X = np.vstack([self._X, X_new])
                return "extend"
        self._X = X.copy()
        self._root.rebuild(self._X)
        return "rebuild"

    # ------------------------------------------------------------ evaluation

    def kernel_matrix(
        self, theta: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """``kernel.with_theta(theta)(X)`` into a reused buffer.

        Without ``out`` the returned array is owned by the workspace and
        valid until the next :meth:`kernel_matrix`/:meth:`update` call;
        callers must copy it if they need it to survive
        (``scipy.linalg.cholesky`` copies by default).  With ``out`` (a
        caller-owned C-contiguous (n, n) buffer) the value is delivered
        into ``out`` — written directly by the kernel tree where the root
        node supports it, copied otherwise — and the caller may destroy it
        (e.g. an in-place Cholesky); :meth:`grad_dot` stays valid either
        way because the gradient re-reads only node-retained buffers.
        """
        theta = np.asarray(theta, dtype=np.float64)
        if theta.shape[0] != self._root.n_theta:
            raise ValueError("theta does not match the kernel structure")
        K = self._root.value(theta, out=out)
        if out is not None and K is not out:
            np.copyto(out, K)
            return out
        return K

    def grad_dot(self, inner: np.ndarray, theta: np.ndarray) -> np.ndarray:
        """Fused ``[sum(inner * dK/dtheta_j)]_j``.

        Must be called right after :meth:`kernel_matrix` with the same
        ``theta`` (node buffers still hold that evaluation); ``inner`` is
        any (n, n) weight matrix — for the LML gradient,
        ``alpha alpha^T - K^{-1}``.
        """
        theta = np.asarray(theta, dtype=np.float64)
        return self._root.grad_dot(inner, theta)
