"""The ``Surrogate`` protocol: what the AL loop requires of a model.

Historically :class:`~repro.core.loop.ActiveLearner` and
:class:`~repro.core.loop.CandidateCovarianceCache` duck-typed their models
with scattered ``hasattr`` checks (``predict_from_cross`` here,
``is_fitted`` there).  This module names the contract instead:

- :class:`Surrogate` — a :class:`typing.Protocol` (``runtime_checkable``)
  listing the full surface the loop touches: ``fit`` / ``refactor`` /
  ``predict`` / ``predict_from_cross``, the ``is_fitted`` /
  ``supports_cross`` / ``use_workspace`` flags, and the
  ``workspace_counters()`` introspection hook.
- :func:`supports_cross` — the single place that decides whether a model
  offers the exact-GP cross-covariance fast path, replacing the ad-hoc
  ``hasattr(model, "predict_from_cross")`` probes.

All four built-in model families satisfy the protocol:
:class:`~repro.gp.gpr.GPRegressor` (exact — the only one with a real
``predict_from_cross``), :class:`~repro.gp.sparse.SparseGPRegressor`,
:class:`~repro.gp.local.LocalGPRegressor`, and
:class:`~repro.gp.treed.TreedGPRegressor` (each declares
``supports_cross = False`` and raises ``NotImplementedError`` from the
cross path, which the cache therefore never takes).
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

import numpy as np


@runtime_checkable
class Surrogate(Protocol):
    """Model surface required by the AL loop and its candidate cache.

    ``runtime_checkable``, so conformance is asserted structurally:
    ``isinstance(model, Surrogate)`` checks that every member below
    exists (Python cannot check signatures at runtime — the conformance
    test in ``tests/gp/test_surrogate_protocol.py`` exercises behaviour).
    """

    #: Route hyperparameter refits through the cached kernel workspace.
    use_workspace: bool

    @property
    def is_fitted(self) -> bool:
        """A prediction-ready factorization exists."""
        ...

    @property
    def supports_cross(self) -> bool:
        """``predict_from_cross`` is a real fast path, not a stub."""
        ...

    def fit(self, X: np.ndarray, y: np.ndarray) -> Any:
        """Full fit: optimize hyperparameters, then factorize."""
        ...

    def refactor(self, X: np.ndarray, y: np.ndarray) -> Any:
        """Refactorize on new data with frozen hyperparameters."""
        ...

    def predict(self, X: np.ndarray, return_std: bool = False):
        """Posterior mean (and std) at query points."""
        ...

    def predict_from_cross(
        self, Ks: np.ndarray, prior_diag: np.ndarray, return_std: bool = False
    ):
        """Posterior from a precomputed cross-covariance (exact GPs only).

        Models with ``supports_cross = False`` raise
        ``NotImplementedError``; callers must gate on
        :func:`supports_cross` first.
        """
        ...

    def workspace_counters(self) -> dict[str, int]:
        """``{"ws_hit", "ws_extend", "ws_rebuild"}`` workspace-path counts."""
        ...


def supports_cross(model: Any) -> bool:
    """Does ``model`` offer the exact-GP cross-covariance fast path?

    The one sanctioned probe (replacing scattered ``hasattr`` checks):
    honours an explicit ``supports_cross`` attribute when present and
    falls back to ``hasattr(model, "predict_from_cross")`` for
    third-party models predating the protocol.
    """
    flag = getattr(model, "supports_cross", None)
    if flag is None:
        return hasattr(model, "predict_from_cross")
    return bool(flag)
