"""The ``Surrogate`` protocol: what the AL loop requires of a model.

Historically :class:`~repro.core.loop.ActiveLearner` and
:class:`~repro.core.loop.CandidateCovarianceCache` duck-typed their models
with scattered ``hasattr`` checks (``predict_from_cross`` here,
``is_fitted`` there).  This module names the contract instead:

- :class:`Surrogate` — a :class:`typing.Protocol` (``runtime_checkable``)
  listing the full surface the loop touches: ``fit`` / ``refactor`` /
  ``predict`` / ``predict_from_cross``, the ``is_fitted`` /
  ``supports_cross`` / ``use_workspace`` flags, and the
  ``workspace_counters()`` introspection hook.
- :func:`supports_cross` — the single place that decides whether a model
  offers the exact-GP cross-covariance fast path, replacing the ad-hoc
  ``hasattr(model, "predict_from_cross")`` probes.

All built-in model families satisfy the protocol:
:class:`~repro.gp.gpr.GPRegressor` and
:class:`~repro.gp.iterative.IterativeGPRegressor` (cross rows against the
training set), :class:`~repro.gp.sparse.SparseGPRegressor` (cross rows
against the *inducing* set — see below), while
:class:`~repro.gp.local.LocalGPRegressor` and
:class:`~repro.gp.treed.TreedGPRegressor` declare
``supports_cross = False`` and raise ``NotImplementedError`` from the
cross path, which the cache therefore never takes.

The cross surface is parameterized by three *optional* attributes probed
through module helpers (the Protocol class itself stays fixed so
structural ``isinstance`` checks keep meaning the same thing):

- :func:`cross_points` — the basis the cached rows are computed against
  (``model.cross_points_`` when present, else ``model.X_train_``).
- :func:`cross_appends` — whether acquiring a candidate *appends* a
  column to cached rows (exact GPs grow their training set) or leaves
  them valid as-is (inducing bases don't move on acquisition);
  ``model.cross_appends_on_acquire``, default ``True``.
- :func:`cross_version` — a basis epoch (``model.cross_version_``,
  default 0); any bump invalidates cached rows wholesale (e.g. the
  sparse model re-clustering its inducing points).
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

import numpy as np


@runtime_checkable
class Surrogate(Protocol):
    """Model surface required by the AL loop and its candidate cache.

    ``runtime_checkable``, so conformance is asserted structurally:
    ``isinstance(model, Surrogate)`` checks that every member below
    exists (Python cannot check signatures at runtime — the conformance
    test in ``tests/gp/test_surrogate_protocol.py`` exercises behaviour).
    """

    #: Route hyperparameter refits through the cached kernel workspace.
    use_workspace: bool

    @property
    def is_fitted(self) -> bool:
        """A prediction-ready factorization exists."""
        ...

    @property
    def supports_cross(self) -> bool:
        """``predict_from_cross`` is a real fast path, not a stub."""
        ...

    def fit(self, X: np.ndarray, y: np.ndarray) -> Any:
        """Full fit: optimize hyperparameters, then factorize."""
        ...

    def refactor(self, X: np.ndarray, y: np.ndarray) -> Any:
        """Refactorize on new data with frozen hyperparameters."""
        ...

    def predict(self, X: np.ndarray, return_std: bool = False):
        """Posterior mean (and std) at query points."""
        ...

    def predict_from_cross(
        self, Ks: np.ndarray, prior_diag: np.ndarray, return_std: bool = False
    ):
        """Posterior from a precomputed cross-covariance (exact GPs only).

        Models with ``supports_cross = False`` raise
        ``NotImplementedError``; callers must gate on
        :func:`supports_cross` first.
        """
        ...

    def workspace_counters(self) -> dict[str, int]:
        """``{"ws_hit", "ws_extend", "ws_rebuild"}`` workspace-path counts."""
        ...


def build_surrogate(
    name: str,
    *,
    kernel=None,
    rng=None,
    n_restarts: int | None = None,
    use_workspace: bool = True,
    options=(),
) -> Any:
    """Construct the registered surrogate ``name`` with the loop's inputs.

    The single surrogate factory behind ``ALConfig.surrogate``: resolves
    ``name`` through :data:`repro.registry.surrogate_registry` (unknown
    names raise listing the registered keys) and adapts to the model's
    constructor signature — ``kernel``/``rng``/``n_restarts``/
    ``use_workspace`` are forwarded only when the class accepts them, so
    e.g. the sparse model (no ``n_restarts``) needs no special case.
    ``options`` (the config's ``surrogate_options``) always win over the
    adapted defaults.
    """
    import inspect

    from repro.registry import surrogate_registry

    cls = surrogate_registry.get(name)
    kwargs = dict(options)
    params = inspect.signature(cls.__init__).parameters
    accepts_any = any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
    )

    def accepts(key: str) -> bool:
        return accepts_any or key in params

    if accepts("kernel") and kernel is not None:
        kwargs.setdefault("kernel", kernel)
    if accepts("rng") and rng is not None:
        kwargs.setdefault("rng", rng)
    if accepts("n_restarts") and n_restarts is not None:
        kwargs.setdefault("n_restarts", n_restarts)
    if accepts("use_workspace"):
        kwargs.setdefault("use_workspace", use_workspace)
    return cls(**kwargs)


def supports_cross(model: Any) -> bool:
    """Does ``model`` offer the exact-GP cross-covariance fast path?

    The one sanctioned probe (replacing scattered ``hasattr`` checks):
    honours an explicit ``supports_cross`` attribute when present and
    falls back to ``hasattr(model, "predict_from_cross")`` for
    third-party models predating the protocol.
    """
    flag = getattr(model, "supports_cross", None)
    if flag is None:
        return hasattr(model, "predict_from_cross")
    return bool(flag)


def cross_points(model: Any) -> np.ndarray | None:
    """The basis ``predict_from_cross`` rows are evaluated against.

    ``kernel_(X_query, cross_points(model))`` is what the candidate cache
    must maintain.  Exact GPs predict from cross rows against their
    training set; inducing-point models declare an explicit
    ``cross_points_`` basis instead.
    """
    pts = getattr(model, "cross_points_", None)
    if pts is not None:
        return np.asarray(pts)
    return getattr(model, "X_train_", None)


def cross_appends(model: Any) -> bool:
    """Whether acquiring a candidate appends a column to cached cross rows.

    True (the default) for training-set bases — the acquired point joins
    the basis, so the cache appends ``kernel_(U, u_new)``.  False for
    bases that don't move on acquisition (frozen inducing sets): cached
    rows stay valid with no column work at all.
    """
    return bool(getattr(model, "cross_appends_on_acquire", True))


def cross_version(model: Any) -> int:
    """Basis epoch: any change invalidates cached cross rows wholesale.

    Models whose basis can move outside the acquire/drop protocol (the
    sparse model re-clustering inducing points on a full refactor) bump
    ``cross_version_``; models with an append-only basis never need to.
    """
    return int(getattr(model, "cross_version_", 0))
