"""Autoregressive (Kennedy–O'Hagan) co-kriging over the exact-GP fast path.

:class:`MultiFidelityGPRegressor` models F correlated response surfaces —
the same quantity observed at F fidelities (see
:mod:`repro.data.fidelity`) — with the recursive first-order
autoregressive stack of Kennedy & O'Hagan (2000) in Le Gratiet's
decoupled form::

    f_0(x) = delta_0(x)
    f_t(x) = rho_t * f_{t-1}(x) + delta_t(x)        t = 1 .. F-1

Each ``delta_t`` is an independent :class:`~repro.gp.gpr.GPRegressor`
(inheriting the kernel-workspace fit fast path, the O(n^2) incremental
refactor, and the jitter ladder), trained on the level-``t`` rows with
the regressed contribution of the stack below subtracted out.  The
scalar ``rho_t`` is estimated by least squares of the level-``t``
targets on the posterior mean of the stack below, and frozen across
:meth:`refactor` calls (it is a hyperparameter, like the kernel thetas).

Contract highlights (DESIGN.md "Multi-fidelity co-kriging stack"):

- ``num_fidelities=1`` is *pure inheritance*: no method takes a
  different code path, so the single-fidelity collapse is bit-identical
  to :class:`GPRegressor` — rng draws, workspace behaviour, everything.
- For F > 1, ``fit``/``refactor`` take ``X`` with a trailing integer
  fidelity column; ``predict`` takes plain features and returns the
  *top*-fidelity posterior (``predict_fidelity`` exposes the rungs).
- The cross-covariance surface stays cache-compatible: the fitted
  ``kernel_`` is a composite whose two-argument call horizontally stacks
  the per-level cross blocks against the stacked ``cross_points_``
  basis, ``predict_from_cross`` splits those blocks per level, and
  ``diag`` is the 1-D combined prior variance — exactly what
  :class:`~repro.core.loop.CandidateCovarianceCache` maintains.  The
  basis is block-stacked, so acquisitions must not append columns at the
  end of cached rows: ``cross_appends_on_acquire`` is False and every
  fit/refactor bumps ``cross_version_``, forcing a coherent rebuild.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import solve_triangular

from repro import obs
from repro.gp.gpr import GPRegressor
from repro.gp.kernels import Kernel
from repro.registry import register_surrogate

__all__ = ["MultiFidelityGPRegressor", "split_fidelity_column"]


def split_fidelity_column(
    X: np.ndarray, num_fidelities: int
) -> tuple[np.ndarray, np.ndarray]:
    """Split ``(n, d+1)`` rows into features and an integer fidelity column.

    The trailing column must hold integers in ``[0, num_fidelities)``.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2 or X.shape[1] < 2:
        raise ValueError(
            "multi-fidelity training rows need a trailing fidelity column"
        )
    fid_f = X[:, -1]
    fid = np.rint(fid_f).astype(int)
    if np.any(np.abs(fid_f - fid) > 1e-8):
        raise ValueError("fidelity column must hold integers")
    if np.any((fid < 0) | (fid >= num_fidelities)):
        raise ValueError(
            f"fidelity indices must lie in [0, {num_fidelities}); "
            f"got range [{fid.min()}, {fid.max()}]"
        )
    return np.ascontiguousarray(X[:, :-1]), fid


class _StackKernel:
    """The composite cross-kernel of a fitted co-kriging stack.

    Quacks like a :class:`~repro.gp.kernels.Kernel` exactly as far as
    :class:`~repro.core.loop.CandidateCovarianceCache` needs: ``theta``
    (stale-check identity: per-level thetas plus the rhos), a
    two-argument ``__call__`` producing the horizontally stacked
    per-level cross blocks against the stacked basis, and a 1-D ``diag``
    equal to the combined prior variance at the top fidelity.
    """

    def __init__(
        self,
        kernels: tuple[Kernel, ...],
        rhos: np.ndarray,
        sizes: tuple[int, ...],
    ) -> None:
        self.kernels = kernels
        self.rhos = np.asarray(rhos, dtype=np.float64)
        self.sizes = sizes
        self.offsets = np.concatenate([[0], np.cumsum(sizes)])
        #: w_t = prod(rhos[t:]): the top-fidelity weight of level t.
        self.weights = np.array(
            [float(np.prod(self.rhos[t:])) for t in range(len(kernels))]
        )

    @property
    def theta(self) -> np.ndarray:
        parts = [k.theta for k in self.kernels]
        parts.append(self.rhos)
        return np.concatenate(parts) if parts else np.empty(0)

    def __call__(self, X, Y=None, eval_gradient: bool = False):
        if eval_gradient:
            raise NotImplementedError("stack kernel has no gradient surface")
        if Y is None:
            out = self.weights[0] ** 2 * self.kernels[0](X)
            for w, k in zip(self.weights[1:], self.kernels[1:]):
                out = out + w**2 * k(X)
            return out
        Y = np.asarray(Y, dtype=np.float64)
        if Y.shape[0] != self.offsets[-1]:
            raise ValueError(
                f"basis must stack {self.offsets[-1]} level rows, "
                f"got {Y.shape[0]}"
            )
        blocks = [
            k(X, Y[self.offsets[t] : self.offsets[t + 1]])
            for t, k in enumerate(self.kernels)
        ]
        return np.hstack(blocks)

    def diag(self, X) -> np.ndarray:
        out = self.weights[0] ** 2 * self.kernels[0].diag(X)
        for w, k in zip(self.weights[1:], self.kernels[1:]):
            out = out + w**2 * k.diag(X)
        return out


@register_surrogate("multifidelity")
class MultiFidelityGPRegressor(GPRegressor):
    """Recursive co-kriging stack of ``num_fidelities`` exact GPs.

    Parameters are :class:`GPRegressor`'s plus:

    num_fidelities : int
        Number of rungs.  ``1`` (the default) makes the class a plain
        :class:`GPRegressor` — pure inheritance, no new code paths.
    rho_ridge : float
        Tikhonov term in the least-squares estimate of each ``rho_t``;
        guards the degenerate all-zero-mean case.
    """

    def __init__(
        self,
        kernel: Kernel | None = None,
        num_fidelities: int = 1,
        rho_ridge: float = 1e-9,
        **kwargs,
    ) -> None:
        super().__init__(kernel=kernel, **kwargs)
        if int(num_fidelities) < 1:
            raise ValueError("num_fidelities must be >= 1")
        self.num_fidelities = int(num_fidelities)
        self.rho_ridge = float(rho_ridge)
        self._levels: list[GPRegressor] = []
        self._rhos = np.ones(max(self.num_fidelities - 1, 0))
        self.cross_version_ = 0
        self.cross_points_: np.ndarray | None = None
        # Block-stacked basis: end-appends would corrupt cached rows, so
        # the candidate cache must rebuild (cross_version_ bump) instead.
        self.cross_appends_on_acquire = self.num_fidelities == 1

    # ------------------------------------------------------------- fitting

    def _ensure_levels(self) -> list[GPRegressor]:
        if not self._levels:
            self._levels = [
                GPRegressor(
                    kernel=self.kernel.with_theta(self.kernel.theta),
                    normalize_y=self.normalize_y,
                    n_restarts=self.n_restarts,
                    restart_every_fit=self.restart_every_fit,
                    rng=self.rng,
                    incremental=self.incremental,
                    use_workspace=self.use_workspace,
                    max_memory_MB=self.max_memory_MB,
                )
                for _ in range(self.num_fidelities)
            ]
        return self._levels

    def _stack_mean(self, X: np.ndarray, upto: int) -> np.ndarray:
        """Posterior mean of the sub-stack ``0 .. upto`` at ``X``."""
        mean = self._levels[0].predict(X)
        for s in range(1, upto + 1):
            mean = self._rhos[s - 1] * mean + self._levels[s].predict(X)
        return mean

    def _fit_stack(
        self, X: np.ndarray, y: np.ndarray, fid: np.ndarray, optimize: bool
    ) -> None:
        levels = self._ensure_levels()
        for t in range(self.num_fidelities):
            rows = np.flatnonzero(fid == t)
            if rows.size == 0:
                raise ValueError(f"fidelity level {t} has no training rows")
            Xt = np.ascontiguousarray(X[rows])
            yt = y[rows]
            if t == 0:
                target = yt
            else:
                f_prev = self._stack_mean(Xt, upto=t - 1)
                if optimize:
                    denom = float(f_prev @ f_prev) + self.rho_ridge
                    self._rhos[t - 1] = float(f_prev @ yt) / denom
                target = yt - self._rhos[t - 1] * f_prev
            model = levels[t]
            if optimize or not model.is_fitted:
                model.fit(Xt, target)
            else:
                model.refactor(Xt, target)
        self.X_train_ = np.column_stack([X, fid.astype(np.float64)])
        self.y_train_ = y
        sizes = tuple(m.X_train_.shape[0] for m in levels)
        self.cross_points_ = np.vstack([m.X_train_ for m in levels])
        self.kernel_ = _StackKernel(
            tuple(m.kernel_ for m in levels), self._rhos.copy(), sizes
        )
        self.cross_version_ += 1
        self.last_factor_mode_ = "fit" if optimize else "full"

    def fit(self, X, y) -> "MultiFidelityGPRegressor":
        if self.num_fidelities == 1:
            return super().fit(X, y)
        X, fid = split_fidelity_column(X, self.num_fidelities)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError("X must be (n, d+1) aligned with y (n,)")
        with obs.timed("fit", cat="gp", n=len(X)):
            self._fit_stack(X, y, fid, optimize=True)
        return self

    def refactor(self, X, y) -> "MultiFidelityGPRegressor":
        if self.num_fidelities == 1:
            return super().refactor(X, y)
        if not self.is_fitted:
            raise RuntimeError("refactor() requires a prior fit()")
        X, fid = split_fidelity_column(X, self.num_fidelities)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError("X must be (n, d+1) aligned with y (n,)")
        with obs.timed("refactor", cat="gp", n=len(X)):
            self._fit_stack(X, y, fid, optimize=False)
        return self

    # ---------------------------------------------------------- prediction

    def fidelity_weights(self, level: int) -> np.ndarray:
        """``w_t = prod(rho_{t+1} .. rho_level)`` for ``t = 0 .. level``."""
        w = np.ones(level + 1)
        for t in range(level):
            w[t] = float(np.prod(self._rhos[t:level]))
        return w

    def predict_fidelity(self, X, level: int, return_std: bool = False):
        """Posterior of the stack truncated at ``level`` (0-based)."""
        if self.num_fidelities == 1:
            if level != 0:
                raise ValueError("single-fidelity model has only level 0")
            return super().predict(X, return_std)
        if not (0 <= level < self.num_fidelities):
            raise ValueError(f"level must be in [0, {self.num_fidelities})")
        if not self.is_fitted:
            raise RuntimeError("predict_fidelity() requires a fit")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[:, None]
        with obs.timed("predict", cat="gp"):
            mean, std = self._levels[0].predict(X, return_std=True)
            var = std**2
            for s in range(1, level + 1):
                mean_s, std_s = self._levels[s].predict(X, return_std=True)
                rho = self._rhos[s - 1]
                mean = rho * mean + mean_s
                var = rho * rho * var + std_s**2
        if not return_std:
            return mean
        return mean, np.sqrt(np.maximum(var, 0.0))

    def predict(self, X, return_std: bool = False):
        if self.num_fidelities == 1:
            return super().predict(X, return_std)
        if not self.is_fitted:
            return super().predict(np.asarray(X, dtype=np.float64), return_std)
        return self.predict_fidelity(X, self.num_fidelities - 1, return_std)

    def predict_from_cross(
        self, Ks: np.ndarray, prior_diag: np.ndarray, return_std: bool = False
    ):
        if self.num_fidelities == 1:
            return super().predict_from_cross(Ks, prior_diag, return_std)
        if not self.is_fitted:
            raise RuntimeError("predict_from_cross() requires a factorized model")
        kernel = self.kernel_
        assert isinstance(kernel, _StackKernel)
        Ks = np.asarray(Ks, dtype=np.float64)
        if Ks.ndim != 2 or Ks.shape[1] != kernel.offsets[-1]:
            raise ValueError(
                f"Ks must be (m, {kernel.offsets[-1]}) against the stacked basis"
            )
        with obs.timed("predict", cat="gp"):
            mean = np.zeros(Ks.shape[0])
            reduction = np.zeros(Ks.shape[0])
            for t, model in enumerate(self._levels):
                w = kernel.weights[t]
                B = Ks[:, kernel.offsets[t] : kernel.offsets[t + 1]]
                mean += w * (B @ model._alpha + model._y_mean)
                if return_std:
                    V = solve_triangular(
                        model._L, B.T, lower=True, check_finite=False
                    )
                    reduction += w * w * np.einsum("ij,ij->j", V, V)
            if not return_std:
                return mean
            var = np.asarray(prior_diag, dtype=np.float64) - reduction
            return mean, np.sqrt(np.maximum(var, 0.0))

    # -------------------------------------------- portfolio-scoring surface

    def prior_cov_fidelity(
        self, Xq: np.ndarray, fq: int, x_star: np.ndarray, f_star: int
    ) -> np.ndarray:
        """Prior covariance between ``(Xq, fq)`` rows and one ``(x*, f*)``.

        Levels are independent, so only rungs shared by both fidelities
        contribute: ``sum_{t<=min(fq,f*)} w_t^(fq) w_t^(f*) k_t(Xq, x*)``.
        The batch-selection layer uses this for its y-free in-batch
        variance conditioning (DESIGN.md).
        """
        if self.num_fidelities == 1:
            kernel = self.kernel_ if self.kernel_ is not None else self.kernel
            return kernel(np.atleast_2d(Xq), np.atleast_2d(x_star)).ravel()
        wq = self.fidelity_weights(fq)
        ws = self.fidelity_weights(f_star)
        Xq = np.atleast_2d(np.asarray(Xq, dtype=np.float64))
        xs = np.atleast_2d(np.asarray(x_star, dtype=np.float64))
        out = np.zeros(Xq.shape[0])
        for t in range(min(fq, f_star) + 1):
            k = self._levels[t].kernel_
            out += wq[t] * ws[t] * k(Xq, xs).ravel()
        return out

    def prior_var_fidelity(self, x: np.ndarray, level: int) -> float:
        """Prior variance (with noise) of one point at ``level``."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if self.num_fidelities == 1:
            kernel = self.kernel_ if self.kernel_ is not None else self.kernel
            return float(kernel.diag(x)[0])
        w = self.fidelity_weights(level)
        total = 0.0
        for t in range(level + 1):
            total += w[t] ** 2 * float(self._levels[t].kernel_.diag(x)[0])
        return total

    # ------------------------------------------------------------- protocol

    @property
    def is_fitted(self) -> bool:
        if self.num_fidelities == 1:
            return super().is_fitted
        return bool(self._levels) and all(m.is_fitted for m in self._levels)

    @property
    def rhos_(self) -> np.ndarray:
        """The fitted level-to-level regression scalars (read-only view)."""
        return self._rhos.copy()

    def workspace_counters(self) -> dict[str, int]:
        if self.num_fidelities == 1 or not self._levels:
            return super().workspace_counters()
        totals = {"ws_hit": 0, "ws_extend": 0, "ws_rebuild": 0}
        for model in self._levels:
            for key, value in model.workspace_counters().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def log_marginal_likelihood(self, theta, eval_gradient: bool = False):
        if self.num_fidelities == 1:
            return super().log_marginal_likelihood(theta, eval_gradient)
        raise NotImplementedError(
            "the stack has no joint LML; fit() optimizes each level"
        )

    def sample_y(self, X, rng, n_samples: int = 1):
        if self.num_fidelities == 1:
            return super().sample_y(X, rng, n_samples)
        raise NotImplementedError("posterior sampling is single-fidelity only")
