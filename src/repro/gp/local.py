"""Local Gaussian-process models: independent GPs on input-space regions.

The paper's future work (Sec. VI) proposes "train[ing] multiple local
performance models simultaneously"; its related work (Sec. II-B) points at
locally-weighted GP mixtures and treed GPR as the standard cures for GPR's
stationarity assumption and cubic cost.  This module implements the
partitioned variant: k-means regions over the (unit-cube) inputs, one
:class:`~repro.gp.gpr.GPRegressor` per region, and distance-weighted
blending of the nearest regions' predictions.

The class mirrors the ``fit`` / ``predict`` / ``refactor`` surface of
:class:`GPRegressor`, so :class:`repro.core.loop.ActiveLearner` can swap it
in via its ``model_factory`` hook.
"""

from __future__ import annotations

import numpy as np

from repro.gp.gpr import GPRegressor
from repro.gp.kernels import Kernel, default_kernel
from repro.registry import register_surrogate


def kmeans(
    X: np.ndarray, k: int, rng: np.random.Generator, n_iter: int = 25
) -> tuple[np.ndarray, np.ndarray]:
    """Plain Lloyd's algorithm.

    Returns ``(centroids, labels)``.  Initialization is k-means++-style
    (distance-proportional seeding); empty clusters are re-seeded on the
    farthest point.  Deterministic given the generator.
    """
    X = np.asarray(X, dtype=np.float64)
    n = X.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
    # k-means++ seeding.
    centroids = [X[rng.integers(n)]]
    for _ in range(k - 1):
        d2 = np.min(
            [(np.sum((X - c) ** 2, axis=1)) for c in centroids], axis=0
        )
        total = d2.sum()
        if total <= 0:
            centroids.append(X[rng.integers(n)])
            continue
        centroids.append(X[rng.choice(n, p=d2 / total)])
    C = np.array(centroids)

    labels = np.zeros(n, dtype=np.int64)
    for _ in range(n_iter):
        d2 = np.sum((X[:, None, :] - C[None, :, :]) ** 2, axis=2)
        new_labels = np.argmin(d2, axis=1)
        for j in range(k):
            members = new_labels == j
            if members.any():
                C[j] = X[members].mean(axis=0)
            else:
                # Re-seed an empty cluster on the overall farthest point.
                far = np.argmax(np.min(d2, axis=1))
                C[j] = X[far]
                new_labels[far] = j
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
    return C, labels


@register_surrogate("local")
class LocalGPRegressor:
    """K independent local GPs with distance-weighted prediction blending.

    Parameters
    ----------
    n_regions : int
        Number of k-means regions (clamped to the training-set size).
    kernel : Kernel, optional
        Prior covariance shared (as a template) by all local models.
    blend : int
        Number of nearest regions blended per query point (inverse-distance
        weights); 1 gives hard region assignment.
    rng : numpy.random.Generator
        Drives clustering and local LML restarts.
    n_restarts : int
        Restarts of each local model's first fit.
    use_workspace : bool
        Forwarded to every per-region :class:`GPRegressor` (kernel-workspace
        LML fast path).
    """

    def __init__(
        self,
        n_regions: int = 4,
        kernel: Kernel | None = None,
        blend: int = 2,
        rng: np.random.Generator | None = None,
        n_restarts: int = 1,
        use_workspace: bool = True,
    ) -> None:
        if n_regions < 1:
            raise ValueError("n_regions must be >= 1")
        if blend < 1:
            raise ValueError("blend must be >= 1")
        if rng is None:
            raise ValueError("LocalGPRegressor requires an rng")
        self.n_regions = int(n_regions)
        self.blend = int(blend)
        self.rng = rng
        self.n_restarts = int(n_restarts)
        self.use_workspace = bool(use_workspace)
        self._template = kernel if kernel is not None else default_kernel()
        self.centroids_: np.ndarray | None = None
        self.models_: list[GPRegressor] = []
        self._labels: np.ndarray | None = None

    # -------------------------------------------------------------------- fit

    def _effective_k(self, n: int) -> int:
        # Each region needs a handful of points to fit three hyperparameters.
        return max(1, min(self.n_regions, n // 5, n))

    def fit(self, X, y) -> "LocalGPRegressor":
        """Cluster the inputs and fit one GP per region."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be (n, d) aligned with y (n,)")
        k = self._effective_k(X.shape[0])
        self.centroids_, self._labels = kmeans(X, k, self.rng)
        self.models_ = []
        for j in range(k):
            members = self._labels == j
            gp = GPRegressor(
                kernel=self._template.with_theta(self._template.theta),
                rng=self.rng,
                n_restarts=self.n_restarts,
                use_workspace=self.use_workspace,
            )
            gp.fit(X[members], y[members])
            self.models_.append(gp)
        return self

    def refactor(self, X, y) -> "LocalGPRegressor":
        """Re-cluster and refit with frozen per-region hyperparameters.

        New data can shift regions, so clustering reruns; each region's GP
        reuses the hyperparameters of the (positionally) nearest previous
        region via warm start — matching the AL loop's cheap-refit path.
        """
        if self.centroids_ is None:
            raise RuntimeError("refactor() requires a prior fit()")
        return self.fit(X, y)

    # ---------------------------------------------------------------- predict

    @property
    def is_fitted(self) -> bool:
        return bool(self.models_)

    @property
    def supports_cross(self) -> bool:
        """Blended regional posteriors have no single cross-covariance."""
        return False

    def predict_from_cross(self, Ks, prior_diag, return_std: bool = False):
        raise NotImplementedError("LocalGPRegressor has no cross-covariance path")

    def workspace_counters(self) -> dict[str, int]:
        """Summed workspace counts of the per-region models."""
        total = {"ws_hit": 0, "ws_extend": 0, "ws_rebuild": 0}
        for gp in self.models_:
            for key, n in gp.workspace_counters().items():
                total[key] += n
        return total

    def predict(self, X, return_std: bool = False):
        """Blend the nearest regions' predictions by inverse distance."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[:, None]
        if not self.models_:
            mean = np.zeros(X.shape[0])
            if not return_std:
                return mean
            return mean, np.sqrt(np.maximum(self._template.diag(X), 0.0))
        C = self.centroids_
        k = C.shape[0]
        m = min(self.blend, k)
        d2 = np.sum((X[:, None, :] - C[None, :, :]) ** 2, axis=2)
        nearest = np.argsort(d2, axis=1)[:, :m]  # (nq, m)

        mus = np.stack([gp.predict(X) for gp in self.models_], axis=1)  # (nq, k)
        if return_std:
            stds = np.stack(
                [gp.predict(X, return_std=True)[1] for gp in self.models_], axis=1
            )
        w = 1.0 / (np.take_along_axis(d2, nearest, axis=1) + 1e-12)
        w = w / w.sum(axis=1, keepdims=True)
        mu = np.sum(np.take_along_axis(mus, nearest, axis=1) * w, axis=1)
        if not return_std:
            return mu
        # Blend variances + dispersion between local means (mixture moment).
        local_mu = np.take_along_axis(mus, nearest, axis=1)
        local_sd = np.take_along_axis(stds, nearest, axis=1)
        var = np.sum(w * (local_sd**2 + (local_mu - mu[:, None]) ** 2), axis=1)
        return mu, np.sqrt(np.maximum(var, 0.0))

    # --------------------------------------------------------------- metadata

    def region_sizes(self) -> list[int]:
        """Training points per region after the last fit."""
        if self._labels is None:
            return []
        return np.bincount(self._labels, minlength=len(self.models_)).tolist()
