"""Iterative (matrix-free capable) GP inference for the large-n regime.

The exact :class:`~repro.gp.gpr.GPRegressor` pays a dense O(n^3) Cholesky
per refit and an O(n^2) triangular solve per candidate batch — fine at the
paper's n ~ 600, fatal when a campaign grows a surrogate into the
n = 10^4–10^5 regime.  This module replaces the dense factorization with
Krylov machinery (the GPyTorch/"GPs-as-matvecs" playbook):

- **Preconditioned conjugate gradients** (:func:`pcg`) solve ``K x = b``
  to a requested tolerance using only covariance matvecs.
- **Pivoted Cholesky** (:func:`pivoted_cholesky`) builds an adaptive
  low-rank factor of the *noise-free* covariance; together with the noise
  diagonal (and the exact diagonal residual) it yields
  ``K_hat = L L^T + D``, applied in O(n r) through the Woodbury identity
  (:class:`_Woodbury`).  ``K_hat^{-1}`` serves double duty as the CG
  preconditioner and as the O(n r)-per-batch approximate predictive
  variance.
- **Stochastic Lanczos quadrature** (:func:`slq_logdet`) estimates
  ``log det K`` from Rademacher probes, and a **Hutchinson** trace
  estimator turns the LML gradient into
  ``0.5 * <alpha alpha^T - (K^{-1}Z) Z^T / p,  dK/dtheta_j>`` — evaluated
  by the PR-4 :meth:`KernelWorkspace.grad_dot` fused reduction, so no
  ``(n, n, k)`` gradient stack and no per-theta distance rebuild.

Two matvec backends, chosen by a memory threshold:

- **dense-structure** (default up to ``max_dense_bytes`` for the kernel
  matrix): K is materialized once per theta into a capacity buffer
  (written by the kernel workspace, extended by O(n m) cross blocks when
  the AL loop appends acquisitions) and matvecs are BLAS-2/3.
- **matrix-free** above the threshold: matvecs stream block rows
  ``kernel(X[b], X) @ V`` and K never needs O(n^2) storage; the noise
  diagonal is recovered analytically from the kernel tree.  In this mode
  hyperparameters are fit exactly on a subset of the data (the same
  subset-of-data scheme :class:`~repro.gp.sparse.SparseGPRegressor` uses)
  because the fused gradient needs the O(n^2) workspace structure.

Determinism contract (see DESIGN.md): probe vectors come from a fixed
``SeedSequence(probe_seed, spawn_key=(fit_count,))`` stream — never from
the learner's shared rng — and CG/Lanczos have fixed iteration caps, so
repeated runs (and checkpoint/resume through the campaign service) make
bit-identical selections.  Below ``exact_lml_max_n`` the hyperparameter
fit *is* the exact workspace-fused LML path inherited from
:class:`GPRegressor` (same optimizer trajectory, same rng consumption),
so small-n selections match the dense backend to solver tolerance.
"""

from __future__ import annotations

import math
import time

import numpy as np
from scipy.linalg import cho_solve, cholesky, eigh_tridiagonal, solve_triangular
from scipy.linalg.blas import dgemm
from scipy.optimize import minimize

from repro import obs
from repro.gp.gpr import _CHOL_ERRORS, GPRegressor
from repro.gp.kernels import (
    Kernel,
    Product,
    Sum,
    WhiteKernel,
    _grow_square,
)
from repro.registry import register_surrogate

__all__ = [
    "IterativeGPRegressor",
    "KernelOperator",
    "PivotedCholesky",
    "pivoted_cholesky",
    "pcg",
    "slq_logdet",
    "noise_free_diag",
]

#: Jitter ladder for the (tiny, r x r) Woodbury capacitance factorization.
_WB_JITTERS = (0.0, 1e-12, 1e-10, 1e-8, 1e-6)

#: Relative breakdown threshold for a Lanczos column (Krylov space exhausted).
_LANCZOS_BREAKDOWN = 1e-12


def noise_free_diag(kernel: Kernel, X: np.ndarray) -> np.ndarray:
    """``diag(kernel(X, X_copy))`` — the prior diagonal *without* noise.

    The kernel cross form excludes White components (they contribute only
    on the true diagonal), so the noise-free diagonal is the cross
    covariance of each point with itself.  Evaluated analytically by a
    kernel-tree walk instead of n one-point kernel calls.
    """
    if isinstance(kernel, WhiteKernel):
        return np.zeros(np.atleast_2d(X).shape[0])
    if isinstance(kernel, Sum):
        return noise_free_diag(kernel.k1, X) + noise_free_diag(kernel.k2, X)
    if isinstance(kernel, Product):
        return noise_free_diag(kernel.k1, X) * noise_free_diag(kernel.k2, X)
    return kernel.diag(X)


class KernelOperator:
    """Matvec access to the training covariance ``K = kernel(X)`` (noise incl.).

    With ``K`` given (a dense array or a strided capacity-buffer view),
    matvecs are one BLAS call.  Without it, matvecs stream block rows of
    the noise-free cross covariance and add the analytic noise diagonal —
    K itself is never materialized (the matrix-free path).
    """

    def __init__(
        self,
        kernel: Kernel,
        X: np.ndarray,
        K: np.ndarray | None = None,
        block_bytes: int = 1 << 26,
    ) -> None:
        self.kernel = kernel
        self.X = X
        self.n = X.shape[0]
        self._K = K
        self.noise_diag = np.maximum(
            kernel.diag(X) - noise_free_diag(kernel, X), 0.0
        )
        self.diag = kernel.diag(X)
        self.matvecs = 0
        self.matvec_seconds = 0.0
        self._block = max(1, int(block_bytes // max(self.n * 8, 1)))

    @property
    def dense(self) -> bool:
        return self._K is not None

    def matmat(self, V: np.ndarray) -> np.ndarray:
        """``K @ V`` for ``V`` of shape (n,) or (n, p)."""
        t0 = time.perf_counter()
        V2 = V if V.ndim == 2 else V[:, None]
        if self._K is not None:
            out = self._K @ V2
        else:
            out = np.empty_like(V2)
            for lo in range(0, self.n, self._block):
                hi = min(lo + self._block, self.n)
                out[lo:hi] = self.kernel(self.X[lo:hi], self.X) @ V2
            out += self.noise_diag[:, None] * V2
        self.matvecs += V2.shape[1]
        self.matvec_seconds += time.perf_counter() - t0
        return out if V.ndim == 2 else out[:, 0]

    def row_noise_free(self, i: int) -> np.ndarray:
        """Row ``i`` of the noise-free covariance (pivoted-Cholesky feed)."""
        if self._K is not None:
            row = self._K[i].copy()
            row[i] -= self.noise_diag[i]
            return row
        return self.kernel(self.X[i : i + 1], self.X)[0]


class PivotedCholesky:
    """Adaptive low-rank factor ``K_f ~= L L^T`` of the noise-free covariance.

    Carries everything needed to *extend* the factor by appended training
    points without re-pivoting: the pivot coordinates, the pivot scales,
    and the pivot-row slice of ``L`` (the recurrence
    ``L[*, k] = (k_f(x*, x_{p_k}) - sum_{j<k} L[*, j] Lp[k, j]) / scale[k]``
    is O(r^2) per new point).  ``d_resid`` is the exact diagonal residual
    ``diag(K_f) - diag(L L^T)`` — adding it back keeps the preconditioner
    (and the Woodbury variance) exact on the diagonal at any rank.
    """

    def __init__(
        self,
        L: np.ndarray,
        d_resid: np.ndarray,
        pivots: np.ndarray,
        scale: np.ndarray,
        Lp: np.ndarray,
        X_piv: np.ndarray,
    ) -> None:
        self.L = L
        self.d_resid = d_resid
        self.pivots = pivots
        self.scale = scale
        self.Lp = Lp
        self.X_piv = X_piv

    @property
    def rank(self) -> int:
        return self.L.shape[1]

    def extend(
        self, kernel: Kernel, X_new: np.ndarray, diag_free_new: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Append rows for new training points; pivots stay fixed.

        Returns ``(L_new, d_new)`` — the appended factor rows and their
        diagonal residuals — after growing ``L`` / ``d_resid`` in place.
        """
        r = self.rank
        m = X_new.shape[0]
        L_new = np.zeros((m, r))
        if r:
            k_cross = kernel(X_new, self.X_piv)  # (m, r), noise-free
            for k in range(r):
                v = k_cross[:, k]
                if k:
                    v = v - L_new[:, :k] @ self.Lp[k, :k]
                L_new[:, k] = v / self.scale[k]
        d_new = np.maximum(
            diag_free_new - np.einsum("ij,ij->i", L_new, L_new), 0.0
        )
        self.L = np.vstack([self.L, L_new])
        self.d_resid = np.concatenate([self.d_resid, d_new])
        return L_new, d_new


def pivoted_cholesky(
    op: KernelOperator, max_rank: int, rtol: float = 1e-10
) -> PivotedCholesky:
    """Greedy pivoted Cholesky of the noise-free covariance behind ``op``.

    Stops at ``max_rank`` columns or when the residual trace has dropped
    below ``rtol`` times the initial trace, whichever comes first.  Each
    step costs one noise-free covariance row plus an O(n k) update.
    """
    n = op.n
    diag_free = op.diag - op.noise_diag
    d = np.maximum(diag_free, 0.0).copy()
    trace0 = float(d.sum())
    r_cap = min(max_rank, n)
    L = np.zeros((n, r_cap))
    pivots: list[int] = []
    scale: list[float] = []
    k = 0
    while k < r_cap:
        if trace0 <= 0.0 or float(d.sum()) <= rtol * trace0:
            break
        i = int(np.argmax(d))
        if d[i] <= 0.0:
            break
        row = op.row_noise_free(i)
        if k:
            row = row - L[:, :k] @ L[i, :k]
        piv = math.sqrt(d[i])
        col = row / piv
        col[i] = piv  # exact by construction; shields roundoff in row[i]
        L[:, k] = col
        d -= col * col
        d[i] = 0.0
        np.maximum(d, 0.0, out=d)
        pivots.append(i)
        scale.append(piv)
        k += 1
    piv_idx = np.asarray(pivots, dtype=np.int64)
    Lk = np.ascontiguousarray(L[:, :k])
    return PivotedCholesky(
        L=Lk,
        d_resid=d,
        pivots=piv_idx,
        scale=np.asarray(scale),
        Lp=Lk[piv_idx].copy() if k else np.zeros((0, 0)),
        X_piv=op.X[piv_idx].copy() if k else op.X[:0].copy(),
    )


class _Woodbury:
    """Apply ``K_hat^{-1}`` for ``K_hat = D + L L^T`` in O(n r) per vector.

    ``K_hat^{-1} = D^{-1} - D^{-1} L M^{-1} L^T D^{-1}`` with the r x r
    capacitance ``M = I + L^T D^{-1} L``.  Doubles as the CG
    preconditioner and the approximate predictive-variance solve; the
    capacitance update under appended rows is the rank-m correction
    ``M += L_new^T D_new^{-1} L_new`` (O(m r^2)), so the AL loop's
    one-acquisition growth never rebuilds the n x r products.
    """

    #: Floor keeping ``D^{-1}`` finite for (pathological) noise-free kernels.
    _D_FLOOR = 1e-30

    def __init__(self, L: np.ndarray, D: np.ndarray) -> None:
        self.L = L
        self.dinv = 1.0 / np.maximum(D, self._D_FLOOR)
        r = L.shape[1]
        if r:
            self.M = np.eye(r) + (L * self.dinv[:, None]).T @ L
        else:
            self.M = np.zeros((0, 0))
        self._refresh_chol()

    def _refresh_chol(self) -> None:
        if self.M.shape[0] == 0:
            self._C = np.zeros((0, 0))
            return
        r = self.M.shape[0]
        for jitter in _WB_JITTERS:
            try:
                self._C = cholesky(
                    self.M + jitter * np.eye(r), lower=True, check_finite=False
                )
                return
            except _CHOL_ERRORS:
                continue
        raise np.linalg.LinAlgError("Woodbury capacitance not positive definite")

    def extend(self, L_full: np.ndarray, L_new: np.ndarray, D_new: np.ndarray) -> None:
        """Account for appended rows: new full ``L`` plus their D entries."""
        self.L = L_full
        dinv_new = 1.0 / np.maximum(D_new, self._D_FLOOR)
        self.dinv = np.concatenate([self.dinv, dinv_new])
        if self.M.shape[0]:
            self.M = self.M + (L_new * dinv_new[:, None]).T @ L_new
        self._refresh_chol()

    def solve(self, V: np.ndarray) -> np.ndarray:
        """``K_hat^{-1} V`` for ``V`` of shape (n,) or (n, p)."""
        V2 = V if V.ndim == 2 else V[:, None]
        W = self.dinv[:, None] * V2
        if self.L.shape[1]:
            T = self.L.T @ W
            U = cho_solve((self._C, True), T, check_finite=False)
            W = W - self.dinv[:, None] * (self.L @ U)
        return W if V.ndim == 2 else W[:, 0]

    def quad(self, Ks: np.ndarray) -> np.ndarray:
        """``diag(Ks K_hat^{-1} Ks^T)`` for a (m, n) cross covariance."""
        A = Ks * self.dinv[None, :]
        q = np.einsum("ij,ij->i", A, Ks)
        if self.L.shape[1]:
            T = A @ self.L  # (m, r)
            W = solve_triangular(self._C, T.T, lower=True, check_finite=False)
            q = q - np.einsum("ji,ji->i", W, W)
        return q


def pcg(
    matmat,
    B: np.ndarray,
    precond=None,
    tol: float = 1e-10,
    maxiter: int = 400,
    x0: np.ndarray | None = None,
) -> tuple[np.ndarray, int, float]:
    """Batched preconditioned conjugate gradients for an SPD operator.

    Solves ``K X = B`` column-by-column (shared iteration), stopping when
    every column's residual satisfies ``||r|| <= tol * ||b||`` or at the
    ``maxiter`` cap — the cap is part of the determinism contract, never
    an exception.  Returns ``(X, iterations, worst_relative_residual)``.
    """
    B2 = B if B.ndim == 2 else B[:, None]
    X = np.zeros_like(B2) if x0 is None else np.array(
        x0 if x0.ndim == 2 else x0[:, None], dtype=np.float64
    )
    R = B2 - matmat(X) if x0 is not None else B2.copy()
    bnorm = np.linalg.norm(B2, axis=0)
    bsafe = np.where(bnorm > 0.0, bnorm, 1.0)
    Z = precond(R) if precond is not None else R.copy()
    P = Z.copy()
    rz = np.einsum("ij,ij->j", R, Z)
    rel = float(np.max(np.linalg.norm(R, axis=0) / bsafe))
    it = 0
    while it < maxiter and rel > tol:
        Q = matmat(P)
        pq = np.einsum("ij,ij->j", P, Q)
        step = np.where(pq > 0.0, rz / np.where(pq > 0.0, pq, 1.0), 0.0)
        X += step * P
        R -= step * Q
        it += 1
        rel = float(np.max(np.linalg.norm(R, axis=0) / bsafe))
        if rel <= tol:
            break
        Z = precond(R) if precond is not None else R
        rz_new = np.einsum("ij,ij->j", R, Z)
        beta = np.where(rz > 0.0, rz_new / np.where(rz > 0.0, rz, 1.0), 0.0)
        P = Z + beta * P
        rz = rz_new
    return (X if B.ndim == 2 else X[:, 0]), it, rel


def slq_logdet(
    matmat, Z: np.ndarray, steps: int
) -> tuple[float, int]:
    """Stochastic Lanczos quadrature estimate of ``log det K``.

    ``Z`` holds probe vectors (columns) with ``E[z z^T] = I`` (Rademacher).
    Each probe runs ``steps`` Lanczos iterations (with full
    reorthogonalization, batched across probes) and contributes the Gauss
    quadrature ``||z||^2 sum_i w_i log(lambda_i)`` of its tridiagonal;
    the estimate is the probe mean.  Returns ``(estimate, lanczos_steps)``
    where the step count sums over probes (the obs counter feed).
    """
    n, p = Z.shape
    m = min(steps, n)
    beta0 = np.linalg.norm(Z, axis=0)
    bsafe = np.where(beta0 > 0.0, beta0, 1.0)
    Q = np.zeros((m, n, p))
    alphas = np.zeros((m, p))
    betas = np.zeros((max(m - 1, 0), p))
    q = Z / bsafe
    active = beta0 > 0.0
    mj = np.zeros(p, dtype=np.int64)
    total_steps = 0
    for j in range(m):
        if not active.any():
            break
        Q[j] = q
        W = matmat(q)
        if j > 0:
            W -= betas[j - 1] * Q[j - 1]
        a = np.einsum("ij,ij->j", q, W)
        alphas[j] = a
        W -= a * q
        if j > 0:
            # Full reorthogonalization: cheap relative to the matvec and
            # keeps the Ritz values honest at the step counts we run.
            coef = np.einsum("knp,np->kp", Q[: j + 1], W)
            W -= np.einsum("knp,kp->np", Q[: j + 1], coef)
        mj[active] = j + 1
        total_steps += int(active.sum())
        if j < m - 1:
            b = np.linalg.norm(W, axis=0)
            alive = b > _LANCZOS_BREAKDOWN * bsafe
            active = active & alive
            betas[j] = np.where(active, b, 0.0)
            q = np.where(active, W / np.where(b > 0.0, b, 1.0), 0.0)
    est = np.zeros(p)
    for t in range(p):
        k = int(mj[t])
        if k == 0:
            continue
        if k == 1:
            lam = np.array([alphas[0, t]])
            w = np.array([1.0])
        else:
            lam, vec = eigh_tridiagonal(alphas[:k, t], betas[: k - 1, t])
            w = vec[0] ** 2
        lam = np.maximum(lam, 1e-300)
        est[t] = beta0[t] ** 2 * float(w @ np.log(lam))
    return float(est.mean()), total_steps


@register_surrogate("iterative")
class IterativeGPRegressor(GPRegressor):
    """Exact-interface GP regression via iterative solves (large-n fast path).

    A drop-in :class:`~repro.gp.surrogate.Surrogate` replacing the dense
    Cholesky with PCG solves for ``alpha``, a pivoted-Cholesky/Woodbury
    factor for the predictive variance and the CG preconditioner, and —
    above ``exact_lml_max_n`` training points — stochastic Lanczos/
    Hutchinson estimates for the LML value and gradient.  Below that
    threshold the hyperparameter fit is the *exact* inherited workspace
    path (identical optimizer trajectory and rng consumption to
    :class:`GPRegressor` — the small-n selection-parity contract); only
    the factorization and predictions go through the iterative machinery.

    Parameters (beyond :class:`GPRegressor`'s)
    ----------
    exact_lml_max_n : int
        Crossover below which hyperparameters are fit by the exact fused
        LML (the ``max_cholesky_size`` idea).  Above it, the stochastic
        estimator runs when the dense-structure mode and a kernel
        workspace are available, else a subset-of-data exact fit.
    cg_tol, cg_maxiter : float, int
        Relative-residual target and hard iteration cap for every CG
        solve.  The cap is part of the determinism contract (fixed caps +
        fixed probe seeds => reproducible selections) — hitting it
        degrades accuracy, never determinism.
    precond_rank, precond_rtol : int, float
        Pivoted-Cholesky rank cap and trace-residual stopping tolerance.
        The same factor preconditions CG and approximates the predictive
        variance, so these bound the variance error directly.
    n_probes, lanczos_steps : int
        Rademacher probes and Lanczos steps per probe for the stochastic
        LML (log-det and gradient-trace estimates).
    probe_seed : int
        Entropy for the probe stream: probes are drawn from
        ``SeedSequence(probe_seed, spawn_key=(fit_count,))`` — decoupled
        from the learner rng so iterative and dense runs consume the
        shared rng identically (trajectory parity).
    max_dense_bytes : float
        Dense-structure threshold: the kernel matrix is materialized (and
        kernel workspaces used) only while ``n^2 * 8`` stays below this.
        Above it, matvecs stream block rows and K never exists in memory.
        Note the dense-structure *mode* keeps a small constant number of
        O(n^2) buffers (K itself plus workspace distance caches with 1.5x
        capacity headroom) — budget accordingly.
    sod_max : int
        Subset size for the matrix-free hyperparameter fit.
    """

    def __init__(
        self,
        kernel: Kernel | None = None,
        normalize_y: bool = True,
        n_restarts: int = 2,
        restart_every_fit: bool = False,
        rng: np.random.Generator | None = None,
        incremental: bool = True,
        use_workspace: bool = True,
        max_memory_MB: float | None = None,
        exact_lml_max_n: int = 2000,
        cg_tol: float = 1e-10,
        cg_maxiter: int = 400,
        precond_rank: int = 256,
        precond_rtol: float = 1e-10,
        n_probes: int = 8,
        lanczos_steps: int = 24,
        probe_seed: int = 1234,
        max_dense_bytes: float = 4e9,
        sod_max: int = 2000,
    ) -> None:
        super().__init__(
            kernel=kernel,
            normalize_y=normalize_y,
            n_restarts=n_restarts,
            restart_every_fit=restart_every_fit,
            rng=rng,
            incremental=incremental,
            use_workspace=use_workspace,
            max_memory_MB=None,  # mode selection handles memory, see below
        )
        if exact_lml_max_n < 1:
            raise ValueError("exact_lml_max_n must be >= 1")
        if cg_maxiter < 1 or lanczos_steps < 1 or n_probes < 1:
            raise ValueError("cg_maxiter, lanczos_steps, n_probes must be >= 1")
        if precond_rank < 0:
            raise ValueError("precond_rank must be >= 0")
        self.max_memory_MB = max_memory_MB
        self.exact_lml_max_n = int(exact_lml_max_n)
        self.cg_tol = float(cg_tol)
        self.cg_maxiter = int(cg_maxiter)
        self.precond_rank = int(precond_rank)
        self.precond_rtol = float(precond_rtol)
        self.n_probes = int(n_probes)
        self.lanczos_steps = int(lanczos_steps)
        self.probe_seed = int(probe_seed)
        self.max_dense_bytes = float(max_dense_bytes)
        self.sod_max = int(sod_max)
        #: Iterative-solver counters, merged into :meth:`workspace_counters`.
        self._iter_counters = {
            "cg_solves": 0,
            "cg_iters": 0,
            "lanczos_steps": 0,
            "precond_rank": 0,
            "matvecs": 0,
        }
        self._pc: PivotedCholesky | None = None
        self._wb: _Woodbury | None = None
        #: Capacity buffer for the dense-structure kernel matrix, and the
        #: theta it currently holds (extension is valid only theta-frozen).
        self._K_buf: np.ndarray | None = None
        self._K_n = 0
        self._K_theta: np.ndarray | None = None
        self._inner_buf: np.ndarray | None = None

    # --------------------------------------------------------------- modes

    def _dense_ok(self, n: int) -> bool:
        """Whether the dense-structure (materialized-K) mode fits ``n``."""
        if n * n * 8 > self.max_dense_bytes:
            return False
        if self.max_memory_MB is not None:
            from repro.machine.memory_model import gp_capacity_MB

            if gp_capacity_MB(n) > self.max_memory_MB:
                return False
        return True

    def _check_memory_budget(self, n: int) -> None:
        """Override the dense guard: mode selection handles memory here."""

    def _probe_rng(self, *tag: int) -> np.random.Generator:
        """Deterministic generator decoupled from the learner rng."""
        ss = np.random.SeedSequence(
            entropy=self.probe_seed, spawn_key=(self._fit_count, *tag)
        )
        return np.random.default_rng(ss)

    def _count(self, **kv: int) -> None:
        for key, val in kv.items():
            if key == "precond_rank":
                self._iter_counters[key] = int(val)
                obs.gauge("precond_rank", float(val))
            else:
                self._iter_counters[key] += int(val)
                obs.incr(key, int(val))

    def _flush_op(self, op: KernelOperator) -> None:
        self._count(matvecs=op.matvecs)
        if op.matvecs:
            obs.add("iter_matvec", op.matvec_seconds, calls=op.matvecs)

    # ----------------------------------------------------------------- fit

    def _fit(self, X, y):
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be (n, d) aligned with y (n,)")
        if X.shape[0] < 1:
            raise ValueError("need at least one training sample")
        n = X.shape[0]
        if n <= self.exact_lml_max_n and self._dense_ok(n):
            # Exact hyperparameter path: inherited optimize (workspace
            # LML, warm starts, restarts) + our iterative _factorize.
            return super()._fit(X, y)
        self.X_train_ = X
        self.y_train_ = y
        self._y_mean = float(y.mean()) if self.normalize_y else 0.0
        yc = self._centered_y()
        start = self.kernel_ if self.kernel_ is not None else self.kernel
        if start.n_theta == 0:
            self.kernel_ = start
        elif self._dense_ok(n):
            ws = self._ensure_workspace(start, X)
            if ws is None:
                self.kernel_ = self._fit_theta_sod(start, X, y)
            else:
                self.kernel_ = self._fit_theta_stochastic(start, X, yc, ws)
        else:
            self.kernel_ = self._fit_theta_sod(start, X, y)
        self._factorize(X, yc)
        self.last_factor_mode_ = "fit"
        self._fit_count += 1
        return self

    def _fit_theta_stochastic(self, start, X, yc, ws):
        """L-BFGS-B on the SLQ/Hutchinson LML estimate (dense-structure).

        Probes are drawn once per fit (common random numbers), so the
        objective the optimizer sees is deterministic and smooth in theta;
        the estimator bias vanishes with probes/steps, not with luck.
        """
        n = X.shape[0]
        bounds = start.bounds
        Z = (
            self._probe_rng().integers(0, 2, size=(n, self.n_probes)) * 2.0
            - 1.0
        )
        buf = self._inner_buf
        if buf is None or buf.shape[0] != n:
            buf = np.empty((n, n))
            self._inner_buf = buf

        def objective(theta):
            lml, grad = self._lml_stochastic(theta, X, yc, ws, Z, buf)
            return -lml, -grad

        theta0 = np.clip(start.theta, bounds[:, 0], bounds[:, 1])
        with obs.span("stochastic_fit", cat="gp", n=n):
            res = minimize(
                objective, theta0, method="L-BFGS-B", jac=True, bounds=bounds
            )
            best_theta, best_lml = res.x, -float(res.fun)
            restarts = (
                self.n_restarts
                if (self._fit_count == 0 or self.restart_every_fit)
                else 0
            )
            for _ in range(restarts):
                assert self.rng is not None
                t0 = self.rng.uniform(bounds[:, 0], bounds[:, 1])
                res = minimize(
                    objective, t0, method="L-BFGS-B", jac=True, bounds=bounds
                )
                if -float(res.fun) > best_lml:
                    best_theta, best_lml = res.x, -float(res.fun)
        return start.with_theta(best_theta)

    def _lml_stochastic(self, theta, X, yc, ws, Z, inner):
        """Stochastic LML value + gradient at ``theta``.

        value: ``-0.5 y^T alpha - 0.5 logdet_SLQ - n/2 log 2 pi`` with
        ``alpha = K^{-1} y`` by PCG.  gradient: Hutchinson —
        ``0.5 <alpha alpha^T - (K^{-1}Z) Z^T / p, dK_j>`` fused through
        the workspace ``grad_dot`` (no (n, n, k) stack; the inner matrix
        is built in-place by BLAS ``dger``-style GEMM accumulation).
        """
        obs.incr("lml_eval")
        obs.incr("lml_grad")
        n = yc.shape[0]
        p = Z.shape[1]
        K = ws.kernel_matrix(theta)
        op = KernelOperator(self.kernel.with_theta(theta), X, K=K)
        pc = pivoted_cholesky(
            op, max_rank=min(self.precond_rank, n), rtol=self.precond_rtol
        )
        wb = _Woodbury(pc.L, op.noise_diag + pc.d_resid)
        rhs = np.concatenate([yc[:, None], Z], axis=1)
        sol, iters, _ = pcg(
            op.matmat, rhs, wb.solve, tol=self.cg_tol, maxiter=self.cg_maxiter
        )
        alpha = sol[:, 0]
        S = sol[:, 1:]
        logdet, lsteps = slq_logdet(op.matmat, Z, self.lanczos_steps)
        self._count(
            cg_solves=1, cg_iters=iters, lanczos_steps=lsteps,
            precond_rank=pc.rank,
        )
        self._flush_op(op)
        lml = (
            -0.5 * float(yc @ alpha)
            - 0.5 * logdet
            - 0.5 * n * math.log(2.0 * math.pi)
        )
        # inner = alpha alpha^T - S Z^T / p, assembled in the persistent
        # buffer.  grad_dot consumes only the symmetric part (plus the
        # diagonal), which Z S^T and S Z^T share — so the GEMM may write
        # the transposed orientation (inner.T is the F-ordered view of the
        # same memory, which BLAS accepts in place).
        np.multiply(alpha[:, None], alpha[None, :], out=inner)
        dgemm(
            alpha=-1.0 / p, a=Z, b=S, trans_b=True,
            beta=1.0, c=inner.T, overwrite_c=True,
        )
        grad = 0.5 * ws.grad_dot(inner, theta)
        return lml, grad

    def _fit_theta_sod(self, start, X, y):
        """Exact hyperparameter fit on a deterministic data subset.

        The matrix-free regime (and the no-workspace fallback): the fused
        Hutchinson gradient needs the O(n^2) workspace structure, so
        instead fit exactly on ``sod_max`` points chosen by the probe
        stream (never the learner rng — trajectory alignment).
        """
        n = X.shape[0]
        n_sod = min(n, self.sod_max)
        rng = self._probe_rng(1)
        idx = rng.choice(n, size=n_sod, replace=False) if n_sod < n else np.arange(n)
        helper = GPRegressor(
            kernel=start.with_theta(start.theta),
            normalize_y=self.normalize_y,
            n_restarts=self.n_restarts if self.kernel_ is None else 0,
            rng=rng,
            use_workspace=self.use_workspace,
        )
        with obs.span("sod_fit", cat="gp", n=n_sod):
            helper.fit(X[idx], y[idx])
        for key, val in helper.workspace_counters().items():
            self._ws_counters[key] += val
        assert helper.kernel_ is not None
        return helper.kernel_

    # ---------------------------------------------------------- factorize

    def _operator(self, kernel: Kernel, X: np.ndarray) -> KernelOperator:
        """Build the covariance operator, materializing K when allowed."""
        n = X.shape[0]
        if not self._dense_ok(n):
            self._K_buf = None
            self._K_n = 0
            self._K_theta = None
            return KernelOperator(kernel, X)
        self._K_buf = _grow_square(self._K_buf, 0, n)
        K = self._K_buf[:n, :n]
        ws = self._ws
        if self.use_workspace and ws is not None and ws.matches(kernel):
            # Re-target quietly: the fit already counted its workspace
            # acquisition; this is the same fit delivering K, not a new one.
            ws.update(X)
            ws.kernel_matrix(kernel.theta, out=K)
        else:
            K[...] = kernel(X)
        self._K_n = n
        self._K_theta = kernel.theta.copy()
        return KernelOperator(kernel, X, K=K)

    def _factorize(self, X: np.ndarray, yc: np.ndarray) -> None:
        """Iterative replacement for the dense from-scratch factorization."""
        assert self.kernel_ is not None
        self._eval_stash = None
        n = X.shape[0]
        with obs.timed("iter_factorize", cat="gp", n=n):
            op = self._operator(self.kernel_, X)
            pc = pivoted_cholesky(
                op, max_rank=min(self.precond_rank, n), rtol=self.precond_rtol
            )
            wb = _Woodbury(pc.L, op.noise_diag + pc.d_resid)
            alpha, iters, rel = pcg(
                op.matmat, yc, wb.solve, tol=self.cg_tol, maxiter=self.cg_maxiter
            )
            self._count(cg_solves=1, cg_iters=iters, precond_rank=pc.rank)
            self._flush_op(op)
        if rel > self.cg_tol:
            obs.event(
                "cg_capped", cat="gp", n=n, rel_residual=rel, cap=self.cg_maxiter
            )
        self._pc = pc
        self._wb = wb
        self._alpha = alpha
        self._noise_diag = op.noise_diag
        self._L = None  # no dense factor: everything below goes via _wb
        self._L_buf = None
        self._factor_jitter = 0.0

    def refactor(self, X, y):
        """Frozen-theta refactor; appended rows extend the iterative state.

        The fast path extends the materialized K by its new cross blocks
        (O(n m) kernel evaluations), appends rows to the pivoted-Cholesky
        factor (O(m r^2), pivots frozen), rank-m-updates the Woodbury
        capacitance, and warm-starts CG for ``alpha`` from the previous
        solution — typically a handful of iterations at the same
        tolerance as a cold solve.
        """
        if self.kernel_ is None:
            raise RuntimeError("refactor() requires a prior fit()")
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be (n, d) aligned with y (n,)")
        if self._can_extend_iterative(X):
            with obs.timed("rank1_update", cat="gp", n=len(X)):
                self._extend_iterative(X, y)
            self.last_factor_mode_ = "rank1"
            self._fit_count += 1
            return self
        with obs.timed("refactor", cat="gp", n=len(X)):
            self.X_train_ = X
            self.y_train_ = y
            self._y_mean = float(y.mean()) if self.normalize_y else 0.0
            self._factorize(X, self._centered_y())
            self.last_factor_mode_ = "full"
            self._fit_count += 1
        return self

    def _can_extend_iterative(self, X: np.ndarray) -> bool:
        old = self.X_train_
        if (
            not self.incremental
            or self._wb is None
            or self._pc is None
            or old is None
            or X.shape[0] <= old.shape[0]
            or X.shape[1] != old.shape[1]
            or self._dense_ok(X.shape[0]) != self._dense_ok(old.shape[0])
            or not np.array_equal(X[: old.shape[0]], old)
        ):
            return False
        if self._dense_ok(X.shape[0]):
            # The materialized K must cover the old set at the frozen theta.
            assert self.kernel_ is not None
            return (
                self._K_buf is not None
                and self._K_n == old.shape[0]
                and self._K_theta is not None
                and np.array_equal(self._K_theta, self.kernel_.theta)
            )
        return True

    def _extend_iterative(self, X: np.ndarray, y: np.ndarray) -> None:
        assert self.kernel_ is not None and self.X_train_ is not None
        assert self._pc is not None and self._wb is not None
        kernel = self.kernel_
        n_old = self.X_train_.shape[0]
        n = X.shape[0]
        X_new = X[n_old:]
        dense = self._dense_ok(n)
        if dense:
            assert self._K_buf is not None
            self._K_buf = _grow_square(self._K_buf, n_old, n)
            K12 = kernel(self.X_train_, X_new)  # cross: noise-free
            K22 = kernel(X_new)  # includes the noise diagonal
            self._K_buf[:n_old, n_old:n] = K12
            self._K_buf[n_old:n, :n_old] = K12.T
            self._K_buf[n_old:n, n_old:n] = K22
            self._K_n = n
            op = KernelOperator(kernel, X, K=self._K_buf[:n, :n])
        else:
            op = KernelOperator(kernel, X)
        diag_free_new = noise_free_diag(kernel, X_new)
        L_new, d_new = self._pc.extend(kernel, X_new, diag_free_new)
        noise_new = np.maximum(kernel.diag(X_new) - diag_free_new, 0.0)
        self._wb.extend(self._pc.L, L_new, noise_new + d_new)
        self.X_train_ = X
        self.y_train_ = y
        self._y_mean = float(y.mean()) if self.normalize_y else 0.0
        assert self._alpha is not None
        x0 = np.concatenate([self._alpha, np.zeros(n - n_old)])
        alpha, iters, rel = pcg(
            op.matmat,
            self._centered_y(),
            self._wb.solve,
            tol=self.cg_tol,
            maxiter=self.cg_maxiter,
            x0=x0,
        )
        self._count(cg_solves=1, cg_iters=iters, precond_rank=self._pc.rank)
        self._flush_op(op)
        if rel > self.cg_tol:
            obs.event(
                "cg_capped", cat="gp", n=n, rel_residual=rel, cap=self.cg_maxiter
            )
        self._alpha = alpha
        self._noise_diag = np.concatenate([self._noise_diag, noise_new])

    # ------------------------------------------------------------- predict

    @property
    def is_fitted(self) -> bool:
        return self._wb is not None and self._alpha is not None

    def predict(self, X, return_std: bool = False):
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[:, None]
        if self.X_train_ is None or self._wb is None:
            prior = self.kernel_ if self.kernel_ is not None else self.kernel
            mean = np.zeros(X.shape[0])
            if not return_std:
                return mean
            return mean, np.sqrt(np.maximum(prior.diag(X), 0.0))
        kernel = self.kernel_
        assert kernel is not None and self._alpha is not None
        n = self.X_train_.shape[0]
        m = X.shape[0]
        with obs.timed("predict", cat="gp"):
            mean = np.empty(m)
            var = np.empty(m) if return_std else None
            # Block rows so the cross covariance stays bounded in memory
            # even when both the query batch and the train set are large.
            block = max(1, int((1 << 22) // max(n, 1)))
            for lo in range(0, m, block):
                hi = min(lo + block, m)
                Ks = kernel(X[lo:hi], self.X_train_)
                mean[lo:hi] = Ks @ self._alpha + self._y_mean
                if var is not None:
                    var[lo:hi] = kernel.diag(X[lo:hi]) - self._wb.quad(Ks)
            if not return_std:
                return mean
            return mean, np.sqrt(np.maximum(var, 0.0))

    def predict_from_cross(
        self, Ks: np.ndarray, prior_diag: np.ndarray, return_std: bool = False
    ):
        if self._wb is None or self._alpha is None:
            raise RuntimeError("predict_from_cross() requires a factorized model")
        Ks = np.asarray(Ks, dtype=np.float64)
        if Ks.ndim != 2 or Ks.shape[1] != self._alpha.shape[0]:
            raise ValueError("Ks must be (m, n_train)")
        with obs.timed("predict", cat="gp"):
            mean = Ks @ self._alpha + self._y_mean
            if not return_std:
                return mean
            var = np.asarray(prior_diag, dtype=np.float64) - self._wb.quad(Ks)
            return mean, np.sqrt(np.maximum(var, 0.0))

    def sample_y(self, X, rng: np.random.Generator, n_samples: int = 1) -> np.ndarray:
        """Posterior draws through the Woodbury-approximate covariance."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[:, None]
        kernel = self.kernel_ if self.kernel_ is not None else self.kernel
        if self.X_train_ is None or self._wb is None:
            mean = np.zeros(X.shape[0])
            cov = kernel(X)
        else:
            assert self._alpha is not None
            Ks = kernel(X, self.X_train_)
            mean = Ks @ self._alpha + self._y_mean
            cov = kernel(X) - Ks @ self._wb.solve(Ks.T)
        L = self._chol(cov)
        if L is None:
            raise np.linalg.LinAlgError("posterior covariance not PSD")
        z = rng.standard_normal((n_samples, X.shape[0]))
        return mean[None, :] + z @ L.T

    # ----------------------------------------------------------- utilities

    def workspace_counters(self) -> dict[str, int]:
        """Workspace counts plus the iterative-solver counters.

        Superset of the :class:`GPRegressor` surface: ``ws_hit`` /
        ``ws_extend`` / ``ws_rebuild`` plus ``cg_solves`` / ``cg_iters`` /
        ``lanczos_steps`` / ``precond_rank`` (rank of the current
        preconditioner) / ``matvecs``.
        """
        out = dict(self._ws_counters)
        out.update({k: int(v) for k, v in self._iter_counters.items()})
        return out
