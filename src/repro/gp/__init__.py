"""Gaussian Process Regression from scratch (Rasmussen & Williams).

Implements the modeling layer of the paper's Sec. III: kernels (the RBF of
Eq. (7), plus the Matérn family and anisotropic variants flagged as future
work), the log marginal likelihood of Eq. (8) with analytic gradients, and
hyperparameter fitting by multi-restart L-BFGS-B maximization of the LML
(Eq. (9)).  The API mirrors scikit-learn 0.18's GaussianProcessRegressor,
which the paper used, including the kernel-composition operators.

Public API
----------
- Kernels: :class:`RBF`, :class:`Matern`, :class:`ConstantKernel`,
  :class:`WhiteKernel`, :class:`Sum`, :class:`Product` (also via ``+``/``*``).
- :class:`GPRegressor` — fit / predict with mean and standard deviation.
- :func:`default_kernel` — the paper's model: amplitude * RBF + noise.
- :class:`KernelWorkspace` / :func:`workspace_signature` — cached
  theta-independent kernel structure backing the hyperparameter-refit
  fast path (``Kernel.prepare``).
- :class:`Surrogate` / :func:`supports_cross` (plus the
  :func:`cross_points` / :func:`cross_appends` / :func:`cross_version`
  basis probes) — the protocol every model family satisfies (the surface
  the AL loop relies on) and the sanctioned cross-covariance probes.
- :class:`IterativeGPRegressor` — the large-n fast path: preconditioned
  CG solves, pivoted-Cholesky/Woodbury variance, stochastic Lanczos /
  Hutchinson LML above its exact crossover, matrix-free matvecs above its
  memory threshold.
"""

from repro.gp.kernels import (
    Kernel,
    KernelWorkspace,
    RBF,
    Matern,
    ConstantKernel,
    WhiteKernel,
    Sum,
    Product,
    default_kernel,
    workspace_signature,
)
from repro.gp.gpr import GPRegressor
from repro.gp.iterative import IterativeGPRegressor
from repro.gp.surrogate import (
    Surrogate,
    build_surrogate,
    cross_appends,
    cross_points,
    cross_version,
    supports_cross,
)
from repro.gp.multifidelity import MultiFidelityGPRegressor, split_fidelity_column
from repro.gp.local import LocalGPRegressor, kmeans
from repro.gp.sparse import SparseGPRegressor
from repro.gp.spectral import SpectralGPRegressor
from repro.gp.treed import TreedGPRegressor

__all__ = [
    "IterativeGPRegressor",
    "LocalGPRegressor",
    "MultiFidelityGPRegressor",
    "split_fidelity_column",
    "Surrogate",
    "build_surrogate",
    "cross_appends",
    "cross_points",
    "cross_version",
    "supports_cross",
    "SparseGPRegressor",
    "SpectralGPRegressor",
    "TreedGPRegressor",
    "kmeans",
    "Kernel",
    "RBF",
    "Matern",
    "ConstantKernel",
    "WhiteKernel",
    "Sum",
    "Product",
    "default_kernel",
    "GPRegressor",
    "KernelWorkspace",
    "workspace_signature",
]
