"""The tracing half of :mod:`repro.obs`: hierarchical spans and instants.

A :class:`Span` is one timed region of the run — an AL iteration, a GP
fit, an AMR sweep, a machine job — with a name, a category, wall-clock
bounds relative to the tracer's epoch, a parent link (so exporters can
rebuild the call tree), and free-form attributes.  An :class:`Instant` is
a zero-duration annotation (a fault strike, a retry/backoff decision)
attached to whatever span was open when it fired.

The :class:`Tracer` owns the span storage and a per-thread context stack
for parent propagation.  Tracing is *opt-in*: the module-level recorder
(:mod:`repro.obs.recorder`) holds no tracer by default, and every
instrumentation helper collapses to a shared no-op in that state, so the
disabled path costs one attribute load and one branch — unmeasurable
against the work the spans would wrap — and consumes no RNG, which keeps
traced and untraced runs bit-identical.

Cross-process story: workers drain their tracer with :meth:`Tracer.drain`
(closing anything still open as ``truncated``) and ship the picklable
span lists home; the parent re-ids and re-lanes them with
:meth:`Tracer.absorb` in a deterministic, caller-chosen order.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field


@dataclass(slots=True)
class Span:
    """One completed timed region.

    ``start``/``end`` are seconds since the owning tracer's epoch.
    ``parent_id == 0`` marks a root span; ``track`` is the process lane
    the span belongs to (0 = this process; worker spans get their lane
    assigned when the parent absorbs them).
    """

    name: str
    cat: str
    start: float
    end: float
    span_id: int
    parent_id: int = 0
    track: int = 0
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(slots=True)
class Instant:
    """A zero-duration annotation (fault strike, retry, backoff, ...)."""

    name: str
    cat: str
    t: float
    parent_id: int = 0
    track: int = 0
    attrs: dict = field(default_factory=dict)


class _NoopSpan:
    """Shared do-nothing span: the disabled path of every helper."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def annotate(self, **attrs) -> None:
        pass


#: The singleton returned by ``obs.span(...)`` while tracing is disabled.
NOOP_SPAN = _NoopSpan()


class _ActiveSpan:
    """Context manager for one open span on a tracer's stack."""

    __slots__ = ("_tracer", "_name", "_cat", "_attrs", "_id", "_parent", "_t0")

    def __init__(self, tracer: "Tracer", name: str, cat: str, attrs: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._attrs = attrs

    def __enter__(self) -> "_ActiveSpan":
        t = self._tracer
        self._id = t._new_id()
        stack = t._stack()
        self._parent = stack[-1] if stack else 0
        stack.append(self._id)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        t1 = time.perf_counter()
        t = self._tracer
        stack = t._stack()
        if stack and stack[-1] == self._id:
            stack.pop()
        t._record(
            Span(
                name=self._name,
                cat=self._cat,
                start=self._t0 - t.epoch,
                end=t1 - t.epoch,
                span_id=self._id,
                parent_id=self._parent,
                attrs=self._attrs,
            )
        )
        return False

    def annotate(self, **attrs) -> None:
        """Attach attributes to the span while it is open."""
        self._attrs.update(attrs)


class Tracer:
    """Span collector for one process: storage, ids, and context stacks."""

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._instants: list[Instant] = []
        self._next = 1
        self._local = threading.local()

    # ------------------------------------------------------------- internals

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _new_id(self) -> int:
        with self._lock:
            sid = self._next
            self._next += 1
            return sid

    def _record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    # ------------------------------------------------------------ recording

    def span(self, name: str, cat: str = "", attrs: dict | None = None) -> _ActiveSpan:
        """Open a child span of whatever is on this thread's stack."""
        return _ActiveSpan(self, name, cat, attrs if attrs is not None else {})

    def instant(self, name: str, cat: str = "", attrs: dict | None = None) -> None:
        """Record a zero-duration annotation under the current span."""
        stack = self._stack()
        inst = Instant(
            name=name,
            cat=cat,
            t=time.perf_counter() - self.epoch,
            parent_id=stack[-1] if stack else 0,
            attrs=attrs if attrs is not None else {},
        )
        with self._lock:
            self._instants.append(inst)

    # ----------------------------------------------------------- collection

    def drain(self) -> dict:
        """Remove and return everything recorded so far (picklable).

        Spans still open on the *calling* thread's stack are flushed as
        zero-duration ``truncated`` markers.  Exception paths unwind
        their context managers and close spans normally, so this only
        fires for genuinely abandoned stacks (e.g. a hard kill between
        statements) — the shipped trace stays loadable either way.
        """
        now = time.perf_counter() - self.epoch
        with self._lock:
            spans = self._spans
            instants = self._instants
            self._spans = []
            self._instants = []
        stack = self._stack()
        if stack:
            for sid in reversed(stack):
                spans.append(
                    Span(
                        name="(truncated)",
                        cat="obs",
                        start=now,
                        end=now,
                        span_id=sid,
                        parent_id=0,
                        attrs={"truncated": True},
                    )
                )
            stack.clear()
        return {"spans": spans, "instants": instants}

    def absorb(self, payload: dict, track: int) -> None:
        """Fold a drained payload from another process into this tracer.

        Span ids are offset past this tracer's id space (preserving the
        parent links inside the payload) and every span/instant is
        stamped with ``track`` — the caller-assigned process lane.
        Deterministic given the payload and the track number: no clocks,
        no OS pids involved.
        """
        spans = payload.get("spans", ())
        instants = payload.get("instants", ())
        max_id = max((s.span_id for s in spans), default=0)
        max_id = max(max_id, max((i.parent_id for i in instants), default=0))
        with self._lock:
            offset = self._next
            self._next += max_id + 1

        def remap(sid: int) -> int:
            return sid + offset if sid else 0

        with self._lock:
            for s in spans:
                self._spans.append(
                    Span(
                        name=s.name,
                        cat=s.cat,
                        start=s.start,
                        end=s.end,
                        span_id=remap(s.span_id),
                        parent_id=remap(s.parent_id),
                        track=track,
                        attrs=s.attrs,
                    )
                )
            for i in instants:
                self._instants.append(
                    Instant(
                        name=i.name,
                        cat=i.cat,
                        t=i.t,
                        parent_id=remap(i.parent_id),
                        track=track,
                        attrs=i.attrs,
                    )
                )

    def spans(self) -> list[Span]:
        """Copy of the finished spans (exporters read this)."""
        with self._lock:
            return list(self._spans)

    def instants(self) -> list[Instant]:
        """Copy of the recorded instants."""
        with self._lock:
            return list(self._instants)
