"""Process-global observability state and the instrumentation helpers.

Every process owns exactly one :data:`METRICS` registry (always on — it
subsumes the old ``repro.perf`` tables at the same cost) and at most one
:class:`~repro.obs.spans.Tracer` (off by default).  Instrumented code
calls four helpers:

- :func:`timed` — time a block into the metrics registry *and*, when
  tracing is enabled, emit a span.  This is what replaced every
  ``perf.timer(...)`` call site; disabled-tracing cost is identical to
  the old path plus one branch.
- :func:`span` — pure tracing region (AL iteration, machine job, ...);
  a shared no-op while tracing is off.
- :func:`event` — zero-duration annotation under the current span
  (fault strikes, retries, backoff); dropped while tracing is off.
- :func:`incr` / :func:`gauge` — metrics registry passthroughs.

The no-op contract: none of these helpers touches NumPy, RNG state, or
the values flowing through the instrumented code, so enabling tracing
can never change numerics — trajectories select byte-identical
experiment sequences with tracing on or off.

Worker processes ship their state home with :func:`snapshot_state`
(drain + metrics dump, picklable) and the parent folds payloads in with
:func:`merge_state` in whatever deterministic order it chooses
(:mod:`repro.core.parallel` uses spec order).
"""

from __future__ import annotations

import time

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import NOOP_SPAN, Tracer

#: The process-global metrics registry (always on).  This is what the
#: retired ``repro.perf`` module used to front.
METRICS = MetricsRegistry()

#: The process-global tracer; ``None`` = tracing disabled (the default).
_TRACER: Tracer | None = None


# ------------------------------------------------------------------ control


def enable_tracing() -> Tracer:
    """Switch span tracing on (idempotent); returns the live tracer."""
    global _TRACER
    if _TRACER is None:
        _TRACER = Tracer()
    return _TRACER


def disable_tracing() -> None:
    """Switch span tracing off and drop any collected spans."""
    global _TRACER
    _TRACER = None


def tracing_enabled() -> bool:
    return _TRACER is not None


def tracer() -> Tracer | None:
    """The live tracer, or ``None`` while tracing is disabled."""
    return _TRACER


# ------------------------------------------------------- instrumentation


def span(name: str, cat: str = "", **attrs):
    """A tracing-only region; the shared no-op while tracing is off."""
    t = _TRACER
    if t is None:
        return NOOP_SPAN
    return t.span(name, cat, attrs)


def event(name: str, cat: str = "", **attrs) -> None:
    """A zero-duration annotation under the current span (if tracing)."""
    t = _TRACER
    if t is not None:
        t.instant(name, cat, attrs)


def timed(name: str, cat: str = "", **attrs):
    """Time a block into the metrics registry; also a span when tracing.

    The workhorse of the instrumentation: every old ``perf.timer(phase)``
    call site now reads ``obs.timed(phase, cat=...)``.  With tracing off
    this *is* the metrics timer (two ``perf_counter()`` calls); with
    tracing on, the same block additionally becomes a span named after
    the phase.
    """
    t = _TRACER
    if t is None:
        return METRICS.timer(name)
    return _TimedAndTraced(t, name, cat, attrs)


class _TimedAndTraced:
    """``timed`` with tracing enabled: one region, span + metric."""

    __slots__ = ("_name", "_span", "_t0")

    def __init__(self, tracer: Tracer, name: str, cat: str, attrs: dict) -> None:
        self._name = name
        self._span = tracer.span(name, cat, attrs)

    def __enter__(self):
        active = self._span.__enter__()
        self._t0 = active._t0
        return active

    def __exit__(self, *exc) -> bool:
        dt = time.perf_counter() - self._t0
        self._span.__exit__(*exc)
        METRICS.add(self._name, dt)
        return False


def incr(counter: str, n: int = 1) -> None:
    """Bump a metrics counter (always on)."""
    METRICS.incr(counter, n)


def gauge(name: str, value: float) -> None:
    """Set a metrics gauge (always on)."""
    METRICS.gauge(name, value)


def timer(phase: str):
    """Metrics-only timer against the global registry (perf shim API)."""
    return METRICS.timer(phase)


def add(phase: str, seconds: float, calls: int = 1) -> None:
    METRICS.add(phase, seconds, calls)


def snapshot():
    """Per-phase timing table of the global registry."""
    return METRICS.snapshot()


def counters():
    return METRICS.counters()


def gauges():
    return METRICS.gauges()


def reset() -> None:
    """Clear the global metrics registry (spans are unaffected)."""
    METRICS.reset()


def report() -> str:
    """Human-readable table of the global registry."""
    return METRICS.report()


# ------------------------------------------------------- cross-process


def snapshot_state(reset_after: bool = False) -> dict:
    """Picklable dump of this process's observability state.

    Contains the metrics registry's :meth:`~MetricsRegistry.state` and,
    when tracing is enabled, the tracer's drained spans/instants.  With
    ``reset_after`` the metrics registry is cleared, so repeated
    snapshots from a long-lived worker never double-count.
    """
    state = {"metrics": METRICS.state(), "trace": None}
    t = _TRACER
    if t is not None:
        state["trace"] = t.drain()
    if reset_after:
        METRICS.reset()
    return state


def merge_state(state: dict, track: int = 0) -> None:
    """Fold a :func:`snapshot_state` payload into this process's state.

    Metrics always merge; spans merge only if tracing is enabled here
    too (they are re-idd onto lane ``track``).  Merging the same
    payloads in the same order produces the same registry and the same
    span table — the determinism contract the parallel runner relies on.
    """
    METRICS.merge(state.get("metrics", {}))
    trace = state.get("trace")
    if trace is not None and _TRACER is not None:
        _TRACER.absorb(trace, track)
