"""Exporters for the observability layer: Chrome trace, JSONL, metrics JSON.

The span/instant tables of :mod:`repro.obs.spans` serialize into the
Chrome trace-event format (the JSON object form with a ``traceEvents``
list), which `Perfetto <https://ui.perfetto.dev>`_ and ``chrome://tracing``
load directly:

- complete spans become ``ph: "X"`` events with microsecond ``ts``/``dur``;
- instants become ``ph: "i"`` events with thread scope;
- each track (process lane) gets a ``process_name`` metadata event so the
  parent process and every merged worker show up as named rows.

Timestamps inside one track are shifted so the track's earliest event sits
at ``ts=0`` — tracks from different processes have unrelated monotonic
epochs, and normalizing per track keeps every lane starting at the origin
instead of scattered across the timeline.

:func:`validate_chrome_trace` is the schema-sanity gate used by tests and
CI (``python -m repro.obs.export --check trace.json``): it checks the
trace-event invariants a viewer actually relies on (types, required keys,
non-negative times, parentable ids) and returns the violations instead of
raising, so the CI step can print them all.
"""

from __future__ import annotations

import json
import sys
from typing import Iterable

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Instant, Span

#: ph values this exporter emits; validation accepts exactly these.
_PHASES = {"X", "i", "M", "C"}


def _track_offsets(spans: Iterable[Span], instants: Iterable[Instant]) -> dict[int, float]:
    """Earliest timestamp per track, for per-lane normalization."""
    t0: dict[int, float] = {}
    for s in spans:
        if s.track not in t0 or s.start < t0[s.track]:
            t0[s.track] = s.start
    for i in instants:
        if i.track not in t0 or i.t < t0[i.track]:
            t0[i.track] = i.t
    return t0


def chrome_trace(
    spans: Iterable[Span],
    instants: Iterable[Instant] = (),
    track_names: dict[int, str] | None = None,
    metadata: dict | None = None,
) -> dict:
    """Build the Chrome trace-event JSON object for ``spans``/``instants``.

    ``track_names`` maps track numbers to display names (track 0 defaults
    to ``"main"``); ``metadata`` rides along under ``otherData`` — the
    place the CLI embeds the resolved :class:`~repro.core.config.ALConfig`
    so exported traces are self-describing.
    """
    spans = list(spans)
    instants = list(instants)
    offsets = _track_offsets(spans, instants)
    names = {0: "main"}
    if track_names:
        names.update(track_names)

    events: list[dict] = []
    for track in sorted(offsets):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": track,
                "tid": 0,
                "ts": 0,
                "args": {"name": names.get(track, f"worker-{track}")},
            }
        )
    for s in spans:
        args = {k: v for k, v in s.attrs.items()}
        args["span_id"] = s.span_id
        if s.parent_id:
            args["parent_id"] = s.parent_id
        events.append(
            {
                "name": s.name,
                "cat": s.cat or "repro",
                "ph": "X",
                "ts": round(1e6 * (s.start - offsets[s.track]), 3),
                "dur": round(1e6 * max(s.duration, 0.0), 3),
                "pid": s.track,
                "tid": 0,
                "args": args,
            }
        )
    for i in instants:
        args = {k: v for k, v in i.attrs.items()}
        if i.parent_id:
            args["parent_id"] = i.parent_id
        events.append(
            {
                "name": i.name,
                "cat": i.cat or "repro",
                "ph": "i",
                "s": "t",
                "ts": round(1e6 * (i.t - offsets[i.track]), 3),
                "pid": i.track,
                "tid": 0,
                "args": args,
            }
        )
    trace = {"traceEvents": events, "displayTimeUnit": "ms"}
    if metadata:
        trace["otherData"] = metadata
    return trace


def write_chrome_trace(
    path: str,
    spans: Iterable[Span],
    instants: Iterable[Instant] = (),
    track_names: dict[int, str] | None = None,
    metadata: dict | None = None,
) -> None:
    """Serialize :func:`chrome_trace` to ``path`` (Perfetto-loadable)."""
    trace = chrome_trace(spans, instants, track_names, metadata)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, default=str)


def write_jsonl(
    path: str, spans: Iterable[Span], instants: Iterable[Instant] = ()
) -> None:
    """Event log: one JSON object per line, spans then instants, in order.

    The machine-friendly sibling of the Chrome trace — trivially
    greppable/streamable, no top-level structure to parse.
    """
    with open(path, "w", encoding="utf-8") as fh:
        for s in spans:
            fh.write(
                json.dumps(
                    {
                        "type": "span",
                        "name": s.name,
                        "cat": s.cat,
                        "start_s": s.start,
                        "end_s": s.end,
                        "span_id": s.span_id,
                        "parent_id": s.parent_id,
                        "track": s.track,
                        "attrs": s.attrs,
                    },
                    default=str,
                )
                + "\n"
            )
        for i in instants:
            fh.write(
                json.dumps(
                    {
                        "type": "instant",
                        "name": i.name,
                        "cat": i.cat,
                        "t_s": i.t,
                        "parent_id": i.parent_id,
                        "track": i.track,
                        "attrs": i.attrs,
                    },
                    default=str,
                )
                + "\n"
            )


def write_metrics_json(path: str, registry: MetricsRegistry) -> None:
    """Dump a metrics registry as JSON (phases, counters, gauges, hists)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(registry.to_dict(), fh, indent=2, default=str)


# ------------------------------------------------------------- validation


def validate_chrome_trace(trace: dict) -> list[str]:
    """Schema-sanity check of a trace-event JSON object.

    Returns a list of violations (empty = valid).  Checks the invariants
    a trace viewer relies on: the ``traceEvents`` list, per-event
    required keys and types, known ``ph`` values, non-negative
    timestamps/durations, and that every ``parent_id`` refers to a
    ``span_id`` present in the trace.
    """
    errors: list[str] = []
    if not isinstance(trace, dict):
        return [f"top level must be an object, got {type(trace).__name__}"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    span_ids: set[int] = set()
    for k, ev in enumerate(events):
        if isinstance(ev, dict) and ev.get("ph") == "X":
            sid = ev.get("args", {}).get("span_id")
            if isinstance(sid, int):
                span_ids.add(sid)
    for k, ev in enumerate(events):
        where = f"traceEvents[{k}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: event must be an object")
            continue
        ph = ev.get("ph")
        if ph not in _PHASES:
            errors.append(f"{where}: unknown ph {ph!r}")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            errors.append(f"{where}: missing/empty name")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                errors.append(f"{where}: {key} must be an int")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where}: ts must be a non-negative number")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: dur must be a non-negative number")
        if ph == "i" and ev.get("s") not in (None, "t", "p", "g"):
            errors.append(f"{where}: instant scope s={ev.get('s')!r} invalid")
        if ph in ("X", "i"):
            parent = ev.get("args", {}).get("parent_id")
            if parent is not None and parent not in span_ids:
                errors.append(f"{where}: parent_id {parent} not a span in this trace")
    return errors


def _main(argv: list[str]) -> int:
    """``python -m repro.obs.export --check trace.json`` — CI schema gate."""
    if len(argv) != 2 or argv[0] != "--check":
        print("usage: python -m repro.obs.export --check <trace.json>", file=sys.stderr)
        return 2
    with open(argv[1], encoding="utf-8") as fh:
        trace = json.load(fh)
    errors = validate_chrome_trace(trace)
    if errors:
        for e in errors:
            print(f"invalid trace: {e}", file=sys.stderr)
        return 1
    n = len(trace.get("traceEvents", []))
    print(f"{argv[1]}: valid trace-event JSON ({n} events)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via _main in tests
    raise SystemExit(_main(sys.argv[1:]))
