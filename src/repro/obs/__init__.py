"""repro.obs — unified observability: span tracing + metrics registry.

The per-run accounting discipline the paper borrows from SLURM, applied
to our own stack: every hot path is instrumented with hierarchical spans
(trajectory → AL iteration → {gp_fit, predict, select} → LML evals;
AMR run → step → {plan, exchange, sweep, dt, regrid}; machine job runs;
fault-injector retries as annotations) and an always-on metrics registry
(counters, gauges, time histograms) that subsumes the old ``repro.perf``
phase tables.

Two operating modes:

- **metrics only** (default) — the registry collects what ``repro.perf``
  always collected, at the same cost.  Span helpers collapse to a shared
  no-op: one attribute load and a branch, no RNG, no allocation.
- **tracing enabled** (:func:`enable_tracing`, or the CLI's
  ``--trace-out``) — the same instrumentation additionally records spans,
  exportable as Chrome-trace/Perfetto JSON (:func:`export_chrome_trace`),
  a JSONL event log, or a human table.  Enabling tracing never changes
  numerics: traced runs select byte-identical experiment sequences.

Typical use::

    from repro import obs

    obs.enable_tracing()
    trajectory = ActiveLearner(ds, part, policy, rng).run()
    obs.export_chrome_trace("trace.json")   # load in ui.perfetto.dev
    print(obs.report())                      # metrics table

Cross-process: :func:`snapshot_state` / :func:`merge_state` ship a worker's
metrics and spans home; :func:`repro.core.parallel.run_trajectories` does
this automatically, merging deterministically in spec order.
"""

from __future__ import annotations

from repro.obs.export import (
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
    write_metrics_json,
)
from repro.obs.metrics import MetricsRegistry, PhaseStat
from repro.obs.recorder import (
    METRICS,
    add,
    counters,
    disable_tracing,
    enable_tracing,
    event,
    gauge,
    gauges,
    incr,
    merge_state,
    report,
    reset,
    snapshot,
    snapshot_state,
    span,
    timed,
    timer,
    tracer,
    tracing_enabled,
)
from repro.obs.spans import Instant, Span, Tracer

__all__ = [
    "METRICS",
    "MetricsRegistry",
    "PhaseStat",
    "Span",
    "Instant",
    "Tracer",
    "add",
    "chrome_trace",
    "counters",
    "disable_tracing",
    "enable_tracing",
    "event",
    "export_chrome_trace",
    "export_jsonl",
    "gauge",
    "gauges",
    "incr",
    "merge_state",
    "report",
    "reset",
    "snapshot",
    "snapshot_state",
    "span",
    "timed",
    "timer",
    "tracer",
    "tracing_enabled",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "write_metrics_json",
]


def export_chrome_trace(
    path: str,
    track_names: dict[int, str] | None = None,
    metadata: dict | None = None,
) -> None:
    """Write the live tracer's spans to ``path`` as Chrome-trace JSON.

    Raises ``RuntimeError`` if tracing was never enabled — there would be
    nothing to export, and silently writing an empty trace hides the
    misconfiguration.
    """
    t = tracer()
    if t is None:
        raise RuntimeError("tracing is not enabled; call obs.enable_tracing() first")
    write_chrome_trace(path, t.spans(), t.instants(), track_names, metadata)


def export_jsonl(path: str) -> None:
    """Write the live tracer's spans/instants to ``path`` as JSONL."""
    t = tracer()
    if t is None:
        raise RuntimeError("tracing is not enabled; call obs.enable_tracing() first")
    write_jsonl(path, t.spans(), t.instants())
