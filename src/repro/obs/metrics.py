"""The metrics half of :mod:`repro.obs`: counters, gauges, time histograms.

:class:`MetricsRegistry` generalizes the old ``repro.perf`` phase table
(which it subsumed; ``repro.perf`` is now an empty module that only
raises a :class:`DeprecationWarning` on import):

- **timers** — ``phase -> (calls, seconds)`` plus a log2-bucketed duration
  histogram per phase, fed by :meth:`MetricsRegistry.timer` (a context
  manager whose overhead is two ``perf_counter()`` calls) or
  :meth:`MetricsRegistry.add`;
- **counters** — monotone event counts (``lml_eval``, ``ws_hit``,
  fault-retry totals, ...) via :meth:`MetricsRegistry.incr`;
- **gauges** — last-written values (``n_train``, ``bytes_allocated``, ...)
  via :meth:`MetricsRegistry.gauge`; merged across processes by maximum,
  which is the meaningful aggregate for the peak-style quantities the
  instrumentation records.

Unlike span tracing (:mod:`repro.obs.spans`), the registry is always on:
its cost is what the hot loops already paid for ``repro.perf`` timing, so
enabling/disabling observability never changes what the metrics tables
collect.  Every process owns its own registry; worker registries are
shipped home as :meth:`state` dicts and folded in with :meth:`merge`
(deterministically, in the caller-chosen order — see
:mod:`repro.core.parallel`).
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass


@dataclass(frozen=True)
class PhaseStat:
    """Accumulated timing for one phase."""

    calls: int
    seconds: float

    @property
    def mean_ms(self) -> float:
        return 1e3 * self.seconds / self.calls if self.calls else 0.0


def _bucket(seconds: float) -> int:
    """Histogram bucket of a duration: ``floor(log2(microseconds))``.

    Bucket ``b`` covers ``[2**b, 2**(b+1))`` µs; sub-microsecond and
    non-positive durations land in bucket ``-1``.
    """
    if seconds < 1e-6:
        return -1
    # frexp(x) = (m, e) with x = m * 2**e and 0.5 <= m < 1  =>  floor(log2 x) = e - 1
    return math.frexp(seconds * 1e6)[1] - 1


class MetricsRegistry:
    """Thread-safe accumulator of timers, counters, and gauges.

    API-compatible with the retired ``repro.perf`` registry (``add`` /
    ``incr`` / ``timer`` / ``snapshot`` / ``counters`` / ``reset`` /
    ``report``) plus gauges, per-phase duration histograms, and
    cross-process :meth:`state` / :meth:`merge`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._calls: dict[str, int] = {}
        self._seconds: dict[str, float] = {}
        self._counts: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._hist: dict[str, dict[int, int]] = {}

    # ------------------------------------------------------------- recording

    def add(self, phase: str, seconds: float, calls: int = 1) -> None:
        """Record ``calls`` invocations of ``phase`` totalling ``seconds``."""
        b = _bucket(seconds / calls if calls else seconds)
        with self._lock:
            self._calls[phase] = self._calls.get(phase, 0) + calls
            self._seconds[phase] = self._seconds.get(phase, 0.0) + seconds
            h = self._hist.setdefault(phase, {})
            h[b] = h.get(b, 0) + calls

    def incr(self, counter: str, n: int = 1) -> None:
        """Bump an event counter by ``n``."""
        with self._lock:
            self._counts[counter] = self._counts.get(counter, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set a gauge to its latest value (merged across processes by max)."""
        with self._lock:
            self._gauges[name] = float(value)

    @contextmanager
    def timer(self, phase: str):
        """Time a ``with`` block and credit it to ``phase``."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add(phase, time.perf_counter() - t0)

    # --------------------------------------------------------------- reading

    def snapshot(self) -> dict[str, PhaseStat]:
        """Immutable copy of the per-phase timing table."""
        with self._lock:
            return {
                p: PhaseStat(self._calls[p], self._seconds[p])
                for p in sorted(self._calls)
            }

    def counters(self) -> dict[str, int]:
        """Immutable copy of the event counters."""
        with self._lock:
            return dict(sorted(self._counts.items()))

    def gauges(self) -> dict[str, float]:
        """Immutable copy of the gauges."""
        with self._lock:
            return dict(sorted(self._gauges.items()))

    def histograms(self) -> dict[str, dict[int, int]]:
        """Per-phase duration histograms: ``phase -> {log2(µs) bucket: calls}``."""
        with self._lock:
            return {p: dict(sorted(h.items())) for p, h in sorted(self._hist.items())}

    def reset(self) -> None:
        with self._lock:
            self._calls.clear()
            self._seconds.clear()
            self._counts.clear()
            self._gauges.clear()
            self._hist.clear()

    # ------------------------------------------------------- merge / export

    def state(self) -> dict:
        """Picklable/JSON-able dump of everything, for shipping and merging."""
        with self._lock:
            return {
                "calls": dict(self._calls),
                "seconds": dict(self._seconds),
                "counters": dict(self._counts),
                "gauges": dict(self._gauges),
                "hist": {p: dict(h) for p, h in self._hist.items()},
            }

    def merge(self, state: dict) -> None:
        """Fold another registry's :meth:`state` into this one.

        Timers and counters add; gauges keep the maximum (they record
        peak-style quantities); histogram buckets add.  Merging is
        commutative except for nothing — callers who care about
        determinism (the parallel trajectory runner) merge in a fixed
        order anyway.
        """
        with self._lock:
            for p, c in state.get("calls", {}).items():
                self._calls[p] = self._calls.get(p, 0) + int(c)
            for p, s in state.get("seconds", {}).items():
                self._seconds[p] = self._seconds.get(p, 0.0) + float(s)
            for c, n in state.get("counters", {}).items():
                self._counts[c] = self._counts.get(c, 0) + int(n)
            for g, v in state.get("gauges", {}).items():
                v = float(v)
                if g not in self._gauges or v > self._gauges[g]:
                    self._gauges[g] = v
            for p, h in state.get("hist", {}).items():
                mine = self._hist.setdefault(p, {})
                for b, n in h.items():
                    b = int(b)
                    mine[b] = mine.get(b, 0) + int(n)

    def to_dict(self) -> dict:
        """JSON-ready view (phases with derived stats, counters, gauges)."""
        snap = self.snapshot()
        return {
            "phases": {
                p: {"calls": s.calls, "seconds": s.seconds, "mean_ms": s.mean_ms}
                for p, s in snap.items()
            },
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms_log2us": {
                p: {str(b): n for b, n in h.items()}
                for p, h in self.histograms().items()
            },
        }

    # ---------------------------------------------------------------- report

    def report(self) -> str:
        """Render timers, counters, and gauges as aligned text tables."""
        snap = self.snapshot()
        counts = self.counters()
        gauges = self.gauges()
        if not snap and not counts and not gauges:
            return "(no phases recorded)"
        lines = []
        if snap:
            width = max(len(p) for p in snap)
            lines.append(
                f"{'phase':<{width}}  {'calls':>7}  {'total_s':>9}  {'mean_ms':>8}"
            )
            for phase, stat in snap.items():
                lines.append(
                    f"{phase:<{width}}  {stat.calls:>7d}  {stat.seconds:>9.4f}  "
                    f"{stat.mean_ms:>8.3f}"
                )
        if counts:
            if lines:
                lines.append("")
            width = max(len(c) for c in counts)
            lines.append(f"{'counter':<{width}}  {'events':>8}")
            for counter, n in counts.items():
                lines.append(f"{counter:<{width}}  {n:>8d}")
        if gauges:
            if lines:
                lines.append("")
            width = max(len(g) for g in gauges)
            lines.append(f"{'gauge':<{width}}  {'value':>12}")
            for gauge, v in gauges.items():
                lines.append(f"{gauge:<{width}}  {v:>12.4g}")
        return "\n".join(lines)
