"""The 5-dimensional sampled input space of the paper (Table I).

Features, in column order:

====== ======================== =========================================
name   meaning                  sampled values
====== ======================== =========================================
p      number of nodes          4, 8, 16, 32
mx     box (patch) size         8, 16, 32
maxlevel max refinement level   3, 4, 5, 6
r0     bubble size              0.2, 0.25, 0.3, 0.4, 0.5
rhoin  bubble density           0.02, 0.05, 0.08, 0.1, 0.15, 0.2, 0.3, 0.5
====== ======================== =========================================

The product is 4 * 3 * 4 * 5 * 8 = 1920 combinations — the paper's "total
1920 possible combinations of all sampled values of 5 features".  The
marginal min/median/max of each feature match Table I.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np

from repro.machine.runner import JobConfig


@dataclass(frozen=True)
class ParameterSpace:
    """A gridded input space over :class:`~repro.machine.runner.JobConfig`.

    Attributes
    ----------
    p_values, mx_values, maxlevel_values : tuple of int
    r0_values, rhoin_values : tuple of float
    """

    p_values: tuple[int, ...] = (4, 8, 16, 32)
    mx_values: tuple[int, ...] = (8, 16, 32)
    maxlevel_values: tuple[int, ...] = (3, 4, 5, 6)
    r0_values: tuple[float, ...] = (0.2, 0.25, 0.3, 0.4, 0.5)
    rhoin_values: tuple[float, ...] = (0.02, 0.05, 0.08, 0.1, 0.15, 0.2, 0.3, 0.5)

    def __post_init__(self) -> None:
        for name in ("p_values", "mx_values", "maxlevel_values", "r0_values", "rhoin_values"):
            vals = getattr(self, name)
            if len(vals) == 0:
                raise ValueError(f"{name} must be non-empty")
            if tuple(sorted(set(vals))) != tuple(vals):
                raise ValueError(f"{name} must be strictly increasing and unique")

    @property
    def num_combinations(self) -> int:
        return (
            len(self.p_values)
            * len(self.mx_values)
            * len(self.maxlevel_values)
            * len(self.r0_values)
            * len(self.rhoin_values)
        )

    def grid(self) -> list[JobConfig]:
        """All combinations, in deterministic lexicographic order."""
        return [
            JobConfig(p=p, mx=mx, maxlevel=ml, r0=r0, rhoin=rh)
            for p, mx, ml, r0, rh in product(
                self.p_values,
                self.mx_values,
                self.maxlevel_values,
                self.r0_values,
                self.rhoin_values,
            )
        ]

    def bounds(self) -> np.ndarray:
        """(2, 5) array of [min; max] per feature, for unit-cube scaling."""
        cols = (
            self.p_values,
            self.mx_values,
            self.maxlevel_values,
            self.r0_values,
            self.rhoin_values,
        )
        lo = [float(min(c)) for c in cols]
        hi = [float(max(c)) for c in cols]
        return np.array([lo, hi], dtype=np.float64)

    def contains(self, config: JobConfig) -> bool:
        """Whether ``config`` lies exactly on the sampled grid."""
        return (
            config.p in self.p_values
            and config.mx in self.mx_values
            and config.maxlevel in self.maxlevel_values
            and any(np.isclose(config.r0, v) for v in self.r0_values)
            and any(np.isclose(config.rhoin, v) for v in self.rhoin_values)
        )


#: The exact space used throughout the paper's evaluation.
TABLE1_SPACE = ParameterSpace()
