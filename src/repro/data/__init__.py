"""Dataset generation and handling for the AL study.

The paper's analysis is *offline*: AL consults a precomputed database of
600 accounting records drawn from a 1920-combination parameter sweep of
the shock–bubble problem.  This subpackage defines that input space
(Table I), generates the campaign on the simulated machine, and packages
the result into the :class:`Dataset` container the AL loop consumes.

Public API
----------
- :class:`ParameterSpace`, :data:`TABLE1_SPACE` — the 5-D sampled grid.
- :func:`run_campaign`, :class:`CampaignResult` — sweep + 600-job selection.
- :class:`Dataset` — feature matrix and response vectors with log transforms.
- :func:`summarize_dataset`, :func:`table1_rows` — Table I statistics.
- CSV / NPZ round-trips in :mod:`repro.data.io`.
"""

from repro.data.space import ParameterSpace, TABLE1_SPACE
from repro.data.campaign import (
    CampaignConfig,
    CampaignResult,
    RawCollection,
    collect_raw_campaign,
    run_campaign,
)
from repro.data.dataset import Dataset, FEATURE_NAMES, RESPONSE_NAMES
from repro.data.fidelity import (
    FidelityLevel,
    FidelitySchedule,
    MultiFidelityDataset,
    default_schedule,
    run_mf_campaign,
)
from repro.data.summary import ColumnSummary, summarize_dataset, table1_rows, render_table1
from repro.data.io import save_npz, load_npz, save_csv, load_csv

__all__ = [
    "ParameterSpace",
    "TABLE1_SPACE",
    "CampaignConfig",
    "CampaignResult",
    "RawCollection",
    "collect_raw_campaign",
    "run_campaign",
    "Dataset",
    "FEATURE_NAMES",
    "RESPONSE_NAMES",
    "FidelityLevel",
    "FidelitySchedule",
    "MultiFidelityDataset",
    "default_schedule",
    "run_mf_campaign",
    "ColumnSummary",
    "summarize_dataset",
    "table1_rows",
    "render_table1",
    "save_npz",
    "load_npz",
    "save_csv",
    "load_csv",
]
