"""Dataset persistence: NPZ (exact) and CSV (interoperable) round-trips."""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.data.dataset import FEATURE_NAMES, Dataset

_CSV_COLUMNS = list(FEATURE_NAMES) + ["wall_seconds", "cost_node_hours", "max_rss_MB"]


def save_npz(ds: Dataset, path: str | Path) -> None:
    """Save a dataset to a compressed ``.npz`` archive."""
    np.savez_compressed(
        Path(path),
        X=ds.X,
        wall=ds.wall,
        cost=ds.cost,
        mem=ds.mem,
        bounds=ds.bounds,
    )


def load_npz(path: str | Path) -> Dataset:
    """Load a dataset saved by :func:`save_npz`."""
    with np.load(Path(path)) as z:
        return Dataset(
            X=z["X"], wall=z["wall"], cost=z["cost"], mem=z["mem"], bounds=z["bounds"]
        )


def save_csv(ds: Dataset, path: str | Path) -> None:
    """Save a dataset as CSV with one row per job.

    Scaling ``bounds`` are not stored in CSV; :func:`load_csv` recomputes
    them from the data unless given explicitly.
    """
    with open(Path(path), "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_CSV_COLUMNS)
        for i in range(len(ds)):
            row = list(ds.X[i]) + [ds.wall[i], ds.cost[i], ds.mem[i]]
            writer.writerow(f"{v:.10g}" for v in row)


def load_csv(path: str | Path, bounds: np.ndarray | None = None) -> Dataset:
    """Load a dataset saved by :func:`save_csv`."""
    with open(Path(path), newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader)
        if header != _CSV_COLUMNS:
            raise ValueError(f"unexpected CSV header {header}")
        rows = [[float(v) for v in row] for row in reader if row]
    if not rows:
        raise ValueError("empty CSV")
    arr = np.asarray(rows, dtype=np.float64)
    nf = len(FEATURE_NAMES)
    return Dataset(
        X=arr[:, :nf],
        wall=arr[:, nf],
        cost=arr[:, nf + 1],
        mem=arr[:, nf + 2],
        bounds=bounds,
    )
