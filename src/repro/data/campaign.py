"""Campaign generation: from the 1920-point grid to the 600-job dataset.

The authors pre-selected their jobs "to limit the total cost by more
sparsely sampling the expensive parameter regimes" and "made sure that the
simulations we selected were guaranteed to complete".  The campaign
generator reproduces that policy:

1. Estimate every combination's cost with the machine model (noise-free).
2. Drop combinations whose predicted wall time exceeds a queue-limit cap.
3. Sample 525 unique combinations without replacement, with probability
   proportional to ``cost ** -sparsity`` (expensive regimes sampled
   sparsely).
4. Re-run 75 of them (some twice, some three times) to capture machine
   variability — matching the paper's 525 unique + 75 repeat layout.
5. Execute each job on the simulated machine and keep the accounting rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import Dataset
from repro.data.space import TABLE1_SPACE, ParameterSpace
from repro.faults import FaultConfig, FaultEvent, ResilientJobRunner, RetryPolicy
from repro.machine.accounting import JobRecord
from repro.machine.runner import JobConfig, JobRunner


@dataclass(frozen=True)
class CampaignConfig:
    """Knobs of the dataset-generation policy.

    Attributes
    ----------
    num_unique : int
        Unique configurations to run (paper: 525).
    num_repeats : int
        Additional repeat measurements (paper: 75, as 2nd/3rd runs).
    sparsity : float
        Exponent of the inverse-cost sampling weight; 0 = uniform, larger
        values thin the expensive regimes more aggressively.
    wall_cap_seconds : float
        Queue-limit proxy: combinations predicted to exceed this wall time
        are excluded up front (paper max observed: 4262.73 s).
    triple_fraction : float
        Fraction of repeats that are *third* measurements of a config that
        already has two (the paper's "2nd and in some cases 3rd").
    """

    num_unique: int = 525
    num_repeats: int = 75
    sparsity: float = 0.1
    wall_cap_seconds: float = 4500.0
    triple_fraction: float = 0.2

    def __post_init__(self) -> None:
        if self.num_unique < 1 or self.num_repeats < 0:
            raise ValueError("counts must be positive")
        if self.sparsity < 0:
            raise ValueError("sparsity must be non-negative")
        if not 0 <= self.triple_fraction <= 1:
            raise ValueError("triple_fraction must be in [0, 1]")


@dataclass
class CampaignResult:
    """Everything the campaign produced.

    ``records`` holds every *final* accounting row, including jobs that
    exhausted their retries (``failed=True``) or lost MaxRSS to the
    accounting bug; ``dataset`` is built from the usable subset only.
    ``fault_events`` is empty unless the campaign ran under a fault
    config; ``wasted_core_hours`` charges the discarded attempts.
    """

    records: list[JobRecord]
    dataset: Dataset
    space: ParameterSpace
    excluded_combinations: int
    total_core_hours: float = field(default=0.0)
    fault_events: list[FaultEvent] = field(default_factory=list)
    failed_jobs: int = 0
    censored_jobs: int = 0
    wasted_core_hours: float = 0.0

    @property
    def num_usable(self) -> int:
        return len(self.dataset)


def _predicted_costs(
    runner: JobRunner, grid: list[JobConfig]
) -> tuple[np.ndarray, np.ndarray]:
    """Noise-free (wall_seconds, node_hours) predictions for every combo."""
    walls = np.empty(len(grid))
    costs = np.empty(len(grid))
    perf = runner._perf()
    for i, cfg in enumerate(grid):
        work = runner.work_estimate(cfg)
        walls[i] = perf.wall_time(work, cfg.p)
        costs[i] = perf.node_hours(work, cfg.p)
    return walls, costs


@dataclass
class RawCollection:
    """Outcome of the paper's *raw* data-collection phase.

    The authors ran "over 1K computational jobs" on Edison and discovered,
    in post-processing, that SLURM reported ``MaxRSS = 0`` for all but 612
    of them — a bug that only struck the least expensive jobs (the longest
    affected ran 139 s).  This structure captures that phase before the
    600-job selection.
    """

    all_records: list[JobRecord]
    usable_records: list[JobRecord]

    @property
    def num_lost(self) -> int:
        return len(self.all_records) - len(self.usable_records)

    def longest_affected_wall(self) -> float:
        """Wall time of the longest job that lost its MaxRSS (paper: 139 s)."""
        lost = [r.wall_seconds for r in self.all_records if not r.rss_reported]
        return max(lost) if lost else 0.0


def collect_raw_campaign(
    rng: np.random.Generator,
    n_jobs: int = 1000,
    space: ParameterSpace = TABLE1_SPACE,
    runner: JobRunner | None = None,
    wall_cap_seconds: float = 4500.0,
) -> RawCollection:
    """Simulate the paper's raw collection: ~1K jobs through buggy sacct.

    Jobs are drawn uniformly from the wall-capped grid (with replacement,
    repeats included) and passed through the MaxRSS reporting bug; rows
    that lost their memory measurement are filtered as the authors did.
    """
    if runner is None:
        runner = JobRunner()
    if n_jobs < 1:
        raise ValueError("n_jobs must be >= 1")
    grid = space.grid()
    walls, _ = _predicted_costs(runner, grid)
    eligible = np.flatnonzero(walls <= wall_cap_seconds)
    picks = rng.choice(eligible, size=n_jobs, replace=True)
    records = [
        runner.run(grid[int(gi)], rng, job_id=j, apply_accounting_bug=True)
        for j, gi in enumerate(picks)
    ]
    from repro.machine.accounting import filter_usable

    return RawCollection(all_records=records, usable_records=filter_usable(records))


def run_campaign(
    rng: np.random.Generator,
    space: ParameterSpace = TABLE1_SPACE,
    config: CampaignConfig = CampaignConfig(),
    runner: JobRunner | None = None,
    faults: FaultConfig | None = None,
    retry: RetryPolicy | None = None,
) -> CampaignResult:
    """Generate the paper-style 600-job dataset.

    Parameters
    ----------
    rng : numpy.random.Generator
        Drives both the selection and the per-job measurement noise.
    faults : FaultConfig, optional
        Fault-injection layer for the simulated machine.  ``None`` (or a
        disabled config) takes the plain execution path, bit-identical to
        a fault-free build; an enabled config routes every job through
        :class:`~repro.faults.ResilientJobRunner` and reports retries,
        failures, and censored rows on the result.
    retry : RetryPolicy, optional
        Response policy when a fault strikes (default
        :class:`~repro.faults.RetryPolicy`); ignored without ``faults``.

    Returns
    -------
    CampaignResult
        With ``dataset`` ready for the AL simulator (Table I bounds applied
        for unit-cube scaling).  Under faults, the dataset holds only the
        usable rows (completed, MaxRSS reported) — the authors' own
        post-processing — while ``records`` keeps every final row.
    """
    if runner is None:
        runner = JobRunner()
    grid = space.grid()
    walls, costs = _predicted_costs(runner, grid)

    eligible = np.flatnonzero(walls <= config.wall_cap_seconds)
    if eligible.size < config.num_unique:
        raise ValueError(
            f"only {eligible.size} combinations under the wall cap; "
            f"cannot select {config.num_unique}"
        )
    weights = costs[eligible] ** (-config.sparsity)
    weights = weights / weights.sum()
    chosen = rng.choice(eligible, size=config.num_unique, replace=False, p=weights)

    # Repeats: pick configs to measure again, cheapest-leaning (uniform over
    # the selected set is close to the paper's unexplained policy; a mild
    # inverse-cost tilt keeps repeat spending negligible).
    rep_weights = costs[chosen] ** (-config.sparsity)
    rep_weights = rep_weights / rep_weights.sum()
    n_triple = int(round(config.num_repeats * config.triple_fraction / 2.0))
    n_double = config.num_repeats - 2 * n_triple
    doubles = rng.choice(chosen, size=n_double, replace=False, p=rep_weights)
    remaining = np.setdiff1d(chosen, doubles)
    rw = costs[remaining] ** (-config.sparsity)
    triples = rng.choice(remaining, size=n_triple, replace=False, p=rw / rw.sum())

    job_plan: list[int] = list(chosen) + list(doubles) + list(np.repeat(triples, 2))
    records: list[JobRecord] = []
    if faults is None or not faults.enabled:
        # Plain path — kept separate so fault-free campaigns stay
        # bit-identical (zero extra RNG draws) to pre-fault-layer builds.
        for job_id, gi in enumerate(job_plan):
            records.append(runner.run(grid[gi], rng, job_id=job_id))
        dataset = Dataset.from_records(records, bounds=space.bounds())
        core_hours = sum(r.cost_node_hours for r in records) * runner.spec.cores_per_node
        return CampaignResult(
            records=records,
            dataset=dataset,
            space=space,
            excluded_combinations=len(grid) - int(eligible.size),
            total_core_hours=core_hours,
        )

    resilient = ResilientJobRunner(runner=runner, faults=faults, retry=retry)
    events: list[FaultEvent] = []
    wasted = 0.0
    for job_id, gi in enumerate(job_plan):
        run = resilient.run(grid[gi], rng, job_id=job_id)
        records.append(run.record)
        events.extend(run.events)
        wasted += run.wasted_node_hours

    from repro.machine.accounting import filter_usable

    usable = filter_usable(records)
    if not usable:
        raise RuntimeError(
            "fault injection destroyed every record; relax the fault config"
        )
    dataset = Dataset.from_records(usable, bounds=space.bounds())
    spent = sum(r.cost_node_hours for r in records) + wasted
    return CampaignResult(
        records=records,
        dataset=dataset,
        space=space,
        excluded_combinations=len(grid) - int(eligible.size),
        total_core_hours=spent * runner.spec.cores_per_node,
        fault_events=events,
        failed_jobs=sum(1 for r in records if r.failed),
        censored_jobs=sum(1 for r in records if not r.failed and not r.rss_reported),
        wasted_core_hours=wasted * runner.spec.cores_per_node,
    )
